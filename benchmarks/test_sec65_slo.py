"""Bench: regenerate §6.5 — SLO guarantees.

Paper: UNBOUND 38.8% and GSLICE 50.1% QoS violations on average vs
BLESS 0.6%.
"""

from conftest import run_once

from repro.experiments.sec65_slo import run


def test_sec65_slo(benchmark):
    data = run_once(benchmark, run, requests=10)
    for scenario, rates in data.items():
        assert rates["BLESS"] <= rates["GSLICE"] + 0.05
        assert rates["BLESS"] <= 0.25
    benchmark.extra_info["violation_rates"] = {
        scenario: {k: f"{v:.1%}" for k, v in rates.items()}
        for scenario, rates in data.items()
    }
