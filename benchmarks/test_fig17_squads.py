"""Bench: regenerate Fig. 17 — squad duration under SEQ/NSP/SP/Semi-SP.

Paper: NSP/SP/Semi-SP 6.5/12.9/17.6% shorter than SEQ.
Shape: all managed policies beat SEQ; spatial policies beat NSP.
"""

from conftest import run_once

from repro.experiments.fig17_squads import run


def test_fig17_squads(benchmark):
    data = run_once(benchmark, run)
    for pair, stats in data.items():
        assert stats["SP_us"] < stats["SEQ_us"]
        assert stats["SemiSP_us"] < stats["SEQ_us"]
        assert stats["SP_us"] <= stats["NSP_us"] * 1.05
    benchmark.extra_info["reduction_vs_seq"] = {
        pair: {
            "NSP": f"{stats['NSP_vs_SEQ']:.1%}",
            "SP": f"{stats['SP_vs_SEQ']:.1%}",
            "SemiSP": f"{stats['SemiSP_vs_SEQ']:.1%}",
        }
        for pair, stats in data.items()
    }
