"""Microbenchmark: memoized + vectorized configuration search (ISSUE 1).

Replays a repeated-squad serving mix (K=4 requests, N=18 partitions —
680 compositions per decision) through three determiner builds:

* ``legacy``      — the pre-optimization per-composition Python loops;
* ``vectorized``  — the numpy batch evaluation, cache disabled;
* ``memoized``    — vectorized plus the squad-signature LRU (default).

Asserts the ISSUE-1 acceptance criteria: >= 3x speedup over the legacy
scalar path on the repeated workload, and identical decisions from all
builds (cache enabled vs disabled vs pre-PR path).

Measurement: shared CI boxes show 30%+ wall-clock swings between
back-to-back runs, so each speedup is measured over interleaved
legacy/optimized pairs — both legs of a pair see the same machine
weather — and the reported (and perf-gated) ratio is the median of the
per-pair ratios, never a single run.
"""

import random
import statistics
import time

from repro.apps.application import Request
from repro.apps.models import inference_app
from repro.core.config import BlessConfig
from repro.core.configurator import ExecutionConfigDeterminer
from repro.core.profiler import OfflineProfiler
from repro.core.squad import KernelSquad, SquadEntry

K_REQUESTS = 4
N_PARTITIONS = 18
DISTINCT_SQUADS = 12
WORKLOAD_LENGTH = 240
# The optimized legs finish in milliseconds, so per-pair ratios are
# intrinsically noisy; five pairs keep the median steady enough for
# the perf gate's -25% speedup threshold.
TRIALS = 5


def build_workload():
    """A repeated-squad stream: 12 distinct squads replayed 20x each."""
    config = BlessConfig(num_partitions=N_PARTITIONS)
    profiler = OfflineProfiler(config=config)
    models = ["VGG", "R50", "R101", "BERT"]
    apps = [
        inference_app(m).with_quota(1.0 / K_REQUESTS, app_id=m.lower())
        for m in models
    ]
    profiles = {a.app_id: profiler.profile(a) for a in apps}

    rng = random.Random(1234)
    distinct = []
    for _ in range(DISTINCT_SQUADS):
        squad = KernelSquad()
        for app in apps:
            count = rng.randrange(3, 9)
            start = rng.randrange(0, len(app.kernels) - count)
            squad.entries[app.app_id] = SquadEntry(
                request=Request(app=app, arrival_time=0.0),
                kernel_indices=list(range(start, start + count)),
            )
        distinct.append(squad)
    squads = [distinct[i % DISTINCT_SQUADS] for i in range(WORKLOAD_LENGTH)]
    return config, profiles, squads


def drain(determiner, profiles, squads):
    decisions = []
    for squad in squads:
        decisions.append(determiner.determine(squad, profiles))
    return decisions


def test_config_search_speedup(benchmark):
    config, profiles, squads = build_workload()

    # Interleaved legacy/memoized pairs; a fresh determiner each trial
    # so the measured replay always includes the cold misses.
    legacy_times, memo_times, ratios = [], [], []
    legacy_decisions = memo_decisions = None
    fresh = None
    for _ in range(TRIALS):
        legacy = ExecutionConfigDeterminer(config, mode="legacy")
        legacy.cache = None
        start = time.perf_counter()
        legacy_decisions = drain(legacy, profiles, squads)
        legacy_times.append(time.perf_counter() - start)

        fresh = ExecutionConfigDeterminer(config)
        start = time.perf_counter()
        memo_decisions = drain(fresh, profiles, squads)
        memo_times.append(time.perf_counter() - start)
        ratios.append(legacy_times[-1] / memo_times[-1])

    # Steady state (cache warm) for the pytest-benchmark wall numbers.
    memoized = ExecutionConfigDeterminer(config)
    drain(memoized, profiles, squads)
    benchmark.pedantic(
        drain, args=(memoized, profiles, squads), rounds=3, iterations=1
    )

    speedup = statistics.median(ratios)
    benchmark.extra_info["legacy_ms"] = round(min(legacy_times) * 1e3, 2)
    benchmark.extra_info["memoized_ms"] = round(min(memo_times) * 1e3, 2)
    benchmark.extra_info["pair_speedups"] = [round(r, 1) for r in ratios]
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["hit_rate"] = round(fresh.cache.stats.hit_rate, 3)
    benchmark.extra_info["per_decision_us"] = round(
        min(memo_times) / len(squads) * 1e6, 2
    )

    # ISSUE 1 acceptance: >= 3x on the repeated-squad workload.  (In
    # practice the gap is orders of magnitude; 3x keeps CI noise-proof.)
    assert speedup >= 3.0, f"only {speedup:.1f}x over the scalar path"
    # The workload repeats 12 signatures: the cache must absorb the rest.
    assert fresh.cache.stats.hit_rate > 0.9

    # Decision equivalence, cache enabled vs disabled vs pre-PR scalar.
    nocache = ExecutionConfigDeterminer(
        BlessConfig(num_partitions=N_PARTITIONS, use_config_cache=False)
    )
    nocache_decisions = drain(nocache, profiles, squads)
    for cached, uncached, old in zip(
        memo_decisions, nocache_decisions, legacy_decisions
    ):
        assert cached.partitions == uncached.partitions == old.partitions
        assert cached.rear_counts == uncached.rear_counts == old.rear_counts


def test_config_search_vectorized_only_speedup(benchmark):
    """Vectorization alone (cache off) must already beat the old path."""
    config, profiles, squads = build_workload()

    nocache_config = BlessConfig(
        num_partitions=N_PARTITIONS, use_config_cache=False
    )
    vectorized = ExecutionConfigDeterminer(nocache_config)

    def run():
        return drain(vectorized, profiles, squads)

    run()  # warm numpy / composition-array cache

    # Interleaved legacy/vectorized pairs, median per-pair ratio.
    legacy_times, vector_times, ratios = [], [], []
    for _ in range(TRIALS):
        legacy = ExecutionConfigDeterminer(config, mode="legacy")
        legacy.cache = None
        start = time.perf_counter()
        drain(legacy, profiles, squads)
        legacy_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        run()
        vector_times.append(time.perf_counter() - start)
        ratios.append(legacy_times[-1] / vector_times[-1])

    benchmark.pedantic(run, rounds=3, iterations=1)

    speedup = statistics.median(ratios)
    benchmark.extra_info["legacy_ms"] = round(min(legacy_times) * 1e3, 2)
    benchmark.extra_info["vectorized_ms"] = round(min(vector_times) * 1e3, 2)
    benchmark.extra_info["pair_speedups"] = [round(r, 1) for r in ratios]
    benchmark.extra_info["speedup"] = round(speedup, 1)
    assert speedup >= 3.0, f"only {speedup:.1f}x over the scalar path"
