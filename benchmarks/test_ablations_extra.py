"""Bench: sweep the reproduction's own design choices (DESIGN.md).

Shape requirements: every variant still serves correctly, and the
defaults are not materially worse than any alternative.
"""

from conftest import run_once

from repro.experiments.ablations_extra import run


def test_ablations_extra(benchmark):
    data = run_once(benchmark, run, requests=5)
    # Defaults within 10% of the best alternative for every knob.
    assert data["hw_policy"]["fair"] <= data["hw_policy"]["fifo"] * 1.10
    assert (
        data["nsp_predictor"]["wave"]
        <= data["nsp_predictor"]["paper"] * 1.10
    )
    assert (
        data["semi_sp_mode"]["adaptive"]
        <= data["semi_sp_mode"]["static"] * 1.10
    )
    benchmark.extra_info["sweeps"] = {
        knob: {k: round(v, 2) for k, v in values.items()}
        for knob, values in data.items()
    }
