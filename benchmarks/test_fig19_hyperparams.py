"""Bench: regenerate Fig. 19 — hyper-parameter sweeps.

(a) squad size vs latency and max promisable quota; (b) split ratio
sweep; (c) SM-count sweep (paper: reduction shrinks 54.4% -> 40.2% as
SMs grow).
"""

from conftest import run_once

from repro.experiments.fig19_hyperparams import run


def test_fig19_hyperparams(benchmark):
    data = run_once(benchmark, run)
    sweep = data["split_ratio"]
    assert min(sweep.values()) == 1.0
    sm = data["sm_count_reduction"]
    assert sm[min(sm)] > sm[max(sm)] - 0.05
    benchmark.extra_info["squad_size_latency_ms"] = {
        str(k): round(v, 1) for k, v in data["squad_size_latency"].items()
    }
    benchmark.extra_info["max_quota_by_squad_size"] = {
        str(k): round(v, 3) for k, v in data["squad_size_max_quota"].items()
    }
    benchmark.extra_info["split_ratio_duration"] = {
        f"{k:.0%}": round(v, 3) for k, v in sweep.items()
    }
    benchmark.extra_info["sm_count_reduction"] = {
        str(k): f"{v:.1%}" for k, v in sm.items()
    }
