"""Bench: regenerate Fig. 16 — the extremely biased workload E.

Paper: App1 pays ~9% latency over ISO under BLESS while App2 gains
2.2x throughput over GSLICE.
"""

from conftest import run_once

from repro.experiments.fig16_biased import run


def test_fig16_biased(benchmark):
    data = run_once(benchmark, run, requests=8)
    assert data["_app2_speedup"]["bless_over_gslice"] > 1.5
    assert data["BLESS"]["app1_vs_iso"] < 0.35
    benchmark.extra_info["app1_vs_iso"] = f"{data['BLESS']['app1_vs_iso']:+.1%}"
    benchmark.extra_info["app2_speedup_vs_gslice"] = round(
        data["_app2_speedup"]["bless_over_gslice"], 2
    )
