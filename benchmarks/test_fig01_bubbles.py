"""Bench: regenerate Fig. 1 — the bubble-squeezing motivation.

Paper's marked request: 17.1 ms under temporal sharing, 11.5 ms under
spatial, 10.1 ms after bubble squeezing.  Shape: BLESS gives the marked
request the lowest latency, the lowest average, and the lowest bubble
ratio "without slowing down the other application".
"""

from conftest import run_once

from repro.experiments.fig01_bubbles import run


def test_fig01_bubbles(benchmark):
    data = run_once(benchmark, run)
    bless = data["BLESS"]
    assert bless["marked_request_ms"] <= data["TEMPORAL"]["marked_request_ms"] * 1.02
    assert bless["avg_ms"] <= min(
        data["TEMPORAL"]["avg_ms"], data["GSLICE"]["avg_ms"]
    )
    assert bless["bubble_ratio"] <= min(
        data["TEMPORAL"]["bubble_ratio"], data["GSLICE"]["bubble_ratio"]
    )
    benchmark.extra_info["marked_request_ms"] = {
        name: round(stats["marked_request_ms"], 1) for name, stats in data.items()
    }
    benchmark.extra_info["bubble_ratio"] = {
        name: f"{stats['bubble_ratio']:.1%}" for name, stats in data.items()
    }
