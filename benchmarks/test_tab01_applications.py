"""Bench: regenerate Table 1 (application properties + profiling cost)."""

from conftest import run_once

from repro.experiments.tab01_applications import run


def test_tab01_applications(benchmark):
    table = run_once(benchmark, run)
    for mode in ("inference", "training"):
        for model, stats in table[mode].items():
            assert abs(stats["duration_ms"] - stats["paper_duration_ms"]) < 0.2
            assert stats["kernels"] == stats["paper_kernels"]
    benchmark.extra_info["inference_ms"] = {
        m: round(s["duration_ms"], 1) for m, s in table["inference"].items()
    }
    benchmark.extra_info["profile_cost_s"] = {
        m: round(s["profile_cost_s"], 2) for m, s in table["inference"].items()
    }
