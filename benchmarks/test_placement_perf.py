"""Contention-aware placement benchmark (ISSUE 9).

Times the churny cluster sweep that showcases the interference-cost
policy, asserts the PR's acceptance shape — ``contention_aware``
strictly beats both quota-fit policies on throughput *and* p99 at
8 GPUs — and measures the two memoization layers that keep the policy
cheap at scale:

* the :class:`~repro.cluster.interference.InterferenceEstimator`'s
  joint-duration cache (profile-signature keyed, so a cluster of
  repeated model mixes re-scores against a handful of entries);
* the admission cache of :mod:`repro.cluster.placement`, which
  collapses the historical quadratic ``check_admission`` recomputation
  during 64-GPU placement to one decision per distinct group multiset.
"""

import time

from repro.apps.models import inference_app
from repro.cluster import ClusterPlacer, PlacementPolicy
from repro.experiments.cluster_scale import run_churn_quick
from conftest import run_once

ADMISSION_GPUS = 64
ADMISSION_MODELS = ("VGG", "R50", "R101", "BERT")


def test_placement_contention(benchmark):
    data = run_once(benchmark, run_churn_quick, jobs=2)

    assert len(data) == 3
    contention = data["gpus=8 policy=contention_aware churn"]
    for baseline in ("best_fit", "worst_fit"):
        other = data[f"gpus=8 policy={baseline} churn"]
        assert contention["throughput_qps"] > other["throughput_qps"], baseline
        assert contention["p99_latency_us"] < other["p99_latency_us"], baseline

    best = data["gpus=8 policy=best_fit churn"]
    benchmark.extra_info["contention_tput_qps"] = round(
        contention["throughput_qps"], 1
    )
    benchmark.extra_info["best_fit_tput_qps"] = round(best["throughput_qps"], 1)
    benchmark.extra_info["tput_win"] = round(
        contention["throughput_qps"] / best["throughput_qps"], 3
    )
    benchmark.extra_info["p99_win"] = round(
        best["p99_latency_us"] / contention["p99_latency_us"], 3
    )
    benchmark.extra_info["placement_cost_us"] = round(
        contention["placement_cost"], 1
    )


def test_placement_admission_memoization(benchmark):
    """64-GPU placement leans on the admission cache, not re-checks."""

    def place_cluster():
        placer = ClusterPlacer(
            num_gpus=ADMISSION_GPUS, policy=PlacementPolicy.BEST_FIT
        )
        apps = []
        for index in range(ADMISSION_GPUS * 4):
            base = inference_app(ADMISSION_MODELS[index % len(ADMISSION_MODELS)])
            apps.append(base.with_quota(0.25, app_id=f"{base.name}#{index}"))
        placer.place_all(apps)
        return placer

    started = time.perf_counter()
    placer = run_once(benchmark, place_cluster)
    elapsed = time.perf_counter() - started

    placed = sum(len(slot.apps) for slot in placer.slots)
    assert placed == ADMISSION_GPUS * 4
    benchmark.extra_info["gpus"] = ADMISSION_GPUS
    benchmark.extra_info["apps_placed"] = placed
    benchmark.extra_info["place_all_seconds"] = round(elapsed, 3)
    # The memoized admission path keeps 256-app placement interactive;
    # the pre-cache quadratic recomputation took tens of seconds.
    assert elapsed < 10.0
