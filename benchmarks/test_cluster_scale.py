"""Cluster scale-out benchmark (§4.2.2 online orchestrator, ISSUEs 5+7).

Runs the CI-sized ``cluster_scale`` sweep once under pytest-benchmark
timing, records the headline scenario numbers in ``extra_info``, and
asserts the orchestrator's qualitative shape: every scenario keeps the
cluster-wide request books balanced, and scaling the pool from one GPU
to two spreads the same per-GPU workload without inflating latency.

Also measures the ISSUE-7 in-process serve loop: small squads (below
``INPROC_GPU_THRESHOLD`` occupied GPUs per epoch) skip the process
pool's submit+pickle tax entirely.  The forced-pool and inproc sweeps
are timed in interleaved pairs and must return identical data.
"""

import os
import statistics
import time

from repro.experiments.cluster_scale import run_quick
from conftest import run_once

BACKEND_TRIALS = 3


def _run_backend(backend):
    os.environ["REPRO_BACKEND"] = backend
    try:
        started = time.perf_counter()
        data = run_quick(jobs=2)
        return data, time.perf_counter() - started
    finally:
        os.environ.pop("REPRO_BACKEND", None)


def test_cluster_scale(benchmark):
    data = run_once(benchmark, run_quick, jobs=2)

    assert len(data) == 2
    for scenario, stats in data.items():
        assert stats["completed"] + stats["shed"] == stats["offered"], scenario
        assert 0.0 < stats["util"] <= 1.0, scenario

    one = data["gpus=1 policy=best_fit load=C"]
    two = data["gpus=2 policy=best_fit load=C"]
    # Two tenant groups on two GPUs serve 3x the requests (group 0
    # serves both epochs) at roughly single-GPU latency: GPUs do not
    # interfere, so scale-out must not inflate the mean.
    assert two["completed"] == 3 * one["completed"]
    assert two["mean_ms"] < 1.25 * one["mean_ms"]

    benchmark.extra_info["single_gpu_mean_ms"] = round(one["mean_ms"], 3)
    benchmark.extra_info["dual_gpu_mean_ms"] = round(two["mean_ms"], 3)
    benchmark.extra_info["dual_gpu_util"] = round(two["util"], 4)
    benchmark.extra_info["migrations"] = two["migrations"]

    # ISSUE-7: the in-process backend must match the pool byte for byte
    # and not regress against it on this squad size (every epoch here
    # occupies 1-2 GPUs, under the inproc threshold).  Measured: ~1.7x
    # over a cold pool (the first grid in a process pays the fork),
    # ~1.05-1.1x over a warm cached pool (submit+pickle round-trips
    # per epoch); pairs swing +-20% on shared boxes, so the asserted
    # floor is a loose regression tripwire, not the headline.
    ratios = []
    for _ in range(BACKEND_TRIALS):
        pool_data, pool_seconds = _run_backend("pool")
        inproc_data, inproc_seconds = _run_backend("inproc")
        assert pool_data == data, "pool backend diverged"
        assert inproc_data == data, "inproc backend diverged"
        ratios.append(pool_seconds / inproc_seconds)
    inproc_speedup = statistics.median(ratios)
    benchmark.extra_info["inproc_pair_speedups"] = [round(r, 2) for r in ratios]
    benchmark.extra_info["inproc_speedup"] = round(inproc_speedup, 2)
    assert inproc_speedup >= 0.7, (
        f"inproc backend at {inproc_speedup:.2f}x of the warm pool (median "
        f"of {[f'{r:.2f}' for r in ratios]}) — below the 0.7x regression "
        f"floor"
    )
