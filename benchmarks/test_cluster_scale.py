"""Cluster scale-out benchmark (§4.2.2 online orchestrator, ISSUE 5).

Runs the CI-sized ``cluster_scale`` sweep once under pytest-benchmark
timing, records the headline scenario numbers in ``extra_info``, and
asserts the orchestrator's qualitative shape: every scenario keeps the
cluster-wide request books balanced, and scaling the pool from one GPU
to two spreads the same per-GPU workload without inflating latency.
"""

from repro.experiments.cluster_scale import run_quick
from conftest import run_once


def test_cluster_scale(benchmark):
    data = run_once(benchmark, run_quick, jobs=2)

    assert len(data) == 2
    for scenario, stats in data.items():
        assert stats["completed"] + stats["shed"] == stats["offered"], scenario
        assert 0.0 < stats["util"] <= 1.0, scenario

    one = data["gpus=1 policy=best_fit load=C"]
    two = data["gpus=2 policy=best_fit load=C"]
    # Two tenant groups on two GPUs serve 3x the requests (group 0
    # serves both epochs) at roughly single-GPU latency: GPUs do not
    # interfere, so scale-out must not inflate the mean.
    assert two["completed"] == 3 * one["completed"]
    assert two["mean_ms"] < 1.25 * one["mean_ms"]

    benchmark.extra_info["single_gpu_mean_ms"] = round(one["mean_ms"], 3)
    benchmark.extra_info["dual_gpu_mean_ms"] = round(two["mean_ms"], 3)
    benchmark.extra_info["dual_gpu_util"] = round(two["util"], 4)
    benchmark.extra_info["migrations"] = two["migrations"]
