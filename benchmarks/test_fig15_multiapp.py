"""Bench: regenerate Fig. 15 — 4 and 8 co-located applications.

Paper: BLESS cuts 41.2/18.3% (4 apps) and 80.8/35.5% (8 apps) vs
TEMPORAL/GSLICE, with ~zero latency deviation.  Shape: BLESS wins and
the margin grows with the app count.
"""

from conftest import run_once

from repro.experiments.fig15_multiapp import run


def test_fig15_multiapp(benchmark):
    data = run_once(benchmark, run, requests=4)
    for count in (4, 8):
        assert data[count]["BLESS"]["mean_ms"] < data[count]["GSLICE"]["mean_ms"]
        assert data[count]["BLESS"]["mean_ms"] < data[count]["TEMPORAL"]["mean_ms"]
    benchmark.extra_info["mean_ms"] = {
        f"{count}-apps": {n: round(s["mean_ms"], 1) for n, s in systems.items()}
        for count, systems in data.items()
    }
