"""Bench: regenerate Fig. 10 — squad-duration predictor accuracy.

Paper: 6.7%/7.1% mean prediction error, 96.2% optimal-config match.
"""

from conftest import run_once

from repro.experiments.fig10_predictors import run


def test_fig10_predictors(benchmark):
    data = run_once(benchmark, run, pairs=12)
    assert data["mean_prediction_error"] < 0.15
    assert data["top1_match_rate"] >= 0.7
    benchmark.extra_info["mean_prediction_error"] = round(
        data["mean_prediction_error"], 3
    )
    benchmark.extra_info["top1_match_rate"] = round(data["top1_match_rate"], 3)
    benchmark.extra_info["nas_r50_optimum"] = {
        "predicted": data["best_predicted_config"],
        "measured": data["best_measured_config"],
    }
