"""Bench: regenerate Fig. 18 — fine-grained scheduling behaviour.

(a) With 70/30 quotas the 70% request gets more kernels per squad and
finishes first.  (b) BLESS on a training round beats ZICO (paper -8.5%).
"""

from conftest import run_once

from repro.experiments.fig18_finegrained import run


def test_fig18_finegrained(benchmark):
    data = run_once(benchmark, run)
    part_a = data["quota_split"]
    assert part_a["req1_finishes_first"]
    assert part_a["req1_early_share"][0] > 0.5
    benchmark.extra_info["req1_early_share"] = [
        round(s, 2) for s in part_a["req1_early_share"]
    ]
    benchmark.extra_info["training_vs_zico"] = f"{data['training']['reduction']:+.1%}"
