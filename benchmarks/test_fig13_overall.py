"""Bench: regenerate Fig. 13 — overall performance, symmetric pairs.

Paper: BLESS reduces average latency by 37.3/34.2/21.1/16.5/13.5% vs
TEMPORAL/MIG/GSLICE/UNBOUND/REEF+; training by 26.5/7.5/12.5/9.9% vs
TEMPORAL/MIG/UNBOUND/ZICO; < 3% over GSLICE at full saturation.
"""

from conftest import run_once

from repro.experiments.fig13_overall import (
    run_inference,
    run_saturation,
    run_training,
)


def test_fig13_inference(benchmark):
    data = run_once(benchmark, run_inference, requests=8)
    reductions = data["reductions"]
    assert reductions["TEMPORAL"] > 0.05
    assert reductions["MIG"] > 0.05
    assert reductions["GSLICE"] > 0.0
    benchmark.extra_info["reductions"] = {
        name: f"{value:.1%}" for name, value in reductions.items()
    }


def test_fig13_training(benchmark):
    data = run_once(benchmark, run_training, requests=2)
    for row in data["rows"]:
        assert row["BLESS"] < row["TEMPORAL"]
    benchmark.extra_info["rows"] = [
        {k: (round(v, 1) if isinstance(v, float) else v) for k, v in row.items()}
        for row in data["rows"]
    ]


def test_fig13_saturation(benchmark):
    sat = run_once(benchmark, run_saturation, requests=8)
    assert sat["overhead"] < 0.15
    benchmark.extra_info["overhead_vs_gslice"] = f"{sat['overhead']:.1%}"
