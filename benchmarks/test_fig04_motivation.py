"""Bench: regenerate Fig. 4(b) — the motivating VGG11+ResNet50 pair.

Paper: static 16.8 ms, unbounded 13.1 ms, biased ~14.3 ms, BLESS
11.3 ms average.  The shape to hold: BLESS wins, static/temporal lose.
"""

from conftest import run_once

from repro.experiments.fig04_motivation import run


def test_fig04_motivation(benchmark):
    data = run_once(benchmark, run)
    assert data["BLESS"]["avg"] <= data["GSLICE"]["avg"]
    assert data["BLESS"]["avg"] <= data["TEMPORAL"]["avg"]
    assert data["BLESS"]["avg"] <= data["UNBOUND"]["avg"]
    benchmark.extra_info["avg_latency_ms"] = {
        name: round(stats["avg"], 2) for name, stats in data.items()
    }
