"""Bench: regenerate Fig. 14 — latency deviation under uneven quotas.

Paper: average deviation TEMPORAL 14.3 ms, GSLICE 2.1 ms, BLESS 0.6 ms
(MIG infeasible for most splits).  Shape: BLESS lowest.
"""

from conftest import run_once

from repro.experiments.fig14_deviation import run_quick


def test_fig14_deviation(benchmark):
    data = run_once(benchmark, run_quick, requests=5)
    assert data["BLESS"] < data["TEMPORAL"]
    benchmark.extra_info["deviation_ms"] = {
        name: round(value / 1000.0, 2) for name, value in data.items()
    }
