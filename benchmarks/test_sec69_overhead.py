"""Bench: regenerate §6.9 — scheduling overhead accounting.

Paper: squad sync 20us, launch 3us, context switch 50us, scheduling
6.7us/kernel (3.7 + 2 + 1), ~230MB per MPS context.
"""

from conftest import run_once

from repro.experiments.sec69_overhead import run


def test_sec69_overhead(benchmark):
    data = run_once(benchmark, run, requests=6)
    assert data["squad_sync_us"] == 20.0
    assert data["sched_us_per_kernel"] == 6.7
    assert data["measured_squads"] > 0
    benchmark.extra_info["overheads"] = {
        "squad_sync_us": data["squad_sync_us"],
        "kernel_launch_us": data["kernel_launch_us"],
        "context_switch_us": data["context_switch_us"],
        "sched_us_per_kernel": data["sched_us_per_kernel"],
        "mps_context_mb": data["mps_context_mb"],
    }
