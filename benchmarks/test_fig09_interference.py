"""Bench: regenerate Fig. 9 — kernel- and application-level interference.

Paper anchors: kernel-level slowdown <= 2x; mutual-pair app-level
interference ~7% on average.
"""

from conftest import run_once

from repro.experiments.fig09_interference import run


def test_fig09_interference(benchmark):
    data = run_once(benchmark, run)
    assert data["max_kernel_slowdown"] <= 2.0 + 1e-9
    assert 1.02 < data["mean_app_slowdown"] < 1.15
    benchmark.extra_info["kernel_level"] = {
        f"{p:.1f}": round(s, 2) for p, s in data["kernel_level"].items()
    }
    benchmark.extra_info["mean_app_slowdown"] = round(data["mean_app_slowdown"], 3)
