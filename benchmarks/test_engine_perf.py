"""End-to-end engine + harness speedup benchmark (ISSUEs 2 and 7).

Replays a fig13-style workload (the five symmetric model pairs at load
A, all seven systems) through the engine builds:

* ``legacy``      — the PR-1 baseline: per-event full-queue dispatch
                    scan, unconditional rebalance, one launch event per
                    kernel, serial harness;
* ``scalar``      — incremental ready-set + rebalance skipping, scalar
                    rate arithmetic (the equivalence reference);
* ``vectorized``  — the PR-2/PR-6 engine: membership-memoized rates
                    with the numpy batch path;
* ``batched``     — the default since ISSUE 7: rate-change epochs with
                    out-of-heap completion/gap pseudo-events, fused
                    advance+sweep ticks, and a process-wide L2 rate
                    memo keyed on portable value signatures;
* ``jit``         — ``batched`` plus the numba rebalance kernel when
                    numba is installed (silently interpreted when not).

Asserts the ISSUE-2 acceptance floor (>= 3x end-to-end speedup of the
optimized configuration over the PR-1 baseline) plus the ISSUE-7
contracts: the epoch-batched engine must not regress against the
frozen ``vectorized`` reference (measured median on this workload is
~1.1-1.25x in its favour; the asserted floor is 0.8 because the pair
ratio still swings +-20% on shared boxes), and *identical* figure
output (every latency float) across all five modes and across serial
vs parallel execution.

Measurement: shared CI boxes show 30%+ wall-clock swings between
back-to-back runs, so compared builds are timed in interleaved pairs —
both legs of a pair see the same machine weather — and the asserted
speedups are medians of the per-pair ratios.
"""

import os
import statistics
import time

from repro.experiments.fig13_overall import run_inference

REQUESTS = 4
LOADS = ("A",)
TRIALS = 5

#: Floor for the batched-vs-vectorized interleaved median.  The honest
#: measured value on this workload is ~1.1-1.25x (the epoch engine
#: wins); 0.8 is the regression tripwire that survives CI noise.
EPOCH_FLOOR = 0.8


def run_build(mode, jobs):
    """Time one full run_inference pass under an engine mode + job count."""
    os.environ["REPRO_ENGINE_MODE"] = mode
    try:
        started = time.perf_counter()
        data = run_inference(requests=REQUESTS, loads=LOADS, jobs=jobs)
        return data, time.perf_counter() - started
    finally:
        os.environ.pop("REPRO_ENGINE_MODE", None)


def test_engine_speedup_and_equivalence(benchmark):
    # Warm imports/numpy/process-pool machinery outside the timed regions.
    run_inference(requests=1, loads=("A",), jobs=2)

    scalar_data, scalar_seconds = run_build("scalar", jobs=1)
    jit_data, jit_seconds = run_build("jit", jobs=1)

    # Interleaved baseline/optimized pairs; per-pair speedup ratios.
    # The optimized leg is the default engine (batched) under jobs=2.
    legacy_data = None
    batched_parallel_data = None
    legacy_times = []
    optimized_times = []
    ratios = []
    for _ in range(TRIALS):
        legacy_data, legacy_seconds = run_build("legacy", jobs=1)
        batched_parallel_data, optimized_seconds = run_build("batched", jobs=2)
        legacy_times.append(legacy_seconds)
        optimized_times.append(optimized_seconds)
        ratios.append(legacy_seconds / optimized_seconds)
    speedup = statistics.median(ratios)

    # Epoch-engine pairs: the frozen PR-6 reference vs the batched
    # engine, both serial, so the ratio isolates engine machinery.
    vec_data = None
    batched_data = None
    vec_times = []
    batched_times = []
    epoch_ratios = []
    for _ in range(TRIALS):
        vec_data, vec_seconds = run_build("vectorized", jobs=1)
        batched_data, batched_seconds = run_build("batched", jobs=1)
        vec_times.append(vec_seconds)
        batched_times.append(batched_seconds)
        epoch_ratios.append(vec_seconds / batched_seconds)
    epoch_speedup = statistics.median(epoch_ratios)

    benchmark.extra_info["legacy_s"] = round(min(legacy_times), 2)
    benchmark.extra_info["scalar_s"] = round(scalar_seconds, 2)
    benchmark.extra_info["jit_s"] = round(jit_seconds, 2)
    benchmark.extra_info["vectorized_s"] = round(min(vec_times), 2)
    benchmark.extra_info["batched_s"] = round(min(batched_times), 2)
    benchmark.extra_info["batched_jobs2_s"] = round(min(optimized_times), 2)
    benchmark.extra_info["pair_speedups"] = [round(r, 2) for r in ratios]
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["epoch_pair_speedups"] = [
        round(r, 2) for r in epoch_ratios
    ]
    benchmark.extra_info["epoch_speedup"] = round(epoch_speedup, 2)

    benchmark.pedantic(run_build, args=("batched", 2), rounds=1, iterations=1)

    # ISSUE-2 acceptance: >= 3x end to end over the PR-1 baseline.
    assert speedup >= 3.0, (
        f"only {speedup:.2f}x (median of {[f'{r:.2f}' for r in ratios]}) "
        f"over the legacy engine"
    )

    # ISSUE-7 tripwire: the epoch-batched default must not regress
    # against the frozen vectorized reference.
    assert epoch_speedup >= EPOCH_FLOOR, (
        f"batched engine at {epoch_speedup:.2f}x of vectorized (median of "
        f"{[f'{r:.2f}' for r in epoch_ratios]}) — below the {EPOCH_FLOOR}x "
        f"regression floor"
    )

    # Byte-identical figure output across every mode: run_inference
    # returns raw floats, so plain equality is bit-for-bit.
    assert scalar_data == legacy_data, "scalar diverged from legacy"
    assert vec_data == legacy_data, "vectorized diverged from legacy"
    assert batched_data == legacy_data, "batched diverged from legacy"
    assert jit_data == legacy_data, "jit diverged from legacy"
    assert batched_parallel_data == legacy_data, (
        "parallel diverged from serial"
    )
