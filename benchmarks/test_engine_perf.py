"""End-to-end engine + harness speedup benchmark (ISSUE 2).

Replays a fig13-style workload (the five symmetric model pairs at load
A, all seven systems) through three builds:

* ``legacy``      — the PR-1 baseline: per-event full-queue dispatch
                    scan, unconditional rebalance, one launch event per
                    kernel, serial harness;
* ``scalar``      — incremental ready-set + rebalance skipping, scalar
                    rate arithmetic (the equivalence reference);
* ``vectorized``  — the default: membership-memoized rates with the
                    numpy batch path, run under the process-parallel
                    harness (``jobs=2``).

Asserts the ISSUE-2 acceptance criteria: >= 3x end-to-end speedup of
the optimized configuration over the PR-1 baseline, and *identical*
figure output (every latency float) across all builds and across
serial vs parallel execution.

Measurement: shared CI boxes show 30%+ wall-clock swings between
back-to-back runs, so baseline and optimized builds are timed in
interleaved pairs — both legs of a pair see the same machine weather —
and the asserted speedup is the median of the per-pair ratios.
"""

import os
import statistics
import time

from repro.experiments.fig13_overall import run_inference

REQUESTS = 4
LOADS = ("A",)
TRIALS = 5


def run_build(mode, jobs):
    """Time one full run_inference pass under an engine mode + job count."""
    os.environ["REPRO_ENGINE_MODE"] = mode
    try:
        started = time.perf_counter()
        data = run_inference(requests=REQUESTS, loads=LOADS, jobs=jobs)
        return data, time.perf_counter() - started
    finally:
        os.environ.pop("REPRO_ENGINE_MODE", None)


def test_engine_speedup_and_equivalence(benchmark):
    # Warm imports/numpy/process-pool machinery outside the timed regions.
    run_inference(requests=1, loads=("A",), jobs=2)

    scalar_data, scalar_seconds = run_build("scalar", jobs=1)
    vec_serial_data, vec_serial_seconds = run_build("vectorized", jobs=1)

    # Interleaved baseline/optimized pairs; per-pair speedup ratios.
    legacy_data = None
    vec_parallel_data = None
    legacy_times = []
    optimized_times = []
    ratios = []
    for _ in range(TRIALS):
        legacy_data, legacy_seconds = run_build("legacy", jobs=1)
        vec_parallel_data, optimized_seconds = run_build("vectorized", jobs=2)
        legacy_times.append(legacy_seconds)
        optimized_times.append(optimized_seconds)
        ratios.append(legacy_seconds / optimized_seconds)

    speedup = statistics.median(ratios)
    benchmark.extra_info["legacy_s"] = round(min(legacy_times), 2)
    benchmark.extra_info["scalar_s"] = round(scalar_seconds, 2)
    benchmark.extra_info["vectorized_serial_s"] = round(vec_serial_seconds, 2)
    benchmark.extra_info["vectorized_jobs2_s"] = round(min(optimized_times), 2)
    benchmark.extra_info["pair_speedups"] = [round(r, 2) for r in ratios]
    benchmark.extra_info["speedup"] = round(speedup, 2)

    benchmark.pedantic(
        run_build, args=("vectorized", 2), rounds=1, iterations=1
    )

    # ISSUE-2 acceptance: >= 3x end to end over the PR-1 baseline.
    assert speedup >= 3.0, (
        f"only {speedup:.2f}x (median of {[f'{r:.2f}' for r in ratios]}) "
        f"over the legacy engine"
    )

    # Byte-identical figure output across every build: run_inference
    # returns raw floats, so plain equality is bit-for-bit.
    assert scalar_data == legacy_data, "scalar diverged from legacy"
    assert vec_serial_data == legacy_data, "vectorized diverged from legacy"
    assert vec_parallel_data == legacy_data, "parallel diverged from serial"
