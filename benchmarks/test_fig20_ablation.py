"""Bench: regenerate Fig. 20 — the ablation study.

Paper: +16.5% latency without the multi-task scheduler, a further
+7.6% without the determiner.  Our scheduler's value shows most
clearly as quota protection (see the uneven-quota deviation block).
"""

from conftest import run_once

from repro.experiments.fig20_ablation import run, run_uneven_deviation


def test_fig20_ablation(benchmark):
    def both():
        return run(requests=6), run_uneven_deviation(requests=6)

    latency, deviation = run_once(benchmark, both)
    assert latency["no config determiner"] >= latency["BLESS"] * 0.97
    assert deviation["no multi-task scheduler"] >= deviation["BLESS"] * 0.8
    benchmark.extra_info["avg_latency_ms"] = {
        k: round(v, 2) for k, v in latency.items()
    }
    benchmark.extra_info["uneven_quota_deviation_ms"] = {
        k: round(v, 2) for k, v in deviation.items()
    }
