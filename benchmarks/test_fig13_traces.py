"""Bench: regenerate the workload-D (real-world trace) comparison.

Paper: with the dense Twitter trace BLESS cuts 18.4/20.5/7.3% vs
TEMPORAL/MIG/GSLICE; with the sparse Azure trace 49.3/41.2/32.1%.
Shape: BLESS wins on both; the sparse trace gives the bigger cut.
"""

from conftest import run_once

from repro.experiments.fig13_traces import run


def test_fig13_traces(benchmark):
    data = run_once(benchmark, run)
    for trace in ("twitter", "azure"):
        assert data[trace]["reduction_vs_TEMPORAL"] > 0
        assert data[trace]["reduction_vs_GSLICE"] > -0.05
    assert (
        data["azure"]["reduction_vs_GSLICE"]
        >= data["twitter"]["reduction_vs_GSLICE"] - 0.05
    )
    benchmark.extra_info["reductions"] = {
        trace: {
            k.replace("reduction_vs_", ""): f"{v:.1%}"
            for k, v in stats.items()
            if k.startswith("reduction")
        }
        for trace, stats in data.items()
    }
