"""Shared helpers for the per-figure benchmarks.

Each benchmark regenerates one paper table/figure via the corresponding
``repro.experiments`` module (small request counts for bounded runtime),
records the headline numbers in ``benchmark.extra_info``, and asserts
the paper's qualitative shape.  Run with::

    pytest benchmarks/ --benchmark-only
"""



def run_once(benchmark, fn, *args, **kwargs):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
