"""Bench: regenerate Fig. 12 — pair-wise latency charts under BLESS.

Shape: BLESS's per-app latencies track (and mostly beat) the ISO
targets across all seven Table-2 quota splits, moving toward the
origin as the load drops.
"""

from conftest import run_once

from repro.experiments.fig12_latency_chart import run


def test_fig12_latency_chart(benchmark):
    points = run_once(benchmark, run, model_a="R50", model_b="VGG",
                      load="C", requests=5)
    assert len(points) == 7
    beats_iso = sum(
        1
        for p in points
        if p["bless_a_ms"] <= p["iso_a_ms"] and p["bless_b_ms"] <= p["iso_b_ms"]
    )
    assert beats_iso >= 4  # most quota splits dominate ISO
    benchmark.extra_info["points"] = [
        {
            "quotas": f"({p['quota_a']:.2f},{p['quota_b']:.2f})",
            "bless": (round(p["bless_a_ms"], 1), round(p["bless_b_ms"], 1)),
            "iso": (round(p["iso_a_ms"], 1), round(p["iso_b_ms"], 1)),
        }
        for p in points
    ]
