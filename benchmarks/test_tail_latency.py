"""Bench: tail latencies (extension beyond the paper's averages).

Shape: BLESS's P99 must not exceed GSLICE's by more than a small
margin on the medium-load pair — bubble squeezing must not buy its
average with a heavier tail.
"""

from conftest import run_once

from repro.experiments.tail_latency import run_quick


def test_tail_latency(benchmark):
    data = run_once(benchmark, run_quick, requests=8)
    for scenario, systems in data.items():
        assert systems["BLESS"]["p99"] <= systems["GSLICE"]["p99"] * 1.25
    benchmark.extra_info["percentiles_ms"] = {
        scenario: {
            name: {k: round(v, 2) for k, v in stats.items()}
            for name, stats in systems.items()
        }
        for scenario, systems in data.items()
    }
