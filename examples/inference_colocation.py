#!/usr/bin/env python3
"""Multi-tenant inference serving: four models, uneven quotas.

The scenario of the paper's introduction: a provider packs several
lightweight inference services onto one A100, each sold a GPU quota
(10/20/30/40%).  We check the two promises a quota system must keep:

1. every app's latency must not exceed its quota-isolated (ISO) target;
2. idle capacity ("bubbles") should still be usable by whoever is busy.

Run:  python examples/inference_colocation.py
"""

from repro import (
    BlessRuntime,
    GSLICESystem,
    TemporalSystem,
    UnboundSystem,
    bind_load,
    check_admission,
    iso_targets_us,
    latency_deviation_us,
    multi_app_mix,
)


def main() -> None:
    apps = multi_app_mix(4)  # VGG/R50/R101/BERT at 10/20/30/40%
    report = check_admission(apps)
    print("admission:", "accepted" if report.accepted else report.errors)
    for app in apps:
        print(f"  {app.app_id:12s} quota {app.quota:4.0%}  "
              f"{app.num_compute_kernels} kernels  {app.memory_mb} MB")

    targets = iso_targets_us(bind_load(apps, "B", requests=6))

    print(f"\n{'system':9s} {'avg (ms)':>9s} {'deviation vs ISO (ms)':>22s}")
    for system in (TemporalSystem(), GSLICESystem(), UnboundSystem(), BlessRuntime()):
        result = system.serve(bind_load(apps, "B", requests=6))
        deviation = latency_deviation_us(result, targets)
        print(
            f"{system.name:9s} {result.mean_of_app_means() / 1000:9.2f} "
            f"{deviation / 1000:22.2f}"
        )

    print("\nper-app detail under BLESS (target = ISO latency at quota):")
    result = BlessRuntime().serve(bind_load(apps, "B", requests=6))
    for app in apps:
        achieved = result.mean_latency(app.app_id) / 1000
        target = targets[app.app_id] / 1000
        verdict = "kept" if achieved <= target * 1.02 else "missed"
        print(
            f"  {app.app_id:12s} quota {app.quota:4.0%}: "
            f"{achieved:6.2f} ms vs ISO {target:6.2f} ms  [{verdict}]"
        )


if __name__ == "__main__":
    main()
