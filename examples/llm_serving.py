#!/usr/bin/env python3
"""Dynamic applications: LLM serving via per-DAG variants (§6.10).

The paper's suggested extension for autoregressive models: treat each
forward-pass shape (bucketed prefill lengths, decode chunks) as a
distinct application DAG, profile each at deployment, and let BLESS
schedule them like any stationary app.  We co-locate the LLM variants
with a BERT inference service on one GPU.

Run:  python examples/llm_serving.py
"""

from repro import BlessRuntime, GSLICESystem, inference_app
from repro.dynamic import DynamicLLMApp, LLMSpec, route_requests, synthesize_requests, variant_mix
from repro.workloads.arrivals import TraceReplay
from repro.workloads.suite import WorkloadBinding


def main() -> None:
    llm = DynamicLLMApp(spec=LLMSpec(), quota=0.6)
    print("LLM variant menu (each profiled as its own application):")
    for variant_id, app in llm.variants.items():
        print(
            f"  {variant_id:22s} {app.num_compute_kernels:4d} kernels, "
            f"solo {app.solo_span_us / 1000:6.2f} ms"
        )

    requests = synthesize_requests(
        count=12, mean_interval_us=40_000.0, seed=4,
        prompt_range=(16, 512), decode_range=(8, 32),
    )
    mix = variant_mix(requests, llm)
    print(f"\n{len(requests)} user requests route to:")
    for variant_id, count in mix.items():
        print(f"  {variant_id:22s} x{count}")

    llm_bindings = route_requests(llm, requests)

    # Co-locate a BERT service with a 0.4 quota on the same GPU: the
    # LLM variants share the remaining 0.6 evenly.
    per_variant_quota = 0.6 / len(llm_bindings)
    bindings = [
        WorkloadBinding(
            app=b.app.with_quota(per_variant_quota, app_id=b.app.app_id),
            process_factory=b.process_factory,
        )
        for b in llm_bindings
    ]
    bert = inference_app("BERT").with_quota(0.4, app_id="bert-svc")
    bert_times = [i * 30_000.0 for i in range(10)]
    bindings.append(
        WorkloadBinding(
            app=bert,
            process_factory=lambda: TraceReplay(times_us=list(bert_times)),
        )
    )

    print(f"\n{'system':8s} {'LLM avg (ms)':>13s} {'BERT avg (ms)':>14s}")
    for system in (GSLICESystem(), BlessRuntime()):
        result = system.serve(
            [
                WorkloadBinding(app=b.app, process_factory=b.process_factory)
                for b in bindings
            ]
        )
        llm_ids = [b.app.app_id for b in bindings if b.app.app_id != "bert-svc"]
        llm_avg = sum(result.mean_latency(i) for i in llm_ids) / len(llm_ids)
        print(
            f"{system.name:8s} {llm_avg / 1000:13.2f} "
            f"{result.mean_latency('bert-svc') / 1000:14.2f}"
        )

    print(
        "\nBLESS lets short prefills and decode chunks slip into the "
        "bubbles of the long prefills and the BERT service, instead of "
        "idling inside static per-variant partitions."
    )


if __name__ == "__main__":
    main()
