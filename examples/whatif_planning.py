#!/usr/bin/env python3
"""Capacity planning with the what-if analyzer (no simulation needed).

A provider gets a tenancy request: "R50 must stay under 18 ms, VGG
under 28 ms — can they share a GPU, and at what quotas?"  The
WhatIfPlanner answers from the offline profiles alone, then we verify
the chosen plan with an actual BLESS serving run.

Run:  python examples/whatif_planning.py
"""

from repro import BlessRuntime, bind_load, inference_app
from repro.analysis import WhatIfPlanner


def main() -> None:
    planner = WhatIfPlanner()
    r50 = inference_app("R50")
    vgg = inference_app("VGG")
    budgets = {"R50": 18_000.0, "VGG": 28_000.0}

    print("per-app minimum quota for the latency budget:")
    for app, budget in ((r50, budgets["R50"]), (vgg, budgets["VGG"])):
        quota = planner.min_quota_for_budget(app, budget)
        print(f"  {app.name:8s} budget {budget / 1000:5.1f} ms -> quota >= {quota:.0%}")

    plans = planner.feasible_plans([r50, vgg], [budgets["R50"], budgets["VGG"]])
    print(f"\n{len(plans)} feasible quota assignments; a few of them:")
    for plan in plans[:: max(1, len(plans) // 5)][:5]:
        print("  " + plan.render(["R50", "VGG"]))

    chosen = planner.cheapest_plan([r50, vgg], [budgets["R50"], budgets["VGG"]])
    print(f"\nmost even feasible split: {chosen.render(['R50', 'VGG'])}")

    # Verify the analytic plan against an actual serving run.
    apps = [
        r50.with_quota(chosen.quotas[0], app_id="R50"),
        vgg.with_quota(chosen.quotas[1], app_id="VGG"),
    ]
    result = BlessRuntime().serve(bind_load(apps, "B", requests=8))
    print("\nverification under BLESS, workload B:")
    for app_id, budget in budgets.items():
        achieved = result.mean_latency(app_id)
        verdict = "OK" if achieved <= budget else "MISSED"
        print(
            f"  {app_id:8s} achieved {achieved / 1000:6.2f} ms "
            f"(budget {budget / 1000:5.1f}) [{verdict}]"
        )


if __name__ == "__main__":
    main()
