#!/usr/bin/env python3
"""Sharing a GPU between two training jobs (§6.3, Fig. 18(b)).

Two training applications (one iteration = one request) share the GPU
evenly.  We compare time slicing, MIG, unbounded sharing, Zico-style
tick-tock coordination, and BLESS.

Run:  python examples/training_sharing.py
"""

from repro import (
    BlessRuntime,
    MIGSystem,
    TemporalSystem,
    UnboundSystem,
    ZicoSystem,
    bind_load,
    training_pair,
)


def main() -> None:
    pair = training_pair("R50", "VGG")
    for app in pair:
        print(
            f"{app.app_id:14s} {app.num_compute_kernels} kernels/iteration, "
            f"solo iteration {app.solo_span_us / 1000:.1f} ms"
        )

    print(f"\n{'system':9s} {'avg iteration (ms)':>19s} {'utilization':>12s}")
    rows = {}
    for system in (
        TemporalSystem(),
        MIGSystem(),
        UnboundSystem(),
        ZicoSystem(),
        BlessRuntime(),
    ):
        result = system.serve(bind_load(pair, "C", requests=4))
        rows[system.name] = result.mean_of_app_means()
        print(
            f"{system.name:9s} {result.mean_of_app_means() / 1000:19.2f} "
            f"{result.utilization:11.1%}"
        )

    reduction = 1 - rows["BLESS"] / rows["TEMPORAL"]
    print(
        f"\nBLESS reduces the average training-iteration latency by "
        f"{reduction:.1%} vs time slicing by organising each round's "
        f"kernels into spatially-partitioned squads (paper: 26.5%)."
    )


if __name__ == "__main__":
    main()
