#!/usr/bin/env python3
"""Quickstart: co-locate two DNN inference services on one (simulated) GPU.

Deploys two ResNet50 instances with even 50/50 quotas, drives them with
the paper's medium load (workload B), and compares BLESS against the
quota-isolated baseline (ISO) and static MPS partitioning (GSLICE).

Run:  python examples/quickstart.py
"""

from repro import (
    BlessRuntime,
    GSLICESystem,
    ISOSystem,
    bind_load,
    symmetric_pair,
)


def main() -> None:
    # Two instances of the Table-1 ResNet50 inference app, each
    # provisioned half the GPU.
    apps = symmetric_pair("R50", quota_a=0.5, quota_b=0.5)
    print(f"deployed: {[a.app_id for a in apps]} (quota 50% each)")

    # Workload B: closed loop, think time = 2/3 of the solo latency.
    results = {}
    for system in (ISOSystem(), GSLICESystem(), BlessRuntime()):
        bindings = bind_load(apps, "B", requests=10)
        results[system.name] = system.serve(bindings)

    print(f"\n{'system':8s} {'avg latency':>12s} {'p95':>8s} {'utilization':>12s}")
    for name, result in results.items():
        print(
            f"{name:8s} {result.mean_of_app_means() / 1000:9.2f} ms "
            f"{result.percentile_latency(95) / 1000:6.2f} ms "
            f"{result.utilization:11.1%}"
        )

    bless = results["BLESS"].mean_of_app_means()
    gslice = results["GSLICE"].mean_of_app_means()
    print(
        f"\nBLESS reduces average latency by {1 - bless / gslice:.1%} vs "
        f"static MPS partitioning by squeezing GPU bubbles."
    )


if __name__ == "__main__":
    main()
