#!/usr/bin/env python3
"""Multi-GPU deployment with the central placement controller (§4.2.2).

Seven inference services with mixed quotas are placed across a pool of
three simulated A100s; each GPU runs its own BLESS runtime.  The
controller checks memory, quota headroom, and kernel-duration
compatibility before placing, exactly as the paper sketches for the
GPUlet-style multi-GPU setting.

The second half replays the same pool *online*: services arrive two
per epoch, and the orchestrator's admission ladder (place → degrade →
migrate → shed) turns worst-fit's batch failure into a clean
placement — arriving over time, every tenant finds a slot the
all-at-once packing could not.

Run:  python examples/multi_gpu_cluster.py
"""

from repro import bind_load, inference_app
from repro.cluster import (
    AppArrival,
    ClusterController,
    OnlineClusterController,
    PlacementError,
    PlacementPolicy,
)


def main() -> None:
    services = [
        ("R50", 0.50), ("VGG", 0.40), ("BERT", 0.60), ("R101", 0.30),
        ("NAS", 0.40), ("R50", 0.25), ("VGG", 0.30),
    ]
    apps = [
        inference_app(model).with_quota(quota, app_id=f"{model.lower()}-{i}")
        for i, (model, quota) in enumerate(services)
    ]
    total = sum(quota for _, quota in services)
    print(f"{len(apps)} services, total quota {total:.2f} GPUs, pool of 3 GPUs\n")

    for policy in (PlacementPolicy.BEST_FIT, PlacementPolicy.WORST_FIT):
        controller = ClusterController(num_gpus=3, policy=policy)
        print(f"policy = {policy.value}")
        try:
            result = controller.serve(bind_load(apps, "B", requests=4))
        except PlacementError as error:
            # Worst-fit spreads load so evenly that no single GPU
            # retains enough headroom for the last tenants — classic
            # bin-packing fragmentation.  Best-fit avoids it.
            print(controller.placer.utilization_summary())
            print(f"  placement failed: {error}\n")
            continue
        print(controller.placer.utilization_summary())
        print(
            f"  cluster avg latency {result.mean_latency_ms:.2f} ms, "
            f"mean GPU utilization {result.merged.utilization:.1%}"
        )
        for gpu, gpu_result in sorted(result.per_gpu.items()):
            print(
                f"  GPU{gpu}: {gpu_result.count()} requests, "
                f"avg {gpu_result.mean_of_app_means() / 1000:.2f} ms"
            )
        print()

    print(
        "Best-fit packs services tightly and placed everything; "
        "worst-fit fragmented the pool and had to reject a tenant — "
        "the conflict-avoidance the paper's central controller exists "
        "to manage.\n"
    )

    # The same services arriving online, two per epoch: the admission
    # ladder degrades or sheds instead of failing, and a migration can
    # defragment the pool between epochs (GPUs drain at boundaries).
    print("online, worst_fit + migration (two services arrive per epoch):")
    schedule = [
        AppArrival(binding=binding, arrive_epoch=index // 2)
        for index, binding in enumerate(bind_load(apps, "B", requests=4))
    ]
    controller = OnlineClusterController(
        num_gpus=3, policy=PlacementPolicy.WORST_FIT, migrate=True
    )
    result = controller.serve(schedule, jobs=2)
    stats = result.stats
    print(controller.placer.utilization_summary())
    print(
        f"  {stats.epochs} epochs: {stats.apps_admitted}/{stats.apps_arrived} "
        f"admitted, {stats.apps_degraded} degraded, {stats.apps_shed} shed, "
        f"{stats.migrations} migrations"
    )
    for app_id, quota in result.degraded_quotas.items():
        print(f"  {app_id} degraded to quota {quota:.0%}")
    print(
        f"  cluster avg latency {result.mean_latency_ms:.2f} ms, "
        f"utilization {result.merged.utilization:.1%} "
        f"over {result.merged.makespan_us / 1000:.0f} ms"
    )


if __name__ == "__main__":
    main()
