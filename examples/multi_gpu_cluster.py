#!/usr/bin/env python3
"""Multi-GPU deployment with the central placement controller (§4.2.2).

Seven inference services with mixed quotas are placed across a pool of
three simulated A100s; each GPU runs its own BLESS runtime.  The
controller checks memory, quota headroom, and kernel-duration
compatibility before placing, exactly as the paper sketches for the
GPUlet-style multi-GPU setting.

Run:  python examples/multi_gpu_cluster.py
"""

from repro import bind_load, inference_app
from repro.cluster import ClusterController, PlacementError, PlacementPolicy


def main() -> None:
    services = [
        ("R50", 0.50), ("VGG", 0.40), ("BERT", 0.60), ("R101", 0.30),
        ("NAS", 0.40), ("R50", 0.25), ("VGG", 0.30),
    ]
    apps = [
        inference_app(model).with_quota(quota, app_id=f"{model.lower()}-{i}")
        for i, (model, quota) in enumerate(services)
    ]
    total = sum(quota for _, quota in services)
    print(f"{len(apps)} services, total quota {total:.2f} GPUs, pool of 3 GPUs\n")

    for policy in (PlacementPolicy.BEST_FIT, PlacementPolicy.WORST_FIT):
        controller = ClusterController(num_gpus=3, policy=policy)
        print(f"policy = {policy.value}")
        try:
            result = controller.serve(bind_load(apps, "B", requests=4))
        except PlacementError as error:
            # Worst-fit spreads load so evenly that no single GPU
            # retains enough headroom for the last tenants — classic
            # bin-packing fragmentation.  Best-fit avoids it.
            print(controller.placer.utilization_summary())
            print(f"  placement failed: {error}\n")
            continue
        print(controller.placer.utilization_summary())
        print(
            f"  cluster avg latency {result.mean_latency_ms:.2f} ms, "
            f"mean GPU utilization {result.merged.utilization:.1%}"
        )
        for gpu, gpu_result in sorted(result.per_gpu.items()):
            print(
                f"  GPU{gpu}: {gpu_result.count()} requests, "
                f"avg {gpu_result.mean_of_app_means() / 1000:.2f} ms"
            )
        print()

    print(
        "Best-fit packs services tightly and placed everything; "
        "worst-fit fragmented the pool and had to reject a tenant — "
        "the conflict-avoidance the paper's central controller exists "
        "to manage."
    )


if __name__ == "__main__":
    main()
