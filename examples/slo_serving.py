#!/usr/bin/env python3
"""Serving with explicit SLO targets (§6.5).

BLESS guarantees QoS targets natively: the scheduler paces each
application against its target instead of its quota-isolated latency.
A service with a loose SLO gracefully yields GPU time to one with a
tight SLO — without either being starved.

Run:  python examples/slo_serving.py
"""

from repro import (
    BlessConfig,
    BlessRuntime,
    GSLICESystem,
    UnboundSystem,
    bind_load,
    inference_app,
    qos_violation_rate,
    solo_latency_us,
)


def main() -> None:
    # Two services on even 50% quotas, but with asymmetric SLOs:
    # the R50 service promises 1.2x its isolated latency; the VGG
    # service is best-effort-ish at 3.0x.
    apps = [
        inference_app("R50").with_quota(0.5, app_id="r50-tight"),
        inference_app("VGG").with_quota(0.5, app_id="vgg-loose"),
    ]
    targets = {
        "r50-tight": 1.2 * solo_latency_us(apps[0], 0.5),
        "vgg-loose": 3.0 * solo_latency_us(apps[1], 0.5),
    }
    print("SLO targets:")
    for app_id, target in targets.items():
        print(f"  {app_id:10s} {target / 1000:6.2f} ms")

    bless = BlessRuntime(config=BlessConfig(slo_targets_us=targets))
    systems = {"UNBOUND": UnboundSystem(), "GSLICE": GSLICESystem(), "BLESS": bless}

    print(f"\n{'system':8s} {'violations':>11s} {'r50-tight':>10s} {'vgg-loose':>10s}")
    for name, system in systems.items():
        result = system.serve(bind_load(apps, "B", requests=12))
        rate = qos_violation_rate(result, targets)
        print(
            f"{name:8s} {rate:10.1%} "
            f"{result.mean_latency('r50-tight') / 1000:8.2f}ms "
            f"{result.mean_latency('vgg-loose') / 1000:8.2f}ms"
        )

    print(
        "\nBLESS meets both targets by feeding the tight-SLO service "
        "first whenever its deadline is at risk (paper: 0.6% violations "
        "vs 38.8% / 50.1% for UNBOUND / GSLICE)."
    )


if __name__ == "__main__":
    main()
