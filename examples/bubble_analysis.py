#!/usr/bin/env python3
"""Where do GPU bubbles come from, and who squeezes them? (§1, §3.2)

Runs the same low-load workload under GSLICE, UNBOUND and BLESS with
timeline recording on, classifies every unit of GPU capacity (busy /
intra-request bubble / inter-request bubble / vacant), and renders the
execution timeline — the analysis behind the paper's Fig. 1.

Run:  python examples/bubble_analysis.py
"""

from repro import BlessRuntime, GSLICESystem, UnboundSystem, bind_load, symmetric_pair
from repro.analysis import analyze_run, compare_taxonomies
from repro.viz.timeline import render_timeline


def main() -> None:
    taxonomies = {}
    latencies = {}
    bless_timeline = None

    for system in (
        GSLICESystem(record_timeline=True),
        UnboundSystem(record_timeline=True),
        BlessRuntime(record_timeline=True),
    ):
        apps = symmetric_pair("R50")
        result = system.serve(bind_load(apps, "C", requests=5))
        taxonomies[system.name] = analyze_run(
            system.engine.timeline, system.inflight_windows, system.engine.now
        )
        latencies[system.name] = result.mean_of_app_means() / 1000.0
        if system.name == "BLESS":
            bless_timeline = system.engine.timeline

    print("capacity accounting over the whole run (SM-fraction x ms):\n")
    for line in compare_taxonomies(taxonomies):
        print(line)

    print("\naverage latency:")
    for name, value in latencies.items():
        print(f"  {name:8s} {value:6.2f} ms")

    window_end = min(40_000.0, bless_timeline[-1].end)
    print("\nBLESS execution timeline (first 40 ms):")
    view = render_timeline(bless_timeline, 0.0, window_end, width=90)
    print(view.render())

    bless = taxonomies["BLESS"]
    gslice = taxonomies["GSLICE"]
    print(
        f"\nBLESS leaves {bless.bubble_ratio:.1%} of in-flight capacity "
        f"idle vs {gslice.bubble_ratio:.1%} under GSLICE — the squeezed "
        f"bubbles are exactly the latency reduction above."
    )


if __name__ == "__main__":
    main()
