#!/usr/bin/env python3
"""Replaying real-world-shaped traces (workload D, §6.3).

Generates synthetic traces with the shape of the Twitter 2018 stream
(dense, diurnal) and the Azure Functions trace (sparse, heavy-tailed),
replays them over several model pairs, and shows where BLESS's bubble
squeezing pays off most: the sparser the trace, the bigger the gain
over static partitioning.

Run:  python examples/trace_replay.py
"""

from repro.experiments.fig13_traces import run
from repro.workloads.traces import azure_trace, mean_interarrival, twitter_trace


def main() -> None:
    # Peek at the two trace generators.
    demo_twitter = twitter_trace(1_000_000, 20_000, seed=1)
    demo_azure = azure_trace(1_000_000, 20_000, seed=1)
    print("trace shapes over a 1s window (target mean gap 20 ms):")
    print(
        f"  twitter: {len(demo_twitter):3d} arrivals, "
        f"mean gap {mean_interarrival(demo_twitter) / 1000:5.1f} ms (dense, diurnal)"
    )
    print(
        f"  azure:   {len(demo_azure):3d} arrivals, "
        f"mean gap {mean_interarrival(demo_azure) / 1000:5.1f} ms (sparse, bursty)"
    )

    # Replay both traces over four model pairs (the workload-D setup).
    print("\nreplaying traces over 4 mutual model pairs (this takes a minute)...")
    data = run()
    print(f"\n{'trace':8s} {'TEMPORAL':>9s} {'MIG':>8s} {'GSLICE':>8s} {'BLESS':>8s}")
    for trace, stats in data.items():
        print(
            f"{trace:8s} {stats['TEMPORAL']:9.1f} {stats['MIG']:8.1f} "
            f"{stats['GSLICE']:8.1f} {stats['BLESS']:8.1f}   (ms)"
        )
    print("\nBLESS reduction vs GSLICE:")
    for trace, stats in data.items():
        print(f"  {trace:8s} {stats['reduction_vs_GSLICE']:6.1%}")
    print(
        "\nThe sparser Azure-style trace leaves far more GPU bubbles "
        "between invocations, which BLESS converts into latency "
        "(paper: 32.1% vs GSLICE on Azure, 7.3% on Twitter)."
    )


if __name__ == "__main__":
    main()
