#!/usr/bin/env python3
"""Run the benchmark suite and append a dated performance snapshot.

Executes ``pytest benchmarks/`` with ``pytest-benchmark``'s JSON output,
then distils each benchmark into a compact record — wall-time stats plus
any ``extra_info`` the benchmark attached (the perf benchmarks report
their measured speedup ratios there) — and appends the batch to
``BENCH_<date>.json`` in the output directory.  Appending (rather than
overwriting) builds a same-day trajectory: run it before and after a
change and diff the two entries.

Usage:
    python tools/bench_trajectory.py [--output-dir DIR] [-k EXPR]

Each entry records the git revision it measured, and — unless
``REPRO_CATALOG=off`` — is also ingested into the sqlite results
catalog, so ``repro results compare`` and ``tools/perf_gate.py`` can
diff revisions without re-running anything.  The pytest subprocess runs
with ``PYTHONHASHSEED=0`` so hash-order effects never masquerade as
perf swings.

CI wires this into the bench-smoke and perf-gate jobs and uploads the
snapshot as an artifact, so every push leaves a queryable perf trail.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def run_benchmarks(select: str, pytest_args: list) -> dict:
    """Run the suite, return the parsed pytest-benchmark JSON."""
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "benchmarks.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            "benchmarks/",
            "-q",
            "--benchmark-disable-gc",
            f"--benchmark-json={raw_path}",
        ]
        if select:
            cmd += ["-k", select]
        cmd += pytest_args
        # Pin hash randomization: benchmark comparisons across runs
        # must not see dict/set iteration-order noise.  The src/ dir on
        # PYTHONPATH keeps this runnable from a bare checkout (CI pip
        # installs the package, but the gate must not require that).
        path_parts = [str(REPO_ROOT / "src"), os.environ.get("PYTHONPATH", "")]
        env = {
            **os.environ,
            "PYTHONHASHSEED": "0",
            "PYTHONPATH": os.pathsep.join(p for p in path_parts if p),
        }
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
        if proc.returncode != 0:
            raise SystemExit(f"benchmark run failed (exit {proc.returncode})")
        return json.loads(raw_path.read_text())


def distil(raw: dict) -> dict:
    """Reduce pytest-benchmark output to one trajectory entry."""
    from repro.catalog import current_git_rev

    entry = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "git_rev": current_git_rev(REPO_ROOT),
        "machine": raw.get("machine_info", {}).get("node", ""),
        "python": raw.get("machine_info", {}).get("python_version", ""),
        "benchmarks": [],
    }
    for bench in raw.get("benchmarks", []):
        stats = bench.get("stats", {})
        entry["benchmarks"].append(
            {
                "name": bench.get("name", ""),
                "wall_s": {
                    "min": stats.get("min"),
                    "mean": stats.get("mean"),
                    "max": stats.get("max"),
                    "rounds": stats.get("rounds"),
                },
                # Speedup ratios etc. reported by the benchmark itself.
                "extra_info": bench.get("extra_info", {}),
            }
        )
    return entry


def append_snapshot(entry: dict, output_dir: Path) -> Path:
    """Append ``entry`` to today's ``BENCH_<date>.json`` trajectory."""
    output_dir.mkdir(parents=True, exist_ok=True)
    date = datetime.date.today().isoformat()
    path = output_dir / f"BENCH_{date}.json"
    history = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except json.JSONDecodeError:
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(entry)
    path.write_text(json.dumps(history, indent=2) + "\n")
    return path


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory receiving BENCH_<date>.json (default: repo root)",
    )
    parser.add_argument(
        "-k",
        "--select",
        default="",
        help="pytest -k expression to run a subset of the benchmarks",
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="extra arguments forwarded to pytest verbatim",
    )
    args = parser.parse_args(argv)

    raw = run_benchmarks(args.select, args.pytest_args)
    entry = distil(raw)
    path = append_snapshot(entry, args.output_dir)
    names = ", ".join(b["name"] for b in entry["benchmarks"]) or "none"
    print(f"appended {len(entry['benchmarks'])} benchmark(s) [{names}] to {path}")

    # Mirror the snapshot into the results catalog (REPRO_CATALOG=off
    # opts out) so perf trajectories are queryable next to experiments.
    try:
        from repro.catalog import catalog_enabled, ingest_bench_entry

        if catalog_enabled():
            count = ingest_bench_entry(entry, source=str(path))
            from repro.catalog.ingest import resolve_catalog_path

            print(f"ingested {count} benchmark run(s) into "
                  f"{resolve_catalog_path()} @ {entry['git_rev'][:12]}")
    except Exception as exc:  # catalog trouble must not fail the bench run
        print(f"warning: catalog ingest skipped: {exc}", file=sys.stderr)


if __name__ == "__main__":
    main()
