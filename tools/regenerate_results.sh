#!/usr/bin/env bash
# Regenerate every experiment output under results/.
# Usage: bash tools/regenerate_results.sh  (takes ~10 minutes)
set -u
cd "$(dirname "$0")/.."
mkdir -p results
status=0
for exp in $(python -c "from repro.experiments import ALL_EXPERIMENTS; print(' '.join(ALL_EXPERIMENTS))"); do
    echo "=== ${exp} ==="
    if python -m "repro.experiments.${exp}" > "results/${exp}.txt" 2>&1; then
        echo "ok"
    else
        echo "FAILED (see results/${exp}.txt)"
        status=1
    fi
done
exit "${status}"
