#!/usr/bin/env python3
"""CI perf-regression gate over the sqlite results catalog.

Intended call sequence (the ``perf-gate`` job in
``.github/workflows/ci.yml``):

1. restore the baseline catalog from the main-branch cache (or seed it
   from the committed ``BENCH_*.json`` snapshots via ``--ingest-bench``);
2. run the bench suite through ``tools/bench_trajectory.py`` so the
   candidate revision's runs land in the same catalog;
3. run this gate: it resolves the baseline revision (``--baseline-rev``,
   default: the newest catalog revision that is *not* the candidate),
   compares metric **medians** — the interleaved-median discipline, not
   single runs — and exits non-zero past the thresholds.

Thresholds are signed fractions whose sign encodes the bad direction
(see ``repro results compare --help``); defaults: throughput −5%,
p99 latency +10%, benchmark speedup ratios −25%.  Wall-clock seconds
are deliberately *not* gated by default — the committed baseline may
come from different hardware; the speedup ratios are measured
baseline-vs-optimized on one box and survive the machine change.

A missing baseline (first run on a fresh cache) passes with a warning
unless ``--require-baseline`` is set.

Usage:
    python tools/perf_gate.py [--db PATH] [--ingest-bench GLOB ...]
        [--baseline-rev REV] [--current-rev REV]
        [--threshold METRIC=FRAC ...] [--require-baseline]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.catalog import (  # noqa: E402  (path bootstrap above)
    ResultsCatalog,
    current_git_rev,
    evaluate,
    format_comparison_table,
    parse_thresholds,
)
from repro.catalog.ingest import ingest_bench_file, resolve_catalog_path  # noqa: E402


def pick_baseline_rev(catalog: ResultsCatalog, current: str) -> str:
    """The newest catalog revision that is not the candidate."""
    for rev, _count in catalog.revisions():
        if rev != current and rev != "unknown":
            return rev
    raise LookupError(
        "no baseline revision in the catalog besides the candidate"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--db",
        help="catalog sqlite file (default: REPRO_CATALOG, then "
        "results/catalog.sqlite)",
    )
    parser.add_argument(
        "--ingest-bench",
        nargs="*",
        default=None,
        metavar="PATH",
        help="BENCH_*.json snapshots to ingest before gating (the "
        "committed baseline); defaults to BENCH_*.json in the repo root",
    )
    parser.add_argument(
        "--baseline-rev",
        help="baseline revision (default: newest non-candidate revision)",
    )
    parser.add_argument(
        "--current-rev",
        help="candidate revision (default: the current checkout's HEAD)",
    )
    parser.add_argument(
        "--threshold",
        action="append",
        metavar="METRIC=FRAC",
        help="signed gate fraction, sign = bad direction "
        "(default: throughput_qps=-0.05 p99_latency_us=0.10 speedup=-0.25)",
    )
    parser.add_argument(
        "--require-baseline",
        action="store_true",
        help="fail (exit 2) when no baseline revision exists, instead of "
        "passing with a warning",
    )
    args = parser.parse_args(argv)

    path = resolve_catalog_path(args.db)
    if path is None:
        print("perf-gate: catalog disabled (REPRO_CATALOG=off); nothing to gate")
        return 0
    catalog = ResultsCatalog(path)

    bench_files = args.ingest_bench
    if bench_files is None:
        bench_files = sorted(str(p) for p in REPO_ROOT.glob("BENCH_*.json"))
    for bench in bench_files:
        count = ingest_bench_file(bench, catalog)
        print(f"perf-gate: ingested {count} benchmark run(s) from {bench}")

    current = args.current_rev or current_git_rev(REPO_ROOT)
    try:
        current = catalog.resolve_rev(current)
    except ValueError:
        print(
            f"perf-gate: candidate revision {current[:12]} has no runs in "
            f"{path} — run tools/bench_trajectory.py (or an experiment) "
            "first",
            file=sys.stderr,
        )
        return 2

    if args.baseline_rev:
        try:
            baseline = catalog.resolve_rev(args.baseline_rev)
        except ValueError as error:
            print(f"perf-gate: {error}", file=sys.stderr)
            return 2
    else:
        try:
            baseline = pick_baseline_rev(catalog, current)
        except LookupError as error:
            message = f"perf-gate: {error}"
            if args.require_baseline:
                print(message, file=sys.stderr)
                return 2
            print(f"{message}; passing (first run seeds the cache)")
            return 0

    thresholds = parse_thresholds(args.threshold or [])
    comparisons = catalog.compare(baseline, current)
    violations, checked = evaluate(comparisons, thresholds)

    print(
        f"perf-gate: baseline {baseline[:12]} vs candidate {current[:12]} "
        f"({len(comparisons)} shared metrics, {len(checked)} gated)"
    )
    if comparisons:
        print(format_comparison_table(comparisons, thresholds, violations))
    if not checked:
        print(
            "perf-gate: warning — no gated metrics overlap the two revisions "
            f"(thresholds: {thresholds})"
        )
    if violations:
        print(f"\nperf-gate: FAIL — {len(violations)} regression(s):",
              file=sys.stderr)
        for violation in violations:
            print(f"  {violation.describe()}", file=sys.stderr)
        return 1
    print("\nperf-gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
