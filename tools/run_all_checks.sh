#!/usr/bin/env bash
# The full verification pipeline: install, tests, benches, examples.
set -u
cd "$(dirname "$0")/.."
PIP_NO_BUILD_ISOLATION=0 pip install -e . || exit 1
python -m pytest tests/ || exit 1
python -m pytest benchmarks/ --benchmark-only || exit 1
for example in examples/*.py; do
    echo "=== ${example} ==="
    python "${example}" || exit 1
done
