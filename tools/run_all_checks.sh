#!/usr/bin/env bash
# The full verification pipeline: install, lint, tests, benches, examples.
#
# Safe to run from CI or locally with identical behavior: every step is
# recorded, the editable install is skipped when the package already
# imports, optional tools (ruff) are skipped when absent, and the exit
# code is non-zero iff any executed step failed.
set -euo pipefail
cd "$(dirname "$0")/.."

declare -a STEP_NAMES=()
declare -a STEP_RESULTS=()
FAILED=0

run_step() {
    local name="$1"
    shift
    echo "=== ${name} ==="
    local status="ok"
    if ! "$@"; then
        status="FAIL"
        FAILED=1
    fi
    STEP_NAMES+=("${name}")
    STEP_RESULTS+=("${status}")
}

skip_step() {
    local name="$1" reason="$2"
    echo "=== ${name} (skipped: ${reason}) ==="
    STEP_NAMES+=("${name}")
    STEP_RESULTS+=("skipped: ${reason}")
}

# 1. Editable install — only when the package is not already importable
#    (CI installs it in its own step; local dev environments keep it).
if python -c "import repro" >/dev/null 2>&1; then
    skip_step "pip install -e ." "repro already importable"
else
    run_step "pip install -e ." pip install -e ".[test]"
fi

# 2. Lint (optional locally, mandatory in CI where ruff is installed).
if command -v ruff >/dev/null 2>&1; then
    run_step "ruff check" ruff check src tests benchmarks
else
    skip_step "ruff check" "ruff not installed"
fi

# 3. Tier-1 test suite.
run_step "pytest tests/" python -m pytest tests/ -q

# 4. Paper-figure benchmarks.
run_step "pytest benchmarks/" python -m pytest benchmarks/ --benchmark-only -q

# 5. Examples run end to end.
for example in examples/*.py; do
    run_step "example ${example}" python "${example}"
done

echo
echo "=== summary ==="
for i in "${!STEP_NAMES[@]}"; do
    printf '%-28s %s\n' "${STEP_NAMES[$i]}" "${STEP_RESULTS[$i]}"
done

exit "${FAILED}"
