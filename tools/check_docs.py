#!/usr/bin/env python3
"""Check markdown docs for broken relative links and anchors.

Scans every ``*.md`` under the repo root and ``docs/`` and verifies:

* relative links ``[text](path)`` point at files that exist;
* fragment links ``[text](path#anchor)`` (and in-page ``[t](#anchor)``)
  resolve to a heading in the target file, using GitHub's slug rules
  (lowercase, spaces to dashes, punctuation stripped, ``-1`` suffixes
  for duplicates);
* reference-style definitions ``[label]: path`` resolve the same way;
* every public module under ``src/repro/`` is mentioned in at least
  one ``docs/*.md`` file — by dotted path (``repro.cluster.placement``)
  or by source path (``cluster/placement.py``) — so new subsystems
  cannot land undocumented.  ``_private.py`` modules, ``__init__.py``
  re-export shims, and the ``MODULE_ALLOWLIST`` below are exempt.

External links (``http(s)://``, ``mailto:``) are not fetched.  Exits
non-zero listing every broken link — this is the CI docs gate
(``.github/workflows/ci.yml``).

Usage: python tools/check_docs.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Set

# [text](target) — skip images' leading "!" separately; images use the
# same path rules so they are checked too.
_INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REF_DEF = re.compile(r"^\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_HEADING = re.compile(r"^(#{1,6})\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)
_SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str, seen: Dict[str, int]) -> str:
    """GitHub's anchor slug for a heading text."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # strip code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    slug = text.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def anchors_of(path: Path, cache: Dict[Path, Set[str]]) -> Set[str]:
    cached = cache.get(path)
    if cached is not None:
        return cached
    text = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    seen: Dict[str, int] = {}
    slugs = {github_slug(m.group(2), seen) for m in _HEADING.finditer(text)}
    cache[path] = slugs
    return slugs


def markdown_files(root: Path) -> List[Path]:
    files = sorted(root.glob("*.md")) + sorted((root / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


#: Public modules that need no docs mention: experiment drivers are
#: catalogued per figure/table in EXPERIMENTS.md rather than per file,
#: and conftest-style plumbing has no API surface.
MODULE_ALLOWLIST = (
    "repro.experiments.",  # prefix: per-figure drivers (EXPERIMENTS.md)
)


def public_modules(root: Path) -> List[str]:
    """Dotted names of every public module under ``src/repro/``."""
    src = root / "src" / "repro"
    modules = []
    for path in sorted(src.rglob("*.py")):
        if path.name.startswith("_"):
            continue  # __init__, __main__, _private helpers
        dotted = "repro." + ".".join(
            path.relative_to(src).with_suffix("").parts
        )
        if any(
            dotted == entry or (entry.endswith(".") and dotted.startswith(entry))
            for entry in MODULE_ALLOWLIST
        ):
            continue
        modules.append(dotted)
    return modules


def check_module_coverage(root: Path) -> List[str]:
    """Every public ``src/repro`` module must appear in some docs page."""
    docs = sorted((root / "docs").glob("*.md"))
    if not docs:
        return []
    corpus = "\n".join(d.read_text(encoding="utf-8") for d in docs)
    errors = []
    for dotted in public_modules(root):
        # repro.cluster.placement matches either the dotted path or the
        # cluster/placement.py source-path spelling.
        tail = dotted.split(".", 1)[1]
        as_path = tail.replace(".", "/") + ".py"
        if dotted not in corpus and as_path not in corpus:
            errors.append(
                f"docs/: public module {dotted} ({as_path}) is not "
                f"mentioned in any docs/*.md page"
            )
    return errors


def check(root: Path) -> List[str]:
    errors: List[str] = []
    anchor_cache: Dict[Path, Set[str]] = {}
    for md in markdown_files(root):
        text = _CODE_FENCE.sub("", md.read_text(encoding="utf-8"))
        targets = [m.group(1) for m in _INLINE_LINK.finditer(text)]
        targets += [m.group(1) for m in _REF_DEF.finditer(text)]
        for target in targets:
            if target.startswith(_SKIP_SCHEMES) or target.startswith("<"):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = (md.parent / path_part).resolve()
                if not resolved.exists():
                    errors.append(f"{md.relative_to(root)}: broken link -> {target}")
                    continue
            else:
                resolved = md.resolve()
            if fragment:
                if resolved.suffix != ".md" or not resolved.is_file():
                    continue  # anchors into non-markdown are not checked
                if fragment.lower() not in anchors_of(resolved, anchor_cache):
                    errors.append(
                        f"{md.relative_to(root)}: broken anchor -> {target}"
                    )
    errors.extend(check_module_coverage(root))
    return errors


def main(argv: List[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parents[1]
    errors = check(root)
    checked = len(markdown_files(root))
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print(f"\n{len(errors)} broken link(s) across {checked} files", file=sys.stderr)
        return 1
    print(f"docs OK: {checked} markdown files, all relative links and anchors resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
