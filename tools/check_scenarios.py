#!/usr/bin/env python3
"""Validate every committed scenario document.

For each spec file in the scenario zoo (``src/repro/scenarios/zoo/``)
— plus any extra paths passed on the command line — this:

* parses the document against the pinned schema version;
* resolves every named component of every sweep point (apps, arrival
  binders, fault plans, SLO builders, systems, placement policies),
  building the workload bindings without running any simulation;
* round-trips the spec (``load -> to_dict -> from_dict -> dumps``) and
  checks the canonical serialization is stable.

A zoo file that names a missing component, passes bad kwargs, or
drifts from the schema fails here — in the docs/lint CI job — instead
of halfway into someone's run.

Usage: python tools/check_scenarios.py [spec.yaml ...]
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))


def check(paths: List[Path]) -> List[str]:
    from repro.scenarios import (
        ScenarioError,
        dumps,
        from_dict,
        load_scenario,
        resolve_scenario,
    )

    errors: List[str] = []
    for path in paths:
        label = path.relative_to(ROOT) if path.is_relative_to(ROOT) else path
        try:
            spec = load_scenario(path)
        except ScenarioError as error:
            errors.append(f"{label}: {error}")
            continue
        if spec.name != path.stem:
            errors.append(
                f"{label}: spec name {spec.name!r} must match the file "
                f"stem {path.stem!r} (zoo lookup is by stem)"
            )
        try:
            summary = resolve_scenario(spec)
        except ScenarioError as error:
            errors.append(f"{label}: does not resolve: {error}")
            continue
        if dumps(from_dict(spec.to_dict())) != dumps(spec):
            errors.append(f"{label}: canonical serialization is not stable")
            continue
        print(
            f"  {label}: ok ({summary['points']} point(s), "
            f"{summary['cells']} cell(s))"
        )
    return errors


def main(argv: List[str]) -> int:
    from repro.scenarios import zoo_dir

    paths = [Path(arg).resolve() for arg in argv[1:]]
    if not paths:
        paths = sorted(
            path
            for path in zoo_dir().iterdir()
            if path.suffix.lower() in (".yaml", ".yml", ".json")
        )
    if not paths:
        print("no scenario documents found", file=sys.stderr)
        return 1
    errors = check(paths)
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print(f"\n{len(errors)} invalid scenario(s)", file=sys.stderr)
        return 1
    print(f"scenarios OK: {len(paths)} document(s) parse, resolve, round-trip")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
