"""SLO classes and per-app policies for the serving gateway.

Two priority classes (Tally's scheduling contract):

* ``latency_critical`` — carries a deadline budget; the gateway tracks
  attainment and, on BLESS with preemption enabled, an arriving
  latency-critical request interrupts a running best-effort squad at
  the next squad boundary;
* ``best_effort`` — no deadline pressure; preemptible.

Everything here is a frozen, picklable dataclass so an
:class:`SLOSpec` can ride through ``system_kwargs`` into pool workers
unchanged (the cluster controller fans GPUs out over a process pool).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

LATENCY_CRITICAL = "latency_critical"
BEST_EFFORT = "best_effort"
SLO_CLASSES: Tuple[str, ...] = (LATENCY_CRITICAL, BEST_EFFORT)

#: Deadline budget as a multiple of the app's estimated solo latency
#: when no explicit ``deadline_us`` is given.
DEFAULT_DEADLINE_FACTOR = 3.0

_ALIASES = {
    "lc": LATENCY_CRITICAL,
    "latency_critical": LATENCY_CRITICAL,
    "be": BEST_EFFORT,
    "best_effort": BEST_EFFORT,
}


@dataclass(frozen=True)
class SLOPolicy:
    """One application's SLO contract at the gateway."""

    slo_class: str = BEST_EFFORT
    # Deadline budget = factor x estimated solo latency, unless an
    # absolute ``deadline_us`` budget overrides it.
    deadline_factor: float = DEFAULT_DEADLINE_FACTOR
    deadline_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.slo_class not in SLO_CLASSES:
            raise ValueError(
                f"slo_class must be one of {SLO_CLASSES}, got {self.slo_class!r}"
            )
        if self.deadline_factor <= 0:
            raise ValueError("deadline_factor must be positive")
        if self.deadline_us is not None and self.deadline_us <= 0:
            raise ValueError("deadline_us must be positive")


@dataclass(frozen=True)
class SLOSpec:
    """Gateway configuration: per-app policies + the admission ladder.

    ``policies`` maps app_ids to their contracts; unknown apps fall
    back to ``default_policy`` (best-effort).  Admission control reuses
    the degrade→shed ladder shape of the cluster controller at request
    granularity: a request whose client backlog has reached
    ``max_backlog`` is first admitted *degraded* — its deadline budget
    stretched by ``1/factor`` per rung — and shed outright once every
    rung is exhausted.  (The ladder's migrate rung lives at cluster
    scope, where whole applications move between GPUs at epoch
    boundaries; a single-GPU gateway has nowhere to migrate to.)
    """

    policies: Mapping[str, SLOPolicy] = field(default_factory=dict)
    # Client backlog (queued + active) at which admission degrades.
    max_backlog: int = 4
    # Deadline-stretch rungs; mirrors the cluster quota ladder.
    degrade_factors: Tuple[float, ...] = (0.75, 0.5)
    # Squad-boundary preemption of best-effort work on LC admission.
    preempt: bool = True
    default_policy: SLOPolicy = field(default_factory=SLOPolicy)

    def __post_init__(self) -> None:
        if self.max_backlog < 1:
            raise ValueError("max_backlog must be >= 1")
        for factor in self.degrade_factors:
            if not 0.0 < factor <= 1.0:
                raise ValueError("degrade factors must be in (0, 1]")
        object.__setattr__(self, "policies", dict(self.policies))
        object.__setattr__(
            self, "degrade_factors", tuple(self.degrade_factors)
        )

    def policy_for(self, app_id: str) -> SLOPolicy:
        return self.policies.get(app_id, self.default_policy)

    def slo_class(self, app_id: str) -> str:
        return self.policy_for(app_id).slo_class


def parse_slo_mix(text: str, app_ids: Sequence[str]) -> SLOSpec:
    """Build an :class:`SLOSpec` from a CLI ``--slo-mix`` string.

    Comma-separated class tokens in app order, cycled when shorter than
    the app list: ``lc,be`` marks app 0 latency-critical and app 1
    best-effort.  A token may carry a deadline factor after a colon —
    ``lc:2.0`` gives that app a 2x-solo deadline budget.
    """
    tokens = [token.strip() for token in text.split(",") if token.strip()]
    if not tokens:
        raise ValueError("empty --slo-mix")
    policies: Dict[str, SLOPolicy] = {}
    for index, app_id in enumerate(app_ids):
        token = tokens[index % len(tokens)]
        name, _, factor_text = token.partition(":")
        slo_class = _ALIASES.get(name.lower())
        if slo_class is None:
            raise ValueError(
                f"unknown SLO class {name!r} (use lc/be or the full names)"
            )
        factor = float(factor_text) if factor_text else DEFAULT_DEADLINE_FACTOR
        policies[app_id] = SLOPolicy(slo_class=slo_class, deadline_factor=factor)
    return SLOSpec(policies=policies)


def check_slo_accounting(
    extras: Mapping[str, float],
    offered: Optional[Mapping[str, float]] = None,
) -> Dict[str, Dict[str, float]]:
    """Per-class conservation check over a result's ``slo_*`` extras.

    For each class with any arrivals, verifies
    ``completed + shed_admission + shed_fault == arrived`` and returns
    the per-class tallies (including the residual under ``"leak"``).
    Raises ``AssertionError`` on a violated class, naming the counts —
    the invariant the cluster controller and the tests lean on.

    At cluster scope the ladder can refuse whole applications before
    any request reaches a gateway; those offered requests land in
    ``cluster_requests_shed_<class>`` (disjoint from the gateway's
    ``shed_admission`` by construction — an app is either placed or
    refused, never both).  Pass ``offered`` (class → total offered
    requests, computed from the bindings) to additionally verify
    ``arrived + shed_cluster == offered`` per class — every offered
    request is accounted exactly once across the gateway and the
    ladder.
    """
    report: Dict[str, Dict[str, float]] = {}
    for cls in SLO_CLASSES:
        arrived = float(extras.get(f"slo_arrived_{cls}", 0.0))
        shed_cluster = float(extras.get(f"cluster_requests_shed_{cls}", 0.0))
        if arrived == 0.0 and shed_cluster == 0.0:
            continue
        completed = float(extras.get(f"slo_completed_{cls}", 0.0))
        shed_admission = float(extras.get(f"slo_shed_admission_{cls}", 0.0))
        shed_fault = float(extras.get(f"slo_shed_fault_{cls}", 0.0))
        leak = arrived - completed - shed_admission - shed_fault
        report[cls] = {
            "arrived": arrived,
            "completed": completed,
            "shed_admission": shed_admission,
            "shed_fault": shed_fault,
            "shed_cluster": shed_cluster,
            "leak": leak,
        }
        if leak != 0.0:
            raise AssertionError(
                f"SLO accounting leak for {cls}: arrived={arrived} != "
                f"completed={completed} + shed_admission={shed_admission} "
                f"+ shed_fault={shed_fault}"
            )
        if offered is not None:
            expected = float(offered.get(cls, 0.0))
            report[cls]["offered"] = expected
            if arrived + shed_cluster != expected:
                raise AssertionError(
                    f"SLO offered-load leak for {cls}: "
                    f"gateway arrived={arrived} + cluster shed="
                    f"{shed_cluster} != offered={expected}"
                )
    return report
