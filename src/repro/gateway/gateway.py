"""The serving gateway: streaming admission, deadlines, accounting.

One :class:`ServingGateway` is built per ``serve()`` by the shared
harness when an :class:`~repro.gateway.slo.SLOSpec` is attached.  It
sees every request the (deterministically replayed) arrival processes
push, runs the admission ladder, stamps admitted requests with an
absolute deadline, and keeps the per-class additive counters the SLO
report derives attainment from.  All counters are plain sums, so
cluster/epoch merges (:meth:`ServingResult.merge`) aggregate them
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..apps.application import Application
from ..workloads.suite import estimated_solo_us
from .slo import LATENCY_CRITICAL, SLO_CLASSES, SLOSpec

#: Per-class counter names, in emission order (schema is fixed even at
#: zero so extras keys are identical across runs and merge cleanly).
_CLASS_COUNTERS = (
    "arrived",
    "admitted",
    "degraded",
    "shed_admission",
    "shed_fault",
    "completed",
    "deadline_hits",
    "deadline_misses",
)


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one gateway admission."""

    admitted: bool
    slo_class: str
    rung: int                    # -1 = clean admit, >= 0 = degrade rung
    deadline_us: Optional[float]  # absolute deadline (None when shed)
    preempt: bool                # arm squad-boundary preemption


class ServingGateway:
    """Streams requests into one system under an :class:`SLOSpec`."""

    def __init__(self, spec: SLOSpec, apps: Mapping[str, Application]):
        self.spec = spec
        self._class: Dict[str, str] = {}
        self._budget: Dict[str, float] = {}
        for app_id, app in apps.items():
            policy = spec.policy_for(app_id)
            self._class[app_id] = policy.slo_class
            self._budget[app_id] = (
                policy.deadline_us
                if policy.deadline_us is not None
                else policy.deadline_factor * estimated_solo_us(app)
            )
        # request_id -> absolute deadline of every admitted request
        # still in flight (popped on finish/shed).
        self.deadline_of: Dict[int, float] = {}
        self.counters: Dict[str, float] = {}
        for cls in SLO_CLASSES:
            for counter in _CLASS_COUNTERS:
                self.counters[f"{counter}_{cls}"] = 0.0
        self.counters["preemptions"] = 0.0
        self.counters["preempted_kernels"] = 0.0

    def class_of(self, app_id: str) -> str:
        return self._class.get(app_id, self.spec.default_policy.slo_class)

    def budget_us(self, app_id: str) -> float:
        return self._budget[app_id]

    # ------------------------------------------------------------------
    # Admission (degrade -> shed ladder at request granularity)
    # ------------------------------------------------------------------
    def admit(self, app_id: str, backlog: int, now: float,
              request_id: int) -> AdmissionDecision:
        """Admit, degrade, or shed one arriving request.

        ``backlog`` is the client's depth (queued + active) *before*
        this request.  Below ``max_backlog`` the request is admitted at
        its clean deadline budget; each unit of excess backlog burns
        one degrade rung (deadline stretched by ``1/factor``); past the
        last rung the request is shed at the gate — it never enters the
        system and the closed-loop client simply thinks again.
        """
        cls = self.class_of(app_id)
        self.counters[f"arrived_{cls}"] += 1.0
        spec = self.spec
        budget = self._budget[app_id]
        if backlog < spec.max_backlog:
            rung = -1
        else:
            excess = backlog - spec.max_backlog
            if excess < len(spec.degrade_factors):
                rung = excess
                budget = budget / spec.degrade_factors[rung]
                self.counters[f"degraded_{cls}"] += 1.0
            else:
                self.counters[f"shed_admission_{cls}"] += 1.0
                return AdmissionDecision(
                    admitted=False, slo_class=cls, rung=-1,
                    deadline_us=None, preempt=False,
                )
        self.counters[f"admitted_{cls}"] += 1.0
        deadline = now + budget
        self.deadline_of[request_id] = deadline
        return AdmissionDecision(
            admitted=True,
            slo_class=cls,
            rung=rung,
            deadline_us=deadline,
            preempt=spec.preempt and cls == LATENCY_CRITICAL,
        )

    # ------------------------------------------------------------------
    # Lifecycle accounting
    # ------------------------------------------------------------------
    def on_finish(self, app_id: str, request_id: int, now: float) -> Optional[bool]:
        """Record a completion; returns True on a deadline miss.

        A deadline exactly met (``now == deadline``) counts as a hit.
        Returns None for a request the gateway never admitted (cannot
        happen through the harness; defensive).
        """
        deadline = self.deadline_of.pop(request_id, None)
        if deadline is None:
            return None
        cls = self.class_of(app_id)
        self.counters[f"completed_{cls}"] += 1.0
        if now <= deadline:
            self.counters[f"deadline_hits_{cls}"] += 1.0
            return False
        self.counters[f"deadline_misses_{cls}"] += 1.0
        return True

    def on_shed(self, app_id: str, request_id: int) -> None:
        """An *admitted* request was shed by the fault path
        (timeout/failure) — distinct from admission sheds, so the two
        never double-count: a request is either stopped at the gate
        (``shed_admission``) or lost inside (``shed_fault``), never
        both."""
        if self.deadline_of.pop(request_id, None) is None:
            return
        cls = self.class_of(app_id)
        self.counters[f"shed_fault_{cls}"] += 1.0

    def on_preempt(self, kernels: int) -> None:
        """A best-effort squad entry was withdrawn at a squad boundary."""
        self.counters["preemptions"] += 1.0
        self.counters["preempted_kernels"] += float(kernels)
