"""SLO-aware serving gateway (priority classes, admission, preemption).

The gateway sits between the arrival processes and the serving loop:
every request streams through :class:`ServingGateway` as it arrives,
is classed ``latency_critical`` or ``best_effort``
(:class:`SLOPolicy`), picks up an absolute deadline, and passes the
degrade→shed admission ladder before it may enter the system.  On
BLESS, an admitted latency-critical request additionally interrupts a
running best-effort squad at the next rate-change epoch
(:meth:`~repro.gpusim.engine.SimEngine.request_preemption` — the
squad-boundary preemption of Hummingbird, with Tally's two-class
scheduling contract).

The package is deliberately free of engine imports: it is pure
bookkeeping driven by the harness (``repro.baselines.base``), so every
sharing system — not just BLESS — can serve under an
:class:`SLOSpec`.
"""

from .gateway import AdmissionDecision, ServingGateway
from .slo import (
    BEST_EFFORT,
    LATENCY_CRITICAL,
    SLO_CLASSES,
    SLOPolicy,
    SLOSpec,
    check_slo_accounting,
    parse_slo_mix,
)

__all__ = [
    "AdmissionDecision",
    "ServingGateway",
    "BEST_EFFORT",
    "LATENCY_CRITICAL",
    "SLO_CLASSES",
    "SLOPolicy",
    "SLOSpec",
    "check_slo_accounting",
    "parse_slo_mix",
]
