"""Comparison GPU-sharing systems from the paper's evaluation (§6.1)."""

from .base import ClientState, SharingSystem
from .gslice import GSLICESystem
from .iso import ISOSystem, iso_targets_us, solo_latency_us
from .mig_system import MIGSystem
from .reef import REEFPlusSystem
from .temporal import TemporalSystem
from .unbound import UnboundSystem
from .zico import ZicoSystem

__all__ = [
    "ClientState",
    "GSLICESystem",
    "ISOSystem",
    "iso_targets_us",
    "MIGSystem",
    "REEFPlusSystem",
    "SharingSystem",
    "solo_latency_us",
    "TemporalSystem",
    "UnboundSystem",
    "ZicoSystem",
]
