"""ISO: the quota-isolated latency target (§6.1, §6.2).

ISO is not a sharing system — it is the *promise*: each application
runs alone on an MPS partition exactly its quota wide, with no
co-runner interference.  Every sharing system is judged by how far its
per-app latency deviates above ISO's.  We realise it by serving each
binding on its own private simulated GPU.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..apps.application import Application
from ..gpusim.device import GPUSpec
from ..metrics.stats import ServingResult
from ..workloads.suite import WorkloadBinding
from .base import SharingSystem
from .gslice import GSLICESystem


class ISOSystem(SharingSystem):
    """Each app alone on a quota-sized MPS partition (the baseline)."""

    name = "ISO"

    def setup(self) -> None:  # pragma: no cover - never used directly
        raise AssertionError("ISOSystem overrides serve(); setup is unused")

    def on_request_activated(self, client) -> None:  # pragma: no cover
        raise AssertionError("ISOSystem overrides serve()")

    def serve(self, bindings: Sequence[WorkloadBinding]) -> ServingResult:
        # Each partition serves on a private engine; the sub-results
        # merge as slices of ONE GPU (num_slots=1), and the merge layer
        # keeps every sub-engine's extras (fault/engine counters) so
        # the completed + shed == arrived invariant holds for ISO too.
        results = []
        for binding in bindings:
            sub = GSLICESystem(
                gpu_spec=self.gpu_spec, fault_plan=self.fault_plan, slo=self.slo
            )
            results.append(sub.serve([binding]))
        return ServingResult.merge(results, system=self.name, num_slots=1)


def iso_targets_us(
    bindings: Sequence[WorkloadBinding], gpu_spec: Optional[GPUSpec] = None
) -> Dict[str, float]:
    """Per-app ISO mean latencies under the workload (deviation targets)."""
    result = ISOSystem(gpu_spec=gpu_spec).serve(bindings)
    return result.per_app_mean_latency()


def solo_latency_us(
    app: Application,
    sm_fraction: float = 1.0,
    gpu_spec: Optional[GPUSpec] = None,
) -> float:
    """Latency of one isolated request on an ``sm_fraction`` partition.

    This is the profiler's ``T[n%]`` — the paper's isolated latency
    target for an app provisioned ``n%`` of the GPU.
    """
    from ..workloads.arrivals import OneShot  # local import to avoid cycle
    from ..workloads.suite import WorkloadBinding as Binding

    deployed = app.with_quota(sm_fraction)
    binding = Binding(app=deployed, process_factory=OneShot)
    result = ISOSystem(gpu_spec=gpu_spec).serve([binding])
    return result.mean_latency(deployed.app_id)
