"""ISO: the quota-isolated latency target (§6.1, §6.2).

ISO is not a sharing system — it is the *promise*: each application
runs alone on an MPS partition exactly its quota wide, with no
co-runner interference.  Every sharing system is judged by how far its
per-app latency deviates above ISO's.  We realise it by serving each
binding on its own private simulated GPU.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..apps.application import Application
from ..gpusim.device import GPUSpec
from ..metrics.stats import ServingResult
from ..workloads.suite import WorkloadBinding
from .base import SharingSystem
from .gslice import GSLICESystem


class ISOSystem(SharingSystem):
    """Each app alone on a quota-sized MPS partition (the baseline)."""

    name = "ISO"

    def setup(self) -> None:  # pragma: no cover - never used directly
        raise AssertionError("ISOSystem overrides serve(); setup is unused")

    def on_request_activated(self, client) -> None:  # pragma: no cover
        raise AssertionError("ISOSystem overrides serve()")

    def serve(self, bindings: Sequence[WorkloadBinding]) -> ServingResult:
        merged = ServingResult(system=self.name)
        makespan = 0.0
        busy = 0.0
        for binding in bindings:
            sub = GSLICESystem(gpu_spec=self.gpu_spec, fault_plan=self.fault_plan)
            result = sub.serve([binding])
            merged.records.extend(result.records)
            makespan = max(makespan, result.makespan_us)
            busy += result.utilization * result.makespan_us
        merged.makespan_us = makespan
        merged.utilization = min(1.0, busy / makespan) if makespan > 0 else 0.0
        return merged


def iso_targets_us(
    bindings: Sequence[WorkloadBinding], gpu_spec: Optional[GPUSpec] = None
) -> Dict[str, float]:
    """Per-app ISO mean latencies under the workload (deviation targets)."""
    result = ISOSystem(gpu_spec=gpu_spec).serve(bindings)
    return result.per_app_mean_latency()


def solo_latency_us(
    app: Application,
    sm_fraction: float = 1.0,
    gpu_spec: Optional[GPUSpec] = None,
) -> float:
    """Latency of one isolated request on an ``sm_fraction`` partition.

    This is the profiler's ``T[n%]`` — the paper's isolated latency
    target for an app provisioned ``n%`` of the GPU.
    """
    from ..workloads.arrivals import OneShot  # local import to avoid cycle
    from ..workloads.suite import WorkloadBinding as Binding

    deployed = app.with_quota(sm_fraction)
    binding = Binding(app=deployed, process_factory=OneShot)
    result = ISOSystem(gpu_spec=gpu_spec).serve([binding])
    return result.mean_latency(deployed.app_id)
