"""Shared serving harness for all GPU-sharing systems.

Every comparison system (§6.1: ISO, TEMPORAL, MIG, GSLICE, UNBOUND,
REEF+, ZICO) and BLESS itself drive the same simulator through this
harness: it owns the engine, client bookkeeping (per-app FIFO task
queues, one in-flight request per app — §4.3), the arrival machinery,
and result collection.  Subclasses implement only their scheduling
policy via the ``setup`` / ``on_request_activated`` hooks.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..apps.application import Application, Request
from ..gpusim.context import ContextRegistry, GPUContext
from ..gpusim.device import GPUDevice, GPUSpec
from ..gpusim.engine import SimEngine
from ..gpusim.faults import FaultInjector, FaultPlan, resolve_fault_plan
from ..gpusim.kernel import KernelInstance
from ..gpusim.stream import DeviceQueue
from ..gateway.gateway import ServingGateway
from ..gateway.slo import SLOSpec
from ..metrics.stats import FaultStats, RequestRecord, ServingResult
from ..obs import Observability
from ..obs import events as obs_events
from ..workloads.arrivals import ArrivalProcess, TraceReplay, OneShot
from ..workloads.suite import WorkloadBinding


def _is_open_loop(process: ArrivalProcess) -> bool:
    return isinstance(process, (TraceReplay, OneShot))


@dataclass
class ClientState:
    """Runtime bookkeeping for one deployed application."""

    app: Application
    process: ArrivalProcess
    pending: Deque[Request] = field(default_factory=deque)
    active: Optional[Request] = None
    completed: int = 0
    # System-specific attachments (contexts, queues, slices ...).
    attachments: Dict[str, object] = field(default_factory=dict)

    @property
    def app_id(self) -> str:
        return self.app.app_id


class SharingSystem(abc.ABC):
    """Base class for GPU-sharing systems running on the simulator."""

    name = "BASE"

    def __init__(
        self,
        gpu_spec: Optional[GPUSpec] = None,
        record_timeline: bool = False,
        hw_policy: str = "fair",
        validate: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        trace: Optional[bool] = None,
        gpu_index: Optional[int] = None,
        slo: Optional[SLOSpec] = None,
    ):
        self.gpu_spec = gpu_spec or GPUSpec()
        self.record_timeline = record_timeline
        self.hw_policy = hw_policy
        self.validate = validate
        # When this system serves one GPU of a §4.2.2 cluster, the
        # controller sets gpu_index so every trace record this run
        # emits carries its GPU identity (Perfetto per-GPU tracks).
        self.gpu_index = gpu_index
        # Observability: the metrics registry always rides along; the
        # decision tracer only when `trace=True` (or REPRO_TRACE is
        # set).  A fresh bundle is created per serve() so repeated
        # serves on one system object never mix streams.
        self._trace_flag = trace
        self.obs = Observability(trace)
        # Fault injection: an explicit plan wins; otherwise the
        # REPRO_FAULT_PLAN / REPRO_FAULT_SEED environment (None = off).
        self.fault_plan = fault_plan if fault_plan is not None else resolve_fault_plan()
        self.fault_injector: Optional[FaultInjector] = None
        self.fault_stats = FaultStats()
        # SLO serving gateway: attach an SLOSpec to stream arrivals
        # through admission control + deadline accounting.  None (the
        # default) keeps the serving loop byte-identical to history.
        self.slo = slo
        self._gateway: Optional[ServingGateway] = None
        # Populated per serve() call:
        self.engine: SimEngine
        self.registry: ContextRegistry
        self.clients: Dict[str, ClientState] = {}
        self._result: ServingResult
        self._inflight = 0
        self._inflight_windows: List[Tuple[float, float]] = []
        self._window_start = 0.0
        self._requests_arrived = 0
        self._request_timeout_us: Optional[float] = None
        self._timeout_events: Dict[int, object] = {}

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def setup(self) -> None:
        """Create contexts/queues for ``self.clients`` (deployment stage)."""

    @abc.abstractmethod
    def on_request_activated(self, client: ClientState) -> None:
        """A request became the client's active request: schedule it."""

    def on_request_finished(self, client: ClientState, request: Request) -> None:
        """Optional hook after a request completes (default: no-op)."""

    def on_request_shed(self, client: ClientState, request: Request) -> None:
        """Optional hook after a request is shed (failure/timeout)."""

    def request_slo_preemption(self, client: ClientState, request: Request) -> None:
        """A latency-critical request was admitted with preemption on.

        Systems that can interrupt in-flight work at a safe boundary
        override this (BLESS: withdraw the running squad's best-effort
        kernels at the next rate-change epoch).  Default: no-op — the
        request simply waits its turn.
        """

    def on_context_crash(
        self, context: GPUContext, killed: List[Tuple[KernelInstance, object]]
    ) -> None:
        """Degradation hook for an injected MPS-context crash.

        ``killed`` holds the torn-down kernels with their per-kernel
        callbacks, in queue order.  The default recovery recreates an
        equivalent context + queue, repoints client attachments at it,
        and relaunches the killed kernels after a context switch —
        systems with richer context bookkeeping (BLESS) override this.
        """
        replacement = self.registry.create(
            owner=context.owner,
            sm_limit=context.sm_limit,
            label=context.label or "recovered",
            priority=context.priority,
        )
        queue = self.engine.create_queue(
            replacement, label=f"{context.owner}/recovered"
        )
        client = self.clients.get(context.owner)
        if client is not None:
            for key, value in list(client.attachments.items()):
                if isinstance(value, DeviceQueue) and value.context is context:
                    client.attachments[key] = queue
        self.relaunch_killed(killed, queue)

    def relaunch_killed(
        self,
        killed: List[Tuple[KernelInstance, object]],
        queue: DeviceQueue,
    ) -> int:
        """Re-issue killed kernels as fresh instances on ``queue``.

        Preserves launch order and per-kernel callbacks; charged one
        context-switch delay.  Returns the number of relaunched kernels.
        """
        if not killed:
            return 0
        kernels = [
            KernelInstance(
                spec=dead.spec,
                app_id=dead.app_id,
                request_id=dead.request_id,
                seq=dead.seq,
            )
            for dead, _ in killed
        ]
        callbacks = [callback for _, callback in killed]
        self.fault_stats.degraded_relaunches += len(kernels)
        self.engine.schedule(
            self.engine.device.spec.context_switch_us,
            lambda: self.engine.launch_batch(kernels, queue, callbacks=callbacks),
        )
        return len(kernels)

    # ------------------------------------------------------------------
    # Serving loop
    # ------------------------------------------------------------------
    def serve(self, bindings: Sequence[WorkloadBinding]) -> ServingResult:
        """Serve a workload to completion; returns the measured result."""
        if not bindings:
            raise ValueError("cannot serve an empty workload")
        plan = self.fault_plan
        if plan is not None and plan.active:
            self.fault_stats = FaultStats()
            self.fault_injector = FaultInjector(plan, stats=self.fault_stats)
            self._request_timeout_us = plan.request_timeout_us
        else:
            self.fault_injector = None
            self._request_timeout_us = None
        self.engine = SimEngine(
            device=GPUDevice(self.gpu_spec),
            record_timeline=self.record_timeline,
            hw_policy=self.hw_policy,
            validate=self.validate,
            fault_injector=self.fault_injector,
        )
        self.registry = ContextRegistry(self.engine.device)
        self.obs = Observability(self._trace_flag)
        self.obs.begin_serve(self.engine)
        if self.obs.tracer is not None and self.gpu_index is not None:
            self.obs.tracer.base_args["gpu"] = self.gpu_index
        self.clients = {}
        self._result = ServingResult(system=self.name)
        self._inflight = 0
        self._inflight_windows = []
        self._requests_arrived = 0
        self._timeout_events = {}
        if self.fault_injector is not None:
            self.engine.subscribe_failure(self._on_kernel_failure)
            for ordinal, crash_time in enumerate(plan.context_crash_times):
                self.engine.schedule_at(
                    crash_time,
                    lambda ordinal=ordinal: self._inject_context_crash(ordinal),
                )

        for binding in bindings:
            app = binding.app
            if app.app_id in self.clients:
                raise ValueError(f"duplicate app_id {app.app_id!r}")
            self.engine.device.memory.allocate(app.app_id, app.memory_mb)
            self.clients[app.app_id] = ClientState(
                app=app, process=binding.fresh_process()
            )

        self._gateway = (
            ServingGateway(
                self.slo, {c.app_id: c.app for c in self.clients.values()}
            )
            if self.slo is not None
            else None
        )
        self.setup()
        for client in self.clients.values():
            first = client.process.first_arrival()
            if first is not None:
                self._schedule_arrival(client, first)

        self.engine.run()

        self._result.makespan_us = self.engine.now
        self._result.utilization = self.engine.utilization()
        # End-of-run tallies flow through the metrics registry; the
        # legacy_extras() shim reproduces the historical extras keys
        # (engine_*, fault_*) byte-identically for golden files.
        self.obs.registry.import_mapping("engine", self.engine.counters)
        if self._gateway is not None:
            # slo/* gauges map to slo_* extras via the legacy shim; all
            # additive, so cluster/epoch merges sum them exactly.
            self.obs.registry.import_mapping("slo", self._gateway.counters)
        if self.fault_injector is not None:
            stats = self.fault_stats
            stats.transient_retries = self.engine.kernels_retried
            stats.permanent_failures = self.engine.kernels_failed
            stats.kernels_killed = self.engine.kernels_killed
            self.obs.registry.import_mapping("fault", stats.as_dict())
            self.obs.registry.gauge("fault/requests_arrived").set(
                float(self._requests_arrived)
            )
        self._result.extras.update(self.obs.legacy_extras())
        return self._result

    # ------------------------------------------------------------------
    # Arrival / completion machinery
    # ------------------------------------------------------------------
    def _schedule_arrival(self, client: ClientState, at: float) -> None:
        self.engine.schedule_at(at, lambda: self._on_arrival(client))

    def _on_arrival(self, client: ClientState) -> None:
        now = self.engine.now
        request = Request(app=client.app, arrival_time=now)
        self._requests_arrived += 1
        if self.obs.tracer is not None:
            self.obs.emit(
                obs_events.REQUEST_ARRIVED,
                client.app_id,
                request_id=request.request_id,
            )
        gateway = self._gateway
        decision = None
        if gateway is not None:
            backlog = len(client.pending) + (1 if client.active is not None else 0)
            decision = gateway.admit(
                client.app_id, backlog, now, request.request_id
            )
            if self.obs.tracer is not None:
                self.obs.emit(
                    obs_events.SLO_ADMIT,
                    client.app_id,
                    request_id=request.request_id,
                    slo_class=decision.slo_class,
                    admitted=decision.admitted,
                    rung=decision.rung,
                    deadline_us=decision.deadline_us,
                )
            if not decision.admitted:
                # Shed at the gate: the request never enters the system
                # (no backlog slot, no timeout, no inflight window) —
                # only the gateway's shed_admission counter moves, so
                # fault-path sheds can never double-count it.  The
                # closed-loop client thinks again as after a completion;
                # an open-loop process keeps replaying its trace either
                # way (prev_completion = now in both styles here).
                nxt = client.process.next_arrival(now, now)
                if nxt is not None:
                    self._schedule_arrival(client, nxt)
                return
        client.pending.append(request)
        self._inflight_enter()
        if self._request_timeout_us is not None:
            self._timeout_events[request.request_id] = self.engine.schedule(
                self._request_timeout_us,
                lambda: self._on_request_timeout(client, request),
            )
        if _is_open_loop(client.process):
            nxt = client.process.next_arrival(now, now)
            if nxt is not None:
                self._schedule_arrival(client, nxt)
        if client.active is None:
            self._activate_next(client)
        if decision is not None and decision.preempt:
            self.request_slo_preemption(client, request)

    def _activate_next(self, client: ClientState) -> None:
        if client.active is not None or not client.pending:
            return
        client.active = client.pending.popleft()
        client.active.start_time = self.engine.now
        self.on_request_activated(client)

    def finish_request(self, client: ClientState) -> None:
        """Systems call this when the active request's last kernel ends."""
        request = client.active
        if request is None:
            if self.fault_injector is not None:
                # A completion raced a shed/crash teardown: the request
                # is already gone.  Count it instead of crashing the run.
                self.fault_stats.stale_completions += 1
                return
            raise RuntimeError(f"no active request for {client.app_id}")
        now = self.engine.now
        request.finish_time = now
        client.active = None
        client.completed += 1
        self._cancel_timeout(request)
        self._result.add(
            RequestRecord(
                app_id=client.app_id,
                request_id=request.request_id,
                arrival=request.arrival_time,
                finish=now,
            )
        )
        self.obs.registry.histogram("latency/request_us").observe(
            now - request.arrival_time
        )
        if self.obs.tracer is not None:
            self.obs.emit(
                obs_events.REQUEST_DONE,
                client.app_id,
                request_id=request.request_id,
                latency_us=now - request.arrival_time,
            )
        if self._gateway is not None:
            missed = self._gateway.on_finish(
                client.app_id, request.request_id, now
            )
            if missed and self.obs.tracer is not None:
                self.obs.emit(
                    obs_events.SLO_DEADLINE_MISS,
                    client.app_id,
                    request_id=request.request_id,
                    latency_us=now - request.arrival_time,
                    slo_class=self._gateway.class_of(client.app_id),
                )
        self._inflight_exit()
        self.on_request_finished(client, request)
        if not _is_open_loop(client.process):
            nxt = client.process.next_arrival(request.arrival_time, now)
            if nxt is not None:
                self._schedule_arrival(client, nxt)
        self._activate_next(client)

    # ------------------------------------------------------------------
    # Fault handling: shedding, timeouts, context crashes
    # ------------------------------------------------------------------
    def _cancel_timeout(self, request: Request) -> None:
        event = self._timeout_events.pop(request.request_id, None)
        if event is not None:
            self.engine.cancel(event)

    def _on_kernel_failure(self, kernel: KernelInstance) -> None:
        """A kernel failed permanently: shed the owning request."""
        client = self.clients.get(kernel.app_id)
        if client is None:
            return
        request = client.active
        if request is not None and request.request_id == kernel.request_id:
            self._shed_request(client, request, timeout=False)
        # A failure for a non-active request means it was already shed
        # (its stragglers are zombies); nothing further to do.

    def _on_request_timeout(self, client: ClientState, request: Request) -> None:
        self._timeout_events.pop(request.request_id, None)
        if request.done:
            return
        if client.active is request:
            self._shed_request(client, request, timeout=True)
        elif request in client.pending:
            client.pending.remove(request)
            self._account_shed(client, request, timeout=True)
            self._activate_next(client)

    def _shed_request(
        self, client: ClientState, request: Request, timeout: bool
    ) -> None:
        """Abort the active request: kill its kernels, keep serving.

        Killed kernels' callbacks still fire (marked ``failed``) so
        batch/squad accounting in the policy layers drains; identity
        guards there skip the usual completion handling because
        ``client.active`` has already moved on.
        """
        killed = self.engine.kill_request(client.app_id, request.request_id)
        client.active = None
        self._account_shed(client, request, timeout=timeout)
        for kernel, callback in killed:
            if callback is not None:
                callback(kernel)
        self._activate_next(client)
        self.on_request_shed(client, request)

    def _account_shed(
        self, client: ClientState, request: Request, timeout: bool
    ) -> None:
        now = self.engine.now
        if timeout:
            self.fault_stats.shed_timeout += 1
        else:
            self.fault_stats.shed_failed += 1
        if self._gateway is not None:
            self._gateway.on_shed(client.app_id, request.request_id)
        if self.obs.tracer is not None:
            self.obs.emit(
                obs_events.FAULT_REQUEST_SHED,
                client.app_id,
                request_id=request.request_id,
                timeout=timeout,
            )
        self._cancel_timeout(request)
        self._inflight_exit()
        # A closed-loop client keeps issuing requests after a shed, the
        # same way it would after a completion.
        if not _is_open_loop(client.process):
            nxt = client.process.next_arrival(request.arrival_time, now)
            if nxt is not None:
                self._schedule_arrival(client, nxt)

    # Retry cadence when a crash fires before any MPS context exists
    # (BLESS creates restricted contexts lazily at the first spatial
    # squad, which may be well after the scheduled crash time).
    _CRASH_RETRY_US = 1_000.0

    def _inject_context_crash(self, ordinal: int) -> None:
        """Scheduled by serve() for each FaultPlan.context_crash_times."""
        victims = [c for c in self.registry.contexts if c.restricted]
        if not victims:
            if self._inflight > 0:
                # Defer until a restricted context exists; give up only
                # once the run has drained.
                self.engine.schedule(
                    self._CRASH_RETRY_US,
                    lambda: self._inject_context_crash(ordinal),
                )
            else:
                self.fault_stats.context_crashes_skipped += 1
            return
        victims.sort(key=lambda c: c.context_id)
        victim = victims[self.fault_injector.pick_index(len(victims), ordinal)]
        killed = self.engine.kill_context(victim)
        self.registry.destroy(victim)
        self.fault_stats.context_crashes += 1
        if self.obs.tracer is not None:
            self.obs.emit(
                obs_events.FAULT_CONTEXT_CRASH,
                victim.owner,
                context_id=victim.context_id,
                kernels_killed=len(killed),
            )
        self.on_context_crash(victim, killed)

    def _inflight_enter(self) -> None:
        if self._inflight == 0:
            self._window_start = self.engine.now
        self._inflight += 1

    def _inflight_exit(self) -> None:
        self._inflight -= 1
        if self._inflight == 0:
            self._inflight_windows.append((self._window_start, self.engine.now))

    @property
    def inflight_windows(self) -> List[Tuple[float, float]]:
        windows = list(self._inflight_windows)
        if self._inflight > 0:
            windows.append((self._window_start, self.engine.now))
        return windows

    # ------------------------------------------------------------------
    # Common launch helpers
    # ------------------------------------------------------------------
    def launch_whole_request(
        self,
        client: ClientState,
        queue: DeviceQueue,
        launch_overhead: Optional[float] = None,
    ) -> None:
        """Launch every kernel of the active request into one queue.

        This is the request-granularity launch style of static/unbounded
        sharing (§3.2): all kernels go to the device queue at once and
        the host loses control until the request finishes.
        """
        request = client.active
        if request is None:
            raise RuntimeError(f"no active request for {client.app_id}")
        total = request.total_kernels

        def on_last(k, c=client):
            if k.failed:
                # Killed with its request (shed/crash) — the shed path
                # already accounted for it.
                return
            self.finish_request(c)

        kernels = [request.make_kernel(index) for index in range(total)]
        callbacks: List[Optional[Callable[[KernelInstance], None]]] = [None] * total
        callbacks[total - 1] = on_last
        self.engine.launch_batch(
            kernels, queue, launch_overhead=launch_overhead, callbacks=callbacks
        )
        request.next_kernel = total
