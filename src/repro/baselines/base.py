"""Shared serving harness for all GPU-sharing systems.

Every comparison system (§6.1: ISO, TEMPORAL, MIG, GSLICE, UNBOUND,
REEF+, ZICO) and BLESS itself drive the same simulator through this
harness: it owns the engine, client bookkeeping (per-app FIFO task
queues, one in-flight request per app — §4.3), the arrival machinery,
and result collection.  Subclasses implement only their scheduling
policy via the ``setup`` / ``on_request_activated`` hooks.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..apps.application import Application, Request
from ..gpusim.context import ContextRegistry
from ..gpusim.device import GPUDevice, GPUSpec
from ..gpusim.engine import SimEngine
from ..gpusim.kernel import KernelInstance
from ..gpusim.stream import DeviceQueue
from ..metrics.stats import RequestRecord, ServingResult
from ..workloads.arrivals import ArrivalProcess, TraceReplay, OneShot
from ..workloads.suite import WorkloadBinding


def _is_open_loop(process: ArrivalProcess) -> bool:
    return isinstance(process, (TraceReplay, OneShot))


@dataclass
class ClientState:
    """Runtime bookkeeping for one deployed application."""

    app: Application
    process: ArrivalProcess
    pending: Deque[Request] = field(default_factory=deque)
    active: Optional[Request] = None
    completed: int = 0
    # System-specific attachments (contexts, queues, slices ...).
    attachments: Dict[str, object] = field(default_factory=dict)

    @property
    def app_id(self) -> str:
        return self.app.app_id


class SharingSystem(abc.ABC):
    """Base class for GPU-sharing systems running on the simulator."""

    name = "BASE"

    def __init__(
        self,
        gpu_spec: Optional[GPUSpec] = None,
        record_timeline: bool = False,
        hw_policy: str = "fair",
        validate: bool = False,
    ):
        self.gpu_spec = gpu_spec or GPUSpec()
        self.record_timeline = record_timeline
        self.hw_policy = hw_policy
        self.validate = validate
        # Populated per serve() call:
        self.engine: SimEngine
        self.registry: ContextRegistry
        self.clients: Dict[str, ClientState] = {}
        self._result: ServingResult
        self._inflight = 0
        self._inflight_windows: List[Tuple[float, float]] = []
        self._window_start = 0.0

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def setup(self) -> None:
        """Create contexts/queues for ``self.clients`` (deployment stage)."""

    @abc.abstractmethod
    def on_request_activated(self, client: ClientState) -> None:
        """A request became the client's active request: schedule it."""

    def on_request_finished(self, client: ClientState, request: Request) -> None:
        """Optional hook after a request completes (default: no-op)."""

    # ------------------------------------------------------------------
    # Serving loop
    # ------------------------------------------------------------------
    def serve(self, bindings: Sequence[WorkloadBinding]) -> ServingResult:
        """Serve a workload to completion; returns the measured result."""
        if not bindings:
            raise ValueError("cannot serve an empty workload")
        self.engine = SimEngine(
            device=GPUDevice(self.gpu_spec),
            record_timeline=self.record_timeline,
            hw_policy=self.hw_policy,
            validate=self.validate,
        )
        self.registry = ContextRegistry(self.engine.device)
        self.clients = {}
        self._result = ServingResult(system=self.name)
        self._inflight = 0
        self._inflight_windows = []

        for binding in bindings:
            app = binding.app
            if app.app_id in self.clients:
                raise ValueError(f"duplicate app_id {app.app_id!r}")
            self.engine.device.memory.allocate(app.app_id, app.memory_mb)
            self.clients[app.app_id] = ClientState(
                app=app, process=binding.fresh_process()
            )

        self.setup()
        for client in self.clients.values():
            first = client.process.first_arrival()
            if first is not None:
                self._schedule_arrival(client, first)

        self.engine.run()

        self._result.makespan_us = self.engine.now
        self._result.utilization = self.engine.utilization()
        for key, value in self.engine.counters.items():
            self._result.extras[f"engine_{key}"] = float(value)
        return self._result

    # ------------------------------------------------------------------
    # Arrival / completion machinery
    # ------------------------------------------------------------------
    def _schedule_arrival(self, client: ClientState, at: float) -> None:
        self.engine.schedule_at(at, lambda: self._on_arrival(client))

    def _on_arrival(self, client: ClientState) -> None:
        now = self.engine.now
        request = Request(app=client.app, arrival_time=now)
        client.pending.append(request)
        self._inflight_enter()
        if _is_open_loop(client.process):
            nxt = client.process.next_arrival(now, now)
            if nxt is not None:
                self._schedule_arrival(client, nxt)
        if client.active is None:
            self._activate_next(client)

    def _activate_next(self, client: ClientState) -> None:
        if client.active is not None or not client.pending:
            return
        client.active = client.pending.popleft()
        client.active.start_time = self.engine.now
        self.on_request_activated(client)

    def finish_request(self, client: ClientState) -> None:
        """Systems call this when the active request's last kernel ends."""
        request = client.active
        if request is None:
            raise RuntimeError(f"no active request for {client.app_id}")
        now = self.engine.now
        request.finish_time = now
        client.active = None
        client.completed += 1
        self._result.add(
            RequestRecord(
                app_id=client.app_id,
                request_id=request.request_id,
                arrival=request.arrival_time,
                finish=now,
            )
        )
        self._inflight_exit()
        self.on_request_finished(client, request)
        if not _is_open_loop(client.process):
            nxt = client.process.next_arrival(request.arrival_time, now)
            if nxt is not None:
                self._schedule_arrival(client, nxt)
        self._activate_next(client)

    def _inflight_enter(self) -> None:
        if self._inflight == 0:
            self._window_start = self.engine.now
        self._inflight += 1

    def _inflight_exit(self) -> None:
        self._inflight -= 1
        if self._inflight == 0:
            self._inflight_windows.append((self._window_start, self.engine.now))

    @property
    def inflight_windows(self) -> List[Tuple[float, float]]:
        windows = list(self._inflight_windows)
        if self._inflight > 0:
            windows.append((self._window_start, self.engine.now))
        return windows

    # ------------------------------------------------------------------
    # Common launch helpers
    # ------------------------------------------------------------------
    def launch_whole_request(
        self,
        client: ClientState,
        queue: DeviceQueue,
        launch_overhead: Optional[float] = None,
    ) -> None:
        """Launch every kernel of the active request into one queue.

        This is the request-granularity launch style of static/unbounded
        sharing (§3.2): all kernels go to the device queue at once and
        the host loses control until the request finishes.
        """
        request = client.active
        if request is None:
            raise RuntimeError(f"no active request for {client.app_id}")
        total = request.total_kernels

        def on_last(_k, c=client):
            self.finish_request(c)

        kernels = [request.make_kernel(index) for index in range(total)]
        callbacks: List[Optional[Callable[[KernelInstance], None]]] = [None] * total
        callbacks[total - 1] = on_last
        self.engine.launch_batch(
            kernels, queue, launch_overhead=launch_overhead, callbacks=callbacks
        )
        request.next_kernel = total
