"""UNBOUND: unrestricted MPS/stream sharing (§3.2, §6.1).

Every client gets an unrestricted context; the hardware scheduler
multiplexes the whole GPU among whichever kernels are at queue heads.
Utilization is high but the execution order of co-located kernels is
uncontrolled, so per-request latency is "neither predictable nor
optimal" and uneven quota assignments cannot be expressed at all.
"""

from __future__ import annotations

from .base import ClientState, SharingSystem


class UnboundSystem(SharingSystem):
    """Unbounded sharing: full-GPU contexts, hardware-scheduled."""

    name = "UNBOUND"

    def setup(self) -> None:
        for client in self.clients.values():
            context = self.registry.create(
                owner=client.app_id, sm_limit=1.0, label="unbound"
            )
            client.attachments["queue"] = self.engine.create_queue(
                context, label=client.app_id
            )

    def on_request_activated(self, client: ClientState) -> None:
        self.launch_whole_request(client, client.attachments["queue"])
