"""GSLICE: static MPS spatial partitioning by quota (§3.2, §6.1).

Each client receives an MPS context restricted to exactly its quota of
SMs and launches whole requests into its own device queue.  Co-located
clients interfere only through memory bandwidth (MPS does not isolate
it), which is why GSLICE "endures higher latencies than the isolated
baseline because of the interference between requests" (§6.3) — and
why it wastes bubbles: an idle partition's SMs are never lent out.
"""

from __future__ import annotations

from .base import ClientState, SharingSystem


class GSLICESystem(SharingSystem):
    """Static spatial sharing through MPS partitions sized by quota."""

    name = "GSLICE"

    def setup(self) -> None:
        total_quota = sum(c.app.quota for c in self.clients.values())
        if total_quota > 1.0 + 1e-9:
            raise ValueError(
                f"quotas sum to {total_quota:.2f} > 1; GSLICE cannot oversubscribe"
            )
        for client in self.clients.values():
            context = self.registry.create(
                owner=client.app_id, sm_limit=client.app.quota, label="gslice"
            )
            client.attachments["queue"] = self.engine.create_queue(
                context, label=client.app_id
            )

    def on_request_activated(self, client: ClientState) -> None:
        self.launch_whole_request(client, client.attachments["queue"])
