"""TEMPORAL: round-robin time-slice sharing with context switches (§6.1).

The GPU is multiplexed in time: each client owns the whole GPU for a
slice proportional to its quota, then a context switch hands the GPU to
the next client.  Kernels are un-preemptable, so a slice only ends at a
kernel boundary.  An idle client's turn costs a polling delay before it
is skipped.  Latency suffers doubly — a request waits for its client's
turn, then advances only during its own slices — which is why TEMPORAL
has the lowest utilization and the worst latency of the baselines.
"""

from __future__ import annotations

from typing import List, Optional

from .base import ClientState, SharingSystem


class TemporalSystem(SharingSystem):
    """Quota-proportional round-robin time slicing."""

    name = "TEMPORAL"

    def __init__(
        self,
        *args,
        cycle_us: float = 10_000.0,
        idle_yield_us: float = 100.0,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if cycle_us <= 0:
            raise ValueError("cycle_us must be positive")
        self.cycle_us = cycle_us
        self.idle_yield_us = idle_yield_us

    def setup(self) -> None:
        self._order: List[ClientState] = list(self.clients.values())
        self._slice_idx = 0
        self._rotating = False
        self._idle_streak = 0
        for client in self.clients.values():
            context = self.registry.create(
                owner=client.app_id, sm_limit=1.0, label="temporal"
            )
            client.attachments["queue"] = self.engine.create_queue(
                context, label=client.app_id
            )

    # ------------------------------------------------------------------
    def on_request_activated(self, client: ClientState) -> None:
        if not self._rotating:
            self._rotating = True
            self._idle_streak = 0
            self._slice_idx = self._order.index(client)
            self._begin_slice()

    @staticmethod
    def _has_unlaunched_work(client: ClientState) -> bool:
        request = client.active
        return request is not None and not request.all_scheduled

    def _begin_slice(self) -> None:
        client = self._order[self._slice_idx]
        if self._has_unlaunched_work(client):
            self._idle_streak = 0
            slice_len = self.cycle_us * client.app.quota
            self._run_slice(client, self.engine.now + slice_len)
            return
        # Idle client: poll, charge the yield delay, move on.
        self._idle_streak += 1
        if self._idle_streak >= len(self._order):
            self._rotating = False
            return
        self._advance_index()
        self.engine.schedule(self.idle_yield_us, self._begin_slice)

    def _advance_index(self) -> None:
        self._slice_idx = (self._slice_idx + 1) % len(self._order)

    def _run_slice(self, client: ClientState, slice_end: float) -> None:
        self._launch_batch(client, slice_end)

    def _launch_batch(self, client: ClientState, slice_end: float) -> None:
        """Launch kernels expected to fit in the remaining slice time."""
        request = client.active
        if request is None:
            raise RuntimeError("no active request to batch")
        queue = client.attachments["queue"]
        budget = slice_end - self.engine.now
        total = request.total_kernels
        batch_end: Optional[int] = None
        accumulated = 0.0
        index = request.next_kernel
        while index < total:
            accumulated += request.app.kernels[index].base_duration_us
            index += 1
            if accumulated > budget and index > request.next_kernel + 0:
                break
        batch_end = max(index, request.next_kernel + 1)

        def on_last(k, c=client, e=slice_end):
            self._on_batch_done(c, k, e)

        kernels = [
            request.make_kernel(i) for i in range(request.next_kernel, batch_end)
        ]
        callbacks = [None] * len(kernels)
        callbacks[-1] = on_last
        self.engine.launch_batch(kernels, queue, callbacks=callbacks)
        request.next_kernel = batch_end

    def _on_batch_done(self, client: ClientState, kernel, slice_end: float) -> None:
        request = client.active
        if (
            not kernel.failed
            and request is not None
            and kernel.request_id == request.request_id
            and kernel.seq == request.total_kernels - 1
        ):
            self.finish_request(client)
        # A new request may have been activated by finish_request.
        if self._has_unlaunched_work(client) and self.engine.now < slice_end:
            self._launch_batch(client, slice_end)
            return
        self._end_slice()

    def _end_slice(self) -> None:
        self._advance_index()
        self.engine.schedule(
            self.engine.device.spec.context_switch_us, self._begin_slice
        )
