"""ZICO: coordinated unbounded sharing for training pairs (§6.1).

Zico overlaps the training iterations of co-located models without SM
restrictions, but *coordinates* their phases (tick-tock between forward
and backward passes) so peak memory — and, as a side effect, bandwidth
contention — is reduced.  We model an iteration as two halves with a
phase barrier: a client that finished its first half waits until every
co-runner is also at a half boundary (or idle) before starting its
second half, mirroring Zico's staggered forward/backward scheduling.
The sharing itself stays unbounded, which leaves the intra-round
bubbles that Fig. 18(b) shows BLESS removing.
"""

from __future__ import annotations

from .base import ClientState, SharingSystem


class ZicoSystem(SharingSystem):
    """Unbounded training sharing with tick-tock phase coordination."""

    name = "ZICO"

    def setup(self) -> None:
        for client in self.clients.values():
            context = self.registry.create(
                owner=client.app_id, sm_limit=1.0, label="zico"
            )
            client.attachments["queue"] = self.engine.create_queue(
                context, label=client.app_id
            )
            client.attachments["waiting"] = False

    def on_request_activated(self, client: ClientState) -> None:
        client.attachments["waiting"] = False
        self._launch_segment(client, first_half=True)

    # ------------------------------------------------------------------
    def _launch_segment(self, client: ClientState, first_half: bool) -> None:
        request = client.active
        if request is None:
            raise RuntimeError("no active request")
        queue = client.attachments["queue"]
        if first_half:
            start = 0
            end = max(1, request.total_kernels // 2)
        else:
            start = request.next_kernel
            end = request.total_kernels
        def on_last(k, c=client):
            self._on_segment_done(c, k)

        kernels = [request.make_kernel(index) for index in range(start, end)]
        if kernels:
            callbacks = [None] * len(kernels)
            callbacks[-1] = on_last
            self.engine.launch_batch(kernels, queue, callbacks=callbacks)
        request.next_kernel = end

    def on_request_shed(self, client: ClientState, request) -> None:
        # A shed waiter must not leave its co-runners stuck at the
        # phase barrier.
        client.attachments["waiting"] = False
        self._pump_barrier()

    def _on_segment_done(self, client: ClientState, kernel) -> None:
        request = client.active
        if request is None or kernel.request_id != request.request_id:
            return
        if kernel.seq == request.total_kernels - 1:
            self.finish_request(client)
        else:
            client.attachments["waiting"] = True
        self._pump_barrier()

    def _pump_barrier(self) -> None:
        """Release every waiter whose co-runners are all at a boundary."""
        progressed = True
        while progressed:
            progressed = False
            for client in self.clients.values():
                if not client.attachments.get("waiting"):
                    continue
                if client.active is None:
                    client.attachments["waiting"] = False
                    continue
                if self._barrier_open(client):
                    client.attachments["waiting"] = False
                    self._launch_segment(client, first_half=False)
                    progressed = True

    def _barrier_open(self, client: ClientState) -> bool:
        """Open when every co-runner is idle, waiting, or fully launched."""
        for other in self.clients.values():
            if other is client or other.active is None:
                continue
            if other.attachments.get("waiting"):
                continue
            mid_segment = any(
                k.request_id == other.active.request_id
                for k in self.engine.running_kernels
            )
            if mid_segment and not other.active.all_scheduled:
                return False
        return True
