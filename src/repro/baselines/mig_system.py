"""MIG: fixed hardware slices (§6.1).

Each client gets a physically isolated MIG instance.  Isolation removes
all interference (each slice has its own SMs, L2 and bandwidth), but
slices come only in 1/7 granularity and cannot be borrowed — a 50%
quota becomes a 3/7 = 42.9% slice, so MIG frequently *under-provisions*
relative to the promised quota and always wastes idle neighbours'
capacity.
"""

from __future__ import annotations

from typing import Sequence

from ..gpusim import mig
from ..metrics.stats import ServingResult
from ..workloads.suite import WorkloadBinding
from .base import SharingSystem
from .gslice import GSLICESystem


class MIGSystem(SharingSystem):
    """Hardware-sliced sharing via MIG instances."""

    name = "MIG"

    def setup(self) -> None:  # pragma: no cover - serve() is overridden
        raise AssertionError("MIGSystem overrides serve(); setup is unused")

    def on_request_activated(self, client) -> None:  # pragma: no cover
        raise AssertionError("MIGSystem overrides serve()")

    def serve(self, bindings: Sequence[WorkloadBinding]) -> ServingResult:
        instances = mig.assign_slices([b.app.quota for b in bindings])
        results = []
        for binding, instance in zip(bindings, instances):
            # Physically isolated: serve on a private engine whose
            # partition equals the slice's compute share.  MIG slices
            # also have private bandwidth, which a solo run already has.
            sliced = binding.app.with_quota(instance.sm_fraction)
            sub = GSLICESystem(
                gpu_spec=self.gpu_spec, fault_plan=self.fault_plan, slo=self.slo
            )
            results.append(
                sub.serve(
                    [WorkloadBinding(app=sliced, process_factory=binding.process_factory)]
                )
            )
        # Slices of ONE physical GPU: merge with num_slots=1.  The merge
        # layer carries every sub-engine's extras (previously only the
        # engine_* counters survived, dropping the fault accounting).
        merged = ServingResult.merge(results, system=self.name, num_slots=1)
        merged.extras["slices"] = float(
            sum(instance.compute_slices for instance in instances)
        )
        return merged
