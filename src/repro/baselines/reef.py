"""REEF+: biased sharing with controlled concurrency (§3.2, §6.1).

REEF serves one *real-time* client ahead of best-effort co-runners.
The paper's REEF+ variant replaces REEF's kernel padding with MPS even
spatial partitioning.  We model it faithfully to that description:

* the real-time client (highest quota; ties broken by registration
  order) launches into an unrestricted context the moment work arrives;
* best-effort clients launch into even MPS partitions of the remainder,
  so they can overlap the RT client without delaying it much.

The RT client's latency approaches solo-run; best-effort latency is
sacrificed — the biased behaviour Fig. 3(c) illustrates.
"""

from __future__ import annotations

from .base import ClientState, SharingSystem


class REEFPlusSystem(SharingSystem):
    """Biased sharing: unrestricted RT client + even-partition co-runners."""

    name = "REEF+"

    def setup(self) -> None:
        clients = list(self.clients.values())
        rt_client = max(clients, key=lambda c: c.app.quota)
        n_best_effort = max(1, len(clients) - 1)
        be_share = 1.0 / (n_best_effort + 1)
        for client in clients:
            if client is rt_client:
                limit, label, priority = 1.0, "reef-rt", 1
            else:
                limit, label, priority = be_share, "reef-be", 0
            context = self.registry.create(
                owner=client.app_id, sm_limit=limit, label=label, priority=priority
            )
            client.attachments["queue"] = self.engine.create_queue(
                context, label=client.app_id
            )
            client.attachments["is_rt"] = client is rt_client

    def on_request_activated(self, client: ClientState) -> None:
        self.launch_whole_request(client, client.attachments["queue"])
