"""Experiment harnesses: one module per paper table/figure.

Each module exposes ``run(...) -> dict`` (structured results) and a
``main()`` that prints the same rows/series the paper reports.  Run one
with ``python -m repro.experiments.<name>``.

===========================  =========================================
module                       reproduces
===========================  =========================================
``tab01_applications``       Table 1 (application properties)
``fig04_motivation``         Fig. 1 / Fig. 4(b) motivation pair
``fig09_interference``       Fig. 9 kernel/app-level interference
``fig10_predictors``         Fig. 10 + estimator accuracy (§4.4.2)
``fig12_latency_chart``      Fig. 12 latency charts
``fig13_overall``            Fig. 13 overall (inference + training)
``fig13_traces``             §6.3 real-world traces (workload D)
``fig14_deviation``          Fig. 14 latency deviation
``fig15_multiapp``           Fig. 15 four/eight co-located apps
``fig16_biased``             Fig. 16 biased workload E
``fig17_squads``             Fig. 17 squad policies SEQ/NSP/SP/Semi-SP
``fig18_finegrained``        Fig. 18 fine-grained analysis
``fig19_hyperparams``        Fig. 19 hyper-parameter sweeps
``fig20_ablation``           Fig. 20 ablation study
``sec65_slo``                §6.5 SLO guarantees
``sec69_overhead``           §6.9 scheduling overheads
===========================  =========================================
"""

ALL_EXPERIMENTS = [
    "tab01_applications",
    "fig01_bubbles",
    "fig04_motivation",
    "fig09_interference",
    "fig10_predictors",
    "fig12_latency_chart",
    "fig13_overall",
    "fig13_traces",
    "fig14_deviation",
    "fig15_multiapp",
    "fig16_biased",
    "fig17_squads",
    "fig18_finegrained",
    "fig19_hyperparams",
    "fig20_ablation",
    "sec65_slo",
    "sec69_overhead",
]

# Reproduction-specific ablations (DESIGN.md design choices).
ALL_EXPERIMENTS.append("ablations_extra")
ALL_EXPERIMENTS.append("tail_latency")
# Robustness: graceful degradation under injected faults.
ALL_EXPERIMENTS.append("resilience")
# §4.2.2 multi-GPU: online cluster orchestration at scale.
ALL_EXPERIMENTS.append("cluster_scale")
# Serving gateway: SLO attainment + squad-boundary preemption ablation.
ALL_EXPERIMENTS.append("slo_attainment")
