"""Fig. 1 / Fig. 4(b): the motivating VGG11 + ResNet50 co-location.

The paper measures the latency of executing a VGG11 request and a
ResNet50 request simultaneously (quotas 1/3 and 2/3) under each
scheduling scheme.  Paper numbers: static 16.8 ms, unbounded 13.1 ms,
biased (REEF-style) 14.3 ms, BLESS 11.3 ms average.
"""

from __future__ import annotations

from typing import Dict

from ..apps.models import inference_app
from ..workloads.arrivals import OneShot
from ..workloads.suite import WorkloadBinding
from .common import INFERENCE_SYSTEMS, format_table, mean_latency_ms


def _bindings():
    vgg = inference_app("VGG").with_quota(1 / 3, app_id="VGG-inf#1")
    r50 = inference_app("R50").with_quota(2 / 3, app_id="R50-inf#2")
    return [
        WorkloadBinding(app=vgg, process_factory=OneShot),
        WorkloadBinding(app=r50, process_factory=OneShot),
    ]


def run() -> Dict[str, Dict[str, float]]:
    """Average and per-app latencies (ms) of the simultaneous pair."""
    out: Dict[str, Dict[str, float]] = {}
    for name, factory in INFERENCE_SYSTEMS.items():
        result = factory().serve(_bindings())
        per_app = {a: v / 1000.0 for a, v in result.per_app_mean_latency().items()}
        per_app["avg"] = mean_latency_ms(result)
        out[name] = per_app
    return out


def main(jobs=None) -> None:
    data = run()
    apps = sorted(k for k in next(iter(data.values())) if k != "avg")
    rows = []
    for name, stats in data.items():
        rows.append(
            [name]
            + [f"{stats[a]:.1f}" for a in apps]
            + [f"{stats['avg']:.1f}"]
        )
    print(
        format_table(
            ["system"] + apps + ["avg"],
            rows,
            title="Fig. 4(b): one VGG11 + one ResNet50 request, simultaneous",
        )
    )


if __name__ == "__main__":
    main()
