"""Fig. 17: kernel squad duration under SEQ / NSP / SP / Semi-SP.

Three application pairs — {NAS+BERT}, {BERT+R50}, {NAS+R50} — execute
one squad under four policies: sequential single queue (SEQ), no
spatial restriction (NSP), optimal strict spatial partitioning (SP),
and Semi-SP (restrictions removed for the last 50% of each request's
kernels).  The paper measures NSP/SP/Semi-SP squads 6.5% / 12.9% /
17.6% shorter than SEQ.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..apps.models import inference_app
from .common import format_table
from .squadlab import (
    best_partitions,
    build_squad,
    measure_sequential,
    measure_squad,
    profiles_for,
)

PAIRS: Tuple[Tuple[str, str], ...] = (("NAS", "BERT"), ("BERT", "R50"), ("NAS", "R50"))


def run(kernels_per_side: int = 25) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for model_a, model_b in PAIRS:
        windows = {
            f"{model_a}#1": (inference_app(model_a), 0, kernels_per_side),
            f"{model_b}#2": (inference_app(model_b), 0, kernels_per_side),
        }
        squad = build_squad(windows)
        profiles = profiles_for(windows)
        partitions = best_partitions(squad, profiles)

        seq = measure_sequential(build_squad(windows))
        nsp = measure_squad(build_squad(windows), None)
        sp = measure_squad(build_squad(windows), partitions, split_ratio=1.0)
        semi = measure_squad(build_squad(windows), partitions, split_ratio=0.5)
        out[f"{model_a}+{model_b}"] = {
            "SEQ_us": seq,
            "NSP_us": nsp,
            "SP_us": sp,
            "SemiSP_us": semi,
            "NSP_vs_SEQ": 1 - nsp / seq,
            "SP_vs_SEQ": 1 - sp / seq,
            "SemiSP_vs_SEQ": 1 - semi / seq,
        }
    return out


def main(jobs=None) -> None:
    data = run()
    rows = []
    for pair, stats in data.items():
        rows.append(
            [
                pair,
                f"{stats['SEQ_us'] / 1000:.2f}",
                f"{stats['NSP_us'] / 1000:.2f} ({stats['NSP_vs_SEQ']:+.1%})",
                f"{stats['SP_us'] / 1000:.2f} ({stats['SP_vs_SEQ']:+.1%})",
                f"{stats['SemiSP_us'] / 1000:.2f} ({stats['SemiSP_vs_SEQ']:+.1%})",
            ]
        )
    print(
        format_table(
            ["pair", "SEQ (ms)", "NSP", "SP", "Semi-SP"],
            rows,
            title="Fig. 17: squad duration by policy (reduction vs SEQ)",
        )
    )
    print("(paper: NSP 6.5%, SP 12.9%, Semi-SP 17.6% shorter than SEQ)")


if __name__ == "__main__":
    main()
