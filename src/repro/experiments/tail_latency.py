"""Tail latencies under sharing (an extension beyond the paper).

The paper evaluates *average* latency; serving systems also live and
die by their tails.  This experiment reports P50/P95/P99 per system on
the medium-load symmetric pairs plus the jittered trace replay, to
check that BLESS's bubble squeezing doesn't purchase its average with a
heavier tail (it shouldn't: the deadline-risk scheduler specifically
compensates requests whose promise is endangered, which is a tail-
control mechanism).
"""

from __future__ import annotations

from typing import Dict

from ..workloads.suite import bind_load, bind_trace, symmetric_pair
from .common import INFERENCE_SYSTEMS, format_table

_SYSTEMS = ("GSLICE", "UNBOUND", "BLESS")
_PERCENTILES = (50.0, 95.0, 99.0)


def _collect(bindings_factory) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for name in _SYSTEMS:
        result = INFERENCE_SYSTEMS[name]().serve(bindings_factory())
        # percentile_latency/mean_latency are nan-safe on empty samples
        # (a run where every request was shed must not crash the sweep).
        out[name] = {
            f"p{int(q)}": result.percentile_latency(q) / 1000.0
            for q in _PERCENTILES
        }
        out[name]["mean"] = result.mean_latency() / 1000.0
    return out


def run(requests: int = 12, models=("R50", "BERT")) -> Dict[str, Dict[str, Dict[str, float]]]:
    scenarios: Dict[str, Dict[str, Dict[str, float]]] = {}
    for model in models:
        apps = symmetric_pair(model)
        scenarios[f"{model} pair, load B"] = _collect(
            lambda apps=apps: bind_load(apps, "B", requests=requests)
        )
    apps = symmetric_pair("R50")
    scenarios["R50 pair, azure trace"] = _collect(
        lambda: bind_trace(apps, trace="azure", mean_interval_factor=4.0,
                           duration_intervals=float(requests), seed=5)
    )
    return scenarios


def run_quick(requests: int = 6) -> Dict[str, Dict[str, Dict[str, float]]]:
    return run(requests=requests, models=("R50",))


def main(jobs=None) -> None:
    data = run()
    for scenario, systems in data.items():
        rows = [
            [
                name,
                f"{stats['mean']:.2f}",
                f"{stats['p50']:.2f}",
                f"{stats['p95']:.2f}",
                f"{stats['p99']:.2f}",
            ]
            for name, stats in systems.items()
        ]
        print(
            format_table(
                ["system", "mean", "P50", "P95", "P99"],
                rows,
                title=f"{scenario} (ms)",
            )
        )
        print()


if __name__ == "__main__":
    main()
