"""Table 1: application properties (duration, kernel count, profile cost).

Reproduces the benchmark-application table: per model and mode we report
the solo-run duration, the number of computational kernels, and the
offline profiling cost of §4.2 (one full run plus N partitioned runs on
the simulated GPU).
"""

from __future__ import annotations

from typing import Dict, List

from ..apps.models import MODEL_NAMES, inference_app, training_app, table1_expectation
from ..baselines.iso import solo_latency_us
from ..core.profiler import OfflineProfiler
from .common import format_table


def run() -> Dict[str, Dict[str, Dict[str, float]]]:
    """Measured Table-1 rows: {mode: {model: {duration_ms, kernels, ...}}}."""
    profiler = OfflineProfiler()
    table: Dict[str, Dict[str, Dict[str, float]]] = {}
    for mode, maker in (("inference", inference_app), ("training", training_app)):
        table[mode] = {}
        for model in MODEL_NAMES:
            app = maker(model)
            profile = profiler.profile(app)
            expected_ms, expected_kernels = table1_expectation(model, mode)
            table[mode][model] = {
                "duration_ms": solo_latency_us(app) / 1000.0,
                "paper_duration_ms": expected_ms,
                "kernels": float(app.num_compute_kernels),
                "paper_kernels": float(expected_kernels),
                "profile_cost_s": profile.profiling_cost_us / 1e6,
            }
    return table


def main(jobs=None) -> None:
    table = run()
    for mode, models in table.items():
        rows: List[List[str]] = []
        for model, stats in models.items():
            rows.append(
                [
                    model,
                    f"{stats['duration_ms']:.1f}",
                    f"{stats['paper_duration_ms']:.1f}",
                    f"{int(stats['kernels'])}",
                    f"{int(stats['paper_kernels'])}",
                    f"{stats['profile_cost_s']:.2f}",
                ]
            )
        print(
            format_table(
                ["model", "dur(ms)", "paper", "#kernels", "paper", "profile(s)"],
                rows,
                title=f"Table 1 ({mode})",
            )
        )
        print()


if __name__ == "__main__":
    main()
