"""SLO attainment under a serving gateway (serving extension, not in the paper).

The paper's evaluation replays workloads to completion and reports
latency distributions; real serving systems are judged by **SLO
attainment** — the fraction of latency-critical requests finishing
within their deadline (Hummingbird, Tally; see PAPERS.md).  This
experiment attaches the :mod:`repro.gateway` serving gateway to the
comparison matrix and measures two things:

1. ``attainment`` sweep — the Fig.-13 four-app mix with alternating
   latency-critical / best-effort classes, served at increasing offered
   load (offered load = solo-latency pace over think time) under
   BLESS / ISO / UNBOUND (MPS) / MIG.  BLESS's bubbleless sharing keeps
   latency-critical attainment strictly above the baselines once the
   GPU saturates (load >= 0.7).
2. ``preemption`` ablation — one latency-critical client arriving over
   a saturating best-effort backlog, BLESS with squad-boundary
   preemption on vs off.  Under the **default** config squads are short
   (solo budget ~1 ms), so the arriving request waits at most one near
   boundary and preemption barely moves the needle — the §3.3 story
   that short squads *are* the preemption mechanism.  The ablation
   therefore also serves a long-squad configuration (20 ms solo
   budget), where withdrawing the pending best-effort tail at the next
   rate-change epoch is worth several milliseconds of latency-critical
   latency and a large attainment gap appears.

Everything is seeded; two runs are byte-identical (the CI ``slo-smoke``
leg replays ``run_quick`` against the golden file).
"""

from __future__ import annotations

import dataclasses
from functools import partial
from typing import Dict, List, Optional

from ..apps.models import inference_app
from ..catalog.ingest import ingest_metrics_safe
from ..core.config import DEFAULT_CONFIG
from ..gateway.slo import (
    BEST_EFFORT,
    LATENCY_CRITICAL,
    SLOPolicy,
    SLOSpec,
    check_slo_accounting,
)
from ..metrics.stats import ServingResult
from ..workloads.arrivals import ClosedLoop, Continuous
from ..workloads.suite import (
    WorkloadBinding,
    bind_closed_loop,
    estimated_solo_us,
    multi_app_mix,
)
from .common import INFERENCE_SYSTEMS, ServeCell, format_table, run_cells

_SWEEP_SYSTEMS = ("ISO", "UNBOUND", "MIG", "BLESS")
#: Offered load = solo-latency pace / think time (1.0 = each client
#: re-arrives exactly one solo latency after completion).
_LOADS = (0.5, 0.7, 1.0)
_DEADLINE_FACTOR = 2.0
_SEED = 0  # bind_closed_loop's default seeding, kept explicit

#: Long-squad config for the preemption ablation: squad boundaries
#: every ~20 ms instead of ~1 ms, so the cost of *not* preempting is
#: visible (cf. Hummingbird's motivation).
_LONG_SQUAD = dict(
    max_kernels_per_squad=400,
    solo_squad_fraction=1.0,
    solo_squad_budget_us=20_000.0,
)


def sweep_spec(app_ids: List[str], preempt: bool = True) -> SLOSpec:
    """Alternate latency-critical / best-effort over the app mix."""
    policies = {
        app_id: SLOPolicy(
            slo_class=LATENCY_CRITICAL if index % 2 == 0 else BEST_EFFORT,
            deadline_factor=_DEADLINE_FACTOR,
        )
        for index, app_id in enumerate(app_ids)
    }
    return SLOSpec(policies=policies, preempt=preempt)


def ablation_bindings(
    load: float = 0.7, lc_requests: int = 12, be_requests: int = 30
) -> List[WorkloadBinding]:
    """One latency-critical client over a saturating best-effort stream."""
    lc_app = inference_app("R50").with_quota(0.5, app_id="R50-lc")
    be_app = inference_app("BERT").with_quota(0.5, app_id="BERT-be")
    interval = estimated_solo_us(lc_app) / load
    return [
        WorkloadBinding(
            app=lc_app,
            process_factory=partial(
                ClosedLoop, interval_us=interval, max_requests=lc_requests
            ),
        ),
        WorkloadBinding(
            app=be_app,
            process_factory=partial(Continuous, max_requests=be_requests),
        ),
    ]


def ablation_spec(preempt: bool) -> SLOSpec:
    return SLOSpec(
        policies={
            "R50-lc": SLOPolicy(
                slo_class=LATENCY_CRITICAL, deadline_factor=1.5
            ),
            "BERT-be": SLOPolicy(slo_class=BEST_EFFORT),
        },
        preempt=preempt,
    )


def _cell_stats(result: ServingResult) -> Dict[str, float]:
    extras = result.extras
    arrived = extras.get("slo_arrived_latency_critical", 0.0)
    hits = extras.get("slo_deadline_hits_latency_critical", 0.0)
    misses = extras.get("slo_deadline_misses_latency_critical", 0.0)
    completed = extras.get("slo_completed_latency_critical", 0.0)
    return {
        "slo_attainment": hits / arrived if arrived > 0 else 0.0,
        "deadline_miss_rate": misses / completed if completed > 0 else 0.0,
        "lc_arrived": arrived,
        "lc_hits": hits,
        "preemptions": extras.get("slo_preemptions", 0.0),
        "preempted_kernels": extras.get("slo_preempted_kernels", 0.0),
        "p99_ms": result.percentile_latency(99) / 1000.0,
    }


def run(
    requests: int = 10,
    lc_requests: int = 12,
    be_requests: int = 30,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    apps = multi_app_mix(4)
    app_ids = [app.app_id for app in apps]

    cells = []
    # 1. attainment-vs-load sweep over the comparison matrix.
    for load in _LOADS:
        for name in _SWEEP_SYSTEMS:
            cells.append(
                ServeCell(
                    key=("sweep", load, name),
                    system=name,
                    system_factory=INFERENCE_SYSTEMS[name],
                    bindings_factory=partial(
                        bind_closed_loop, apps, 1.0 / load, requests
                    ),
                    system_kwargs={"slo": sweep_spec(app_ids)},
                )
            )
    # 2. preemption ablation: default vs long-squad config, on vs off.
    for squads, config in (
        ("short", None),
        ("long", dataclasses.replace(DEFAULT_CONFIG, **_LONG_SQUAD)),
    ):
        for preempt in (True, False):
            kwargs: Dict[str, object] = {"slo": ablation_spec(preempt)}
            if config is not None:
                kwargs["config"] = config
            cells.append(
                ServeCell(
                    key=("ablation", squads, preempt),
                    system="BLESS",
                    system_factory=INFERENCE_SYSTEMS["BLESS"],
                    bindings_factory=partial(
                        ablation_bindings, 0.7, lc_requests, be_requests
                    ),
                    system_kwargs=kwargs,
                )
            )

    results = run_cells(cells, jobs=jobs)

    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for cell, result in zip(cells, results):
        # Per-class conservation must hold for every cell (satellite
        # invariant: a request is completed, gate-shed, or fault-shed —
        # never lost, never counted twice).
        check_slo_accounting(result.extras)
        stats = _cell_stats(result)
        if cell.key[0] == "sweep":
            _, load, name = cell.key
            scenario = f"load={load:g}"
            ingest_config = {
                "experiment": "slo_attainment",
                "scenario": "sweep",
                "load": load,
                "requests": requests,
                "deadline_factor": _DEADLINE_FACTOR,
            }
            label = name
        else:
            _, squads, preempt = cell.key
            scenario = f"ablation/{squads}-squads"
            label = "BLESS" if preempt else "BLESS-nopreempt"
            ingest_config = {
                "experiment": "slo_attainment",
                "scenario": "ablation",
                "squads": squads,
                "preempt": bool(preempt),
                "lc_requests": lc_requests,
                "be_requests": be_requests,
            }
        out.setdefault(scenario, {})[label] = stats
        ingest_metrics_safe(
            "slo_attainment",
            label,
            ingest_config,
            stats,
            seed=_SEED,
            jobs=jobs,
        )
    return out


def run_quick(jobs: Optional[int] = None):
    """CI-sized sweep (the slo-smoke golden pins this output).

    The full grid is already CI-sized (~5 s serial), and the smallest
    request counts that keep the load>=0.7 separation strict are the
    defaults — so quick == full here.
    """
    return run(jobs=jobs)


def main(jobs: Optional[int] = None) -> None:
    data = run(jobs=jobs)
    for scenario, systems in data.items():
        rows = [
            [
                name,
                f"{stats['slo_attainment']:.2f}",
                f"{stats['deadline_miss_rate']:.2f}",
                f"{stats['lc_hits']:.0f}/{stats['lc_arrived']:.0f}",
                f"{stats['preemptions']:.0f}",
                f"{stats['p99_ms']:.2f}",
            ]
            for name, stats in systems.items()
        ]
        print(
            format_table(
                ["system", "attainment", "miss rate", "lc hits",
                 "preemptions", "p99 ms"],
                rows,
                title=f"{scenario} (deadline = {_DEADLINE_FACTOR}x solo, "
                f"seed={_SEED})",
            )
        )
        print()


if __name__ == "__main__":
    main()
