"""Shared helpers for the per-figure experiment harnesses.

Every experiment module exposes ``run(...) -> dict`` returning the
structured data the paper's figure/table plots, plus a ``main()`` that
prints it as rows.  Benchmarks under ``benchmarks/`` call ``run`` with
small request counts; the examples and EXPERIMENTS.md use the defaults.

Parallel execution
------------------
The paper's evaluation is a grid of *independent* simulations —
(system, workload binding) cells — so the harness fans cells out over a
``ProcessPoolExecutor`` (`run_cells`).  Determinism is preserved by
construction: every cell is self-contained (its bindings factory builds
a freshly seeded workload inside the worker) and results are merged in
the submission order, so ``jobs=N`` output is byte-identical to
``jobs=1``.  ``jobs=None`` honours the ``REPRO_JOBS`` environment
variable and defaults to serial; ``jobs=0`` means "all cores".
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..baselines import (
    GSLICESystem,
    ISOSystem,
    MIGSystem,
    REEFPlusSystem,
    SharingSystem,
    TemporalSystem,
    UnboundSystem,
    ZicoSystem,
)
from ..core import BlessRuntime
from ..metrics.stats import ServingResult

# The pool machinery itself lives in ``repro.parallel`` (so the cluster
# controller can reuse it without importing the experiments layer);
# these re-exports keep the historical import surface working.
from ..parallel import (  # noqa: F401  (re-exported API)
    BACKENDS,
    CellExecutionError,
    ServeCell,
    _caller_experiment,
    _reset_pool,
    resolve_backend,
    resolve_jobs,
    run_cells,
)
from ..workloads.suite import WorkloadBinding

# The comparison matrix of §6.1 for inference workloads.
INFERENCE_SYSTEMS: Dict[str, Callable[[], SharingSystem]] = {
    "ISO": ISOSystem,
    "TEMPORAL": TemporalSystem,
    "MIG": MIGSystem,
    "GSLICE": GSLICESystem,
    "UNBOUND": UnboundSystem,
    "REEF+": REEFPlusSystem,
    "BLESS": BlessRuntime,
}

# GSLICE and REEF+ are inference-only (§6.3); ZICO replaces them.
TRAINING_SYSTEMS: Dict[str, Callable[[], SharingSystem]] = {
    "ISO": ISOSystem,
    "TEMPORAL": TemporalSystem,
    "MIG": MIGSystem,
    "UNBOUND": UnboundSystem,
    "ZICO": ZicoSystem,
    "BLESS": BlessRuntime,
}


def serve_all(
    bindings_factory: Callable[[], Sequence[WorkloadBinding]],
    systems: Optional[Dict[str, Callable[[], SharingSystem]]] = None,
    jobs: Optional[int] = None,
    experiment: Optional[str] = None,
) -> Dict[str, ServingResult]:
    """Serve the same (freshly bound) workload on every system.

    ``experiment`` labels the grid's rows in the results catalog; by
    default the calling experiment module's name is used, so every
    per-figure runner is queryable by name without code changes.
    """
    chosen = systems or INFERENCE_SYSTEMS
    cells = [
        ServeCell(
            key=name,
            system=name,
            system_factory=factory,
            bindings_factory=bindings_factory,
        )
        for name, factory in chosen.items()
    ]
    results = run_cells(
        cells, jobs=jobs, experiment=experiment or _caller_experiment(2)
    )
    return {cell.system: result for cell, result in zip(cells, results)}


def mean_latency_ms(result: ServingResult) -> float:
    return result.mean_of_app_means() / 1000.0


def reduction_vs(results: Dict[str, ServingResult], reference: str) -> Dict[str, float]:
    """Fractional latency reduction of BLESS vs each other system."""
    bless = mean_latency_ms(results["BLESS"])
    out = {}
    for name, result in results.items():
        if name in ("BLESS", reference):
            continue
        other = mean_latency_ms(result)
        out[name] = 1.0 - bless / other if other > 0 else float("nan")
    return out


def format_table(
    header: List[str], rows: List[List[str]], title: str = ""
) -> str:
    """Plain fixed-width table used by every experiment's main().

    Ragged input is handled defensively: a row with more cells than the
    header gets extra (blank-headed) columns, and short rows are padded
    with empty cells — renderers over heterogeneous dicts (scenario
    ``show``, ad-hoc catalog queries) must never crash the report.
    """
    columns = max([len(header)] + [len(row) for row in rows], default=0)
    header = list(header) + [""] * (columns - len(header))
    rows = [list(row) + [""] * (columns - len(row)) for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
