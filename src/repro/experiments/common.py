"""Shared helpers for the per-figure experiment harnesses.

Every experiment module exposes ``run(...) -> dict`` returning the
structured data the paper's figure/table plots, plus a ``main()`` that
prints it as rows.  Benchmarks under ``benchmarks/`` call ``run`` with
small request counts; the examples and EXPERIMENTS.md use the defaults.

Parallel execution
------------------
The paper's evaluation is a grid of *independent* simulations —
(system, workload binding) cells — so the harness fans cells out over a
``ProcessPoolExecutor`` (`run_cells`).  Determinism is preserved by
construction: every cell is self-contained (its bindings factory builds
a freshly seeded workload inside the worker) and results are merged in
the submission order, so ``jobs=N`` output is byte-identical to
``jobs=1``.  ``jobs=None`` honours the ``REPRO_JOBS`` environment
variable and defaults to serial; ``jobs=0`` means "all cores".
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence

from ..baselines import (
    GSLICESystem,
    ISOSystem,
    MIGSystem,
    REEFPlusSystem,
    SharingSystem,
    TemporalSystem,
    UnboundSystem,
    ZicoSystem,
)
from ..core import BlessRuntime
from ..metrics.stats import ServingResult
from ..workloads.suite import WorkloadBinding

# The comparison matrix of §6.1 for inference workloads.
INFERENCE_SYSTEMS: Dict[str, Callable[[], SharingSystem]] = {
    "ISO": ISOSystem,
    "TEMPORAL": TemporalSystem,
    "MIG": MIGSystem,
    "GSLICE": GSLICESystem,
    "UNBOUND": UnboundSystem,
    "REEF+": REEFPlusSystem,
    "BLESS": BlessRuntime,
}

# GSLICE and REEF+ are inference-only (§6.3); ZICO replaces them.
TRAINING_SYSTEMS: Dict[str, Callable[[], SharingSystem]] = {
    "ISO": ISOSystem,
    "TEMPORAL": TemporalSystem,
    "MIG": MIGSystem,
    "UNBOUND": UnboundSystem,
    "ZICO": ZicoSystem,
    "BLESS": BlessRuntime,
}


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker-count policy shared by the CLI and the runners.

    ``None`` falls back to the ``REPRO_JOBS`` environment variable and
    then to 1 (serial — today's behaviour); ``0`` or a negative count
    means "use every core".
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        jobs = int(env) if env else 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


@dataclass(frozen=True)
class ServeCell:
    """One independent (system, workload-binding) simulation.

    Cells are shipped to worker processes, so every field must pickle:
    use ``functools.partial`` over module-level functions for the
    bindings factory, never a closure or lambda.
    """

    key: Hashable
    system: str
    system_factory: Callable[[], SharingSystem]
    bindings_factory: Callable[[], Sequence[WorkloadBinding]]
    # Extra keyword arguments for the system factory (picklable).
    system_kwargs: dict = field(default_factory=dict)

    def execute(self) -> ServingResult:
        system = self.system_factory(**self.system_kwargs)
        return system.serve(self.bindings_factory())


def _execute_cell(cell: ServeCell) -> ServingResult:
    # Module-level trampoline so ProcessPoolExecutor can pickle it.
    return cell.execute()


class CellExecutionError(RuntimeError):
    """A cell failed; carries which (system, binding) it was.

    A bare worker traceback loses the grid coordinates that make a
    failure debuggable; this wrapper pins them on.
    """

    def __init__(self, cell: ServeCell, cause: BaseException):
        self.key = cell.key
        self.system = cell.system
        super().__init__(
            f"cell {cell.key!r} (system={cell.system}) failed: "
            f"{type(cause).__name__}: {cause}"
        )


# One cached worker pool, reused across run_cells calls: a report run
# executes dozens of cell grids back to back, and forking a fresh pool
# for each would dominate small grids.  Keyed by (worker count, engine
# mode) because forked workers freeze REPRO_ENGINE_MODE at creation.
_pool: Optional[ProcessPoolExecutor] = None
_pool_key: Optional[tuple] = None


def _get_pool(workers: int) -> ProcessPoolExecutor:
    global _pool, _pool_key
    key = (workers, os.environ.get("REPRO_ENGINE_MODE", ""))
    if _pool is not None and _pool_key == key:
        return _pool
    if _pool is not None:
        _pool.shutdown(wait=False)
    _pool = ProcessPoolExecutor(max_workers=workers)
    _pool_key = key
    return _pool


def _reset_pool() -> None:
    """Drop a broken cached pool so the next run_cells starts fresh."""
    global _pool, _pool_key
    if _pool is not None:
        _pool.shutdown(wait=False)
    _pool = None
    _pool_key = None


def _execute_serial(cell: ServeCell) -> ServingResult:
    try:
        return cell.execute()
    except Exception as exc:
        raise CellExecutionError(cell, exc) from exc


def run_cells(
    cells: Iterable[ServeCell], jobs: Optional[int] = None
) -> List[ServingResult]:
    """Execute every cell; results align with the input order.

    With ``jobs > 1`` cells run across a process pool; per-cell futures
    are collected in submission order, and each cell reconstructs its
    own workload from scratch inside the worker, so the output is
    byte-identical to the serial path.

    A failing cell raises :class:`CellExecutionError` naming its grid
    coordinates.  Before giving up, the failed cell is re-run serially
    in this process: a worker-environment casualty (pool torn down,
    import skew, resource limits) recovers transparently, while a
    genuine simulation bug fails the same way with a local, complete
    traceback.
    """
    cells = list(cells)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(cells) <= 1:
        return [_execute_serial(cell) for cell in cells]
    pool = _get_pool(min(jobs, len(cells)))
    try:
        futures = [pool.submit(_execute_cell, cell) for cell in cells]
    except RuntimeError:
        # Pool already shut down (e.g. interpreter teardown races).
        _reset_pool()
        return [_execute_serial(cell) for cell in cells]
    results: List[ServingResult] = []
    broken = False
    for cell, future in zip(cells, futures):
        try:
            results.append(future.result())
        except BrokenProcessPool:
            # The pool is gone (worker killed, fork bomb, OOM).  All
            # remaining futures will fail the same way: re-run each
            # affected cell serially instead of losing the whole grid.
            broken = True
            results.append(_execute_serial(cell))
        except Exception:
            # Only this cell failed in the worker — retry it here so
            # transient worker trouble doesn't kill the run; a real
            # bug re-raises as CellExecutionError with full context.
            results.append(_execute_serial(cell))
    if broken:
        _reset_pool()
    return results


def serve_all(
    bindings_factory: Callable[[], Sequence[WorkloadBinding]],
    systems: Optional[Dict[str, Callable[[], SharingSystem]]] = None,
    jobs: Optional[int] = None,
) -> Dict[str, ServingResult]:
    """Serve the same (freshly bound) workload on every system."""
    chosen = systems or INFERENCE_SYSTEMS
    cells = [
        ServeCell(
            key=name,
            system=name,
            system_factory=factory,
            bindings_factory=bindings_factory,
        )
        for name, factory in chosen.items()
    ]
    results = run_cells(cells, jobs=jobs)
    return {cell.system: result for cell, result in zip(cells, results)}


def mean_latency_ms(result: ServingResult) -> float:
    return result.mean_of_app_means() / 1000.0


def reduction_vs(results: Dict[str, ServingResult], reference: str) -> Dict[str, float]:
    """Fractional latency reduction of BLESS vs each other system."""
    bless = mean_latency_ms(results["BLESS"])
    out = {}
    for name, result in results.items():
        if name in ("BLESS", reference):
            continue
        other = mean_latency_ms(result)
        out[name] = 1.0 - bless / other if other > 0 else float("nan")
    return out


def format_table(
    header: List[str], rows: List[List[str]], title: str = ""
) -> str:
    """Plain fixed-width table used by every experiment's main()."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
