"""Resilience under injected faults (robustness extension, not in the paper).

The paper evaluates BLESS in a fault-free world.  This experiment asks
what the sharing systems do when that assumption breaks: kernels fail
transiently and are retried, one MPS context is torn down mid-run, and
slowdown spikes perturb durations away from the offline profiles.  The
sweep serves the same workload under increasing transient-failure rates
(plus one context crash) and reports, per system:

* ``completed`` / ``arrived`` — how much of the offered load finished;
* ``shed`` — requests dropped after a kernel exhausted its retries;
* ``retries`` — transient failures absorbed by in-place retry;
* ``degradation`` — total degradation events (retries, crashes, kills,
  relaunches, sheds — see ``FaultStats.degradation_events``).

The graceful-degradation claim (docs/robustness.md) is that under a
crash plus a 5% transient-failure rate every *non-faulted* request
still completes: ``completed + shed == arrived`` with ``shed`` small.
Everything is seeded, so two runs of this sweep are byte-identical.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, Optional

from ..catalog.ingest import ingest_metrics_safe
from ..gpusim.faults import FaultPlan
from ..workloads.suite import bind_load, symmetric_pair
from .common import INFERENCE_SYSTEMS, ServeCell, format_table, run_cells

_SYSTEMS = ("GSLICE", "UNBOUND", "BLESS")
_FAILURE_RATES = (0.0, 0.02, 0.05, 0.10)
# One restricted-context teardown early in the run (us).
_CRASH_AT_US = (4_000.0,)
_SEED = 1234


def make_plan(
    failure_rate: float,
    seed: int = _SEED,
    crash: bool = True,
    slowdown_rate: float = 0.05,
) -> FaultPlan:
    """The sweep's canonical plan for one failure-rate point."""
    return FaultPlan(
        seed=seed,
        kernel_failure_rate=failure_rate,
        slowdown_rate=slowdown_rate,
        slowdown_factor=2.0,
        context_crash_times=_CRASH_AT_US if crash else (),
        max_retries=4,
    )


def run(
    requests: int = 8,
    model: str = "R50",
    seed: int = _SEED,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    apps = symmetric_pair(model)
    cells = []
    for rate in _FAILURE_RATES:
        plan = make_plan(rate, seed=seed)
        for name in _SYSTEMS:
            cells.append(
                ServeCell(
                    key=(rate, name),
                    system=name,
                    system_factory=INFERENCE_SYSTEMS[name],
                    bindings_factory=partial(bind_load, apps, "B", requests),
                    system_kwargs={"fault_plan": plan},
                )
            )
    results = run_cells(cells, jobs=jobs)

    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for cell, result in zip(cells, results):
        rate, name = cell.key
        extras = result.extras
        arrived = extras.get("fault_requests_arrived", float(len(result.records)))
        stats = {
            "arrived": arrived,
            "completed": float(len(result.records)),
            "shed": extras.get("fault_shed_requests", 0.0),
            "retries": extras.get("fault_transient_retries", 0.0),
            "degradation": extras.get("fault_degradation_events", 0.0),
            "mean_ms": result.mean_latency() / 1000.0,
        }
        out.setdefault(f"failure={rate:g}", {})[name] = stats
        # Scenario-level catalog row alongside the per-cell auto-ingest:
        # one row per (failure rate, system) grid point, gate-queryable.
        ingest_metrics_safe(
            "resilience",
            name,
            {
                "experiment": "resilience",
                "failure_rate": rate,
                "model": model,
                "requests": requests,
                "seed": seed,
            },
            {
                **stats,
                "throughput_qps": result.throughput_qps(),
                "p99_latency_us": result.percentile_latency(99),
            },
            seed=seed,
            jobs=jobs,
        )
    return out


def run_quick(requests: int = 4, jobs: Optional[int] = None):
    """CI-sized sweep (the fault-smoke golden pins this output)."""
    return run(requests=requests, jobs=jobs)


def main(jobs: Optional[int] = None) -> None:
    data = run(jobs=jobs)
    for scenario, systems in data.items():
        rows = [
            [
                name,
                f"{stats['completed']:.0f}/{stats['arrived']:.0f}",
                f"{stats['shed']:.0f}",
                f"{stats['retries']:.0f}",
                f"{stats['degradation']:.0f}",
                f"{stats['mean_ms']:.2f}",
            ]
            for name, stats in systems.items()
        ]
        print(
            format_table(
                ["system", "done", "shed", "retries", "degradation", "mean ms"],
                rows,
                title=f"{scenario} (+1 context crash, seed={_SEED})",
            )
        )
        print()


if __name__ == "__main__":
    main()
