"""Fig. 16 / workload E: extremely biased quota + load mix.

App1 (R50) provisions 8/9 of the GPU but submits requests rarely; App2
provisions 1/9 and submits continuously.  The paper reports App1's
latency rising ~9% over ISO under BLESS (6% under GSLICE) while App2's
throughput improves 2.2x over GSLICE — the slight App1 sacrifice buys
the co-runner's throughput.
"""

from __future__ import annotations

from typing import Dict

from ..apps.models import inference_app
from ..baselines.iso import solo_latency_us
from ..workloads.suite import bind_biased
from .common import INFERENCE_SYSTEMS, format_table

_SYSTEMS = ("GSLICE", "BLESS")


def run(requests: int = 8, app2_model: str = "VGG") -> Dict[str, Dict[str, float]]:
    app1 = inference_app("R50")
    app2 = inference_app(app2_model)
    iso_app1 = solo_latency_us(app1, 8 / 9)
    out: Dict[str, Dict[str, float]] = {}
    for name in _SYSTEMS:
        result = INFERENCE_SYSTEMS[name]().serve(
            bind_biased(app1, app2, requests=requests)
        )
        app1_id = next(a for a in result.app_ids if "#1" in a)
        app2_id = next(a for a in result.app_ids if "#2" in a)
        out[name] = {
            "app1_latency_ms": result.mean_latency(app1_id) / 1000.0,
            "app1_vs_iso": result.mean_latency(app1_id) / iso_app1 - 1.0,
            "app2_qps": result.throughput_qps(app2_id),
        }
    out["_app2_speedup"] = {
        "bless_over_gslice": out["BLESS"]["app2_qps"] / out["GSLICE"]["app2_qps"]
    }
    return out


def main(jobs=None) -> None:
    data = run()
    rows = [
        [
            name,
            f"{stats['app1_latency_ms']:.2f}",
            f"{stats['app1_vs_iso']:+.1%}",
            f"{stats['app2_qps']:.1f}",
        ]
        for name, stats in data.items()
        if not name.startswith("_")
    ]
    print(
        format_table(
            ["system", "app1 latency (ms)", "vs ISO", "app2 qps"],
            rows,
            title="Fig. 16: biased workload E (R50 @ 8/9 low load + app2 @ 1/9 dense)",
        )
    )
    speedup = data["_app2_speedup"]["bless_over_gslice"]
    print(f"\nApp2 throughput: BLESS {speedup:.1f}x over GSLICE (paper: 2.2x)")


if __name__ == "__main__":
    main()
