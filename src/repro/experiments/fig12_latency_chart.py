"""Fig. 12: latency charts of pair-wise deployments under BLESS.

Each point is the (app1 latency, app2 latency) pair under one of the
seven Table-2 quota assignments, together with the ISO target point —
the paper's mint-green feasibility region.  Points should dominate
(lie below) their ISO targets for every quota split, and move toward
the origin as the load drops.
"""

from __future__ import annotations

from typing import Dict, List

from ..apps.models import inference_app
from ..baselines.iso import ISOSystem
from ..core.runtime import BlessRuntime
from ..workloads.suite import QUOTAS_2MODEL, bind_load
from .common import format_table


def run(
    model_a: str = "R50",
    model_b: str = "VGG",
    load: str = "B",
    requests: int = 8,
) -> List[Dict[str, float]]:
    """One chart: latencies under each quota split, with ISO targets."""
    points = []
    for quota_a, quota_b in QUOTAS_2MODEL:
        apps = [
            inference_app(model_a).with_quota(quota_a, app_id="app1"),
            inference_app(model_b).with_quota(quota_b, app_id="app2"),
        ]
        bless = BlessRuntime().serve(bind_load(apps, load, requests=requests))
        iso = ISOSystem().serve(bind_load(apps, load, requests=requests))
        points.append(
            {
                "quota_a": quota_a,
                "quota_b": quota_b,
                "bless_a_ms": bless.mean_latency("app1") / 1000.0,
                "bless_b_ms": bless.mean_latency("app2") / 1000.0,
                "iso_a_ms": iso.mean_latency("app1") / 1000.0,
                "iso_b_ms": iso.mean_latency("app2") / 1000.0,
            }
        )
    return points


def run_cases(requests: int = 8) -> Dict[str, List[Dict[str, float]]]:
    """The four chart cases of Fig. 12."""
    return {
        # (a)/(b): symmetric workload at two load levels.
        "a_R50xR50_loadB": run("R50", "R50", "B", requests),
        "b_R50xR50_loadC": run("R50", "R50", "C", requests),
        # (c): homogeneous kernels (two CNNs), (d): heterogeneous.
        "c_R50xR101_loadB": run("R50", "R101", "B", requests),
        "d_NASxBERT_loadB": run("NAS", "BERT", "B", requests),
    }


def main(jobs=None) -> None:
    for case, points in run_cases().items():
        rows = [
            [
                f"({p['quota_a']:.2f},{p['quota_b']:.2f})",
                f"{p['bless_a_ms']:.1f}",
                f"{p['bless_b_ms']:.1f}",
                f"{p['iso_a_ms']:.1f}",
                f"{p['iso_b_ms']:.1f}",
            ]
            for p in points
        ]
        print(
            format_table(
                ["quotas", "BLESS app1", "BLESS app2", "ISO app1", "ISO app2"],
                rows,
                title=f"Fig. 12 case {case} (ms)",
            )
        )
        print()


if __name__ == "__main__":
    main()
