"""§6.3 "Performance with real-world traces" (workload D).

Mutual pairs of the five inference models replay synthetic Twitter-2018
and Azure-Functions traces.  Paper: with the Twitter trace at 50/50
quotas BLESS cuts latency 18.4%/20.5%/7.3% vs TEMPORAL/MIG/GSLICE; with
the sparse Azure trace the cuts grow to 49.3%/41.2%/32.1% thanks to the
abundant bubbles.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..apps.models import inference_app
from ..workloads.suite import bind_trace, mutual_pairs
from .common import (
    INFERENCE_SYSTEMS,
    ServeCell,
    format_table,
    mean_latency_ms,
    run_cells,
)

_SYSTEMS = ("TEMPORAL", "MIG", "GSLICE", "BLESS")

# Twitter is dense (tenancy close to saturation — but stable: co-run
# service at a 50% partition is ~1.5x solo, so the arrival interval
# must exceed that), Azure sparse/low-load.
_TRACE_PARAMS = {
    "twitter": {"mean_interval_factor": 2.5, "duration_intervals": 15.0},
    "azure": {"mean_interval_factor": 4.0, "duration_intervals": 10.0},
}


def run(
    pairs: Sequence[Tuple[str, str]] = None,
    seed: int = 11,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Mean latency per system per trace, averaged over model pairs."""
    chosen_pairs = list(pairs) if pairs is not None else mutual_pairs()[:4]
    cells: List[ServeCell] = []
    for trace, params in _TRACE_PARAMS.items():
        for index, (model_a, model_b) in enumerate(chosen_pairs):
            apps = [
                inference_app(model_a).with_quota(0.5, app_id="app1"),
                inference_app(model_b).with_quota(0.5, app_id="app2"),
            ]
            bindings = partial(
                bind_trace, apps, trace=trace, seed=seed + index, **params
            )
            for name in _SYSTEMS:
                cells.append(
                    ServeCell(
                        key=trace,
                        system=name,
                        system_factory=INFERENCE_SYSTEMS[name],
                        bindings_factory=bindings,
                    )
                )
    sums: Dict[str, Dict[str, List[float]]] = {
        trace: {name: [] for name in _SYSTEMS} for trace in _TRACE_PARAMS
    }
    for cell, result in zip(cells, run_cells(cells, jobs=jobs)):
        sums[cell.key][cell.system].append(mean_latency_ms(result))

    out: Dict[str, Dict[str, float]] = {}
    for trace in _TRACE_PARAMS:
        out[trace] = {name: float(np.mean(v)) for name, v in sums[trace].items()}
        bless = out[trace]["BLESS"]
        for name in _SYSTEMS:
            if name != "BLESS":
                out[trace][f"reduction_vs_{name}"] = 1.0 - bless / out[trace][name]
    return out


def main(jobs: Optional[int] = None) -> None:
    data = run(jobs=jobs)
    for trace, stats in data.items():
        rows = [
            [name, f"{stats[name]:.2f}",
             f"{stats.get('reduction_vs_' + name, 0):.1%}" if name != "BLESS" else "-"]
            for name in _SYSTEMS
        ]
        print(format_table(["system", "avg latency (ms)", "BLESS reduction"],
                           rows, title=f"Workload D: {trace} trace"))
        print()
    print("(paper: twitter 18.4/20.5/7.3% vs TEMPORAL/MIG/GSLICE; "
          "azure 49.3/41.2/32.1%)")


if __name__ == "__main__":
    main()
