"""Fig. 14: average latency deviation under uneven quota assignments.

Nine pair-wise deployments (5 symmetric + 4 asymmetric "R50 + other")
are served under the seven Table-2 quota splits; each system's latency
deviation vs the ISO targets is averaged.  The paper reports TEMPORAL
14.3 ms, GSLICE 2.1 ms, BLESS 0.6 ms — and MIG infeasible for most of
these splits (fixed 1/7 slice granularity).
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional

import numpy as np

from ..apps.models import MODEL_NAMES, inference_app
from ..baselines.iso import iso_targets_us
from ..metrics.deviation import latency_deviation_us
from ..workloads.suite import QUOTAS_2MODEL, bind_load
from .common import INFERENCE_SYSTEMS, ServeCell, run_cells


def _pairs() -> List[List[str]]:
    symmetric = [[m, m] for m in MODEL_NAMES]
    asymmetric = [["R50", m] for m in MODEL_NAMES if m != "R50"]
    return symmetric + asymmetric


def run(
    load: str = "B",
    requests: int = 6,
    systems=("TEMPORAL", "GSLICE", "UNBOUND", "REEF+", "BLESS"),
    quotas=QUOTAS_2MODEL,
    jobs: Optional[int] = None,
) -> Dict[str, float]:
    """Mean latency deviation (us) per system over pairs x quota splits."""
    combos = []
    cells: List[ServeCell] = []
    for model_a, model_b in _pairs():
        for quota_a, quota_b in quotas:
            apps = [
                inference_app(model_a).with_quota(quota_a, app_id="app1"),
                inference_app(model_b).with_quota(quota_b, app_id="app2"),
            ]
            bindings = partial(bind_load, apps, load, requests=requests)
            combos.append(bindings)
            for name in systems:
                cells.append(
                    ServeCell(
                        key=len(combos) - 1,
                        system=name,
                        system_factory=INFERENCE_SYSTEMS[name],
                        bindings_factory=bindings,
                    )
                )
    targets = [iso_targets_us(bindings()) for bindings in combos]
    deviations: Dict[str, List[float]] = {name: [] for name in systems}
    for cell, result in zip(cells, run_cells(cells, jobs=jobs)):
        deviations[cell.system].append(
            latency_deviation_us(result, targets[cell.key])
        )
    return {name: float(np.mean(values)) for name, values in deviations.items()}


def run_quick(load: str = "B", requests: int = 5) -> Dict[str, float]:
    """Smaller version for benches: 3 pairs x 3 quota splits."""
    quotas = (QUOTAS_2MODEL[0], QUOTAS_2MODEL[3], QUOTAS_2MODEL[6])
    deviations: Dict[str, List[float]] = {}
    for model_a, model_b in [["R50", "R50"], ["R50", "VGG"], ["BERT", "BERT"]]:
        for quota_a, quota_b in quotas:
            apps = [
                inference_app(model_a).with_quota(quota_a, app_id="app1"),
                inference_app(model_b).with_quota(quota_b, app_id="app2"),
            ]
            def bindings(apps=apps):
                return bind_load(apps, load, requests=requests)

            targets = iso_targets_us(bindings())
            for name in ("TEMPORAL", "GSLICE", "BLESS"):
                result = INFERENCE_SYSTEMS[name]().serve(bindings())
                deviations.setdefault(name, []).append(
                    latency_deviation_us(result, targets)
                )
    return {name: float(np.mean(v)) for name, v in deviations.items()}


def main(jobs: Optional[int] = None) -> None:
    data = run(jobs=jobs)
    print("Fig. 14: average latency deviation (ms), lower is better")
    for name, value in sorted(data.items(), key=lambda kv: kv[1], reverse=True):
        print(f"  {name:9s} {value / 1000.0:7.2f}")
    print("(paper: TEMPORAL 14.3, GSLICE 2.1, BLESS 0.6; MIG infeasible)")


if __name__ == "__main__":
    main()
