"""Fig. 19: the impact of BLESS's hyper-parameters.

(a) Max kernels per squad: larger squads amortise boundary overheads
(average latency drops) but coarser scheduling limits the largest
promisable quota.
(b) Semi-SP split ratio c%: squad duration vs c, with the optimum
around the middle of the range.
(c) SM count: with fewer SMs the GPU saturates more easily and BLESS's
latency reduction vs GSLICE grows (paper: 54.4% at small instances
shrinking to 40.2% at full 108 SMs — we reproduce the downward trend).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..apps.models import inference_app
from ..baselines.gslice import GSLICESystem
from ..core.config import BlessConfig
from ..core.runtime import BlessRuntime
from ..gpusim.device import GPUSpec
from ..workloads.suite import bind_load, symmetric_pair
from .common import format_table, mean_latency_ms
from .squadlab import best_partitions, build_squad, measure_squad, profiles_for


def squad_size_sweep(
    sizes: Tuple[int, ...] = (10, 20, 50, 100),
    requests: int = 8,
    load: str = "A",
) -> Dict[int, float]:
    """(a) average latency vs max kernels per squad (R50 pair, high load)."""
    apps = symmetric_pair("R50")
    out = {}
    for size in sizes:
        config = BlessConfig(max_kernels_per_squad=size)
        result = BlessRuntime(config=config).serve(
            bind_load(apps, load, requests=requests)
        )
        out[size] = mean_latency_ms(result)
    return out


def max_quota_vs_squad_size(
    sizes: Tuple[int, ...] = (20, 50, 100),
    requests: int = 6,
    tolerance: float = 1.10,
) -> Dict[int, float]:
    """(a) largest promisable quota per squad size.

    A quota is 'promisable' when the high-quota app's achieved latency
    stays within ``tolerance`` of its ISO target while a 1/9-quota
    co-runner runs a dense load.  Bigger squads mean coarser scheduling
    and a smaller promisable maximum (paper: 8/9 at 20 kernels/squad,
    <= 3/4 at 100).
    """
    from ..baselines.iso import solo_latency_us
    from ..workloads.suite import bind_biased

    candidate_quotas = (8 / 9, 5 / 6, 3 / 4, 2 / 3)
    out = {}
    for size in sizes:
        config = BlessConfig(max_kernels_per_squad=size)
        achieved = 0.0
        for quota in candidate_quotas:
            app1 = inference_app("R50")
            app2 = inference_app("VGG")
            bindings = bind_biased(app1, app2, requests=requests)
            # Re-quota app1 to the candidate.
            bindings[0] = type(bindings[0])(
                app=app1.with_quota(quota, app_id=bindings[0].app.app_id),
                process_factory=bindings[0].process_factory,
            )
            iso = solo_latency_us(app1, quota)
            result = BlessRuntime(config=config).serve(bindings)
            app1_id = bindings[0].app.app_id
            if result.mean_latency(app1_id) <= tolerance * iso:
                achieved = quota
                break
        out[size] = achieved
    return out


def split_ratio_sweep(
    ratios: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    kernels_per_side: int = 25,
) -> Dict[float, float]:
    """(b) normalised squad duration vs split ratio c% ({NAS+BERT})."""
    windows = {
        "NAS#1": (inference_app("NAS"), 0, kernels_per_side + 8),
        "BERT#2": (inference_app("BERT"), 0, kernels_per_side),
    }
    squad = build_squad(windows)
    profiles = profiles_for(windows)
    partitions = best_partitions(squad, profiles)
    durations = {
        c: measure_squad(build_squad(windows), partitions, split_ratio=c)
        for c in ratios
    }
    best = min(durations.values())
    return {c: d / best for c, d in durations.items()}


def _rescale_app_for_gpu(app, num_sms: int, reference_sms: int = 108):
    """Re-express an app's kernels relative to a smaller GPU.

    Kernel SM demands are fractions of the reference A100.  On a GPU
    with fewer SMs, the same kernel needs a larger *fraction* — and
    once it needs more than the whole device, it simply runs longer.
    This is what makes small GPU instances easier to saturate (the
    effect Fig. 19(c) measures with MIG-limited instances).
    """
    from ..apps.application import Application
    from ..gpusim.kernel import KernelSpec

    scale = reference_sms / num_sms
    kernels = []
    for k in app.kernels:
        if not k.is_compute:
            kernels.append(k)
            continue
        raw_demand = k.sm_demand * scale
        demand = min(1.0, raw_demand)
        stretch = raw_demand / demand  # >1 when the kernel overflows
        kernels.append(
            KernelSpec(
                name=k.name,
                kind=k.kind,
                base_duration_us=k.base_duration_us * stretch,
                sm_demand=demand,
                mem_intensity=k.mem_intensity,
                serial_fraction=k.serial_fraction,
                dispatch_gap_us=k.dispatch_gap_us,
            )
        )
    return Application(
        name=app.name, kind=app.kind, kernels=kernels,
        memory_mb=app.memory_mb, quota=app.quota, app_id=app.app_id,
    )


def sm_count_sweep(
    sm_counts: Tuple[int, ...] = (28, 56, 84, 108),
    requests: int = 8,
) -> Dict[int, float]:
    """(c) BLESS's latency reduction vs GSLICE as SM count varies.

    Paper: 54.4% at the smallest MIG instance shrinking to 40.2% at the
    full 108 SMs — smaller GPUs are easier for an app to saturate, so
    bubbles are scarcer relative to demand and the managed sharing of
    resources matters more.
    """
    out = {}
    for sms in sm_counts:
        spec = GPUSpec(num_sms=sms)
        apps = [
            _rescale_app_for_gpu(app, sms) for app in symmetric_pair("R50")
        ]
        gslice = GSLICESystem(gpu_spec=spec).serve(
            bind_load(apps, "C", requests=requests)
        )
        bless = BlessRuntime(gpu_spec=spec).serve(
            bind_load(apps, "C", requests=requests)
        )
        out[sms] = 1.0 - mean_latency_ms(bless) / mean_latency_ms(gslice)
    return out


def run() -> Dict[str, object]:
    return {
        "squad_size_latency": squad_size_sweep(),
        "squad_size_max_quota": max_quota_vs_squad_size(),
        "split_ratio": split_ratio_sweep(),
        "sm_count_reduction": sm_count_sweep(),
    }


def main(jobs=None) -> None:
    data = run()
    rows = [[str(k), f"{v:.2f}"] for k, v in data["squad_size_latency"].items()]
    print(format_table(["max kernels/squad", "avg latency (ms)"], rows,
                       "Fig. 19(a): squad size vs latency"))
    rows = [[str(k), f"{v:.3f}"] for k, v in data["squad_size_max_quota"].items()]
    print()
    print(format_table(["max kernels/squad", "max promisable quota"], rows))
    rows = [[f"{k:.0%}", f"{v:.3f}"] for k, v in data["split_ratio"].items()]
    print()
    print(format_table(["split ratio c%", "normalised duration"], rows,
                       "Fig. 19(b): split ratio"))
    rows = [[str(k), f"{v:.1%}"] for k, v in data["sm_count_reduction"].items()]
    print()
    print(format_table(["SMs", "BLESS reduction vs GSLICE"], rows,
                       "Fig. 19(c): SM count"))


if __name__ == "__main__":
    main()
