"""Fig. 1 / Fig. 3: the bubble analysis behind the motivation.

Reproduces the paper's opening experiment: VGG11 (quota 1/3) and
ResNet50 (quota 2/3) serve a trace-like load under temporal sharing,
spatial sharing, and BLESS; we record the execution timeline, classify
every unit of GPU capacity (busy / intra-request bubble /
inter-request bubble / vacant), and report the latency of a *marked*
request that arrives while the co-runner is mid-flight — the request
Fig. 1 follows (17.1 ms temporal, 11.5 ms spatial, 10.1 ms ideal).
"""

from __future__ import annotations

from typing import Dict

from ..analysis.bubbles import BubbleTaxonomy, analyze_run
from ..apps.models import inference_app
from ..baselines.gslice import GSLICESystem
from ..baselines.temporal import TemporalSystem
from ..core.runtime import BlessRuntime
from ..workloads.arrivals import TraceReplay
from ..workloads.suite import WorkloadBinding
from .common import format_table

# A small deterministic trace: the R50 client is busy around the time
# the marked VGG request (the second one) arrives at t = 35 ms.
_VGG_ARRIVALS = (0.0, 35_000.0, 75_000.0)
_R50_ARRIVALS = (2_000.0, 31_000.0, 52_000.0, 78_000.0)
_MARKED_ARRIVAL = _VGG_ARRIVALS[1]


def _bindings():
    vgg = inference_app("VGG").with_quota(1 / 3, app_id="VGG")
    r50 = inference_app("R50").with_quota(2 / 3, app_id="R50")
    return [
        WorkloadBinding(
            app=vgg,
            process_factory=lambda: TraceReplay(times_us=list(_VGG_ARRIVALS)),
        ),
        WorkloadBinding(
            app=r50,
            process_factory=lambda: TraceReplay(times_us=list(_R50_ARRIVALS)),
        ),
    ]


def run() -> Dict[str, Dict[str, float]]:
    systems = {
        "TEMPORAL": TemporalSystem,
        "GSLICE": GSLICESystem,
        "BLESS": BlessRuntime,
    }
    out: Dict[str, Dict[str, float]] = {}
    for name, factory in systems.items():
        system = factory(record_timeline=True)
        result = system.serve(_bindings())
        taxonomy: BubbleTaxonomy = analyze_run(
            system.engine.timeline, system.inflight_windows, system.engine.now
        )
        marked = next(
            r for r in result.records
            if r.app_id == "VGG" and abs(r.arrival - _MARKED_ARRIVAL) < 1.0
        )
        out[name] = {
            "marked_request_ms": marked.latency / 1000.0,
            "avg_ms": result.mean_of_app_means() / 1000.0,
            "bubble_ratio": taxonomy.bubble_ratio,
            "intra_bubble_ms": taxonomy.intra_request_bubble / 1000.0,
            "inter_bubble_ms": taxonomy.inter_request_bubble / 1000.0,
        }
    return out


def main(jobs=None) -> None:
    data = run()
    rows = [
        [
            name,
            f"{stats['marked_request_ms']:.1f}",
            f"{stats['avg_ms']:.1f}",
            f"{stats['bubble_ratio']:.1%}",
        ]
        for name, stats in data.items()
    ]
    print(
        format_table(
            ["system", "marked req (ms)", "avg (ms)", "bubbles"],
            rows,
            title="Fig. 1: VGG11 (1/3) + ResNet50 (2/3), marked request at 35ms",
        )
    )
    print("(paper's marked request: temporal 17.1, spatial 11.5, ideal 10.1 ms)")


if __name__ == "__main__":
    main()
