"""One-shot reproduction report: every headline number, one command.

``python -m repro report`` (or ``python -m repro.experiments.report``)
runs a reduced version of every evaluation artifact and prints a
paper-vs-measured digest — the live counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

import inspect
import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from .common import format_table


def _tab01(jobs: Optional[int] = None) -> Tuple[str, str]:
    from .tab01_applications import run

    table = run()
    worst = max(
        abs(s["duration_ms"] - s["paper_duration_ms"])
        for mode in table.values()
        for s in mode.values()
    )
    return f"max duration error {worst:.2f} ms; kernel counts exact", "exact"


def _fig01(jobs: Optional[int] = None) -> Tuple[str, str]:
    from .fig01_bubbles import run

    data = run()
    return (
        f"marked request: BLESS {data['BLESS']['marked_request_ms']:.1f} ms "
        f"vs TEMPORAL {data['TEMPORAL']['marked_request_ms']:.1f} / "
        f"GSLICE {data['GSLICE']['marked_request_ms']:.1f}",
        "temporal 17.1 / spatial 11.5 / ideal 10.1 ms",
    )


def _fig09(jobs: Optional[int] = None) -> Tuple[str, str]:
    from .fig09_interference import run

    data = run()
    return (
        f"kernel slowdown <= {data['max_kernel_slowdown']:.2f}x; "
        f"app-level {data['mean_app_slowdown']:.3f}x",
        "<= 2x; ~1.07x",
    )


def _fig10(jobs: Optional[int] = None) -> Tuple[str, str]:
    from .fig10_predictors import run

    data = run(pairs=10)
    return (
        f"prediction error {data['mean_prediction_error']:.1%}; "
        f"optimum match {data['top1_match_rate']:.0%}",
        "~7%; 96.2%",
    )


def _fig13(jobs: Optional[int] = None) -> Tuple[str, str]:
    from .fig13_overall import run_inference, run_saturation

    data = run_inference(requests=6, jobs=jobs)
    reductions = data["reductions"]
    sat = run_saturation(requests=6, jobs=jobs)
    text = ", ".join(
        f"{name} {value:+.1%}" for name, value in reductions.items()
    )
    return (
        f"BLESS reduction: {text}; saturated {sat['overhead']:+.1%} vs GSLICE",
        "TEMPORAL 37.3%, MIG 34.2%, GSLICE 21.1%, UNBOUND 16.5%, REEF+ 13.5%; < +3%",
    )


def _fig14(jobs: Optional[int] = None) -> Tuple[str, str]:
    from .fig14_deviation import run_quick

    data = run_quick(requests=4)
    text = ", ".join(f"{k} {v / 1000:.2f}ms" for k, v in data.items())
    return text, "TEMPORAL 14.3, GSLICE 2.1, BLESS 0.6 ms"


def _fig15(jobs: Optional[int] = None) -> Tuple[str, str]:
    from .fig15_multiapp import run

    data = run(requests=3, jobs=jobs)
    return (
        f"4 apps: BLESS {1 - data[4]['BLESS']['mean_ms'] / data[4]['GSLICE']['mean_ms']:.0%} "
        f"vs GSLICE; 8 apps: "
        f"{1 - data[8]['BLESS']['mean_ms'] / data[8]['GSLICE']['mean_ms']:.0%}",
        "18.3% and 35.5% vs GSLICE",
    )


def _fig16(jobs: Optional[int] = None) -> Tuple[str, str]:
    from .fig16_biased import run

    data = run(requests=5)
    return (
        f"app1 {data['BLESS']['app1_vs_iso']:+.0%} vs ISO; app2 throughput "
        f"{data['_app2_speedup']['bless_over_gslice']:.1f}x GSLICE",
        "+9%; 2.2x",
    )


def _fig17(jobs: Optional[int] = None) -> Tuple[str, str]:
    from .fig17_squads import run

    data = run(kernels_per_side=20)
    import numpy as np

    means = {
        key: float(np.mean([s[f"{key}_vs_SEQ"] for s in data.values()]))
        for key in ("NSP", "SP", "SemiSP")
    }
    return (
        f"vs SEQ: NSP {means['NSP']:.1%}, SP {means['SP']:.1%}, "
        f"Semi-SP {means['SemiSP']:.1%}",
        "6.5%, 12.9%, 17.6%",
    )


def _sec65(jobs: Optional[int] = None) -> Tuple[str, str]:
    from .sec65_slo import run

    data = run(requests=6)
    worst = max(rates["BLESS"] for rates in data.values())
    return f"BLESS QoS violations <= {worst:.1%}", "0.6%"


def _sec69(jobs: Optional[int] = None) -> Tuple[str, str]:
    from .sec69_overhead import run

    data = run(requests=3)
    return (
        f"sync {data['squad_sync_us']:.0f}us, launch {data['kernel_launch_us']:.0f}us, "
        f"ctx-switch {data['context_switch_us']:.0f}us, "
        f"sched {data['sched_us_per_kernel']:.1f}us/kernel",
        "20us, 3us, 50us, 6.7us",
    )


REPORT_SECTIONS: List[Tuple[str, Callable[..., Tuple[str, str]]]] = [
    ("Table 1", _tab01),
    ("Fig. 1", _fig01),
    ("Fig. 9", _fig09),
    ("Fig. 10", _fig10),
    ("Fig. 13", _fig13),
    ("Fig. 14", _fig14),
    ("Fig. 15", _fig15),
    ("Fig. 16", _fig16),
    ("Fig. 17", _fig17),
    ("§6.5", _sec65),
    ("§6.9", _sec69),
]


def run(
    json_path: Optional[str] = None, jobs: Optional[int] = None
) -> Dict[str, Dict[str, str]]:
    """Run every section; optionally dump the digest as JSON."""
    digest: Dict[str, Dict[str, str]] = {}
    for name, section in REPORT_SECTIONS:
        started = time.time()
        # Sections may be externally supplied (tests monkeypatch this
        # list); only pass the worker count to those that accept it.
        if "jobs" in inspect.signature(section).parameters:
            measured, paper = section(jobs=jobs)
        else:
            measured, paper = section()
        digest[name] = {
            "measured": measured,
            "paper": paper,
            "seconds": f"{time.time() - started:.1f}",
        }
    if json_path:
        Path(json_path).write_text(json.dumps(digest, indent=2))
    return digest


def main(jobs: Optional[int] = None) -> None:
    digest = run(jobs=jobs)
    rows = [
        [name, entry["measured"], entry["paper"]]
        for name, entry in digest.items()
    ]
    print(format_table(["artifact", "measured", "paper"], rows,
                       title="BLESS reproduction digest"))


if __name__ == "__main__":
    main()
