"""Fig. 20: ablation of the multi-task scheduler and the determiner.

Five symmetric pair-wise services under workload B with even quotas;
BLESS keeps its whole-GPU-when-idle behaviour, and we knock out (1) the
multi-task scheduler (round-robin squad fill) and (2) the execution
configuration determiner (static quota-proportional split).  The paper
measures +16.5% latency without the scheduler and a further +7.6%
without the determiner.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..apps.models import MODEL_NAMES
from ..core.config import BlessConfig
from ..core.runtime import BlessRuntime
from ..workloads.suite import bind_load, symmetric_pair
from .common import format_table, mean_latency_ms

_VARIANTS = {
    "BLESS": BlessConfig(),
    "no multi-task scheduler": BlessConfig(use_multitask_scheduler=False),
    "no config determiner": BlessConfig(use_config_determiner=False),
    "neither": BlessConfig(
        use_multitask_scheduler=False, use_config_determiner=False
    ),
}


def run(requests: int = 8, load: str = "B", models=MODEL_NAMES) -> Dict[str, float]:
    """Mean latency (ms) per ablation variant over the symmetric pairs."""
    sums: Dict[str, list] = {name: [] for name in _VARIANTS}
    for model in models:
        apps = symmetric_pair(model)
        for name, config in _VARIANTS.items():
            result = BlessRuntime(config=config).serve(
                bind_load(apps, load, requests=requests)
            )
            sums[name].append(mean_latency_ms(result))
    return {name: float(np.mean(values)) for name, values in sums.items()}


def run_uneven_deviation(
    requests: int = 8, load: str = "B", models=("R50", "VGG", "BERT")
) -> Dict[str, float]:
    """Latency deviation (ms) per variant under a 70/30 quota split.

    The multi-task scheduler's job is quota protection: without it the
    high-quota app loses its promised latency, which average latency at
    *even* quotas cannot reveal.
    """
    from ..apps.models import inference_app
    from ..baselines.iso import iso_targets_us
    from ..metrics.deviation import latency_deviation_us

    sums: Dict[str, list] = {name: [] for name in _VARIANTS}
    for model in models:
        apps = [
            inference_app(model).with_quota(0.7, app_id="app1"),
            inference_app(model).with_quota(0.3, app_id="app2"),
        ]
        targets = iso_targets_us(bind_load(apps, load, requests=requests))
        for name, config in _VARIANTS.items():
            result = BlessRuntime(config=config).serve(
                bind_load(apps, load, requests=requests)
            )
            sums[name].append(latency_deviation_us(result, targets) / 1000.0)
    return {name: float(np.mean(values)) for name, values in sums.items()}


def main(jobs=None) -> None:
    data = run()
    base = data["BLESS"]
    rows = [
        [name, f"{value:.2f}", f"{value / base - 1:+.1%}"]
        for name, value in data.items()
    ]
    print(
        format_table(
            ["variant", "avg latency (ms)", "vs BLESS"],
            rows,
            title="Fig. 20: ablation (workload B, even quotas)",
        )
    )
    print("(paper: +16.5% without scheduler, further +7.6% without determiner)")

    deviation = run_uneven_deviation()
    rows = [[name, f"{value:.2f}"] for name, value in deviation.items()]
    print()
    print(
        format_table(
            ["variant", "deviation (ms)"],
            rows,
            title="ablation under 70/30 quotas (quota protection)",
        )
    )


if __name__ == "__main__":
    main()
