"""Extra ablations of this reproduction's own design choices.

Beyond the paper's Fig. 20 (multi-task scheduler / determiner), four
modelling and mechanism choices called out in DESIGN.md are swept here:

* ``hw_policy`` — idealized max-min-fair block dispatch vs strict-FIFO;
* ``nsp_predictor`` — simulator-calibrated independent-flow estimator
  vs the paper's Eq. 2 serialized-at-full-width model;
* ``semi_sp_mode`` — adaptive rears vs the paper's static c% split;
* ``solo squad budget`` — how tightly solo streaming is chopped, which
  bounds a newly arriving request's reconfiguration wait.

Each sweep reports the average latency of the standard medium-load
symmetric pairs, so the cost/benefit of every choice is measurable.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.config import BlessConfig
from ..core.runtime import BlessRuntime
from ..workloads.suite import bind_load, symmetric_pair
from .common import format_table, mean_latency_ms

_MODELS = ("VGG", "R50", "BERT")


def _mean_over_pairs(requests: int, load: str, **runtime_kwargs) -> float:
    values = []
    for model in _MODELS:
        apps = symmetric_pair(model)
        result = BlessRuntime(**runtime_kwargs).serve(
            bind_load(apps, load, requests=requests)
        )
        values.append(mean_latency_ms(result))
    return float(np.mean(values))


def run(requests: int = 6, load: str = "B") -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}

    out["hw_policy"] = {
        policy: _mean_over_pairs(requests, load, hw_policy=policy)
        for policy in ("fair", "fifo")
    }
    out["nsp_predictor"] = {
        predictor: _mean_over_pairs(
            requests, load, config=BlessConfig(nsp_predictor=predictor)
        )
        for predictor in ("wave", "paper")
    }
    out["semi_sp_mode"] = {
        mode: _mean_over_pairs(
            requests, load, config=BlessConfig(semi_sp_mode=mode)
        )
        for mode in ("adaptive", "static")
    }
    out["solo_budget_us"] = {
        str(budget): _mean_over_pairs(
            requests, load, config=BlessConfig(solo_squad_budget_us=budget)
        )
        for budget in (250.0, 1_000.0, 4_000.0)
    }
    return out


def main(jobs=None) -> None:
    data = run()
    for knob, values in data.items():
        rows = [[setting, f"{latency:.2f}"] for setting, latency in values.items()]
        print(format_table([knob, "avg latency (ms)"], rows))
        print()


if __name__ == "__main__":
    main()
