"""§6.9: scheduling overhead accounting.

Measures the three runtime overheads the paper quantifies — the kernel
squad switch (~20 us sync + ~3 us first launch), the GPU context switch
(~50 us vacuum), and the host-side scheduling time per kernel (6.7 us:
3.7 multi-task + 2 search + 1 generation) — plus the extra GPU memory
each MPS context consumes (~230 MB).
"""

from __future__ import annotations

from typing import Dict

from ..core.config import BlessConfig
from ..core.runtime import BlessRuntime
from ..gpusim.device import GPUSpec
from ..workloads.suite import bind_load, symmetric_pair
from .common import format_table


def run(requests: int = 6) -> Dict[str, float]:
    spec = GPUSpec()
    config = BlessConfig()

    # Measured from a real serving run: squads and context switches.
    runtime = BlessRuntime(config=config, gpu_spec=spec)
    result = runtime.serve(bind_load(symmetric_pair("R50"), "B", requests=requests))
    squads = result.extras.get("squads", 0.0)
    switches = result.extras.get("context_switches", 0.0)

    mps_contexts = len(
        [c for c in runtime.registry.contexts if c.restricted]
    )
    mps_memory_mb = mps_contexts * spec.mps_context_mb

    return {
        "squad_sync_us": spec.sync_overhead_us,
        "kernel_launch_us": spec.kernel_launch_us,
        "context_switch_us": spec.context_switch_us,
        "sched_us_per_kernel": config.scheduling_us_per_kernel,
        "multitask_us": config.multitask_sched_us_per_kernel,
        "search_us": config.config_search_us_per_kernel,
        "generation_us": config.squad_generation_us_per_kernel,
        "mps_context_mb": float(spec.mps_context_mb),
        "measured_squads": squads,
        "measured_context_switches": switches,
        "measured_mps_contexts": float(mps_contexts),
        "measured_mps_memory_mb": float(mps_memory_mb),
    }


def main(jobs=None) -> None:
    data = run()
    rows = [
        ["squad switch sync", f"{data['squad_sync_us']:.0f} us", "20 us"],
        ["kernel launch", f"{data['kernel_launch_us']:.0f} us", "3 us"],
        ["GPU context switch", f"{data['context_switch_us']:.0f} us", "50 us"],
        ["multi-task scheduling", f"{data['multitask_us']:.1f} us/kernel", "3.7 us"],
        ["config-space search", f"{data['search_us']:.1f} us/kernel", "2 us"],
        ["squad generation", f"{data['generation_us']:.1f} us/kernel", "1 us"],
        ["total scheduling", f"{data['sched_us_per_kernel']:.1f} us/kernel", "6.7 us"],
        ["MPS context memory", f"{data['mps_context_mb']:.0f} MB", "~230 MB"],
    ]
    print(format_table(["overhead", "modelled", "paper"], rows, "§6.9 overheads"))
    print(
        f"\nmeasured in a serving run: {data['measured_squads']:.0f} squads, "
        f"{data['measured_context_switches']:.0f} context switches, "
        f"{data['measured_mps_contexts']:.0f} MPS contexts "
        f"({data['measured_mps_memory_mb']:.0f} MB)"
    )


if __name__ == "__main__":
    main()
