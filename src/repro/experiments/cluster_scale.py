"""Cluster scale-out sweep (§4.2.2 multi-GPU extension, not in the paper).

The paper sketches the multi-GPU story — replicate the BLESS runtime
per GPU behind a central placement controller — but evaluates a single
GPU.  This sweep exercises the online orchestrator across cluster
sizes, placement policies, and load levels: ``gpus`` tenant groups
(each the Fig. 15 four-model mix) arrive one group per epoch, the
controller places/degrades/sheds them, and every occupied GPU serves in
parallel across the process pool (``jobs=`` / ``REPRO_JOBS``).

Reported per scenario:

* ``mean_ms`` / ``util`` — merged latency and time-weighted cluster
  utilization (idle GPUs count in the denominator);
* ``completed`` / ``offered`` — completed requests vs offered load
  including requests of shed applications, so
  ``completed + shed == offered`` holds cluster-wide;
* ``shed_apps`` / ``migrations`` — admission-ladder outcomes.

Everything is seeded and placement is deterministic, so two runs — at
any ``jobs`` — are byte-identical (the cluster-smoke golden pins
``run_quick``).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..apps.models import inference_app
from ..catalog.ingest import ingest_metrics_safe
from ..cluster import AppArrival, OnlineClusterController, PlacementPolicy
from ..workloads.suite import QUOTAS_4MODEL, bind_load
from .common import format_table

GPUS = (1, 2, 4)
POLICIES = ("best_fit", "worst_fit")
LOADS = ("A", "C")
_GROUP_MODELS = ("VGG", "R50", "R101", "BERT")


def cluster_apps(groups: int):
    """``groups`` copies of the Fig. 15 four-model mix, unique app_ids."""
    apps = []
    for group in range(groups):
        for index, (model, quota) in enumerate(zip(_GROUP_MODELS, QUOTAS_4MODEL)):
            base = inference_app(model)
            apps.append(
                base.with_quota(quota, app_id=f"{base.name}#g{group}.{index}")
            )
    return apps


def run(
    gpus: Sequence[int] = GPUS,
    policies: Sequence[str] = POLICIES,
    loads: Sequence[str] = LOADS,
    requests: int = 6,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for num_gpus in gpus:
        for policy in policies:
            for load in loads:
                bindings = bind_load(
                    cluster_apps(num_gpus), load, requests=requests
                )
                # One tenant group arrives per epoch: group g's four
                # apps show up at epoch g and stay to the end.
                schedule = [
                    AppArrival(binding=binding, arrive_epoch=index // 4)
                    for index, binding in enumerate(bindings)
                ]
                controller = OnlineClusterController(
                    num_gpus=num_gpus,
                    policy=PlacementPolicy(policy),
                    migrate=True,
                )
                result = controller.serve(schedule, jobs=jobs)
                extras = result.merged.extras
                completed = float(len(result.merged.records))
                arrived = extras.get("fault_requests_arrived", completed)
                shed = extras.get("fault_shed_requests", 0.0)
                turned_away = extras.get("cluster_requests_shed", 0.0)
                scenario = f"gpus={num_gpus} policy={policy} load={load}"
                out[scenario] = {
                    "mean_ms": result.merged.mean_of_app_means() / 1000.0,
                    "util": result.merged.utilization,
                    "completed": completed,
                    "offered": arrived + turned_away,
                    "shed": shed + turned_away,
                    "shed_apps": float(result.stats.apps_shed),
                    "degraded_apps": float(result.stats.apps_degraded),
                    "migrations": float(result.stats.migrations),
                    "makespan_ms": result.merged.makespan_us / 1000.0,
                }
                # Scenario-level catalog row: this is the granularity
                # cross-PR sweeps are compared at (one row per grid
                # point, config-hashed on the axes).  The gate metrics
                # (throughput_qps, p99_latency_us) ride only in the
                # catalog — the returned dict is golden-pinned.
                ingest_metrics_safe(
                    "cluster_scale",
                    result.merged.system,
                    {
                        "experiment": "cluster_scale",
                        "gpus": num_gpus,
                        "policy": policy,
                        "load": load,
                        "requests": requests,
                    },
                    {
                        **out[scenario],
                        "throughput_qps": result.merged.throughput_qps(),
                        "p99_latency_us": result.merged.percentile_latency(99),
                    },
                    jobs=jobs,
                )
    return out


def run_quick(jobs: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """CI-sized sweep (the cluster-smoke golden pins this output)."""
    return run(
        gpus=(1, 2), policies=("best_fit",), loads=("C",), requests=4, jobs=jobs
    )


def main(jobs: Optional[int] = None) -> None:
    data = run(jobs=jobs)
    rows = [
        [
            scenario,
            f"{stats['mean_ms']:.2f}",
            f"{stats['util']:.1%}",
            f"{stats['completed']:.0f}/{stats['offered']:.0f}",
            f"{stats['shed']:.0f}",
            f"{stats['degraded_apps']:.0f}",
            f"{stats['migrations']:.0f}",
        ]
        for scenario, stats in data.items()
    ]
    print(
        format_table(
            ["scenario", "mean ms", "util", "done/offered", "shed", "degraded", "migrations"],
            rows,
            title="cluster scale-out (one tenant group arrives per epoch)",
        )
    )


if __name__ == "__main__":
    main()
