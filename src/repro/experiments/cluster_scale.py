"""Cluster scale-out sweep (§4.2.2 multi-GPU extension, not in the paper).

The paper sketches the multi-GPU story — replicate the BLESS runtime
per GPU behind a central placement controller — but evaluates a single
GPU.  This sweep exercises the online orchestrator across cluster
sizes, placement policies, and load levels: ``gpus`` tenant groups
(each the Fig. 15 four-model mix) arrive one group per epoch, the
controller places/degrades/sheds them, and every occupied GPU serves in
parallel across the process pool (``jobs=`` / ``REPRO_JOBS``).

Reported per scenario:

* ``mean_ms`` / ``util`` — merged latency and time-weighted cluster
  utilization (idle GPUs count in the denominator);
* ``completed`` / ``offered`` — completed requests vs offered load
  including requests of shed applications, so
  ``completed + shed == offered`` holds cluster-wide;
* ``shed_apps`` / ``migrations`` — admission-ladder outcomes.

Everything is seeded and placement is deterministic, so two runs — at
any ``jobs`` — are byte-identical (the cluster-smoke golden pins
``run_quick``; the contention golden pins ``run_churn_quick``).

The **churn sweep** (``run_churn``) is the contention-aware policy's
showcase: a heterogeneous tenant mix with *uniform* quotas (so the
quota-fit policies cannot tell apps apart) arrives one by one, part of
it departs after the first epoch and a replacement wave arrives.  The
arrival order is adversarial to both quota baselines — best-fit pairs
consecutive arrivals and worst-fit pairs arrival ``i`` with ``i + n`` —
so each co-locates the NAS tenant with an R101, while the
interference-cost objective pairs it with the lightest tenant and
balances predicted work across every GPU.  The mix replicates per
8-GPU block, scaling the same shape to 64 GPUs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..apps.models import inference_app
from ..catalog.ingest import ingest_metrics_safe
from ..cluster import AppArrival, OnlineClusterController, PlacementPolicy
from ..workloads.suite import QUOTAS_4MODEL, bind_continuous, bind_load
from .common import format_table

GPUS = (1, 2, 4)
POLICIES = ("best_fit", "worst_fit")
LOADS = ("A", "C")
_GROUP_MODELS = ("VGG", "R50", "R101", "BERT")

CHURN_GPUS = (8, 16, 32, 64)
CHURN_POLICIES = ("best_fit", "worst_fit", "contention_aware")
#: One 8-GPU block of the churn mix: eight "anchor" tenants arrive
#: first (one lands per empty GPU under every policy), then eight
#: "partners".  Work spans ~3.8x (NAS 33ms … R50 8.8ms) while every
#: quota is 0.5, so placement quality is decided purely by *which*
#: apps share a GPU — the signal only the contention policy sees.
_CHURN_ANCHORS = ("NAS", "R101", "R101", "BERT", "BERT", "VGG", "VGG", "R50")
_CHURN_PARTNERS = ("R101", "BERT", "BERT", "VGG", "VGG", "R50", "R50", "R50")
#: Epoch-1 churn per block: partners at these indices depart and the
#: wave-B models arrive in their place.
_CHURN_DEPARTS = (0, 5, 7)
_CHURN_WAVE_B = ("R101", "BERT", "R50")
_CHURN_QUOTA = 0.5


def cluster_apps(groups: int):
    """``groups`` copies of the Fig. 15 four-model mix, unique app_ids."""
    apps = []
    for group in range(groups):
        for index, (model, quota) in enumerate(zip(_GROUP_MODELS, QUOTAS_4MODEL)):
            base = inference_app(model)
            apps.append(
                base.with_quota(quota, app_id=f"{base.name}#g{group}.{index}")
            )
    return apps


def run(
    gpus: Sequence[int] = GPUS,
    policies: Sequence[str] = POLICIES,
    loads: Sequence[str] = LOADS,
    requests: int = 6,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for num_gpus in gpus:
        for policy in policies:
            for load in loads:
                bindings = bind_load(
                    cluster_apps(num_gpus), load, requests=requests
                )
                # One tenant group arrives per epoch: group g's four
                # apps show up at epoch g and stay to the end.
                schedule = [
                    AppArrival(binding=binding, arrive_epoch=index // 4)
                    for index, binding in enumerate(bindings)
                ]
                controller = OnlineClusterController(
                    num_gpus=num_gpus,
                    policy=PlacementPolicy(policy),
                    migrate=True,
                )
                result = controller.serve(schedule, jobs=jobs)
                extras = result.merged.extras
                completed = float(len(result.merged.records))
                arrived = extras.get("fault_requests_arrived", completed)
                shed = extras.get("fault_shed_requests", 0.0)
                turned_away = extras.get("cluster_requests_shed", 0.0)
                scenario = f"gpus={num_gpus} policy={policy} load={load}"
                out[scenario] = {
                    "mean_ms": result.merged.mean_of_app_means() / 1000.0,
                    "util": result.merged.utilization,
                    "completed": completed,
                    "offered": arrived + turned_away,
                    "shed": shed + turned_away,
                    "shed_apps": float(result.stats.apps_shed),
                    "degraded_apps": float(result.stats.apps_degraded),
                    "migrations": float(result.stats.migrations),
                    "makespan_ms": result.merged.makespan_us / 1000.0,
                }
                # Scenario-level catalog row: this is the granularity
                # cross-PR sweeps are compared at (one row per grid
                # point, config-hashed on the axes).  The gate metrics
                # (throughput_qps, p99_latency_us) ride only in the
                # catalog — the returned dict is golden-pinned.
                ingest_metrics_safe(
                    "cluster_scale",
                    result.merged.system,
                    {
                        "experiment": "cluster_scale",
                        "gpus": num_gpus,
                        "policy": policy,
                        "load": load,
                        "requests": requests,
                    },
                    {
                        **out[scenario],
                        "throughput_qps": result.merged.throughput_qps(),
                        "p99_latency_us": result.merged.percentile_latency(99),
                    },
                    jobs=jobs,
                )
    return out


def run_quick(jobs: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """CI-sized sweep (the cluster-smoke golden pins this output)."""
    return run(
        gpus=(1, 2), policies=("best_fit",), loads=("C",), requests=4, jobs=jobs
    )


def _churn_app(model: str, tag: str):
    base = inference_app(model)
    return base.with_quota(_CHURN_QUOTA, app_id=f"{base.name}#{tag}")


def churn_schedule(num_gpus: int, requests: int = 2) -> List[AppArrival]:
    """The churny online schedule for ``num_gpus`` (a multiple of 8).

    Per 8-GPU block: the block's anchors arrive first, then its
    partners (all at epoch 0); at epoch 1 the ``_CHURN_DEPARTS``
    partners leave and the wave-B tenants arrive.  Anchors across all
    blocks precede all partners so every policy seats one anchor per
    empty GPU before any pairing decision happens.
    """
    if num_gpus % 8 != 0:
        raise ValueError(f"churn sweep needs a multiple of 8 GPUs, got {num_gpus}")
    blocks = num_gpus // 8
    apps = []
    departs: Dict[str, int] = {}
    arrives: Dict[str, int] = {}
    for block in range(blocks):
        for index, model in enumerate(_CHURN_ANCHORS):
            apps.append(_churn_app(model, f"g{block}.a{index}"))
    for block in range(blocks):
        for index, model in enumerate(_CHURN_PARTNERS):
            app = _churn_app(model, f"g{block}.p{index}")
            if index in _CHURN_DEPARTS:
                departs[app.app_id] = 1
            apps.append(app)
    for block in range(blocks):
        for index, model in enumerate(_CHURN_WAVE_B):
            app = _churn_app(model, f"g{block}.b{index}")
            arrives[app.app_id] = 1
            apps.append(app)
    bindings = bind_continuous(apps, requests=requests)
    return [
        AppArrival(
            binding=binding,
            arrive_epoch=arrives.get(binding.app.app_id, 0),
            depart_epoch=departs.get(binding.app.app_id),
        )
        for binding in bindings
    ]


def run_churn(
    gpus: Sequence[int] = CHURN_GPUS,
    policies: Sequence[str] = CHURN_POLICIES,
    requests: int = 2,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Churny-arrival policy comparison (the contention showcase).

    Reports merged cluster throughput, tail latency, and — for the
    contention-aware policy — the mean per-epoch placement cost, per
    ``gpus x policies`` grid point.  The contention golden pins the
    quick slice; the acceptance claim is that ``contention_aware``
    strictly beats both quota policies on throughput *and* p99 at
    every cluster size.
    """
    out: Dict[str, Dict[str, float]] = {}
    for num_gpus in gpus:
        for policy in policies:
            controller = OnlineClusterController(
                num_gpus=num_gpus,
                policy=PlacementPolicy(policy),
                migrate=True,
            )
            result = controller.serve(
                churn_schedule(num_gpus, requests=requests), jobs=jobs
            )
            extras = result.merged.extras
            scenario = f"gpus={num_gpus} policy={policy} churn"
            stats = {
                "mean_ms": result.merged.mean_of_app_means() / 1000.0,
                "throughput_qps": result.merged.throughput_qps(),
                "p99_latency_us": result.merged.percentile_latency(99),
                "makespan_ms": result.merged.makespan_us / 1000.0,
                "util": result.merged.utilization,
                "completed": float(len(result.merged.records)),
                "shed_apps": float(result.stats.apps_shed),
                "migrations": float(result.stats.migrations),
            }
            cost = extras.get("cluster_placement_cost")
            if cost is not None:
                stats["placement_cost"] = float(cost)
            out[scenario] = stats
            ingest_metrics_safe(
                "cluster_churn",
                result.merged.system,
                {
                    "experiment": "cluster_churn",
                    "gpus": num_gpus,
                    "policy": policy,
                    "requests": requests,
                },
                stats,
                jobs=jobs,
            )
    return out


def run_churn_quick(jobs: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """CI-sized churn slice (the contention golden pins this output)."""
    return run_churn(gpus=(8,), requests=2, jobs=jobs)


def main(jobs: Optional[int] = None) -> None:
    data = run(jobs=jobs)
    rows = [
        [
            scenario,
            f"{stats['mean_ms']:.2f}",
            f"{stats['util']:.1%}",
            f"{stats['completed']:.0f}/{stats['offered']:.0f}",
            f"{stats['shed']:.0f}",
            f"{stats['degraded_apps']:.0f}",
            f"{stats['migrations']:.0f}",
        ]
        for scenario, stats in data.items()
    ]
    print(
        format_table(
            ["scenario", "mean ms", "util", "done/offered", "shed", "degraded", "migrations"],
            rows,
            title="cluster scale-out (one tenant group arrives per epoch)",
        )
    )
    churn = run_churn(jobs=jobs)
    churn_rows = [
        [
            scenario,
            f"{stats['throughput_qps']:.1f}",
            f"{stats['p99_latency_us'] / 1000.0:.1f}",
            f"{stats['mean_ms']:.2f}",
            f"{stats['migrations']:.0f}",
            (
                f"{stats['placement_cost'] / 1000.0:.0f}"
                if "placement_cost" in stats
                else "-"
            ),
        ]
        for scenario, stats in churn.items()
    ]
    print(
        format_table(
            ["scenario", "tput qps", "p99 ms", "mean ms", "migrations", "cost (ms)"],
            churn_rows,
            title="churny arrivals: quota-fit vs contention-aware placement",
        )
    )


if __name__ == "__main__":
    main()
