"""Fig. 10 + §4.4.2: kernel-squad performance-estimator accuracy.

* For a {NAS + R50} squad, sweep every execution configuration (17
  strict-spatial splits + NSP), comparing predicted vs measured squad
  duration (Fig. 10's bars).
* Over many random kernel-window pairs, measure the prediction error of
  the estimators and how often the predicted-optimal configuration
  matches the measured-optimal one (paper: 6.7% / 7.1% error, 96.2%
  top-1 match).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..apps.models import MODEL_NAMES, inference_app
from ..core.config import BlessConfig
from ..core.predictors import (
    concurrent_wave_estimate,
    interference_free_estimate,
)
from ..core.profiler import OfflineProfiler
from ..core.squad import KernelSquad
from .common import format_table
from .squadlab import build_squad, measure_squad

_CONFIG = BlessConfig(split_ratio=1.0, semi_sp_mode="static")


def sweep_configs(
    squad: KernelSquad, profiles: Dict[str, object], n: int = 18
) -> List[Dict[str, float]]:
    """Predicted and measured durations of every configuration."""
    app_ids = squad.app_ids
    results = []
    for first in range(1, n):
        partitions = {app_ids[0]: first, app_ids[1]: n - first}
        predicted = interference_free_estimate(squad, profiles, partitions)
        measured = measure_squad(squad, partitions)
        results.append(
            {
                "config": float(first),
                "predicted_us": predicted,
                "measured_us": measured,
            }
        )
    nsp_pred = concurrent_wave_estimate(squad, profiles)
    results.append(
        {
            "config": -1.0,  # NSP
            "predicted_us": nsp_pred,
            "measured_us": measure_squad(squad, None),
        }
    )
    return results


def run(pairs: int = 40, kernels_per_side: int = 25, seed: int = 7) -> Dict[str, object]:
    profiler = OfflineProfiler(config=_CONFIG)
    rng = np.random.default_rng(seed)

    # Part 1: the {NAS + R50} sweep of Fig. 10.
    nas, r50 = inference_app("NAS"), inference_app("R50")
    profiles = {"NAS": profiler.profile(nas), "R50": profiler.profile(r50)}
    squad = build_squad({"NAS": (nas, 0, 29), "R50": (r50, 0, 25)})
    sweep = sweep_configs(squad, profiles)
    best_pred = min(sweep, key=lambda r: r["predicted_us"])["config"]
    best_meas = min(sweep, key=lambda r: r["measured_us"])["config"]

    # Part 2: random window pairs across all models.
    errors = []
    matches = 0
    for _ in range(pairs):
        names = rng.choice(MODEL_NAMES, size=2, replace=False)
        apps = {f"{m}#{i}": inference_app(m) for i, m in enumerate(names)}
        windows = {}
        for app_id, app in apps.items():
            total = len(app.kernels)
            count = min(kernels_per_side, total - 1)
            start = int(rng.integers(0, max(1, total - count)))
            windows[app_id] = (app, start, start + count)
        pair_squad = build_squad(windows)
        pair_profiles = {
            app_id: profiler.profile(app) for app_id, (app, _, _) in windows.items()
        }
        pair_sweep = sweep_configs(pair_squad, pair_profiles)
        for row in pair_sweep:
            if row["measured_us"] > 0:
                errors.append(
                    abs(row["predicted_us"] - row["measured_us"]) / row["measured_us"]
                )
        pred_cfg = min(pair_sweep, key=lambda r: r["predicted_us"])["config"]
        meas_cfg = min(pair_sweep, key=lambda r: r["measured_us"])["config"]
        # A miss within one partition step is still "matching" in the
        # paper's sense of picking the real optimum's plateau.
        if pred_cfg == meas_cfg or (
            pred_cfg > 0 and meas_cfg > 0 and abs(pred_cfg - meas_cfg) <= 1
        ):
            matches += 1

    return {
        "sweep": sweep,
        "best_predicted_config": best_pred,
        "best_measured_config": best_meas,
        "mean_prediction_error": float(np.mean(errors)),
        "top1_match_rate": matches / pairs,
    }


def main(jobs=None) -> None:
    data = run()
    rows = [
        [
            ("NSP" if r["config"] < 0 else f"{int(r['config'])}/{18 - int(r['config'])}"),
            f"{r['predicted_us'] / 1000:.2f}",
            f"{r['measured_us'] / 1000:.2f}",
        ]
        for r in data["sweep"]
    ]
    print(format_table(["config", "pred(ms)", "meas(ms)"], rows, "Fig. 10 {NAS+R50}"))
    print(
        f"\npredicted optimum: {data['best_predicted_config']}, measured: "
        f"{data['best_measured_config']}\n"
        f"mean prediction error: {data['mean_prediction_error']:.1%} (paper ~7%)\n"
        f"optimal-config match rate: {data['top1_match_rate']:.1%} (paper 96.2%)"
    )


if __name__ == "__main__":
    main()
