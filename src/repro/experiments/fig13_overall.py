"""Fig. 13: overall performance with symmetric workloads (even quotas).

For each of the five symmetric model pairs and loads A/B/C, serve the
workload on every system and report average latencies; then aggregate
BLESS's mean reduction vs each baseline (the paper's 37.3% / 34.2% /
21.1% / 16.5% / 13.5% numbers vs TEMPORAL/MIG/GSLICE/UNBOUND/REEF+).
Also reproduces the training comparison (two training apps sharing the
GPU evenly) and the saturation check (continuous arrivals -> BLESS
within a few % of GSLICE).
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional

import numpy as np

from ..apps.models import MODEL_NAMES
from ..workloads.suite import (
    bind_continuous,
    bind_load,
    symmetric_pair,
    training_pair,
)
from .common import (
    INFERENCE_SYSTEMS,
    TRAINING_SYSTEMS,
    ServeCell,
    format_table,
    mean_latency_ms,
    run_cells,
    serve_all,
)


def run_inference(
    requests: int = 10, loads=("A", "B", "C"), jobs: Optional[int] = None
) -> Dict[str, object]:
    # The whole (model, load, system) grid as independent cells so that
    # --jobs parallelism spans every simulation, not one row at a time.
    cells: List[ServeCell] = []
    for model in MODEL_NAMES:
        for load in loads:
            apps = symmetric_pair(model)
            bindings = partial(bind_load, apps, load, requests=requests)
            for name, factory in INFERENCE_SYSTEMS.items():
                cells.append(
                    ServeCell(
                        key=(model, load),
                        system=name,
                        system_factory=factory,
                        bindings_factory=bindings,
                    )
                )
    grouped: Dict[object, Dict[str, float]] = {}
    for cell, result in zip(cells, run_cells(cells, jobs=jobs)):
        grouped.setdefault(cell.key, {})[cell.system] = mean_latency_ms(result)

    rows: List[Dict[str, object]] = [
        {"model": model, "load": load, **grouped[(model, load)]}
        for model in MODEL_NAMES
        for load in loads
    ]
    # Aggregate reductions.
    reductions = {}
    bless = np.array([row["BLESS"] for row in rows])
    for name in INFERENCE_SYSTEMS:
        if name == "BLESS":
            continue
        other = np.array([row[name] for row in rows])
        reductions[name] = float(1.0 - np.mean(bless / other))
    return {"rows": rows, "reductions": reductions}


def run_training(
    requests: int = 3,
    pairs=(("R50", "VGG"), ("R101", "R50")),
    jobs: Optional[int] = None,
) -> Dict[str, object]:
    rows = []
    for model_a, model_b in pairs:
        apps = training_pair(model_a, model_b)
        results = serve_all(
            partial(bind_load, apps, "C", requests=requests),
            systems=TRAINING_SYSTEMS,
            jobs=jobs,
        )
        rows.append(
            {
                "pair": f"{model_a}+{model_b}",
                **{name: mean_latency_ms(r) for name, r in results.items()},
            }
        )
    return {"rows": rows}


def run_saturation(
    model: str = "R50", requests: int = 10, jobs: Optional[int] = None
) -> Dict[str, float]:
    """Continuous arrivals: no bubbles exist; BLESS ~ GSLICE (§6.3)."""
    apps = symmetric_pair(model)
    results = serve_all(
        partial(bind_continuous, apps, requests=requests),
        systems={"GSLICE": INFERENCE_SYSTEMS["GSLICE"], "BLESS": INFERENCE_SYSTEMS["BLESS"]},
        jobs=jobs,
    )
    gslice = mean_latency_ms(results["GSLICE"])
    bless = mean_latency_ms(results["BLESS"])
    return {"GSLICE": gslice, "BLESS": bless, "overhead": bless / gslice - 1.0}


def main(jobs: Optional[int] = None) -> None:
    inference = run_inference(jobs=jobs)
    names = list(INFERENCE_SYSTEMS)
    rows = [
        [r["model"], r["load"]] + [f"{r[n]:.2f}" for n in names]
        for r in inference["rows"]
    ]
    print(format_table(["model", "load"] + names, rows, "Fig. 13 inference (ms)"))
    print("\nBLESS mean latency reduction vs:")
    for name, value in inference["reductions"].items():
        print(f"  {name:9s} {value:6.1%}")

    training = run_training()
    tnames = list(TRAINING_SYSTEMS)
    rows = [[r["pair"]] + [f"{r[n]:.2f}" for n in tnames] for r in training["rows"]]
    print()
    print(format_table(["pair"] + tnames, rows, "training (ms/iteration)"))

    sat = run_saturation()
    print(
        f"\nsaturated: BLESS {sat['BLESS']:.2f}ms vs GSLICE {sat['GSLICE']:.2f}ms "
        f"({sat['overhead']:+.1%}; paper: < +3%)"
    )


if __name__ == "__main__":
    main()
