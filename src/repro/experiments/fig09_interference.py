"""Fig. 9: kernel-level and application-level interference.

(a) Kernel-level: the slowdown of a probe kernel co-located with an
increasingly memory-intensive antagonist must stay <= 2x.
(b) Application-level: mutual pairs of the five inference models on
even MPS partitions slow down by ~7% on average vs running isolated.
"""

from __future__ import annotations

import itertools
from typing import Dict, Tuple

import numpy as np

from ..apps.models import MODEL_NAMES, inference_app, microbenchmark_kernel
from ..baselines.gslice import GSLICESystem
from ..baselines.iso import ISOSystem
from ..gpusim.context import ContextRegistry
from ..gpusim.device import GPUDevice
from ..gpusim.engine import SimEngine
from ..gpusim.kernel import KernelInstance
from ..workloads.arrivals import OneShot
from ..workloads.suite import WorkloadBinding
from .common import format_table


def kernel_level(
    probe_intensity: float = 0.8,
    pressures: Tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
) -> Dict[float, float]:
    """Slowdown of a probe kernel vs co-located memory pressure."""
    # Solo reference.
    def run_probe(antagonist_intensity: float) -> float:
        engine = SimEngine(device=GPUDevice())
        registry = ContextRegistry(engine.device)
        ctx_a = registry.create("probe", 1.0, charge_memory=False)
        probe_queue = engine.create_queue(ctx_a)
        probe = KernelInstance(
            microbenchmark_kernel(
                "probe", duration_us=500.0, sm_demand=0.5,
                mem_intensity=probe_intensity,
            ),
            app_id="probe",
        )
        if antagonist_intensity > 0:
            ctx_b = registry.create("antagonist", 1.0, charge_memory=False)
            ant_queue = engine.create_queue(ctx_b)
            antagonist = KernelInstance(
                microbenchmark_kernel(
                    "antagonist", duration_us=5000.0, sm_demand=0.5,
                    mem_intensity=antagonist_intensity,
                ),
                app_id="antagonist",
            )
            engine.launch(antagonist, ant_queue, launch_overhead=0.0)
        done = {}
        engine.launch(
            probe, probe_queue, launch_overhead=0.0,
            on_finish=lambda k: done.setdefault("t", engine.now),
        )
        engine.run()
        return done["t"]

    solo = run_probe(0.0)
    return {p: run_probe(p) / solo for p in pressures}


def app_level() -> Dict[Tuple[str, str], float]:
    """Mutual-pair application slowdown under even MPS partitions."""
    slowdowns = {}
    for a, b in itertools.combinations_with_replacement(MODEL_NAMES, 2):
        apps = [
            inference_app(a).with_quota(0.5, app_id=f"{a}#1"),
            inference_app(b).with_quota(0.5, app_id=f"{b}#2"),
        ]
        def bindings():
            return [WorkloadBinding(app=app, process_factory=OneShot) for app in apps]

        iso = ISOSystem().serve(bindings())
        shared = GSLICESystem().serve(bindings())
        ratios = []
        for app in apps:
            ratios.append(
                shared.mean_latency(app.app_id) / iso.mean_latency(app.app_id)
            )
        slowdowns[(a, b)] = float(np.mean(ratios))
    return slowdowns


def run() -> Dict[str, object]:
    kernel = kernel_level()
    apps = app_level()
    return {
        "kernel_level": kernel,
        "max_kernel_slowdown": max(kernel.values()),
        "app_level": apps,
        "mean_app_slowdown": float(np.mean(list(apps.values()))),
    }


def main(jobs=None) -> None:
    data = run()
    rows = [[f"{p:.1f}", f"{s:.2f}x"] for p, s in data["kernel_level"].items()]
    print(format_table(["mem pressure", "slowdown"], rows, "Fig. 9(a) kernel-level"))
    print()
    rows = [[f"{a}+{b}", f"{s:.3f}x"] for (a, b), s in data["app_level"].items()]
    print(format_table(["pair", "slowdown"], rows, "Fig. 9(b) app-level"))
    print(f"\nmean app-level interference: {data['mean_app_slowdown']:.3f}x "
          f"(paper: ~1.07x); max kernel slowdown {data['max_kernel_slowdown']:.2f}x "
          f"(paper: <= 2x)")


if __name__ == "__main__":
    main()
