"""§6.5: guaranteeing SLOs.

BLESS guarantees QoS by replacing the isolated latency ``T[n%]`` with
the required target in the progress computation.  Two settings:

(a) tight targets (1.2x and 2.0x ISO) under medium load (B);
(b) loose targets (1.5x and 3.0x ISO) under heavy load (A).

The paper measures 38.8% (UNBOUND) and 50.1% (GSLICE) QoS violations on
average, vs 0.6% for BLESS.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..apps.models import inference_app
from ..baselines.gslice import GSLICESystem
from ..baselines.iso import solo_latency_us
from ..baselines.unbound import UnboundSystem
from ..core.config import BlessConfig
from ..core.runtime import BlessRuntime
from ..metrics.stats import qos_violation_rate
from ..workloads.suite import bind_load
from .common import format_table


def _scenario(
    multipliers: Tuple[float, float], load: str, requests: int
) -> Dict[str, float]:
    apps = [
        inference_app("R50").with_quota(0.5, app_id="app1"),
        inference_app("VGG").with_quota(0.5, app_id="app2"),
    ]
    targets = {
        "app1": multipliers[0] * solo_latency_us(apps[0], 0.5),
        "app2": multipliers[1] * solo_latency_us(apps[1], 0.5),
    }
    out = {}
    for name, system in (
        ("UNBOUND", UnboundSystem()),
        ("GSLICE", GSLICESystem()),
        ("BLESS", BlessRuntime(config=BlessConfig(slo_targets_us=targets))),
    ):
        result = system.serve(bind_load(apps, load, requests=requests))
        out[name] = qos_violation_rate(result, targets)
    return out


def run(requests: int = 10) -> Dict[str, Dict[str, float]]:
    return {
        "tight(1.2x,2.0x)@B": _scenario((1.2, 2.0), "B", requests),
        "loose(1.5x,3.0x)@A": _scenario((1.5, 3.0), "A", requests),
    }


def main(jobs=None) -> None:
    data = run()
    systems = ["UNBOUND", "GSLICE", "BLESS"]
    rows = [
        [scenario] + [f"{rates[s]:.1%}" for s in systems]
        for scenario, rates in data.items()
    ]
    print(format_table(["scenario"] + systems, rows, "§6.5: QoS violation rates"))
    print("(paper averages: UNBOUND 38.8%, GSLICE 50.1%, BLESS 0.6%)")


if __name__ == "__main__":
    main()
