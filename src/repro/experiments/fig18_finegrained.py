"""Fig. 18: fine-grained analysis of BLESS's scheduling behaviour.

(a) Two R50 requests with 70%/30% quotas arriving simultaneously: the
multi-task scheduler selects more kernels from the 70% request in the
early squads, so it finishes first, and some squads are spatially
isolated per the determiner.

(b) BLESS on top of Zico-style coordinated training: organising the
kernels of a training round as squads with the SP policy reduces the
iteration latency (paper: -8.5% vs ZICO).
"""

from __future__ import annotations

from typing import Dict, List

from ..apps.models import inference_app
from ..baselines.zico import ZicoSystem
from ..core.kernel_manager import ConcurrentKernelManager
from ..core.runtime import BlessRuntime
from ..workloads.arrivals import OneShot
from ..workloads.suite import WorkloadBinding, bind_load, training_pair
from .common import format_table, mean_latency_ms


def run_quota_split(quota_a: float = 0.7, quota_b: float = 0.3) -> Dict[str, object]:
    """Part (a): squad composition timeline for a 70/30 R50 pair."""
    apps = [
        inference_app("R50").with_quota(quota_a, app_id="req1"),
        inference_app("R50").with_quota(quota_b, app_id="req2"),
    ]
    bindings = [WorkloadBinding(app=a, process_factory=OneShot) for a in apps]

    squads: List[Dict[str, object]] = []
    original = ConcurrentKernelManager.execute_squad

    def record(self, squad, cfg, on_kernel_finish, on_done, **kwargs):
        squads.append(
            {
                "start_us": self.engine.now,
                "counts": {a: e.count for a, e in squad.entries.items()},
                "spatial": cfg.partitions is not None,
                "partitions": dict(cfg.partitions) if cfg.partitions else None,
            }
        )
        return original(self, squad, cfg, on_kernel_finish, on_done, **kwargs)

    ConcurrentKernelManager.execute_squad = record
    try:
        result = BlessRuntime().serve(bindings)
    finally:
        ConcurrentKernelManager.execute_squad = original

    finishes = {r.app_id: r.finish for r in result.records}
    early_squads = [s for s in squads if len(s["counts"]) == 2][:3]
    req1_share = [
        s["counts"].get("req1", 0) / max(1, sum(s["counts"].values()))
        for s in early_squads
    ]
    return {
        "squads": squads,
        "req1_finish_us": finishes.get("req1"),
        "req2_finish_us": finishes.get("req2"),
        "req1_finishes_first": finishes.get("req1", 0) < finishes.get("req2", 1),
        "req1_early_share": req1_share,
        "any_spatial_squad": any(s["spatial"] for s in squads),
    }


def run_training(requests: int = 2) -> Dict[str, float]:
    """Part (b): BLESS vs ZICO on a coordinated training pair."""
    pair = training_pair("R50", "VGG")
    zico = ZicoSystem().serve(bind_load(pair, "C", requests=requests))
    bless = BlessRuntime().serve(bind_load(pair, "C", requests=requests))
    return {
        "zico_ms": mean_latency_ms(zico),
        "bless_ms": mean_latency_ms(bless),
        "reduction": 1.0 - mean_latency_ms(bless) / mean_latency_ms(zico),
    }


def run() -> Dict[str, object]:
    return {"quota_split": run_quota_split(), "training": run_training()}


def main(jobs=None) -> None:
    data = run()
    part_a = data["quota_split"]
    rows = [
        [
            f"{s['start_us'] / 1000:.2f}",
            str(s["counts"]),
            "SP" if s["spatial"] else "NSP",
            str(s["partitions"] or "-"),
        ]
        for s in part_a["squads"]
    ]
    print(format_table(["t (ms)", "kernel counts", "mode", "partitions"], rows,
                       "Fig. 18(a): 70/30 R50 squads"))
    print(
        f"req1 (70%) finishes first: {part_a['req1_finishes_first']} "
        f"(req1 {part_a['req1_finish_us'] / 1000:.2f}ms, "
        f"req2 {part_a['req2_finish_us'] / 1000:.2f}ms); "
        f"req1's share of early squads: "
        f"{[f'{x:.0%}' for x in part_a['req1_early_share']]}"
    )
    part_b = data["training"]
    print(
        f"\nFig. 18(b): training iteration — ZICO {part_b['zico_ms']:.2f}ms, "
        f"BLESS {part_b['bless_ms']:.2f}ms ({part_b['reduction']:+.1%}; paper -8.5%)"
    )


if __name__ == "__main__":
    main()
