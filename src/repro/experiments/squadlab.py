"""Squad-scale lab: build and execute single kernel squads in isolation.

Used by the Fig. 10 / Fig. 17 / Fig. 19(b) experiments, which reason at
the granularity of one squad rather than a full serving run.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..apps.application import Application, Request
from ..core.config import BlessConfig
from ..core.configurator import ExecutionConfig, ExecutionConfigDeterminer
from ..core.kernel_manager import ConcurrentKernelManager
from ..core.profiler import AppProfile, OfflineProfiler
from ..core.squad import KernelSquad, SquadEntry
from ..gpusim.context import ContextRegistry
from ..gpusim.device import GPUDevice
from ..gpusim.engine import SimEngine


def build_squad(
    windows: Dict[str, Tuple[Application, int, int]]
) -> KernelSquad:
    """A squad made of each app's kernels in ``[start, end)``."""
    squad = KernelSquad()
    for app_id, (app, start, end) in windows.items():
        request = Request(
            app=app.with_quota(app.quota, app_id=app_id), arrival_time=0.0
        )
        entry = SquadEntry(request=request, kernel_indices=list(range(start, end)))
        squad.entries[app_id] = entry
    return squad


def measure_squad(
    squad: KernelSquad,
    partitions: Optional[Dict[str, int]],
    split_ratio: float = 1.0,
) -> float:
    """Execute one squad on a fresh simulated GPU; return its duration.

    ``split_ratio = 1.0`` is strict SP; lower values produce the static
    Semi-SP of §4.5.2; ``partitions = None`` is NSP.
    """
    config = BlessConfig(split_ratio=split_ratio, semi_sp_mode="static")
    engine = SimEngine(device=GPUDevice())
    registry = ContextRegistry(engine.device)
    manager = ConcurrentKernelManager(engine, registry, config)
    for app_id in squad.app_ids:
        manager.register_client(app_id)
    exec_config = ExecutionConfig(partitions=partitions, predicted_duration_us=0.0)
    done: Dict[str, float] = {}
    manager.execute_squad(
        squad,
        exec_config,
        on_kernel_finish=lambda k: None,
        on_done=lambda ex: done.setdefault("duration", ex.duration_us),
    )
    engine.run()
    return done["duration"]


def measure_sequential(squad: KernelSquad) -> float:
    """SEQ policy: all squad kernels drain one device queue in order."""
    engine = SimEngine(device=GPUDevice())
    registry = ContextRegistry(engine.device)
    context = registry.create("seq", 1.0, charge_memory=False)
    queue = engine.create_queue(context)
    start = engine.now
    for entry in squad.entries.values():
        for index in entry.kernel_indices:
            engine.launch(entry.request.make_kernel(index), queue)
    engine.run()
    return engine.now - start


def best_partitions(
    squad: KernelSquad,
    profiles: Dict[str, AppProfile],
    config: Optional[BlessConfig] = None,
) -> Dict[str, int]:
    """The determiner's optimal strict-spatial split for a squad."""
    determiner = ExecutionConfigDeterminer(config or BlessConfig())
    result = determiner._best_spatial(squad, profiles)  # noqa: SLF001
    if result is None or result.partitions is None:
        raise RuntimeError("no spatial configuration available")
    return result.partitions


def profiles_for(
    windows: Dict[str, Tuple[Application, int, int]],
    config: Optional[BlessConfig] = None,
) -> Dict[str, AppProfile]:
    profiler = OfflineProfiler(config=config or BlessConfig())
    return {
        app_id: profiler.profile(app) for app_id, (app, _, _) in windows.items()
    }
