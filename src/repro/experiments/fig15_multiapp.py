"""Fig. 15: beyond pair-wise sharing — 4 and 8 co-located applications.

Requests from all applications arrive at the same time; quotas follow
Table 2's 4-model (10/20/30/40%) and 8-model (5..20%) menus.  The paper
reports BLESS reducing average latency by 41.2%/18.3% (4 apps, vs
TEMPORAL/GSLICE) and 80.8%/35.5% (8 apps), with zero latency deviation
for BLESS.  REEF+ is excluded (its static even split cannot be chosen
optimally at runtime for many apps, §6.4).
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional

from ..baselines.iso import iso_targets_us
from ..metrics.deviation import latency_deviation_us
from ..workloads.suite import bind_load, multi_app_mix
from .common import (
    INFERENCE_SYSTEMS,
    ServeCell,
    format_table,
    mean_latency_ms,
    run_cells,
)

_SYSTEMS = ("TEMPORAL", "GSLICE", "UNBOUND", "BLESS")


def run(
    requests: int = 5, load: str = "B", jobs: Optional[int] = None
) -> Dict[int, Dict[str, Dict[str, float]]]:
    cells: List[ServeCell] = []
    targets: Dict[int, Dict[str, float]] = {}
    for count in (4, 8):
        apps = multi_app_mix(count)
        bindings = partial(bind_load, apps, load, requests=requests)
        targets[count] = iso_targets_us(bindings())
        for name in _SYSTEMS:
            cells.append(
                ServeCell(
                    key=count,
                    system=name,
                    system_factory=INFERENCE_SYSTEMS[name],
                    bindings_factory=bindings,
                )
            )
    out: Dict[int, Dict[str, Dict[str, float]]] = {}
    for cell, result in zip(cells, run_cells(cells, jobs=jobs)):
        out.setdefault(cell.key, {})[cell.system] = {
            "mean_ms": mean_latency_ms(result),
            "deviation_ms": latency_deviation_us(result, targets[cell.key]) / 1000.0,
        }
    return out


def main(jobs: Optional[int] = None) -> None:
    data = run(jobs=jobs)
    for count, systems in data.items():
        rows = [
            [name, f"{stats['mean_ms']:.2f}", f"{stats['deviation_ms']:.2f}"]
            for name, stats in systems.items()
        ]
        print(
            format_table(
                ["system", "avg latency (ms)", "deviation (ms)"],
                rows,
                title=f"Fig. 15: {count} co-located applications",
            )
        )
        bless = systems["BLESS"]["mean_ms"]
        for ref in ("TEMPORAL", "GSLICE"):
            print(f"  BLESS vs {ref}: {1 - bless / systems[ref]['mean_ms']:.1%}")
        print()


if __name__ == "__main__":
    main()
