"""Fig. 15: beyond pair-wise sharing — 4 and 8 co-located applications.

Requests from all applications arrive at the same time; quotas follow
Table 2's 4-model (10/20/30/40%) and 8-model (5..20%) menus.  The paper
reports BLESS reducing average latency by 41.2%/18.3% (4 apps, vs
TEMPORAL/GSLICE) and 80.8%/35.5% (8 apps), with zero latency deviation
for BLESS.  REEF+ is excluded (its static even split cannot be chosen
optimally at runtime for many apps, §6.4).
"""

from __future__ import annotations

from typing import Dict

from ..baselines.iso import iso_targets_us
from ..metrics.deviation import latency_deviation_us
from ..workloads.suite import bind_load, multi_app_mix
from .common import INFERENCE_SYSTEMS, format_table, mean_latency_ms, serve_all

_SYSTEMS = ("TEMPORAL", "GSLICE", "UNBOUND", "BLESS")


def run(requests: int = 5, load: str = "B") -> Dict[int, Dict[str, Dict[str, float]]]:
    out: Dict[int, Dict[str, Dict[str, float]]] = {}
    for count in (4, 8):
        apps = multi_app_mix(count)
        def bindings(apps=apps):
            return bind_load(apps, load, requests=requests)

        targets = iso_targets_us(bindings())
        chosen = {name: INFERENCE_SYSTEMS[name] for name in _SYSTEMS}
        results = serve_all(bindings, systems=chosen)
        out[count] = {
            name: {
                "mean_ms": mean_latency_ms(result),
                "deviation_ms": latency_deviation_us(result, targets) / 1000.0,
            }
            for name, result in results.items()
        }
    return out


def main() -> None:
    data = run()
    for count, systems in data.items():
        rows = [
            [name, f"{stats['mean_ms']:.2f}", f"{stats['deviation_ms']:.2f}"]
            for name, stats in systems.items()
        ]
        print(
            format_table(
                ["system", "avg latency (ms)", "deviation (ms)"],
                rows,
                title=f"Fig. 15: {count} co-located applications",
            )
        )
        bless = systems["BLESS"]["mean_ms"]
        for ref in ("TEMPORAL", "GSLICE"):
            print(f"  BLESS vs {ref}: {1 - bless / systems[ref]['mean_ms']:.1%}")
        print()


if __name__ == "__main__":
    main()
