"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments``            list the per-figure experiment modules
``experiment <name>``      run one experiment's main()
``serve``                  serve a workload on chosen systems and compare
``profile <model>``        print an application's offline profile summary
``timeline``               render an execution timeline for a small run
``sweep-quota``            sweep 2-app quota splits (Fig. 12-style rows)
``trace``                  serve with decision tracing on; export Perfetto JSON

Examples
--------
python -m repro serve --models R50 R50 --load C --systems GSLICE BLESS
python -m repro profile BERT --partitions 18 9 5
python -m repro timeline --models VGG R50 --width 100
python -m repro trace --models R50 VGG --load B --out trace.json
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import List, Optional

from .apps.models import MODEL_NAMES, inference_app, training_app
from .core.profiler import OfflineProfiler
from .experiments import ALL_EXPERIMENTS
from .experiments.common import INFERENCE_SYSTEMS
from .metrics.io import save_results
from .viz.charts import bar_chart, reduction_table
from .viz.timeline import render_timeline
from .workloads.suite import QUOTAS_2MODEL, bind_load


def _apps_from_args(models: List[str], quotas: Optional[List[float]], training: bool):
    maker = training_app if training else inference_app
    if quotas is None:
        quotas = [1.0 / len(models)] * len(models)
    if len(quotas) != len(models):
        raise SystemExit("error: --quotas must match --models in length")
    apps = []
    for index, (model, quota) in enumerate(zip(models, quotas)):
        base = maker(model)
        apps.append(base.with_quota(quota, app_id=f"{base.name}#{index}"))
    return apps


def cmd_experiments(_args) -> int:
    print("available experiments (run with: python -m repro experiment <name>):")
    for name in ALL_EXPERIMENTS:
        print(f"  {name}")
    return 0


def cmd_report(args) -> int:
    from .experiments import report

    digest = report.run(json_path=args.json, jobs=args.jobs)
    from .experiments.common import format_table

    rows = [[name, e["measured"], e["paper"]] for name, e in digest.items()]
    print(format_table(["artifact", "measured", "paper"], rows,
                       title="BLESS reproduction digest"))
    return 0


def cmd_experiment(args) -> int:
    if args.name not in ALL_EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; see `python -m repro experiments`")
        return 2
    module = importlib.import_module(f"repro.experiments.{args.name}")
    module.main(jobs=args.jobs)
    return 0


def _trace_path(target: str, system: str, multiple: bool) -> str:
    """Per-system trace filename: suffix the stem when comparing systems."""
    if not multiple:
        return target
    from pathlib import Path

    path = Path(target)
    return str(path.with_name(f"{path.stem}-{system}{path.suffix}"))


def _write_trace(tracer, target: str) -> str:
    """Export a tracer's unified stream; format chosen by extension."""
    from .obs import save_jsonl, save_perfetto

    if target.endswith(".jsonl"):
        count = save_jsonl(tracer.records, target)
    else:
        count = save_perfetto(tracer.records, target)
    return f"{target} ({count} events)"


def cmd_serve(args) -> int:
    apps = _apps_from_args(args.models, args.quotas, args.training)
    unknown = [s for s in args.systems if s not in INFERENCE_SYSTEMS]
    if unknown:
        print(f"unknown systems: {unknown}; choose from {list(INFERENCE_SYSTEMS)}")
        return 2
    from .gpusim.faults import resolve_fault_plan
    from .obs import resolve_trace_target, resolve_tracing

    fault_plan = resolve_fault_plan(args.fault_plan, args.fault_seed)
    if fault_plan is not None:
        print(f"fault plan: {fault_plan.describe()}")
    tracing = bool(args.trace) or resolve_tracing()
    trace_target = resolve_trace_target(args.trace)
    results = []
    latencies = {}
    for name in args.systems:
        system = INFERENCE_SYSTEMS[name](
            fault_plan=fault_plan, trace=True if tracing else None
        )
        result = system.serve(bind_load(apps, args.load, requests=args.requests))
        results.append(result)
        if trace_target and system.obs.tracer is not None:
            path = _trace_path(trace_target, name, multiple=len(args.systems) > 1)
            print(f"  trace: {_write_trace(system.obs.tracer, path)}")
        latencies[name] = result.mean_of_app_means() / 1000.0
        per_app = ", ".join(
            f"{a}={v / 1000:.2f}ms" for a, v in result.per_app_mean_latency().items()
        )
        line = (f"{name:9s} avg {latencies[name]:7.2f} ms  "
                f"util {result.utilization:5.1%}  [{per_app}]")
        if fault_plan is not None:
            shed = result.extras.get("fault_shed_requests", 0.0)
            degraded = result.extras.get("fault_degradation_events", 0.0)
            line += f"  shed={shed:.0f} degradation={degraded:.0f}"
        print(line)
    print()
    print(bar_chart(latencies, title=f"average latency, load {args.load}",
                    highlight="BLESS" if "BLESS" in latencies else None))
    if "BLESS" in latencies and len(latencies) > 1:
        print()
        print(reduction_table(latencies))
    if args.output:
        save_results(results, args.output)
        print(f"\nsaved results to {args.output}")
    return 0


def cmd_trace(args) -> int:
    """Serve one system with decision tracing on and export the trace."""
    from .gpusim.faults import resolve_fault_plan
    from .obs import analyze

    if args.system not in INFERENCE_SYSTEMS:
        print(f"unknown system {args.system!r}; choose from {list(INFERENCE_SYSTEMS)}")
        return 2
    apps = _apps_from_args(args.models, args.quotas, args.training)
    fault_plan = resolve_fault_plan(args.fault_plan, args.fault_seed)
    if fault_plan is not None:
        print(f"fault plan: {fault_plan.describe()}")
    system = INFERENCE_SYSTEMS[args.system](fault_plan=fault_plan, trace=True)
    result = system.serve(bind_load(apps, args.load, requests=args.requests))
    tracer = system.obs.tracer
    if tracer is None:
        print(f"{args.system} does not support decision tracing "
              "(composite systems serve on private sub-engines)")
        return 2
    print(f"{args.system}: avg {result.mean_of_app_means() / 1000:.2f} ms, "
          f"util {result.utilization:.1%}")
    print(f"trace: {_write_trace(tracer, args.out)}")
    if not args.out.endswith(".jsonl"):
        print("open it at https://ui.perfetto.dev or chrome://tracing")
    reports = analyze(tracer.records)
    print("\npost-hoc analysis:")
    for section, values in reports.items():
        rendered = ", ".join(f"{k}={v:.4g}" for k, v in values.items())
        print(f"  {section}: {rendered}")
    return 0


def cmd_cluster(args) -> int:
    """Serve a workload on a multi-GPU cluster (§4.2.2 orchestrator)."""
    from .cluster import (
        AppArrival,
        ClusterController,
        OnlineClusterController,
        PlacementError,
        PlacementPolicy,
    )
    from .gpusim.faults import resolve_fault_plan
    from .obs import resolve_trace_target, resolve_tracing

    if args.system not in INFERENCE_SYSTEMS:
        print(f"unknown system {args.system!r}; choose from {list(INFERENCE_SYSTEMS)}")
        return 2
    apps = _apps_from_args(args.models, args.quotas, args.training)
    bindings = bind_load(apps, args.load, requests=args.requests)
    fault_plan = resolve_fault_plan(args.fault_plan, args.fault_seed)
    if fault_plan is not None:
        print(f"fault plan: {fault_plan.describe()}")
    system_kwargs = {"fault_plan": fault_plan} if fault_plan is not None else {}
    tracing = bool(args.trace) or resolve_tracing()
    trace_target = resolve_trace_target(args.trace)
    policy = PlacementPolicy(args.policy)

    if args.online:
        # One application arrives per epoch, in --models order.
        schedule = [
            AppArrival(binding=binding, arrive_epoch=index)
            for index, binding in enumerate(bindings)
        ]
        controller = OnlineClusterController(
            num_gpus=args.gpus,
            policy=policy,
            system_factory=INFERENCE_SYSTEMS[args.system],
            system_kwargs=system_kwargs,
            migrate=args.migrate,
            trace=True if tracing else None,
        )
        result = controller.serve(schedule, epochs=args.epochs, jobs=args.jobs)
        stats = result.stats
        print(
            f"online: {stats.epochs} epochs, "
            f"{stats.apps_admitted}/{stats.apps_arrived} admitted "
            f"({stats.apps_degraded} degraded, {stats.apps_shed} shed, "
            f"{stats.migrations} migrations)"
        )
        if result.shed_apps:
            print(f"shed apps: {', '.join(result.shed_apps)}")
        final_placement = result.placements[-1] if result.placements else {}
    else:
        controller = ClusterController(
            num_gpus=args.gpus,
            policy=policy,
            system_factory=INFERENCE_SYSTEMS[args.system],
            system_kwargs=system_kwargs,
            trace=True if tracing else None,
        )
        try:
            result = controller.serve(bindings, jobs=args.jobs)
        except PlacementError as error:
            print(f"placement failed: {error}")
            print("(try more --gpus, smaller --quotas, or --online shedding)")
            return 2
        final_placement = result.placements

    merged = result.merged
    for gpu_index in sorted(final_placement):
        print(f"  GPU{gpu_index}: {', '.join(final_placement[gpu_index])}")
    line = (
        f"{merged.system}: avg {merged.mean_of_app_means() / 1000:.2f} ms, "
        f"util {merged.utilization:.1%} over {args.gpus} GPUs, "
        f"{len(merged.records)} requests"
    )
    if fault_plan is not None:
        shed = merged.extras.get("fault_shed_requests", 0.0)
        arrived = merged.extras.get("fault_requests_arrived", 0.0)
        line += f"  [arrived={arrived:.0f} shed={shed:.0f}]"
    print(line)
    if trace_target and controller.tracer is not None:
        print(f"trace: {_write_trace(controller.tracer, trace_target)}")
        if not trace_target.endswith(".jsonl"):
            print("open it at https://ui.perfetto.dev (per-GPU tracks)")
    return 0


def cmd_profile(args) -> int:
    maker = training_app if args.training else inference_app
    app = maker(args.model)
    profile = OfflineProfiler().profile(app)
    print(f"{app.name}: {app.num_compute_kernels} compute kernels, "
          f"{app.memory_mb} MB, solo {app.solo_span_us / 1000:.2f} ms "
          f"(GPU busy {app.total_compute_us / app.solo_span_us:.0%})")
    print(f"profiling cost: {profile.profiling_cost_us / 1e6:.2f} s "
          f"({profile.num_partitions} partitioned runs)")
    print(f"\n{'partition':>9s} {'SMs':>5s} {'T[n%] (ms)':>11s}")
    for partition in args.partitions:
        sms = round(partition / profile.num_partitions * 108)
        print(f"{partition:9d} {sms:5d} {profile.iso_latency(partition) / 1000:11.2f}")
    return 0


def cmd_timeline(args) -> int:
    from .core.runtime import BlessRuntime
    from .workloads.arrivals import OneShot
    from .workloads.suite import WorkloadBinding

    apps = _apps_from_args(args.models, args.quotas, training=False)
    system = BlessRuntime(record_timeline=True)
    result = system.serve(
        [WorkloadBinding(app=a, process_factory=OneShot) for a in apps]
    )
    view = render_timeline(system.engine.timeline, width=args.width)
    print(view.render())
    print()
    for app in apps:
        print(f"{app.app_id}: {result.mean_latency(app.app_id) / 1000:.2f} ms")
    return 0


def cmd_sweep_quota(args) -> int:
    from .baselines.iso import ISOSystem
    from .core.runtime import BlessRuntime

    if len(args.models) != 2:
        print("sweep-quota needs exactly two --models")
        return 2
    print(f"{'quotas':>13s} {'BLESS app1':>11s} {'BLESS app2':>11s} "
          f"{'ISO app1':>9s} {'ISO app2':>9s}")
    for quota_a, quota_b in QUOTAS_2MODEL:
        apps = _apps_from_args(args.models, [quota_a, quota_b], training=False)
        bless = BlessRuntime().serve(bind_load(apps, args.load, requests=args.requests))
        iso = ISOSystem().serve(bind_load(apps, args.load, requests=args.requests))
        ids = [a.app_id for a in apps]
        print(
            f"({quota_a:.2f},{quota_b:.2f})"
            f" {bless.mean_latency(ids[0]) / 1000:11.2f}"
            f" {bless.mean_latency(ids[1]) / 1000:11.2f}"
            f" {iso.mean_latency(ids[0]) / 1000:9.2f}"
            f" {iso.mean_latency(ids[1]) / 1000:9.2f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="BLESS reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list experiment modules").set_defaults(
        func=cmd_experiments
    )

    jobs_help = (
        "worker processes for independent simulation cells "
        "(default: all cores; 1 = serial, output is identical either way)"
    )

    p = sub.add_parser("report", help="run the full reproduction digest")
    p.add_argument("--json", help="also write the digest as JSON here")
    p.add_argument("--jobs", type=int, default=0, help=jobs_help)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("experiment", help="run one experiment")
    p.add_argument("name")
    p.add_argument("--jobs", type=int, default=0, help=jobs_help)
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("serve", help="serve a workload and compare systems")
    p.add_argument("--models", nargs="+", required=True, choices=MODEL_NAMES)
    p.add_argument("--quotas", nargs="+", type=float)
    p.add_argument("--load", default="B", choices=["A", "B", "C"])
    p.add_argument("--requests", type=int, default=8)
    p.add_argument(
        "--systems", nargs="+", default=["ISO", "GSLICE", "UNBOUND", "BLESS"]
    )
    p.add_argument("--training", action="store_true")
    p.add_argument("--output", help="save results JSON here")
    p.add_argument(
        "--fault-plan",
        help="inject faults, e.g. 'failure=0.05,crash=4000,seed=7' "
        "(default: the REPRO_FAULT_PLAN environment variable)",
    )
    p.add_argument(
        "--fault-seed", type=int,
        help="override the fault plan's seed (REPRO_FAULT_SEED)",
    )
    p.add_argument(
        "--trace",
        metavar="PATH",
        help="record decision traces and write one Perfetto JSON per "
        "system to PATH (.jsonl extension writes JSON lines; "
        "default: the REPRO_TRACE environment variable)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "trace", help="serve one system with decision tracing and export"
    )
    p.add_argument("--models", nargs="+", required=True, choices=MODEL_NAMES)
    p.add_argument("--quotas", nargs="+", type=float)
    p.add_argument("--load", default="B", choices=["A", "B", "C"])
    p.add_argument("--requests", type=int, default=8)
    p.add_argument("--system", default="BLESS")
    p.add_argument("--training", action="store_true")
    p.add_argument(
        "--out", default="trace.json",
        help="output path (.json = Perfetto trace_event, .jsonl = JSON lines)",
    )
    p.add_argument("--fault-plan", help="inject faults (see `serve --fault-plan`)")
    p.add_argument("--fault-seed", type=int)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "cluster", help="serve a workload across a multi-GPU cluster (§4.2.2)"
    )
    p.add_argument("--gpus", type=int, default=2, help="GPUs in the pool")
    p.add_argument("--models", nargs="+", required=True, choices=MODEL_NAMES)
    p.add_argument("--quotas", nargs="+", type=float)
    p.add_argument(
        "--policy",
        default="best_fit",
        choices=["first_fit", "best_fit", "worst_fit"],
    )
    p.add_argument("--load", default="B", choices=["A", "B", "C"])
    p.add_argument("--requests", type=int, default=8)
    p.add_argument("--system", default="BLESS")
    p.add_argument("--training", action="store_true")
    p.add_argument("--jobs", type=int, default=None, help=jobs_help)
    p.add_argument(
        "--online",
        action="store_true",
        help="online mode: apps arrive one per epoch through the "
        "admission ladder (degrade -> migrate -> shed)",
    )
    p.add_argument(
        "--epochs", type=int, default=None,
        help="online horizon (default: derived from the schedule)",
    )
    p.add_argument(
        "--migrate", action="store_true",
        help="rebalance one app between epochs when it shrinks the quota spread",
    )
    p.add_argument("--fault-plan", help="inject faults (see `serve --fault-plan`)")
    p.add_argument("--fault-seed", type=int)
    p.add_argument(
        "--trace",
        metavar="PATH",
        help="record cluster + per-GPU decision traces to PATH "
        "(.jsonl = JSON lines, else Perfetto trace_event)",
    )
    p.set_defaults(func=cmd_cluster)

    p = sub.add_parser("profile", help="offline-profile one application")
    p.add_argument("model", choices=MODEL_NAMES)
    p.add_argument("--partitions", nargs="+", type=int, default=[18, 12, 9, 6, 3])
    p.add_argument("--training", action="store_true")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("timeline", help="render a BLESS execution timeline")
    p.add_argument("--models", nargs="+", required=True, choices=MODEL_NAMES)
    p.add_argument("--quotas", nargs="+", type=float)
    p.add_argument("--width", type=int, default=80)
    p.set_defaults(func=cmd_timeline)

    p = sub.add_parser("sweep-quota", help="sweep the seven 2-app quota splits")
    p.add_argument("--models", nargs="+", required=True, choices=MODEL_NAMES)
    p.add_argument("--load", default="B", choices=["A", "B", "C"])
    p.add_argument("--requests", type=int, default=6)
    p.set_defaults(func=cmd_sweep_quota)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
