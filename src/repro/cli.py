"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments``            list the per-figure experiment modules
``experiment <name>``      run one experiment's main()
``serve``                  serve a workload on chosen systems and compare
``profile <model>``        print an application's offline profile summary
``timeline``               render an execution timeline for a small run
``sweep-quota``            sweep 2-app quota splits (Fig. 12-style rows)
``trace``                  serve with decision tracing on; export Perfetto JSON
``results``                query the sqlite results catalog
                           (``list`` / ``query`` / ``compare`` / ``gc`` /
                           ``ingest-bench``; see docs/results-catalog.md)
``scenario``               list / show / run declarative scenarios
                           (the committed zoo or any spec file;
                           see docs/scenarios.md)

Examples
--------
python -m repro serve --models R50 R50 --load C --systems GSLICE BLESS
python -m repro profile BERT --partitions 18 9 5
python -m repro timeline --models VGG R50 --width 100
python -m repro trace --models R50 VGG --load B --out trace.json
python -m repro results compare origin-main HEAD --threshold throughput_qps=-0.05
python -m repro scenario run llm_inference_tails --jobs 2
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import List, Optional

from .apps.models import MODEL_NAMES, inference_app, training_app
from .core.profiler import OfflineProfiler
from .experiments import ALL_EXPERIMENTS
from .experiments.common import INFERENCE_SYSTEMS
from .metrics.io import save_results
from .viz.charts import bar_chart, reduction_table
from .viz.timeline import render_timeline
from .workloads.suite import QUOTAS_2MODEL, bind_load


def _apps_from_args(models: List[str], quotas: Optional[List[float]], training: bool):
    maker = training_app if training else inference_app
    if quotas is None:
        quotas = [1.0 / len(models)] * len(models)
    if len(quotas) != len(models):
        raise SystemExit("error: --quotas must match --models in length")
    apps = []
    for index, (model, quota) in enumerate(zip(models, quotas)):
        base = maker(model)
        apps.append(base.with_quota(quota, app_id=f"{base.name}#{index}"))
    return apps


def cmd_experiments(_args) -> int:
    print("available experiments (run with: python -m repro experiment <name>):")
    for name in ALL_EXPERIMENTS:
        print(f"  {name}")
    return 0


def cmd_report(args) -> int:
    from .experiments import report

    digest = report.run(json_path=args.json, jobs=args.jobs)
    from .experiments.common import format_table

    rows = [[name, e["measured"], e["paper"]] for name, e in digest.items()]
    print(format_table(["artifact", "measured", "paper"], rows,
                       title="BLESS reproduction digest"))
    return 0


def cmd_experiment(args) -> int:
    if args.name not in ALL_EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; see `python -m repro experiments`")
        return 2
    module = importlib.import_module(f"repro.experiments.{args.name}")
    module.main(jobs=args.jobs)
    return 0


def _trace_path(target: str, system: str, multiple: bool) -> str:
    """Per-system trace filename: suffix the stem when comparing systems."""
    if not multiple:
        return target
    from pathlib import Path

    path = Path(target)
    return str(path.with_name(f"{path.stem}-{system}{path.suffix}"))


def _write_trace(tracer, target: str) -> str:
    """Export a tracer's unified stream; format chosen by extension."""
    from .obs import save_jsonl, save_perfetto

    if target.endswith(".jsonl"):
        count = save_jsonl(tracer.records, target)
    else:
        count = save_perfetto(tracer.records, target)
    return f"{target} ({count} events)"


def cmd_serve(args) -> int:
    apps = _apps_from_args(args.models, args.quotas, args.training)
    unknown = [s for s in args.systems if s not in INFERENCE_SYSTEMS]
    if unknown:
        print(f"unknown systems: {unknown}; choose from {list(INFERENCE_SYSTEMS)}")
        return 2
    from .gpusim.faults import resolve_fault_plan
    from .obs import resolve_trace_target, resolve_tracing

    fault_plan = resolve_fault_plan(args.fault_plan, args.fault_seed)
    if fault_plan is not None:
        print(f"fault plan: {fault_plan.describe()}")
    slo = None
    if args.slo_mix:
        from .gateway import parse_slo_mix

        slo = parse_slo_mix(args.slo_mix, [a.app_id for a in apps])
        classes = ", ".join(
            f"{a.app_id}={slo.slo_class(a.app_id)}" for a in apps
        )
        print(f"slo mix: {classes} (preempt={'on' if slo.preempt else 'off'})")
    tracing = bool(args.trace) or resolve_tracing()
    trace_target = resolve_trace_target(args.trace)
    results = []
    latencies = {}
    for name in args.systems:
        system = INFERENCE_SYSTEMS[name](
            fault_plan=fault_plan, trace=True if tracing else None, slo=slo
        )
        result = system.serve(bind_load(apps, args.load, requests=args.requests))
        results.append(result)
        if trace_target and system.obs.tracer is not None:
            path = _trace_path(trace_target, name, multiple=len(args.systems) > 1)
            print(f"  trace: {_write_trace(system.obs.tracer, path)}")
        latencies[name] = result.mean_of_app_means() / 1000.0
        per_app = ", ".join(
            f"{a}={v / 1000:.2f}ms" for a, v in result.per_app_mean_latency().items()
        )
        line = (f"{name:9s} avg {latencies[name]:7.2f} ms  "
                f"util {result.utilization:5.1%}  [{per_app}]")
        if fault_plan is not None:
            shed = result.extras.get("fault_shed_requests", 0.0)
            degraded = result.extras.get("fault_degradation_events", 0.0)
            line += f"  shed={shed:.0f} degradation={degraded:.0f}"
        if slo is not None:
            arrived = result.extras.get("slo_arrived_latency_critical", 0.0)
            hits = result.extras.get("slo_deadline_hits_latency_critical", 0.0)
            if arrived > 0:
                line += f"  slo={hits / arrived:.0%}"
            preemptions = result.extras.get("slo_preemptions", 0.0)
            if preemptions > 0:
                line += f" preempt={preemptions:.0f}"
        print(line)
    print()
    print(bar_chart(latencies, title=f"average latency, load {args.load}",
                    highlight="BLESS" if "BLESS" in latencies else None))
    if "BLESS" in latencies and len(latencies) > 1:
        print()
        print(reduction_table(latencies))
    if args.output:
        save_results(results, args.output)
        print(f"\nsaved results to {args.output}")
    # Record the comparison in the results catalog (REPRO_CATALOG=off
    # opts out) so ad-hoc serves are queryable next to the sweeps.
    from .catalog.ingest import ingest_metrics_safe, result_metrics

    artifacts = [("results", args.output)] if args.output else []
    for name, result in zip(args.systems, results):
        ingest_metrics_safe(
            "serve",
            name,
            {
                "experiment": "serve",
                "models": list(args.models),
                "quotas": args.quotas,
                "load": args.load,
                "requests": args.requests,
                "training": bool(args.training),
                "fault_plan": fault_plan.describe() if fault_plan else None,
                "slo_mix": args.slo_mix or None,
            },
            result_metrics(result),
            artifacts=artifacts,
        )
    return 0


def cmd_trace(args) -> int:
    """Serve one system with decision tracing on and export the trace."""
    from .gpusim.faults import resolve_fault_plan
    from .obs import analyze

    if args.system not in INFERENCE_SYSTEMS:
        print(f"unknown system {args.system!r}; choose from {list(INFERENCE_SYSTEMS)}")
        return 2
    apps = _apps_from_args(args.models, args.quotas, args.training)
    fault_plan = resolve_fault_plan(args.fault_plan, args.fault_seed)
    if fault_plan is not None:
        print(f"fault plan: {fault_plan.describe()}")
    system = INFERENCE_SYSTEMS[args.system](fault_plan=fault_plan, trace=True)
    result = system.serve(bind_load(apps, args.load, requests=args.requests))
    tracer = system.obs.tracer
    if tracer is None:
        print(f"{args.system} does not support decision tracing "
              "(composite systems serve on private sub-engines)")
        return 2
    print(f"{args.system}: avg {result.mean_of_app_means() / 1000:.2f} ms, "
          f"util {result.utilization:.1%}")
    print(f"trace: {_write_trace(tracer, args.out)}")
    if not args.out.endswith(".jsonl"):
        print("open it at https://ui.perfetto.dev or chrome://tracing")
    reports = analyze(tracer.records)
    print("\npost-hoc analysis:")
    for section, values in reports.items():
        rendered = ", ".join(f"{k}={v:.4g}" for k, v in values.items())
        print(f"  {section}: {rendered}")
    return 0


def cmd_cluster(args) -> int:
    """Serve a workload on a multi-GPU cluster (§4.2.2 orchestrator)."""
    from .cluster import (
        AppArrival,
        ClusterController,
        OnlineClusterController,
        PlacementError,
        PlacementPolicy,
    )
    from .gpusim.faults import resolve_fault_plan
    from .obs import resolve_trace_target, resolve_tracing

    if args.system not in INFERENCE_SYSTEMS:
        print(f"unknown system {args.system!r}; choose from {list(INFERENCE_SYSTEMS)}")
        return 2
    apps = _apps_from_args(args.models, args.quotas, args.training)
    bindings = bind_load(apps, args.load, requests=args.requests)
    fault_plan = resolve_fault_plan(args.fault_plan, args.fault_seed)
    if fault_plan is not None:
        print(f"fault plan: {fault_plan.describe()}")
    system_kwargs = {"fault_plan": fault_plan} if fault_plan is not None else {}
    tracing = bool(args.trace) or resolve_tracing()
    trace_target = resolve_trace_target(args.trace)
    policy = PlacementPolicy(args.policy)

    if args.online:
        # One application arrives per epoch, in --models order.
        schedule = [
            AppArrival(binding=binding, arrive_epoch=index)
            for index, binding in enumerate(bindings)
        ]
        controller = OnlineClusterController(
            num_gpus=args.gpus,
            policy=policy,
            system_factory=INFERENCE_SYSTEMS[args.system],
            system_kwargs=system_kwargs,
            migrate=args.migrate,
            trace=True if tracing else None,
        )
        result = controller.serve(schedule, epochs=args.epochs, jobs=args.jobs)
        stats = result.stats
        print(
            f"online: {stats.epochs} epochs, "
            f"{stats.apps_admitted}/{stats.apps_arrived} admitted "
            f"({stats.apps_degraded} degraded, {stats.apps_shed} shed, "
            f"{stats.migrations} migrations)"
        )
        if result.shed_apps:
            print(f"shed apps: {', '.join(result.shed_apps)}")
        final_placement = result.placements[-1] if result.placements else {}
    else:
        controller = ClusterController(
            num_gpus=args.gpus,
            policy=policy,
            system_factory=INFERENCE_SYSTEMS[args.system],
            system_kwargs=system_kwargs,
            trace=True if tracing else None,
        )
        try:
            result = controller.serve(bindings, jobs=args.jobs)
        except PlacementError as error:
            print(f"placement failed: {error}")
            print("(try more --gpus, smaller --quotas, or --online shedding)")
            return 2
        final_placement = result.placements

    merged = result.merged
    for gpu_index in sorted(final_placement):
        print(f"  GPU{gpu_index}: {', '.join(final_placement[gpu_index])}")
    line = (
        f"{merged.system}: avg {merged.mean_of_app_means() / 1000:.2f} ms, "
        f"util {merged.utilization:.1%} over {args.gpus} GPUs, "
        f"{len(merged.records)} requests"
    )
    if fault_plan is not None:
        shed = merged.extras.get("fault_shed_requests", 0.0)
        arrived = merged.extras.get("fault_requests_arrived", 0.0)
        line += f"  [arrived={arrived:.0f} shed={shed:.0f}]"
    print(line)
    if trace_target and controller.tracer is not None:
        print(f"trace: {_write_trace(controller.tracer, trace_target)}")
        if not trace_target.endswith(".jsonl"):
            print("open it at https://ui.perfetto.dev (per-GPU tracks)")
    return 0


def cmd_scenario_list(_args) -> int:
    from .experiments.common import format_table
    from .scenarios import list_zoo, load_zoo

    rows = []
    for name in list_zoo():
        try:
            spec = load_zoo(name)
            rows.append([name, str(len(spec.systems)),
                         str(len(spec.sweep)) or "0", spec.description])
        except Exception as error:  # a broken zoo file should still list
            rows.append([name, "?", "?", f"unreadable: {error}"])
    print(format_table(["scenario", "systems", "axes", "description"], rows,
                       title="scenario zoo (run with: repro scenario run <name>)"))
    return 0


def cmd_scenario_show(args) -> int:
    from .experiments.common import format_table
    from .scenarios import dumps, expand_sweep, load_zoo, resolve_scenario

    spec = load_zoo(args.name)
    summary = resolve_scenario(spec)
    print(dumps(spec), end="")
    rows = [[key, " ".join(point.systems)] for key, point in expand_sweep(spec)]
    print(format_table(["point", "systems"], rows,
                       title=f"{summary['points']} point(s), "
                       f"{summary['cells']} cell(s), "
                       f"apps: {', '.join(summary['apps'])}"))
    return 0


def cmd_scenario_run(args) -> int:
    import json as _json

    from .experiments.common import format_table
    from .scenarios import load_zoo, run_scenario

    spec = load_zoo(args.name)
    results = run_scenario(spec, jobs=args.jobs, backend=args.backend)
    if args.json:
        print(_json.dumps(results, indent=2, sort_keys=True))
    else:
        rows = []
        for point, by_system in results.items():
            for system, metrics in by_system.items():
                rows.append([
                    point,
                    system,
                    f"{metrics.get('mean_latency_us', float('nan')) / 1000:.2f}",
                    f"{metrics.get('p99_latency_us', float('nan')) / 1000:.2f}",
                    f"{metrics.get('throughput_qps', float('nan')):.1f}",
                    f"{metrics.get('utilization', float('nan')):.1%}",
                ])
        print(format_table(
            ["point", "system", "mean ms", "p99 ms", "qps", "util"],
            rows, title=f"scenario {spec.name}"))
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(
            _json.dumps(results, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"saved results to {args.output}")
    return 0


def _open_catalog(args):
    from .catalog import ResultsCatalog
    from .catalog.ingest import resolve_catalog_path

    path = resolve_catalog_path(args.db)
    if path is None:
        raise SystemExit(
            "error: the results catalog is disabled (REPRO_CATALOG=off); "
            "pass --db PATH to query one explicitly"
        )
    if not path.exists() and not getattr(args, "create", False):
        raise SystemExit(
            f"error: no catalog at {path} (run an experiment first, or pass "
            "--db pointing at one; see docs/results-catalog.md)"
        )
    return ResultsCatalog(path)


def cmd_results_list(args) -> int:
    from .experiments.common import format_table

    with _open_catalog(args) as catalog:
        rows = catalog.runs(
            experiment=args.experiment,
            system=args.system,
            git_rev=catalog.resolve_rev(args.rev) if args.rev else None,
            limit=args.limit,
        )
        table = [
            [
                str(run.run_id),
                run.created_at[:19],
                run.experiment,
                run.system,
                run.git_rev[:10],
                run.config_hash[:10],
                f"{run.wall_time_s:.2f}s" if run.wall_time_s is not None else "-",
            ]
            for run in rows
        ]
        print(
            format_table(
                ["run", "created (utc)", "experiment", "system", "rev",
                 "config", "wall"],
                table,
                title=f"{catalog.path}: {catalog.count_runs()} runs, "
                f"{len(catalog.revisions())} revisions "
                f"(showing {len(rows)})",
            )
        )
    return 0


def cmd_results_query(args) -> int:
    import json as _json

    from .experiments.common import format_table

    with _open_catalog(args) as catalog:
        rev = catalog.resolve_rev(args.rev) if args.rev else None
        revisions = [rev] if rev else [r for r, _ in catalog.revisions()]
        rows = []
        for revision in revisions:
            values = catalog.metric_values(
                revision,
                metric=args.metric,
                experiment=args.experiment,
                system=args.system,
            )
            for (experiment, system, metric), series in sorted(values.items()):
                rows.append(
                    {
                        "rev": revision,
                        "experiment": experiment,
                        "system": system,
                        "metric": metric,
                        "runs": len(series),
                        "median": sorted(series)[len(series) // 2],
                        "latest": series[-1],
                    }
                )
        if args.json:
            print(_json.dumps(rows, indent=2))
            return 0
        print(
            format_table(
                ["rev", "experiment", "system", "metric", "runs", "median",
                 "latest"],
                [
                    [
                        row["rev"][:10],
                        row["experiment"],
                        row["system"],
                        row["metric"],
                        str(row["runs"]),
                        f"{row['median']:.6g}",
                        f"{row['latest']:.6g}",
                    ]
                    for row in rows
                ],
            )
        )
    return 0


def cmd_results_compare(args) -> int:
    """Diff two revisions' metrics; exit 1 past the regression thresholds."""
    import json as _json

    from .catalog import evaluate, format_comparison_table, parse_thresholds

    thresholds = parse_thresholds(args.threshold or [])
    with _open_catalog(args) as catalog:
        try:
            rev_a = catalog.resolve_rev(args.rev_baseline)
            rev_b = catalog.resolve_rev(args.rev_current)
        except ValueError as error:
            print(f"error: {error}")
            return 2
        comparisons = catalog.compare(
            rev_a,
            rev_b,
            metrics=args.metric or None,
            experiment=args.experiment,
            system=args.system,
        )
        violations, checked = evaluate(comparisons, thresholds)
        if args.json:
            print(
                _json.dumps(
                    {
                        "baseline": rev_a,
                        "current": rev_b,
                        "thresholds": thresholds,
                        "checked": len(checked),
                        "violations": [v.describe() for v in violations],
                    },
                    indent=2,
                )
            )
        else:
            print(f"baseline {rev_a[:12]} vs current {rev_b[:12]} "
                  f"({len(comparisons)} shared metrics, {len(checked)} gated)")
            if comparisons:
                print(format_comparison_table(comparisons, thresholds, violations))
            if not checked:
                print("note: no gated metrics overlap these revisions "
                      f"(thresholds: {thresholds})")
            if violations:
                print(f"\nPERF GATE: {len(violations)} regression(s) "
                      "past threshold:")
                for violation in violations:
                    print(f"  {violation.describe()}")
            else:
                print("\nPERF GATE: ok")
        return 1 if violations else 0


def cmd_results_gc(args) -> int:
    with _open_catalog(args) as catalog:
        dropped = catalog.gc(
            keep_per_config=args.keep, before=args.before, dry_run=args.dry_run
        )
        verb = "would drop" if args.dry_run else "dropped"
        print(f"{verb} {dropped} run(s); {catalog.count_runs()} remain "
              f"in {catalog.path}")
    return 0


def cmd_results_ingest_bench(args) -> int:
    """Load BENCH_*.json trajectory snapshots into the catalog (CI baseline)."""
    from .catalog import ResultsCatalog
    from .catalog.ingest import ingest_bench_file, resolve_catalog_path

    path = resolve_catalog_path(args.db)
    if path is None:
        raise SystemExit("error: catalog disabled (REPRO_CATALOG=off)")
    total = 0
    with ResultsCatalog(path) as catalog:
        for bench_path in args.paths:
            count = ingest_bench_file(bench_path, catalog)
            print(f"ingested {count} benchmark run(s) from {bench_path}")
            total += count
    print(f"{total} run(s) into {path}")
    return 0


def cmd_profile(args) -> int:
    maker = training_app if args.training else inference_app
    app = maker(args.model)
    profile = OfflineProfiler().profile(app)
    print(f"{app.name}: {app.num_compute_kernels} compute kernels, "
          f"{app.memory_mb} MB, solo {app.solo_span_us / 1000:.2f} ms "
          f"(GPU busy {app.total_compute_us / app.solo_span_us:.0%})")
    print(f"profiling cost: {profile.profiling_cost_us / 1e6:.2f} s "
          f"({profile.num_partitions} partitioned runs)")
    print(f"\n{'partition':>9s} {'SMs':>5s} {'T[n%] (ms)':>11s}")
    for partition in args.partitions:
        sms = round(partition / profile.num_partitions * 108)
        print(f"{partition:9d} {sms:5d} {profile.iso_latency(partition) / 1000:11.2f}")
    return 0


def cmd_timeline(args) -> int:
    from .core.runtime import BlessRuntime
    from .workloads.arrivals import OneShot
    from .workloads.suite import WorkloadBinding

    apps = _apps_from_args(args.models, args.quotas, training=False)
    system = BlessRuntime(record_timeline=True)
    result = system.serve(
        [WorkloadBinding(app=a, process_factory=OneShot) for a in apps]
    )
    view = render_timeline(system.engine.timeline, width=args.width)
    print(view.render())
    print()
    for app in apps:
        print(f"{app.app_id}: {result.mean_latency(app.app_id) / 1000:.2f} ms")
    return 0


def cmd_sweep_quota(args) -> int:
    from .baselines.iso import ISOSystem
    from .core.runtime import BlessRuntime

    if len(args.models) != 2:
        print("sweep-quota needs exactly two --models")
        return 2
    print(f"{'quotas':>13s} {'BLESS app1':>11s} {'BLESS app2':>11s} "
          f"{'ISO app1':>9s} {'ISO app2':>9s}")
    for quota_a, quota_b in QUOTAS_2MODEL:
        apps = _apps_from_args(args.models, [quota_a, quota_b], training=False)
        bless = BlessRuntime().serve(bind_load(apps, args.load, requests=args.requests))
        iso = ISOSystem().serve(bind_load(apps, args.load, requests=args.requests))
        ids = [a.app_id for a in apps]
        print(
            f"({quota_a:.2f},{quota_b:.2f})"
            f" {bless.mean_latency(ids[0]) / 1000:11.2f}"
            f" {bless.mean_latency(ids[1]) / 1000:11.2f}"
            f" {iso.mean_latency(ids[0]) / 1000:9.2f}"
            f" {iso.mean_latency(ids[1]) / 1000:9.2f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="BLESS reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list experiment modules").set_defaults(
        func=cmd_experiments
    )

    jobs_help = (
        "worker processes for independent simulation cells "
        "(default: all cores; 1 = serial, output is identical either way)"
    )

    p = sub.add_parser("report", help="run the full reproduction digest")
    p.add_argument("--json", help="also write the digest as JSON here")
    p.add_argument("--jobs", type=int, default=0, help=jobs_help)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("experiment", help="run one experiment")
    p.add_argument("name")
    p.add_argument("--jobs", type=int, default=0, help=jobs_help)
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("serve", help="serve a workload and compare systems")
    p.add_argument("--models", nargs="+", required=True, choices=MODEL_NAMES)
    p.add_argument("--quotas", nargs="+", type=float)
    p.add_argument("--load", default="B", choices=["A", "B", "C"])
    p.add_argument("--requests", type=int, default=8)
    p.add_argument(
        "--systems", nargs="+", default=["ISO", "GSLICE", "UNBOUND", "BLESS"]
    )
    p.add_argument("--training", action="store_true")
    p.add_argument("--output", help="save results JSON here")
    p.add_argument(
        "--fault-plan",
        help="inject faults, e.g. 'failure=0.05,crash=4000,seed=7' "
        "(default: the REPRO_FAULT_PLAN environment variable)",
    )
    p.add_argument(
        "--fault-seed", type=int,
        help="override the fault plan's seed (REPRO_FAULT_SEED)",
    )
    p.add_argument(
        "--slo-mix",
        metavar="CLASSES",
        help="attach a serving gateway: comma-separated SLO classes in "
        "--models order, cycled (e.g. 'lc,be'; 'lc:2.0' sets that "
        "app's deadline to 2x solo latency). Latency-critical "
        "arrivals preempt best-effort squads on BLESS.",
    )
    p.add_argument(
        "--trace",
        metavar="PATH",
        help="record decision traces and write one Perfetto JSON per "
        "system to PATH (.jsonl extension writes JSON lines; "
        "default: the REPRO_TRACE environment variable)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "trace", help="serve one system with decision tracing and export"
    )
    p.add_argument("--models", nargs="+", required=True, choices=MODEL_NAMES)
    p.add_argument("--quotas", nargs="+", type=float)
    p.add_argument("--load", default="B", choices=["A", "B", "C"])
    p.add_argument("--requests", type=int, default=8)
    p.add_argument("--system", default="BLESS")
    p.add_argument("--training", action="store_true")
    p.add_argument(
        "--out", default="trace.json",
        help="output path (.json = Perfetto trace_event, .jsonl = JSON lines)",
    )
    p.add_argument("--fault-plan", help="inject faults (see `serve --fault-plan`)")
    p.add_argument("--fault-seed", type=int)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "results",
        help="query the sqlite results catalog (docs/results-catalog.md)",
    )
    results_sub = p.add_subparsers(dest="results_command", required=True)
    db_help = (
        "catalog sqlite file (default: REPRO_CATALOG, then "
        "results/catalog.sqlite)"
    )

    rp = results_sub.add_parser("list", help="list recorded runs, newest first")
    rp.add_argument("--db", help=db_help)
    rp.add_argument("--experiment", help="filter by experiment name")
    rp.add_argument("--system", help="filter by system name")
    rp.add_argument("--rev", help="filter by git revision (prefix or HEAD)")
    rp.add_argument("--limit", type=int, default=20)
    rp.set_defaults(func=cmd_results_list)

    rp = results_sub.add_parser(
        "query", help="per-(experiment, system, metric) values by revision"
    )
    rp.add_argument("--db", help=db_help)
    rp.add_argument("--experiment", help="filter by experiment name")
    rp.add_argument("--system", help="filter by system name")
    rp.add_argument("--rev", help="one revision only (prefix or HEAD)")
    rp.add_argument("--metric", help="one metric name (default: all)")
    rp.add_argument("--json", action="store_true", help="emit JSON rows")
    rp.set_defaults(func=cmd_results_query)

    rp = results_sub.add_parser(
        "compare",
        help="diff two revisions' metric medians; exit 1 past thresholds",
    )
    rp.add_argument("rev_baseline", help="baseline revision (prefix or HEAD)")
    rp.add_argument("rev_current", help="candidate revision (prefix or HEAD)")
    rp.add_argument("--db", help=db_help)
    rp.add_argument("--experiment", help="restrict to one experiment")
    rp.add_argument("--system", help="restrict to one system")
    rp.add_argument(
        "--metric", action="append",
        help="restrict the diff to these metrics (repeatable)",
    )
    rp.add_argument(
        "--threshold",
        action="append",
        metavar="METRIC=FRAC",
        help="gate: signed fraction, sign = bad direction (default: "
        "throughput_qps=-0.05 p99_latency_us=0.10 speedup=-0.10)",
    )
    rp.add_argument("--json", action="store_true", help="emit a JSON verdict")
    rp.set_defaults(func=cmd_results_compare)

    rp = results_sub.add_parser("gc", help="bound the catalog's size")
    rp.add_argument("--db", help=db_help)
    rp.add_argument(
        "--keep", type=int, default=10,
        help="newest runs kept per (experiment, system, config hash)",
    )
    rp.add_argument("--before", help="also drop runs created before this ISO time")
    rp.add_argument("--dry-run", action="store_true")
    rp.set_defaults(func=cmd_results_gc)

    rp = results_sub.add_parser(
        "ingest-bench",
        help="load BENCH_*.json trajectory snapshots (the CI baseline seed)",
    )
    rp.add_argument("paths", nargs="+", help="BENCH_*.json files")
    rp.add_argument("--db", help=db_help)
    rp.set_defaults(func=cmd_results_ingest_bench)

    p = sub.add_parser(
        "cluster", help="serve a workload across a multi-GPU cluster (§4.2.2)"
    )
    p.add_argument("--gpus", type=int, default=2, help="GPUs in the pool")
    p.add_argument("--models", nargs="+", required=True, choices=MODEL_NAMES)
    p.add_argument("--quotas", nargs="+", type=float)
    p.add_argument(
        "--policy",
        "--placement",
        default="best_fit",
        choices=["first_fit", "best_fit", "worst_fit", "contention_aware"],
        help="placement policy (contention_aware = Eq. 2 interference-"
        "cost minimization, see docs/cluster.md)",
    )
    p.add_argument("--load", default="B", choices=["A", "B", "C"])
    p.add_argument("--requests", type=int, default=8)
    p.add_argument("--system", default="BLESS")
    p.add_argument("--training", action="store_true")
    p.add_argument("--jobs", type=int, default=None, help=jobs_help)
    p.add_argument(
        "--online",
        action="store_true",
        help="online mode: apps arrive one per epoch through the "
        "admission ladder (degrade -> migrate -> shed)",
    )
    p.add_argument(
        "--epochs", type=int, default=None,
        help="online horizon (default: derived from the schedule)",
    )
    p.add_argument(
        "--migrate", action="store_true",
        help="rebalance one app between epochs when it shrinks the quota spread",
    )
    p.add_argument("--fault-plan", help="inject faults (see `serve --fault-plan`)")
    p.add_argument("--fault-seed", type=int)
    p.add_argument(
        "--trace",
        metavar="PATH",
        help="record cluster + per-GPU decision traces to PATH "
        "(.jsonl = JSON lines, else Perfetto trace_event)",
    )
    p.set_defaults(func=cmd_cluster)

    p = sub.add_parser(
        "scenario",
        help="list, inspect, and run declarative scenarios (docs/scenarios.md)",
    )
    scenario_sub = p.add_subparsers(dest="scenario_command", required=True)

    sp = scenario_sub.add_parser("list", help="list the committed scenario zoo")
    sp.set_defaults(func=cmd_scenario_list)

    sp = scenario_sub.add_parser(
        "show", help="print a scenario's canonical spec and resolved grid"
    )
    sp.add_argument("name", help="zoo scenario name or a spec file path")
    sp.set_defaults(func=cmd_scenario_show)

    sp = scenario_sub.add_parser(
        "run", help="run every sweep point x system cell of a scenario"
    )
    sp.add_argument("name", help="zoo scenario name or a spec file path")
    sp.add_argument("--jobs", type=int, default=None, help=jobs_help)
    sp.add_argument(
        "--backend", default=None, choices=["auto", "inproc", "pool"],
        help="cell execution backend (default: REPRO_BACKEND, then auto)",
    )
    sp.add_argument("--json", action="store_true", help="emit the full metrics JSON")
    sp.add_argument("--output", help="also write the metrics JSON here")
    sp.set_defaults(func=cmd_scenario_run)

    p = sub.add_parser("profile", help="offline-profile one application")
    p.add_argument("model", choices=MODEL_NAMES)
    p.add_argument("--partitions", nargs="+", type=int, default=[18, 12, 9, 6, 3])
    p.add_argument("--training", action="store_true")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("timeline", help="render a BLESS execution timeline")
    p.add_argument("--models", nargs="+", required=True, choices=MODEL_NAMES)
    p.add_argument("--quotas", nargs="+", type=float)
    p.add_argument("--width", type=int, default=80)
    p.set_defaults(func=cmd_timeline)

    p = sub.add_parser("sweep-quota", help="sweep the seven 2-app quota splits")
    p.add_argument("--models", nargs="+", required=True, choices=MODEL_NAMES)
    p.add_argument("--load", default="B", choices=["A", "B", "C"])
    p.add_argument("--requests", type=int, default=6)
    p.set_defaults(func=cmd_sweep_quota)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
