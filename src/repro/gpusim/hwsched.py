"""The GPU hardware scheduler: SM allocation among runnable kernels.

Given the compute kernels at the heads of their device queues, the
hardware scheduler decides how many SMs each occupies.  Two policies
are provided:

* ``fair`` (default): max-min water-filling — kernels' thread blocks
  interleave at fine granularity, so equal-priority device queues share
  SMs fairly over time (the Volta+ behaviour of paper footnote 1).
  Co-run *cost* is carried by the interference model, not by starvation.

* ``fifo``: strict dispatch order — an earlier kernel occupies up to
  its full demand (and its context's SM-affinity cap) and later kernels
  get the leftovers, starving behind wide kernels.  Used for ablations
  of hardware-dispatch assumptions.

Both respect (a) a kernel never exceeds its own demand ``d%``, and
(b) the kernels of one context never jointly exceed the context's SM
affinity limit (MPS semantics).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence

from .kernel import KernelInstance
from .stream import DeviceQueue


@dataclass(frozen=True)
class Allocation:
    """SM share granted to one running kernel."""

    kernel: KernelInstance
    sm_fraction: float


def waterfill(demands: Sequence[float], capacity: float) -> List[float]:
    """Max-min fair split of ``capacity``, never exceeding a demand."""
    n = len(demands)
    if n == 0:
        return []
    alloc = [0.0] * n
    remaining = capacity
    active = list(range(n))
    while active and remaining > 1e-12:
        share = remaining / len(active)
        satisfied = [i for i in active if demands[i] - alloc[i] <= share + 1e-15]
        if satisfied:
            done = set(satisfied)
            for i in satisfied:
                remaining -= demands[i] - alloc[i]
                alloc[i] = demands[i]
            active = [i for i in active if i not in done]
        else:
            for i in active:
                alloc[i] += share
            remaining = 0.0
            active = []
    return alloc


class HardwareScheduler:
    """Allocates SM fractions to the runnable kernels of all queues."""

    def __init__(self, policy: str = "fair"):
        if policy not in ("fifo", "fair"):
            raise ValueError(f"unknown hardware policy {policy!r}")
        self.policy = policy

    def allocate(
        self,
        running: Sequence[KernelInstance],
        queues: Dict[int, DeviceQueue],
    ) -> List[Allocation]:
        """Compute the SM share of each running compute kernel.

        ``queues`` maps ``kernel.uid`` to the queue it runs in (to look
        up the context's SM limit).
        """
        if not running:
            return []
        if self.policy == "fifo":
            return self._allocate_fifo(running, queues)
        return self._allocate_fair(running, queues)

    # ------------------------------------------------------------------
    def _allocate_fifo(
        self,
        running: Sequence[KernelInstance],
        queues: Dict[int, DeviceQueue],
    ) -> List[Allocation]:
        # Blocks dispatch in kernel start order; ties (same dispatch
        # instant) break by uid, i.e. launch order — the simple fair
        # round-robin the Volta+ scheduler applies to equal-priority
        # queues (paper footnote 1).
        ordered = sorted(
            running, key=lambda k: (k.start_time if k.start_time is not None else 0.0, k.uid)
        )
        free = 1.0
        context_used: Dict[int, float] = defaultdict(float)
        allocations = []
        for kernel in ordered:
            ctx = queues[kernel.uid].context
            cap = ctx.sm_limit - context_used[ctx.context_id]
            grant = max(0.0, min(kernel.spec.sm_demand, cap, free))
            context_used[ctx.context_id] += grant
            free -= grant
            allocations.append(Allocation(kernel=kernel, sm_fraction=grant))
        return allocations

    def _allocate_fair(
        self,
        running: Sequence[KernelInstance],
        queues: Dict[int, DeviceQueue],
    ) -> List[Allocation]:
        by_context: Dict[int, List[KernelInstance]] = defaultdict(list)
        limits: Dict[int, float] = {}
        priorities: Dict[int, int] = {}
        for kernel in running:
            ctx = queues[kernel.uid].context
            by_context[ctx.context_id].append(kernel)
            limits[ctx.context_id] = ctx.sm_limit
            priorities[ctx.context_id] = ctx.priority

        # Higher-priority contexts (REEF-style real-time clients) are
        # satisfied first; within a priority level, fair water-filling.
        allocations: List[Allocation] = []
        capacity = 1.0
        for level in sorted(set(priorities.values()), reverse=True):
            level_cids = [c for c, p in priorities.items() if p == level]

            # Pass 1: split each context's limit among its kernels.
            per_kernel_want: Dict[int, float] = {}
            context_want: Dict[int, float] = {}
            for cid in level_cids:
                kernels = by_context[cid]
                fills = waterfill([k.spec.sm_demand for k in kernels], limits[cid])
                for kernel, fill in zip(kernels, fills):
                    per_kernel_want[kernel.uid] = fill
                context_want[cid] = sum(fills)

            # Pass 2: water-fill this level's contexts over what's left.
            ctx_fills = waterfill(
                [context_want[c] for c in level_cids], capacity
            )
            for cid, fill in zip(level_cids, ctx_fills):
                want = context_want[cid]
                scale = fill / want if want > 0 else 0.0
                for kernel in by_context[cid]:
                    grant = per_kernel_want[kernel.uid] * scale
                    capacity -= grant
                    allocations.append(
                        Allocation(kernel=kernel, sm_fraction=grant)
                    )
            capacity = max(0.0, capacity)
        return allocations
