"""The GPU hardware scheduler: SM allocation among runnable kernels.

Given the compute kernels at the heads of their device queues, the
hardware scheduler decides how many SMs each occupies.  Two policies
are provided:

* ``fair`` (default): max-min water-filling — kernels' thread blocks
  interleave at fine granularity, so equal-priority device queues share
  SMs fairly over time (the Volta+ behaviour of paper footnote 1).
  Co-run *cost* is carried by the interference model, not by starvation.

* ``fifo``: strict dispatch order — an earlier kernel occupies up to
  its full demand (and its context's SM-affinity cap) and later kernels
  get the leftovers, starving behind wide kernels.  Used for ablations
  of hardware-dispatch assumptions.

Both respect (a) a kernel never exceeds its own demand ``d%``, and
(b) the kernels of one context never jointly exceed the context's SM
affinity limit (MPS semantics).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .context import GPUContext
from .kernel import KernelInstance
from .stream import DeviceQueue

#: Water-fill tolerances, shared by every allocation path: a residual
#: capacity at or below ``CAPACITY_EPS`` counts as exhausted, and a
#: demand within ``SATISFIED_EPS`` of its fair share counts as
#: satisfied.  ``repro.gpusim._jit_rates`` compiles these same values
#: into its numba water-fill (numba freezes globals at compile time),
#: so the interpreted and jitted allocations stay bit-identical.
CAPACITY_EPS = 1e-12
SATISFIED_EPS = 1e-15


@dataclass(frozen=True)
class Allocation:
    """SM share granted to one running kernel."""

    kernel: KernelInstance
    sm_fraction: float


def waterfill(demands: Sequence[float], capacity: float) -> List[float]:
    """Max-min fair split of ``capacity``, never exceeding a demand."""
    n = len(demands)
    if n == 0:
        return []
    alloc = [0.0] * n
    remaining = capacity
    active = list(range(n))
    while active and remaining > CAPACITY_EPS:
        share = remaining / len(active)
        satisfied = [i for i in active if demands[i] - alloc[i] <= share + SATISFIED_EPS]
        if satisfied:
            done = set(satisfied)
            for i in satisfied:
                remaining -= demands[i] - alloc[i]
                alloc[i] = demands[i]
            active = [i for i in active if i not in done]
        else:
            for i in active:
                alloc[i] += share
            remaining = 0.0
            active = []
    return alloc


def _waterfill_small(demands: Sequence[float], capacity: float) -> List[float]:
    """:func:`waterfill` with inlined one- and two-demand fast paths.

    One kernel in a context, one context at a priority level, or two
    co-running contexts cover nearly every allocation the engine asks
    for; the general loop reduces to exactly this arithmetic for
    ``n <= 2`` (same operations in the same order, so the results are
    bit-identical).
    """
    n = len(demands)
    if n == 1:
        if capacity <= CAPACITY_EPS:
            return [0.0]
        demand = demands[0]
        return [demand] if demand <= capacity + SATISFIED_EPS else [capacity]
    if n == 2:
        if capacity <= CAPACITY_EPS:
            return [0.0, 0.0]
        d0 = demands[0]
        d1 = demands[1]
        share = capacity / 2
        bar = share + SATISFIED_EPS
        if d0 <= bar:
            if d1 <= bar:
                return [d0, d1]
            remaining = capacity - d0
            if remaining > CAPACITY_EPS:
                return [d0, d1] if d1 <= remaining + SATISFIED_EPS else [d0, remaining]
            return [d0, 0.0]
        if d1 <= bar:
            remaining = capacity - d1
            if remaining > CAPACITY_EPS:
                return [d0, d1] if d0 <= remaining + SATISFIED_EPS else [remaining, d1]
            return [0.0, d1]
        return [share, share]
    return waterfill(demands, capacity)


class HardwareScheduler:
    """Allocates SM fractions to the runnable kernels of all queues."""

    def __init__(self, policy: str = "fair"):
        if policy not in ("fifo", "fair"):
            raise ValueError(f"unknown hardware policy {policy!r}")
        self.policy = policy

    def allocate(
        self,
        running: Sequence[KernelInstance],
        queues: Dict[int, DeviceQueue],
    ) -> List[Allocation]:
        """Compute the SM share of each running compute kernel.

        ``queues`` maps ``kernel.uid`` to the queue it runs in (to look
        up the context's SM limit).
        """
        if not running:
            return []
        if self.policy == "fifo":
            return self._allocate_fifo(running, queues)
        return self._allocate_fair(running, queues)

    # ------------------------------------------------------------------
    def _allocate_fifo(
        self,
        running: Sequence[KernelInstance],
        queues: Dict[int, DeviceQueue],
    ) -> List[Allocation]:
        # Blocks dispatch in kernel start order; ties (same dispatch
        # instant) break by uid, i.e. launch order — the simple fair
        # round-robin the Volta+ scheduler applies to equal-priority
        # queues (paper footnote 1).
        ordered = sorted(
            running, key=lambda k: (k.start_time if k.start_time is not None else 0.0, k.uid)
        )
        free = 1.0
        context_used: Dict[int, float] = defaultdict(float)
        allocations = []
        for kernel in ordered:
            ctx = queues[kernel.uid].context
            cap = ctx.sm_limit - context_used[ctx.context_id]
            grant = max(0.0, min(kernel.spec.sm_demand, cap, free))
            context_used[ctx.context_id] += grant
            free -= grant
            allocations.append(Allocation(kernel=kernel, sm_fraction=grant))
        return allocations

    def allocate_fair_indexed(
        self,
        running: Sequence[KernelInstance],
        contexts: Sequence[GPUContext],
    ) -> List[Tuple[int, float]]:
        """Fair allocation as ``(running_index, grant)`` pairs.

        Object-free variant of :meth:`allocate` for the engine's
        vectorized rebalance: ``contexts[i]`` is the context of
        ``running[i]``, and the returned pairs follow the identical
        allocation order (priority level descending, then context
        first-appearance order, then running order within a context)
        with bit-identical arithmetic to ``_allocate_fair``.
        """
        # Dominant shape: every kernel in its own context, one priority
        # level (one queue per app, one head kernel running each).  The
        # general grouping below then degenerates to a single
        # water-fill over the per-context wants; replicate exactly that
        # arithmetic without the dict plumbing.
        n = len(contexts)
        if n == 1:
            # Lone running kernel: the two-pass water-fill degenerates
            # to clamping its demand by the context limit and the GPU
            # (grant expressions mirror the general path bit for bit).
            cap = contexts[0].sm_limit
            if cap <= CAPACITY_EPS:
                return [(0, 0.0)]
            demand = running[0].spec.sm_demand
            want = demand if demand <= cap + SATISFIED_EPS else cap
            if want <= 0.0:
                return [(0, 0.0)]
            if want <= 1.0 + SATISFIED_EPS:
                return [(0, want)]
            return [(0, want * (1.0 / want))]
        if n <= 6:
            if n == 2:
                c0, c1 = contexts
                singleton = (
                    c0.priority == c1.priority and c0.context_id != c1.context_id
                )
            else:
                first_priority = contexts[0].priority
                singleton = True
                seen_ids = set()
                for ctx in contexts:
                    if ctx.priority != first_priority or ctx.context_id in seen_ids:
                        singleton = False
                        break
                    seen_ids.add(ctx.context_id)
            if singleton:
                wants: List[float] = []
                for index, ctx in enumerate(contexts):
                    cap = ctx.sm_limit
                    if cap <= CAPACITY_EPS:
                        wants.append(0.0)
                    else:
                        demand = running[index].spec.sm_demand
                        wants.append(demand if demand <= cap + SATISFIED_EPS else cap)
                fills = _waterfill_small(wants, 1.0)
                pairs = []
                for index, (want, fill) in enumerate(zip(wants, fills)):
                    scale = fill / want if want > 0 else 0.0
                    pairs.append((index, want * scale))
                return pairs

        # Group kernels by context in first-appearance order; note on
        # the way whether a second priority level exists (rare).
        by_context: Dict[int, List[int]] = {}
        limits: Dict[int, float] = {}
        priorities: Dict[int, int] = {}
        single_level = True
        first_priority: int = 0
        for index, ctx in enumerate(contexts):
            cid = ctx.context_id
            group = by_context.get(cid)
            if group is None:
                by_context[cid] = [index]
                limits[cid] = ctx.sm_limit
                priority = ctx.priority
                priorities[cid] = priority
                if len(priorities) == 1:
                    first_priority = priority
                elif priority != first_priority:
                    single_level = False
            else:
                group.append(index)

        pairs: List[Tuple[int, float]] = []
        capacity = 1.0
        if single_level:
            levels = [first_priority] if priorities else []
        else:
            levels = sorted(set(priorities.values()), reverse=True)
        for level in levels:
            if single_level:
                level_cids = list(by_context)
            else:
                level_cids = [c for c, p in priorities.items() if p == level]

            # Pass 1: split each context's limit among its kernels.
            per_kernel_want: Dict[int, float] = {}
            context_want: Dict[int, float] = {}
            for cid in level_cids:
                indices = by_context[cid]
                fills = _waterfill_small(
                    [running[i].spec.sm_demand for i in indices], limits[cid]
                )
                for index, fill in zip(indices, fills):
                    per_kernel_want[index] = fill
                context_want[cid] = sum(fills)

            # Pass 2: water-fill this level's contexts over what's left.
            ctx_fills = _waterfill_small(
                [context_want[c] for c in level_cids], capacity
            )
            for cid, fill in zip(level_cids, ctx_fills):
                want = context_want[cid]
                scale = fill / want if want > 0 else 0.0
                for index in by_context[cid]:
                    grant = per_kernel_want[index] * scale
                    capacity -= grant
                    pairs.append((index, grant))
            capacity = max(0.0, capacity)
        return pairs

    def _allocate_fair(
        self,
        running: Sequence[KernelInstance],
        queues: Dict[int, DeviceQueue],
    ) -> List[Allocation]:
        by_context: Dict[int, List[KernelInstance]] = defaultdict(list)
        limits: Dict[int, float] = {}
        priorities: Dict[int, int] = {}
        for kernel in running:
            ctx = queues[kernel.uid].context
            by_context[ctx.context_id].append(kernel)
            limits[ctx.context_id] = ctx.sm_limit
            priorities[ctx.context_id] = ctx.priority

        # Higher-priority contexts (REEF-style real-time clients) are
        # satisfied first; within a priority level, fair water-filling.
        allocations: List[Allocation] = []
        capacity = 1.0
        for level in sorted(set(priorities.values()), reverse=True):
            level_cids = [c for c, p in priorities.items() if p == level]

            # Pass 1: split each context's limit among its kernels.
            per_kernel_want: Dict[int, float] = {}
            context_want: Dict[int, float] = {}
            for cid in level_cids:
                kernels = by_context[cid]
                fills = waterfill([k.spec.sm_demand for k in kernels], limits[cid])
                for kernel, fill in zip(kernels, fills):
                    per_kernel_want[kernel.uid] = fill
                context_want[cid] = sum(fills)

            # Pass 2: water-fill this level's contexts over what's left.
            ctx_fills = waterfill(
                [context_want[c] for c in level_cids], capacity
            )
            for cid, fill in zip(level_cids, ctx_fills):
                want = context_want[cid]
                scale = fill / want if want > 0 else 0.0
                for kernel in by_context[cid]:
                    grant = per_kernel_want[kernel.uid] * scale
                    capacity -= grant
                    allocations.append(
                        Allocation(kernel=kernel, sm_fraction=grant)
                    )
            capacity = max(0.0, capacity)
        return allocations
