"""Discrete-event simulation engine with processor-sharing execution.

The engine advances a simulated clock (microseconds) through events:
kernel launches becoming visible to the device, kernel completions, and
arbitrary host callbacks (request arrivals, scheduler wake-ups).

Execution model
---------------
Every running compute kernel has ``remaining_work`` measured in
solo-speed microseconds.  Whenever the set of running kernels changes,
the engine re-derives each kernel's execution *rate*:

``rate = spec.rate_at(sm_share) * interference_multiplier``

where ``sm_share`` comes from the hardware scheduler's max-min fair
allocation and the interference multiplier from the memory-bandwidth
contention model.  Between state changes, work drains linearly, so the
next completion time is exact — no time-stepping error.

Memcpy kernels drain through the PCIe channel instead of the SM pool.
SYNC kernels complete immediately when they reach the queue head.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .device import GPUDevice
from .hwsched import HardwareScheduler
from .interference import InterferenceModel
from .kernel import KernelInstance, KernelKind
from .pcie import PCIeChannel
from .stream import DeviceQueue
from .context import GPUContext

EventCallback = Callable[[], None]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


@dataclass
class TimelineSegment:
    """One interval of constant execution state (for figure rendering)."""

    start: float
    end: float
    # kernel uid -> (app_id, sm_fraction, rate)
    running: Dict[int, Tuple[str, float, float]]

    @property
    def busy_fraction(self) -> float:
        return min(1.0, sum(sm for (_, sm, _) in self.running.values()))


class SimEngine:
    """Processor-sharing discrete-event GPU simulator."""

    def __init__(
        self,
        device: Optional[GPUDevice] = None,
        interference: Optional[InterferenceModel] = None,
        record_timeline: bool = False,
        hw_policy: str = "fair",
        validate: bool = False,
    ):
        self.device = device or GPUDevice()
        self.interference = interference or InterferenceModel()
        self.hwsched = HardwareScheduler(policy=hw_policy)
        # Debug mode: assert physical invariants on every rebalance
        # (allocation feasibility, rate bounds, work conservation).
        self.validate = validate
        self.pcie = PCIeChannel()
        self.now = 0.0
        self._heap: List[_Event] = []
        self._event_seq = itertools.count()
        self._queues: List[DeviceQueue] = []
        self._queue_of: Dict[int, DeviceQueue] = {}  # kernel uid -> queue
        self._gap_events: Dict[int, float] = {}  # queue id -> pending wake time
        self._running_compute: List[KernelInstance] = []
        self._running_memcpy: List[KernelInstance] = []
        self._completion_event: Optional[_Event] = None
        self._finish_subscribers: List[Callable[[KernelInstance], None]] = []
        self._per_kernel_callbacks: Dict[int, Callable[[KernelInstance], None]] = {}
        # Utilization accounting: integral of busy SM fraction over time.
        self._busy_integral = 0.0
        self._busy_since = 0.0
        self._current_busy_fraction = 0.0
        self.record_timeline = record_timeline
        self.timeline: List[TimelineSegment] = []
        self._kernels_completed = 0

    # ------------------------------------------------------------------
    # Queue / context management
    # ------------------------------------------------------------------
    def create_queue(self, context: GPUContext, label: str = "") -> DeviceQueue:
        queue = DeviceQueue(context=context, label=label)
        self._queues.append(queue)
        return queue

    @property
    def queues(self) -> List[DeviceQueue]:
        return list(self._queues)

    # ------------------------------------------------------------------
    # Event scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: EventCallback) -> _Event:
        """Run ``callback`` at ``now + delay`` (host-side event)."""
        if delay < 0:
            raise ValueError(f"cannot schedule event in the past (delay={delay})")
        event = _Event(self.now + delay, next(self._event_seq), callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: EventCallback) -> _Event:
        return self.schedule(max(0.0, time - self.now), callback)

    @staticmethod
    def cancel(event: _Event) -> None:
        event.cancelled = True

    # ------------------------------------------------------------------
    # Kernel launch / completion
    # ------------------------------------------------------------------
    def launch(
        self,
        kernel: KernelInstance,
        queue: DeviceQueue,
        launch_overhead: Optional[float] = None,
        on_finish: Optional[Callable[[KernelInstance], None]] = None,
    ) -> None:
        """Launch ``kernel`` into ``queue``.

        The kernel becomes visible to the device after the launch
        overhead (defaults to the device's ~3us kernel launch latency).
        """
        if launch_overhead is None:
            launch_overhead = self.device.spec.kernel_launch_us
        if on_finish is not None:
            self._per_kernel_callbacks[kernel.uid] = on_finish

        def make_visible() -> None:
            queue.push(kernel, self.now)
            self._queue_of[kernel.uid] = queue
            self._dispatch()

        if launch_overhead > 0:
            self.schedule(launch_overhead, make_visible)
        else:
            make_visible()

    def subscribe_finish(self, callback: Callable[[KernelInstance], None]) -> None:
        """Register a callback invoked on every kernel completion."""
        self._finish_subscribers.append(callback)

    # ------------------------------------------------------------------
    # Execution state machine
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        """Start head kernels of all queues that are idle, then rebalance."""
        started = False
        # SYNC kernels complete immediately; loop until heads are stable.
        progressing = True
        while progressing:
            progressing = False
            for queue in self._queues:
                head = queue.head()
                if head is None:
                    continue
                ready_at = queue.head_ready_at()
                if ready_at is not None and ready_at > self.now + 1e-9:
                    # Intra-request bubble: the host has not dispatched
                    # the next kernel yet; wake up when it does.
                    self._ensure_gap_event(queue, ready_at)
                    continue
                kernel = queue.start_head(self.now)
                # Annotate execution context for tracers (the queue
                # mapping is gone by completion-callback time).
                kernel.traced_context_id = queue.context.context_id
                kernel.traced_context_limit = queue.context.sm_limit
                if kernel.spec.kind is KernelKind.SYNC or kernel.spec.base_duration_us == 0:
                    self._complete_kernel(queue, kernel)
                    progressing = True
                elif kernel.spec.is_memcpy:
                    self._running_memcpy.append(kernel)
                    started = True
                else:
                    self._running_compute.append(kernel)
                    started = True
        if started or progressing:
            self._rebalance()

    def _ensure_gap_event(self, queue: DeviceQueue, ready_at: float) -> None:
        """Schedule (once) a dispatch retry when a queue's gap expires."""
        pending = self._gap_events.get(queue.queue_id)
        if pending is not None and pending <= ready_at + 1e-9:
            return
        self._gap_events[queue.queue_id] = ready_at

        def expire() -> None:
            if self._gap_events.get(queue.queue_id) == ready_at:
                del self._gap_events[queue.queue_id]
            self._dispatch()
            self._rebalance()

        self.schedule_at(ready_at, expire)

    def _rebalance(self) -> None:
        """Recompute rates for all running kernels and the next completion."""
        self._accrue_busy_time()

        # Compute-kernel SM allocation.
        allocations = self.hwsched.allocate(self._running_compute, self._queue_of)
        active = [a for a in allocations if a.sm_fraction > 0]
        interference_inputs = [
            (
                a.kernel.spec.mem_intensity,
                self._queue_of[a.kernel.uid].context.restricted,
            )
            for a in active
        ]
        total_demand = sum(a.kernel.spec.sm_demand for a in active)
        slowdowns = self.interference.slowdowns(
            interference_inputs, total_sm_demand=total_demand
        )

        busy = 0.0
        for alloc in allocations:
            kernel = alloc.kernel
            if alloc.sm_fraction <= 0:
                kernel.current_rate = 0.0
                kernel.current_sm_fraction = 0.0
                continue
            kernel.current_sm_fraction = alloc.sm_fraction
            busy += alloc.sm_fraction
        for alloc, slowdown in zip(active, slowdowns):
            kernel = alloc.kernel
            kernel.current_rate = kernel.spec.rate_at(alloc.sm_fraction) / slowdown
        self._current_busy_fraction = min(1.0, busy)

        if self.validate:
            self._check_invariants(allocations)

        # Memcpy kernels share the PCIe channel.
        pcie_rates = self.pcie.rates(self._running_memcpy)
        for kernel in self._running_memcpy:
            kernel.current_rate = pcie_rates.get(kernel.uid, 0.0)
            kernel.current_sm_fraction = 0.0

        self._record_segment_start()
        self._schedule_next_completion()

    def _check_invariants(self, allocations) -> None:
        """Debug-mode physical invariants (``validate=True``).

        * the GPU is never oversubscribed (sum of SM shares <= 1);
        * no kernel exceeds its own demand or its context's limit;
        * every execution rate lies in [0, 1] (no free speedups);
        * remaining work never goes negative.
        """
        total = 0.0
        for alloc in allocations:
            kernel = alloc.kernel
            total += alloc.sm_fraction
            if alloc.sm_fraction > kernel.spec.sm_demand + 1e-9:
                raise AssertionError(
                    f"{kernel.name}: granted {alloc.sm_fraction:.3f} SMs "
                    f"above demand {kernel.spec.sm_demand:.3f}"
                )
            limit = self._queue_of[kernel.uid].context.sm_limit
            if alloc.sm_fraction > limit + 1e-9:
                raise AssertionError(
                    f"{kernel.name}: granted {alloc.sm_fraction:.3f} SMs "
                    f"above context limit {limit:.3f}"
                )
            if kernel.remaining_work < -1e-9:
                raise AssertionError(f"{kernel.name}: negative remaining work")
        if total > 1.0 + 1e-6:
            raise AssertionError(f"GPU oversubscribed: {total:.4f} SM fractions")
        for kernel in self._running_compute:
            if not 0.0 <= kernel.current_rate <= 1.0 + 1e-9:
                raise AssertionError(
                    f"{kernel.name}: rate {kernel.current_rate:.4f} out of [0, 1]"
                )

    def _schedule_next_completion(self) -> None:
        if self._completion_event is not None:
            self.cancel(self._completion_event)
            self._completion_event = None
        best_time = math.inf
        for kernel in itertools.chain(self._running_compute, self._running_memcpy):
            if kernel.current_rate <= 0:
                continue
            eta = self.now + kernel.remaining_work / kernel.current_rate
            if eta < best_time:
                best_time = eta
        if math.isfinite(best_time):
            self._completion_event = self.schedule_at(best_time, self._on_completion_tick)

    def _advance_work(self, to_time: float) -> None:
        dt = to_time - self._busy_since
        if dt <= 0:
            return
        for kernel in itertools.chain(self._running_compute, self._running_memcpy):
            kernel.remaining_work = max(0.0, kernel.remaining_work - kernel.current_rate * dt)

    def _finish_epsilon(self, kernel: KernelInstance) -> float:
        """Work threshold below which a kernel counts as finished.

        Completion times are floats; at large simulated times the
        residual work after advancing can be ~ulp(now) * rate and would
        never drain (the next event would round to the same instant).
        Treat anything the kernel would clear within ~1 ulp of `now`
        (floored at a picosecond) as done.
        """
        time_eps = max(1e-9, 4.0 * math.ulp(self.now))
        return max(1e-9, kernel.current_rate * time_eps)

    def _on_completion_tick(self) -> None:
        # Advances work to `now`, accrues utilization, resets _busy_since
        # so the later _rebalance does not double-count the interval.
        self._accrue_busy_time()
        finished = [
            k
            for k in itertools.chain(self._running_compute, self._running_memcpy)
            if k.remaining_work <= self._finish_epsilon(k)
        ]
        for kernel in finished:
            queue = self._queue_of[kernel.uid]
            if kernel in self._running_compute:
                self._running_compute.remove(kernel)
            else:
                self._running_memcpy.remove(kernel)
            self._complete_kernel(queue, kernel)
        self._dispatch()
        self._rebalance()

    def _complete_kernel(self, queue: DeviceQueue, kernel: KernelInstance) -> None:
        queue.finish_running(self.now)
        kernel.remaining_work = 0.0
        self._queue_of.pop(kernel.uid, None)
        self._kernels_completed += 1
        callback = self._per_kernel_callbacks.pop(kernel.uid, None)
        if callback is not None:
            callback(kernel)
        for subscriber in self._finish_subscribers:
            subscriber(kernel)

    # ------------------------------------------------------------------
    # Utilization accounting
    # ------------------------------------------------------------------
    def _accrue_busy_time(self) -> None:
        # Advance remaining work to 'now' before rates change.
        self._advance_work(self.now)
        dt = self.now - self._busy_since
        if dt > 0:
            self._busy_integral += self._current_busy_fraction * dt
            self._record_segment_end()
        self._busy_since = self.now

    def _record_segment_start(self) -> None:
        if not self.record_timeline:
            return
        running = {}
        for kernel in itertools.chain(self._running_compute, self._running_memcpy):
            running[kernel.uid] = (
                kernel.app_id,
                kernel.current_sm_fraction,
                kernel.current_rate,
            )
        self._pending_segment = TimelineSegment(start=self.now, end=self.now, running=running)

    def _record_segment_end(self) -> None:
        if not self.record_timeline:
            return
        segment = getattr(self, "_pending_segment", None)
        if segment is None or segment.start >= self.now:
            return
        segment.end = self.now
        self.timeline.append(segment)

    def utilization(self, since: float = 0.0) -> float:
        """Average busy-SM fraction over ``[since, now]``."""
        elapsed = self.now - since
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_integral / elapsed)

    @property
    def busy_sm_time(self) -> float:
        """Integral of busy SM fraction (SM-fraction x microseconds)."""
        return self._busy_integral

    @property
    def kernels_completed(self) -> int:
        return self._kernels_completed

    @property
    def has_running_kernels(self) -> bool:
        return bool(self._running_compute or self._running_memcpy)

    @property
    def running_kernels(self) -> List[KernelInstance]:
        return list(itertools.chain(self._running_compute, self._running_memcpy))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next event; returns False when nothing is left."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self.now - 1e-9:
                raise RuntimeError("event in the past — engine invariant broken")
            self.now = max(self.now, event.time)
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the event queue drains (or ``until`` is reached)."""
        events = 0
        while self._heap:
            next_time = self._heap[0].time
            if until is not None and next_time > until:
                self._accrue_busy_time_at(until)
                self.now = until
                return self.now
            if not self.step():
                break
            events += 1
            if events >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
        self._accrue_busy_time()
        return self.now

    def _accrue_busy_time_at(self, time: float) -> None:
        saved = self.now
        self.now = time
        self._accrue_busy_time()
        self.now = saved
