"""Discrete-event simulation engine with processor-sharing execution.

The engine advances a simulated clock (microseconds) through events:
kernel launches becoming visible to the device, kernel completions, and
arbitrary host callbacks (request arrivals, scheduler wake-ups).

Execution model
---------------
Every running compute kernel has ``remaining_work`` measured in
solo-speed microseconds.  Whenever the set of running kernels changes,
the engine re-derives each kernel's execution *rate*:

``rate = spec.rate_at(sm_share) * interference_multiplier``

where ``sm_share`` comes from the hardware scheduler's max-min fair
allocation and the interference multiplier from the memory-bandwidth
contention model.  Between state changes, work drains linearly, so the
next completion time is exact — no time-stepping error.

Memcpy kernels drain through the PCIe channel instead of the SM pool.
SYNC kernels complete immediately when they reach the queue head.

Hot-path design (see docs/performance.md)
-----------------------------------------
The event loop is the dominant cost of every figure reproduction, so
the engine keeps structural fast paths:

* **ready-set dispatch** — queues register themselves in a dirty set
  when a push, a completion, or a gap expiry makes their head
  actionable; ``_dispatch`` examines only those queues instead of
  scanning every queue on every event;
* **rebalance gating + memoization** — rates are a pure function of the
  *membership* of the running set (specs + contexts), so a rebalance is
  skipped outright when membership did not change, and the allocation →
  slowdown → rate pipeline is memoized per membership signature (an
  engine-local LRU, backed in batched mode by a process-wide table
  keyed on portable value signatures, so serve N+1 reuses serve N's
  rates).  The original per-kernel path is kept behind
  ``mode="scalar"`` as the byte-for-byte equivalence reference;
* **rate-change epochs** (``mode="batched"``, the default) — between
  two rate-changing events (arrival, completion, squad switch, fault)
  every running kernel advances at a constant rate, so the engine keeps
  the next completion and the queue gap wake-ups as *pseudo-events*
  compared against the heap top instead of heap entries that are
  cancelled and re-pushed on every rebalance.  Remaining-work/ETA
  updates collapse into one batched step per epoch — a numpy structured
  array (``kernel, context, remaining, rate, eta``) once the running
  set is wide enough, a fused scalar loop below that — with arithmetic
  identical to the event-per-kernel modes;
* **optional jit rebalance kernel** (``mode="jit"``) — the epoch engine
  with the rebalance miss path compiled by numba when it is installed
  (``pip install .[perf]``), falling back silently to the batched
  engine (byte-identical to ``vectorized``) when it is not;
* **lazy-cancel heap compaction** — cancelled events are dropped when
  popped, and when they outnumber half the heap it is rebuilt in place.

``SimEngine.counters`` exposes the event/rebalance/epoch/compaction
tallies; serving harnesses surface them in ``ServingResult.extras``
under ``engine_*`` and the results catalog ingests them per run.
"""

from __future__ import annotations

import heapq
import itertools
import math
import os
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from .device import GPUDevice
from .hwsched import HardwareScheduler
from .interference import InterferenceModel
from .kernel import KernelInstance, KernelKind
from .pcie import PCIeChannel
from .stream import DeviceQueue
from .context import GPUContext

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .faults import FaultInjector

EventCallback = Callable[[], None]

ENGINE_MODES = ("batched", "jit", "vectorized", "scalar", "legacy")

# Heap-compaction policy: rebuild when cancelled events outnumber live
# ones and there are enough of them to be worth an O(n) sweep.
_COMPACT_MIN_CANCELLED = 64

_NEVER_FINISHED = float("-inf")

# Bound on the membership-signature -> rates memo (vectorized mode).
_REBALANCE_CACHE_SIZE = 8192
# Only track hit recency (LRU move-to-end) once the cache could
# plausibly fill; below this nothing is evicted anyway.
_REBALANCE_CACHE_TRACK = _REBALANCE_CACHE_SIZE // 2

# Below this many active kernels a memo miss evaluates the (identical)
# arithmetic with scalar ops: numpy array construction costs more than
# it saves on 2-4 element sets, which dominate two-app serving.
_VECTOR_MIN_ACTIVE = 8

# Below this many running kernels the epoch advance/ETA step of the
# batched engine uses a fused scalar loop; at or above it, the numpy
# structured-array path (gather → one vector op → store-only scatter)
# wins.  Same IEEE arithmetic on both sides.
_EPOCH_VECTOR_MIN = 8

# Structured per-kernel epoch state of the batched engine: between two
# rate-changing events every running kernel advances at a constant
# rate, so one record per kernel fully describes the epoch.
EPOCH_DTYPE = np.dtype(
    [
        ("kernel", np.int64),     # kernel uid
        ("context", np.int64),    # owning context id
        ("remaining", np.float64),
        ("rate", np.float64),
        ("eta", np.float64),
    ]
)

# Process-wide rebalance memo for the batched/jit engines: engines are
# created per serve, so their signature-keyed L1 memos die with them
# while the signature *space* (which app layers co-run) repeats across
# the serves of a sweep.  Keyed on portable value signatures — context
# slot/limit/priority/restriction plus the spec fields the pipeline
# reads — so serve N+1 starts warm.  Values are immutable result
# tuples computed by the exact same arithmetic, so sharing cannot
# change results; the table is swept wholesale if it ever fills.
_RATES_L2_SIZE = 65536
_rates_l2: Dict[tuple, tuple] = {}


def _load_jit_kernel():
    """The numba-compiled rebalance kernel, or None when unavailable.

    Import errors (numba absent) and compilation trouble both fall back
    silently: ``mode="jit"`` then behaves exactly like ``batched``.
    """
    try:
        from ._jit_rates import HAVE_NUMBA, rate_kernel
    except Exception:  # pragma: no cover - defensive import guard
        return None
    return rate_kernel if HAVE_NUMBA else None


def jit_available() -> bool:
    """Whether ``mode="jit"`` will actually run the compiled kernel."""
    return _load_jit_kernel() is not None


def default_engine_mode() -> str:
    """The engine mode used when ``SimEngine(mode=None)``.

    Controlled by ``REPRO_ENGINE_MODE`` (``batched`` | ``jit`` |
    ``vectorized`` | ``scalar`` | ``legacy``) so test harnesses can
    flip every engine in a process tree at once.  ``batched`` (the
    default) runs the rate-change-epoch event loop; ``jit`` adds the
    numba-compiled rebalance kernel when numba is installed and falls
    back to ``batched`` silently when it is not; ``vectorized`` keeps
    the heap-driven loop with memoized numpy rebalances; ``scalar``
    keeps the structural fast paths but evaluates rates per kernel;
    ``legacy`` additionally restores the pre-overhaul full-queue scan
    and unconditional rebalance, as the benchmark baseline.  All five
    are byte-identical.
    """
    mode = os.environ.get("REPRO_ENGINE_MODE", "batched")
    if mode not in ENGINE_MODES:
        raise ValueError(
            f"REPRO_ENGINE_MODE must be one of {ENGINE_MODES}, got {mode!r}"
        )
    return mode


class _Event:
    """A scheduled callback.  Heap entries are ``(time, seq, event)``
    tuples so ordering never falls back to Python-level comparisons."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: EventCallback):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"_Event(t={self.time:.3f}, seq={self.seq}{state})"


@dataclass
class TimelineSegment:
    """One interval of constant execution state (for figure rendering)."""

    start: float
    end: float
    # kernel uid -> (app_id, sm_fraction, rate)
    running: Dict[int, Tuple[str, float, float]]

    @property
    def busy_fraction(self) -> float:
        return min(1.0, sum(sm for (_, sm, _) in self.running.values()))


class SimEngine:
    """Processor-sharing discrete-event GPU simulator."""

    def __init__(
        self,
        device: Optional[GPUDevice] = None,
        interference: Optional[InterferenceModel] = None,
        record_timeline: bool = False,
        hw_policy: str = "fair",
        validate: bool = False,
        mode: Optional[str] = None,
        timeline_capacity: int = 65536,
        fault_injector: Optional["FaultInjector"] = None,
    ):
        self.device = device or GPUDevice()
        self.interference = interference or InterferenceModel()
        self.hwsched = HardwareScheduler(policy=hw_policy)
        if mode is None:
            mode = default_engine_mode()
        if mode not in ENGINE_MODES:
            raise ValueError(f"engine mode must be one of {ENGINE_MODES}, got {mode!r}")
        self.mode = mode
        self._legacy = mode == "legacy"
        # Debug mode: assert physical invariants on every rebalance
        # (allocation feasibility, rate bounds, work conservation).
        self.validate = validate
        # Decided once: every constituent is fixed at construction.
        self._fast_rates = (
            mode in ("vectorized", "batched", "jit")
            and not validate
            and self.hwsched.policy == "fair"
        )
        # The epoch-batched event loop needs the memoized fair-policy
        # rebalance; with validate or a non-fair policy the engine
        # demotes itself to the (byte-identical) heap-driven loop.
        self._batched = mode in ("batched", "jit") and self._fast_rates
        # mode="jit": numba-compiled rebalance miss path when numba is
        # importable, silent fallback to the batched engine otherwise.
        self._jit_kernel = _load_jit_kernel() if mode == "jit" else None
        self._compute_rates = (
            self._compute_rates_jit
            if self._jit_kernel is not None
            else self._compute_rates_vectorized
        )
        # Namespace of the process-wide rate memo: jit-computed entries
        # never mix with interpreter-computed ones, so the 5-way
        # equivalence tests exercise the compiled kernel for real.
        self._l2_family = "jit" if self._jit_kernel is not None else "std"
        self.pcie = PCIeChannel()
        self.now = 0.0
        self._heap: List[Tuple[float, int, _Event]] = []
        self._event_seq = itertools.count()
        self._cancelled_in_heap = 0
        self._queues: List[DeviceQueue] = []
        self._queue_of: Dict[int, DeviceQueue] = {}  # kernel uid -> queue
        # queue id -> (pending wake time, its event) for gapped heads
        self._gap_events: Dict[int, Tuple[float, _Event]] = {}
        # Ready set: queues whose head may have become actionable since
        # the last dispatch (push / completion / gap expiry).
        self._dirty_queues: Dict[int, DeviceQueue] = {}
        self._running_compute: List[KernelInstance] = []
        self._running_memcpy: List[KernelInstance] = []
        # Context of each running kernel, aligned with _running_compute
        # (avoids per-rebalance queue lookups on the fast path).
        self._running_ctx: List[GPUContext] = []
        # Incrementally-maintained membership signature, aligned with
        # _running_compute: context_id and spec token packed into one
        # int (cheap tuple hashing on the memoized rebalance path).
        # Contexts are immutable and specs frozen, so the pair pins down
        # everything the allocation/interference pipeline reads.
        self._sig_parts: List[int] = []
        self._spec_tokens: Dict[int, int] = {}  # id(spec) -> token
        self._spec_refs: List[object] = []  # keep specs alive: ids stay unique
        # True whenever the running-set membership changed since the
        # last rebalance; rates are a pure function of membership, so a
        # clean flag means the previous rates (and the pending
        # completion event) are still exact.
        self._running_dirty = False
        self._completion_event: Optional[_Event] = None
        # Batched-mode pseudo-events: the next completion and the queue
        # gap wake-ups live outside the heap as (time, seq) pairs the
        # main loop compares against the heap top.  Seqs come from the
        # same counter as heap events, at the same points the
        # heap-driven loop would schedule them, so tie-breaking at
        # equal times is identical across modes.
        self._completion_time = math.inf
        self._completion_seq = 0
        # queue id -> (requested ready_at, scheduled time, seq, queue)
        self._gap_wakes: Dict[int, Tuple[float, float, int, DeviceQueue]] = {}
        self._gap_min_time = math.inf
        self._gap_min_seq = 0
        self._gap_min_qid = -1
        # Reusable structured-array epoch state (allocated on demand).
        self._epoch_arr: Optional[np.ndarray] = None
        # packed (context, spec-token) int -> portable signature tail;
        # safe to memoise because contexts never mutate their limit or
        # priority in place and specs are frozen.
        self._portable_tails: Dict[int, tuple] = {}
        self._finish_subscribers: List[Callable[[KernelInstance], None]] = []
        self._failure_subscribers: List[Callable[[KernelInstance], None]] = []
        self._per_kernel_callbacks: Dict[int, Callable[[KernelInstance], None]] = {}
        # One-shot hooks drained at the next rate-change epoch (the
        # completion tick), between the finish sweep and re-dispatch —
        # the squad-boundary preemption points of the serving gateway.
        # Empty outside gateway runs, so the epoch loop pays only a
        # truthiness check and stays byte-identical across all modes.
        self._epoch_hooks: List[Callable[[], None]] = []
        # Fault injection (None on the default, perfect-world path).
        self._faults = fault_injector
        # Optional DecisionTracer (obs/): fault/decision events are
        # emitted only from cold branches, guarded on this attribute,
        # so the hot path is untouched when tracing is off.
        self.trace = None
        # kernel uid -> event for kernels parked in retry backoff; their
        # queue stays blocked on them until the retry (or a kill) runs.
        self._pending_retries: Dict[int, _Event] = {}
        # Memoized membership-signature -> (fractions, rates, busy).
        self._rebalance_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
        # Utilization accounting: integral of busy SM fraction over time.
        self._busy_integral = 0.0
        self._busy_since = 0.0
        self._current_busy_fraction = 0.0
        self.record_timeline = record_timeline
        self.timeline: Union[List[TimelineSegment], Deque[TimelineSegment]] = (
            deque(maxlen=timeline_capacity) if record_timeline else []
        )
        self._pending_segment: Optional[TimelineSegment] = None
        self._kernels_completed = 0
        self._kernels_failed = 0
        self._kernels_retried = 0
        self._kernels_killed = 0
        # Hot-path diagnostics (surfaced as ServingResult engine_* extras).
        self._events_processed = 0
        self._rebalances = 0
        self._rebalances_skipped = 0
        self._rebalance_cache_hits = 0
        self._rebalance_l2_hits = 0
        self._heap_compactions = 0
        self._peak_heap_size = 0
        self._gap_events_superseded = 0
        # Epoch-batched advance tallies (batched/jit modes).
        self._epoch_batches = 0
        self._epoch_kernels_advanced = 0
        self._epoch_max_batch = 0
        if self._batched:
            # Route the shared entry points (launch visibility, fault
            # teardown, retries) into the epoch-batched loop without a
            # mode branch on every hot call.
            self._dispatch = self._dispatch_batched
            self._maybe_rebalance = self._maybe_rebalance_batched
            self._rebalance = self._rebalance_batched
            self._ensure_gap_event = self._ensure_gap_wake

    # ------------------------------------------------------------------
    # Queue / context management
    # ------------------------------------------------------------------
    def create_queue(self, context: GPUContext, label: str = "") -> DeviceQueue:
        queue = DeviceQueue(context=context, label=label)
        self._queues.append(queue)
        return queue

    @property
    def queues(self) -> List[DeviceQueue]:
        return list(self._queues)

    # ------------------------------------------------------------------
    # Event scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: EventCallback) -> _Event:
        """Run ``callback`` at ``now + delay`` (host-side event)."""
        if delay < 0:
            raise ValueError(f"cannot schedule event in the past (delay={delay})")
        event = _Event(self.now + delay, next(self._event_seq), callback)
        heapq.heappush(self._heap, (event.time, event.seq, event))
        if len(self._heap) > self._peak_heap_size:
            self._peak_heap_size = len(self._heap)
        return event

    def schedule_at(self, time: float, callback: EventCallback) -> _Event:
        # Inlined schedule(max(0.0, time - now)) — same arithmetic, so
        # event times stay bit-identical, without the extra call.
        now = self.now
        delay = time - now
        if delay < 0.0:
            delay = 0.0
        event = _Event(now + delay, next(self._event_seq), callback)
        heap = self._heap
        heapq.heappush(heap, (event.time, event.seq, event))
        if len(heap) > self._peak_heap_size:
            self._peak_heap_size = len(heap)
        return event

    def cancel(self, event: _Event) -> None:
        """Lazy-cancel: the event is dropped when popped, or swept out
        by compaction once cancelled events dominate the heap."""
        if event.cancelled:
            return
        event.cancelled = True
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap >= _COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact_heap()

    def _compact_heap(self) -> None:
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self._heap_compactions += 1

    @property
    def heap_size(self) -> int:
        """Current heap length, cancelled entries included (tests)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Kernel launch / completion
    # ------------------------------------------------------------------
    def launch(
        self,
        kernel: KernelInstance,
        queue: DeviceQueue,
        launch_overhead: Optional[float] = None,
        on_finish: Optional[Callable[[KernelInstance], None]] = None,
    ) -> None:
        """Launch ``kernel`` into ``queue``.

        The kernel becomes visible to the device after the launch
        overhead (defaults to the device's ~3us kernel launch latency).
        """
        if launch_overhead is None:
            launch_overhead = self.device.spec.kernel_launch_us
        if on_finish is not None:
            self._per_kernel_callbacks[kernel.uid] = on_finish

        def make_visible() -> None:
            if queue.dead:
                self._fail_launch([kernel])
                return
            queue.push(kernel, self.now)
            self._queue_of[kernel.uid] = queue
            self._mark_ready(queue)
            self._dispatch()

        if launch_overhead > 0:
            self.schedule(launch_overhead, make_visible)
        else:
            make_visible()

    def launch_batch(
        self,
        kernels: List[KernelInstance],
        queue: DeviceQueue,
        launch_overhead: Optional[float] = None,
        callbacks: Optional[List[Optional[Callable[[KernelInstance], None]]]] = None,
    ) -> None:
        """Launch several kernels into one queue at once.

        Equivalent to calling :meth:`launch` per kernel — the host
        issues the whole burst back to back, so all kernels become
        visible at ``now + launch_overhead`` in list order — but with a
        single visibility event instead of one per kernel.
        ``callbacks``, when given, is aligned with ``kernels`` (``None``
        entries for kernels without an ``on_finish``).
        """
        if not kernels:
            return
        if self._legacy:
            # Baseline behavior: one event per kernel.
            for position, kernel in enumerate(kernels):
                on_finish = callbacks[position] if callbacks else None
                self.launch(kernel, queue, launch_overhead, on_finish)
            return
        if launch_overhead is None:
            launch_overhead = self.device.spec.kernel_launch_us
        if callbacks:
            for kernel, callback in zip(kernels, callbacks):
                if callback is not None:
                    self._per_kernel_callbacks[kernel.uid] = callback

        def make_visible() -> None:
            if queue.dead:
                self._fail_launch(kernels)
                return
            queue_of = self._queue_of
            for kernel in kernels:
                queue.push(kernel, self.now)
                queue_of[kernel.uid] = queue
            self._mark_ready(queue)
            self._dispatch()

        if launch_overhead > 0:
            self.schedule(launch_overhead, make_visible)
        else:
            make_visible()

    def subscribe_finish(self, callback: Callable[[KernelInstance], None]) -> None:
        """Register a callback invoked on every kernel completion."""
        self._finish_subscribers.append(callback)

    def subscribe_failure(self, callback: Callable[[KernelInstance], None]) -> None:
        """Register a callback invoked on every permanent kernel failure.

        Fires *before* the failed kernel's per-kernel callback, so a
        harness can shed the owning request first and let the identity
        guards in the per-kernel callbacks short-circuit naturally.
        """
        self._failure_subscribers.append(callback)

    def _fail_launch(self, kernels: List[KernelInstance]) -> None:
        """A launch landed on a dead (crashed-context) queue: fail it."""
        for kernel in kernels:
            kernel.failed = True
            self._kernels_failed += 1
            if self.trace is not None:
                self.trace.emit(
                    "fault.launch_failed",
                    kernel.app_id,
                    request_id=kernel.request_id,
                    seq=kernel.seq,
                    name=kernel.name,
                )
            callback = self._per_kernel_callbacks.pop(kernel.uid, None)
            for subscriber in self._failure_subscribers:
                subscriber(kernel)
            if callback is not None:
                callback(kernel)

    # ------------------------------------------------------------------
    # Execution state machine
    # ------------------------------------------------------------------
    def _mark_ready(self, queue: DeviceQueue) -> None:
        """Register ``queue`` for the next dispatch pass."""
        self._dirty_queues[queue.queue_id] = queue

    def _dispatch(self) -> None:
        """Start head kernels of ready queues, then rebalance if needed.

        Only queues in the dirty set are examined; a queue enters the
        set when a push, a completion in the queue, or a gap expiry may
        have made its head actionable.  SYNC kernels complete
        immediately and re-mark their queue, so the loop drains until
        heads are stable — same fixpoint as the historical full scan,
        without touching idle queues.
        """
        if self._legacy:
            self._dispatch_legacy()
            return
        started = False
        progressing = False
        dirty = self._dirty_queues
        faults = self._faults
        # The clock only advances in the event loop, never inside a
        # dispatch pass, so ``now`` is loop-invariant here.
        now = self.now
        horizon = now + 1e-9
        while dirty:
            # Creation order mirrors the historical full-scan order.
            if len(dirty) == 1:
                batch = (dirty.popitem()[1],)
            else:
                batch = [dirty.pop(qid) for qid in sorted(dirty)]
            for queue in batch:
                # Inline queue.head()/head_ready_at()/start_head() —
                # this is the hottest loop in the engine.  The guards
                # match head(): skip busy or empty queues.
                pending = queue._pending
                if queue._running is not None or not pending:
                    continue
                head = pending[0]
                spec = head.spec
                last_finish = queue.last_finish_time
                if last_finish != _NEVER_FINISHED:
                    ready_at = last_finish + spec.dispatch_gap_us
                    if ready_at > horizon:
                        # Intra-request bubble: the host has not
                        # dispatched the next kernel yet; wake up when
                        # it does.
                        self._ensure_gap_event(queue, ready_at)
                        continue
                pending.popleft()
                head.start_time = now
                queue._running = head
                # Annotate execution context for tracers (the queue
                # mapping is gone by completion-callback time).
                context = queue.context
                head.traced_context_id = context.context_id
                head.traced_context_limit = context.sm_limit
                kind = spec.kind
                if kind is KernelKind.SYNC or spec.base_duration_us == 0:
                    self._complete_kernel(queue, head)
                    progressing = True
                else:
                    if faults is not None:
                        multiplier = faults.work_multiplier(head)
                        if multiplier != 1.0:
                            head.remaining_work = spec.base_duration_us * multiplier
                    if kind is KernelKind.COMPUTE:
                        self._add_running(head, context)
                    else:  # H2D / D2H drain through the PCIe channel.
                        self._running_memcpy.append(head)
                        self._running_dirty = True
                    started = True
        if started or progressing:
            # _maybe_rebalance, inlined (legacy never reaches here).
            if self._running_dirty or self.record_timeline or self.validate:
                self._rebalance()
            else:
                self._rebalances_skipped += 1
                if self._completion_event is None and (
                    self._running_compute or self._running_memcpy
                ):
                    self._accrue_busy_time()
                    self._schedule_next_completion()

    def _add_running(self, kernel: KernelInstance, ctx: GPUContext) -> None:
        spec = kernel.spec
        token = self._spec_tokens.get(id(spec))
        if token is None:
            token = len(self._spec_tokens)
            self._spec_tokens[id(spec)] = token
            self._spec_refs.append(spec)
        self._running_compute.append(kernel)
        self._running_ctx.append(ctx)
        # Tokens stay below 2**32, so the packed int is collision-free.
        self._sig_parts.append((ctx.context_id << 32) | token)
        self._running_dirty = True

    def _dispatch_legacy(self) -> None:
        """Pre-overhaul dispatch: full O(queues) scan per event.

        Kept (with the historical while-progressing fixpoint loop) as
        the ``legacy`` benchmark baseline.
        """
        self._dirty_queues.clear()
        started = False
        progressing = True
        while progressing:
            progressing = False
            for queue in self._queues:
                head = queue.head()
                if head is None:
                    continue
                ready_at = queue.head_ready_at()
                if ready_at is not None and ready_at > self.now + 1e-9:
                    self._ensure_gap_event(queue, ready_at)
                    continue
                kernel = queue.start_head(self.now)
                kernel.traced_context_id = queue.context.context_id
                kernel.traced_context_limit = queue.context.sm_limit
                if kernel.spec.kind is KernelKind.SYNC or kernel.spec.base_duration_us == 0:
                    self._complete_kernel(queue, kernel)
                    progressing = True
                else:
                    if self._faults is not None:
                        multiplier = self._faults.work_multiplier(kernel)
                        if multiplier != 1.0:
                            kernel.remaining_work = (
                                kernel.spec.base_duration_us * multiplier
                            )
                    if kernel.spec.is_memcpy:
                        self._running_memcpy.append(kernel)
                        self._running_dirty = True
                    else:
                        self._add_running(kernel, queue.context)
                    started = True
        if started or progressing:
            self._rebalance()

    def _ensure_gap_event(self, queue: DeviceQueue, ready_at: float) -> None:
        """Schedule (once) a dispatch retry when a queue's gap expires.

        If an earlier-or-equal wake is already pending it is reused; a
        pending *later* wake (possible when a queue's head changes under
        preemption, e.g. REEF killing buffered kernels) is cancelled
        rather than left to fire stale.
        """
        pending = self._gap_events.get(queue.queue_id)
        if pending is not None:
            pending_time, pending_event = pending
            if pending_time <= ready_at + 1e-9:
                return
            # A tighter gap supersedes the pending wake: cancel it so the
            # heap does not accumulate stale expiries.
            self.cancel(pending_event)
            self._gap_events_superseded += 1

        def expire() -> None:
            entry = self._gap_events.get(queue.queue_id)
            if entry is not None and entry[0] == ready_at:
                del self._gap_events[queue.queue_id]
            self._mark_ready(queue)
            self._dispatch()
            # A gap expiry alone never changes the running set; only a
            # dispatch that starts work does, and _dispatch rebalances
            # then.  Legacy keeps its unconditional rebalance per event.
            if self._legacy:
                self._rebalance()

        event = self.schedule_at(ready_at, expire)
        self._gap_events[queue.queue_id] = (ready_at, event)

    def _maybe_rebalance(self) -> None:
        """Rebalance only when the running-set membership changed.

        Rates depend solely on membership (specs + contexts), so with an
        unchanged set the previous rates — and the pending completion
        event — are still exact, and the whole allocation/interference
        pipeline can be skipped.  Timeline recording and validate mode
        force the full path to preserve their per-event semantics.
        """
        if (
            self._running_dirty
            or self._legacy
            or self.record_timeline
            or self.validate
        ):
            self._rebalance()
            return
        self._rebalances_skipped += 1
        if self._completion_event is None and (
            self._running_compute or self._running_memcpy
        ):
            # The previous completion tick consumed its event without
            # finishing anything (epsilon miss): re-arm from current
            # remaining work.
            self._accrue_busy_time()
            self._schedule_next_completion()

    def _rebalance(self) -> None:
        """Recompute rates for all running kernels and the next completion.

        The fast (vectorized) branch applies memoized rates and computes
        the earliest completion inline, so the completion event can be
        re-armed without a second pass over the running set.  Recency is
        only tracked once the memo is half full — below that nothing
        will be evicted, so ``move_to_end`` on every hit would be pure
        overhead.
        """
        self._rebalances += 1
        if self.now > self._busy_since:
            self._accrue_busy_time()

        if self._fast_rates:
            key = tuple(self._sig_parts)
            cache = self._rebalance_cache
            cached = cache.get(key)
            if cached is not None:
                self._rebalance_cache_hits += 1
                if len(cache) >= _REBALANCE_CACHE_TRACK:
                    cache.move_to_end(key)
                fractions, rates, busy = cached
            else:
                fractions, rates, busy = self._compute_rates_vectorized()
                cache[key] = (fractions, rates, busy)
                if len(cache) > _REBALANCE_CACHE_SIZE:
                    cache.popitem(last=False)

            now = self.now
            eta = math.inf
            for kernel, sm, rate in zip(self._running_compute, fractions, rates):
                kernel.current_sm_fraction = sm
                kernel.current_rate = rate
                if rate > 0:
                    finish = now + kernel.remaining_work / rate
                    if finish < eta:
                        eta = finish
            self._current_busy_fraction = busy

            # Memcpy kernels share the PCIe channel (same as scalar).
            if self._running_memcpy:
                pcie_rates = self.pcie.rates(self._running_memcpy)
                for kernel in self._running_memcpy:
                    rate = pcie_rates.get(kernel.uid, 0.0)
                    kernel.current_rate = rate
                    kernel.current_sm_fraction = 0.0
                    if rate > 0:
                        finish = now + kernel.remaining_work / rate
                        if finish < eta:
                            eta = finish

            self._running_dirty = False
            if self.record_timeline:
                self._record_segment_start()
            if self._completion_event is not None:
                self.cancel(self._completion_event)
                self._completion_event = None
            if eta != math.inf:
                self._completion_event = self.schedule_at(
                    eta, self._on_completion_tick
                )
            return

        self._rebalance_scalar()
        self._running_dirty = False
        if self.record_timeline:
            self._record_segment_start()
        self._schedule_next_completion()

    # -- reference (scalar) path ---------------------------------------
    def _rebalance_scalar(self) -> None:
        # Compute-kernel SM allocation.
        allocations = self.hwsched.allocate(self._running_compute, self._queue_of)
        active = [a for a in allocations if a.sm_fraction > 0]
        interference_inputs = [
            (
                a.kernel.spec.mem_intensity,
                self._queue_of[a.kernel.uid].context.restricted,
            )
            for a in active
        ]
        total_demand = sum(a.kernel.spec.sm_demand for a in active)
        slowdowns = self.interference.slowdowns(
            interference_inputs, total_sm_demand=total_demand
        )

        busy = 0.0
        for alloc in allocations:
            kernel = alloc.kernel
            if alloc.sm_fraction <= 0:
                kernel.current_rate = 0.0
                kernel.current_sm_fraction = 0.0
                continue
            kernel.current_sm_fraction = alloc.sm_fraction
            busy += alloc.sm_fraction
        for alloc, slowdown in zip(active, slowdowns):
            kernel = alloc.kernel
            kernel.current_rate = kernel.spec.rate_at(alloc.sm_fraction) / slowdown
        self._current_busy_fraction = min(1.0, busy)

        if self.validate:
            self._check_invariants(allocations)

        # Memcpy kernels share the PCIe channel.
        pcie_rates = self.pcie.rates(self._running_memcpy)
        for kernel in self._running_memcpy:
            kernel.current_rate = pcie_rates.get(kernel.uid, 0.0)
            kernel.current_sm_fraction = 0.0

    # -- vectorized + memoized path ------------------------------------
    def _membership_signature(self) -> tuple:
        """Key of the running set's rate-relevant state.

        Maintained incrementally in ``_sig_parts``: per running kernel
        its ``context_id`` and spec token packed into one int.  The
        engine (and so the cache) lives for one serve, contexts are
        immutable, and specs frozen — the pair pins down every quantity
        the allocation/interference pipeline reads, including ordering.
        """
        return tuple(self._sig_parts)

    def _compute_rates_vectorized(
        self,
    ) -> Tuple[Tuple[float, ...], Tuple[float, ...], float]:
        """Allocation → slowdown → rate as array ops over the running set.

        Reproduces ``_rebalance_scalar`` byte for byte: the water-filling
        allocation follows the identical iteration and reduction order
        (its arithmetic is inherently sequential), while the
        interference slowdowns and SM-scaling rates — the per-kernel
        arithmetic — are evaluated as numpy element-wise kernels.
        Returns per-kernel SM fractions and rates aligned with
        ``_running_compute``, plus the busy fraction.
        """
        running = self._running_compute
        contexts = self._running_ctx
        n = len(running)
        if n == 0:
            return (), (), 0.0

        # SM allocation as (running-index, grant) pairs in the hardware
        # scheduler's allocation order (priority level desc, then
        # context first-appearance order) — bit-identical arithmetic to
        # HardwareScheduler.allocate.
        pairs = self.hwsched.allocate_fair_indexed(running, contexts)

        # Active subset (sm > 0) in allocation order, exactly the
        # scalar path's `active` list and its busy-fraction reduction.
        busy = 0.0
        active = []
        for index, grant in pairs:
            if grant > 0:
                busy += grant
                active.append((index, grant))

        fractions = [0.0] * n
        rates = [0.0] * n
        if len(active) >= _VECTOR_MIN_ACTIVE:
            specs = [running[i].spec for i, _ in active]
            mem = np.array([s.mem_intensity for s in specs], dtype=np.float64)
            restricted = np.fromiter(
                (contexts[i].restricted for i, _ in active), dtype=bool, count=len(active)
            )
            grants = np.array([g for _, g in active], dtype=np.float64)
            demand = np.array([s.sm_demand for s in specs], dtype=np.float64)
            base = np.array([s.base_duration_us for s in specs], dtype=np.float64)
            serial = np.array([s.serial_fraction for s in specs], dtype=np.float64)

            slowdowns = self.interference.slowdowns_array(mem, restricted)

            # KernelSpec.duration_at / rate_at, element-wise.
            usable = np.minimum(grants, demand)
            sm_slowdown = demand / usable
            duration = base * (serial + (1.0 - serial) * sm_slowdown)
            rate = base / duration / slowdowns

            rate_list = rate.tolist()
            for pos, (index, grant) in enumerate(active):
                fractions[index] = grant
                rates[index] = rate_list[pos]
        elif active:
            # Same arithmetic, scalar ops (identical IEEE rounding; the
            # element-wise numpy kernels apply the same operations in
            # the same order, so both branches agree bit for bit).
            model = self.interference
            # Explicit loops: same left-to-right accumulation as the
            # sum() builtins they replace, without the genexpr frames.
            total_intensity = 0.0
            num_unrestricted = 0
            for i, _ in active:
                total_intensity = total_intensity + running[i].spec.mem_intensity
                if not contexts[i].restricted:
                    num_unrestricted += 1
            kappa_unrestricted = model.kappa_unrestricted
            kappa_restricted = model.kappa_restricted
            gamma = model.gamma
            max_slowdown = model.max_slowdown
            for index, grant in active:
                spec = running[index].spec
                m = spec.mem_intensity
                pressure = min(1.0, max(0.0, total_intensity - m))
                scattered = not contexts[index].restricted and num_unrestricted >= 2
                kappa = kappa_unrestricted if scattered else kappa_restricted
                slowdown = min(
                    max_slowdown,
                    1.0 + kappa * (pressure ** gamma) * min(1.0, m),
                )
                # spec.rate_at(grant) / slowdown, inlined.
                demand = spec.sm_demand
                serial = spec.serial_fraction
                base = spec.base_duration_us
                duration = base * (
                    serial + (1.0 - serial) * (demand / min(grant, demand))
                )
                fractions[index] = grant
                rates[index] = base / duration / slowdown

        return tuple(fractions), tuple(rates), min(1.0, busy)

    # -- jit (numba) path ----------------------------------------------
    def _compute_rates_jit(
        self,
    ) -> Tuple[Tuple[float, ...], Tuple[float, ...], float]:
        """The rebalance miss path through the numba-compiled kernel.

        Packs the running set into flat arrays and calls the compiled
        ``rate_kernel`` (see ``_jit_rates.py``), whose arithmetic
        mirrors ``_compute_rates_vectorized`` operation for operation.
        Only reached when numba imported successfully.
        """
        running = self._running_compute
        contexts = self._running_ctx
        n = len(running)
        if n == 0:
            return (), (), 0.0
        demand = np.empty(n, dtype=np.float64)
        mem = np.empty(n, dtype=np.float64)
        serial = np.empty(n, dtype=np.float64)
        base = np.empty(n, dtype=np.float64)
        limit = np.empty(n, dtype=np.float64)
        priority = np.empty(n, dtype=np.int64)
        cid = np.empty(n, dtype=np.int64)
        restricted = np.empty(n, dtype=np.bool_)
        for i in range(n):
            spec = running[i].spec
            ctx = contexts[i]
            demand[i] = spec.sm_demand
            mem[i] = spec.mem_intensity
            serial[i] = spec.serial_fraction
            base[i] = spec.base_duration_us
            limit[i] = ctx.sm_limit
            priority[i] = ctx.priority
            cid[i] = ctx.context_id
            restricted[i] = ctx.restricted
        model = self.interference
        fractions, rates, busy = self._jit_kernel(
            demand,
            mem,
            serial,
            base,
            limit,
            priority,
            cid,
            restricted,
            model.kappa_unrestricted,
            model.kappa_restricted,
            model.gamma,
            model.max_slowdown,
        )
        return tuple(fractions.tolist()), tuple(rates.tolist()), float(busy)

    # -- epoch-batched (heapless completion/gap) path ------------------
    def _portable_signature(self) -> tuple:
        """Value-based key of the running set for the process-wide memo.

        Unlike ``_sig_parts`` — which packs engine-local context ids
        and spec tokens, both minted per serve — this key survives the
        engine: per kernel the context *slot* (first-appearance order,
        which is all the allocation reads of identity), the context's
        limit/priority/restriction, and the four spec fields the
        allocation → slowdown → rate pipeline reads.  Together with the
        interference model they pin the result exactly.
        """
        slots: Dict[int, int] = {}
        parts = []
        tails = self._portable_tails
        for packed, kernel, ctx in zip(
            self._sig_parts, self._running_compute, self._running_ctx
        ):
            cid = ctx.context_id
            slot = slots.get(cid)
            if slot is None:
                slot = len(slots)
                slots[cid] = slot
            # The packed (context, spec-token) int pins the whole tail:
            # contexts never mutate limit/priority in place and specs
            # are frozen, so the value tuple is safe to memoise.
            tail = tails.get(packed)
            if tail is None:
                spec = kernel.spec
                tail = (
                    ctx.sm_limit,
                    ctx.priority,
                    ctx.restricted,
                    spec.sm_demand,
                    spec.mem_intensity,
                    spec.serial_fraction,
                    spec.base_duration_us,
                )
                tails[packed] = tail
            parts.append((slot,) + tail)
        return (self._l2_family, self.interference, tuple(parts))

    def _epoch_view(self, n: int) -> np.ndarray:
        """First ``n`` records of the reusable epoch array (grown 2x)."""
        arr = self._epoch_arr
        if arr is None or arr.shape[0] < n:
            capacity = 16
            while capacity < n:
                capacity *= 2
            arr = np.zeros(capacity, dtype=EPOCH_DTYPE)
            self._epoch_arr = arr
        return arr[:n]

    def _ensure_gap_wake(self, queue: DeviceQueue, ready_at: float) -> None:
        """Batched-mode :meth:`_ensure_gap_event`: a dict entry, no heap.

        Same supersede semantics — an earlier-or-equal pending wake is
        reused, a later one is replaced — with the scheduled time
        computed by the same ``now + max(0, ready_at - now)`` arithmetic
        ``schedule_at`` applies, so wake instants stay bit-identical.
        """
        qid = queue.queue_id
        wakes = self._gap_wakes
        pending = wakes.get(qid)
        if pending is not None:
            if pending[0] <= ready_at + 1e-9:
                return
            self._gap_events_superseded += 1
        now = self.now
        delay = ready_at - now
        if delay < 0.0:
            delay = 0.0
        time = now + delay
        seq = next(self._event_seq)
        wakes[qid] = (ready_at, time, seq, queue)
        if pending is not None and qid == self._gap_min_qid:
            self._recompute_gap_min()
        elif time < self._gap_min_time or (
            time == self._gap_min_time and seq < self._gap_min_seq
        ):
            self._gap_min_time = time
            self._gap_min_seq = seq
            self._gap_min_qid = qid

    def _recompute_gap_min(self) -> None:
        best_time = math.inf
        best_seq = 0
        best_qid = -1
        for qid, entry in self._gap_wakes.items():
            time = entry[1]
            seq = entry[2]
            if time < best_time or (time == best_time and seq < best_seq):
                best_time = time
                best_seq = seq
                best_qid = qid
        self._gap_min_time = best_time
        self._gap_min_seq = best_seq
        self._gap_min_qid = best_qid

    def _discard_gap_wake(self, queue_id: int) -> None:
        """Drop a queue's pending wake (context teardown paths)."""
        if self._gap_wakes.pop(queue_id, None) is not None:
            if queue_id == self._gap_min_qid:
                self._recompute_gap_min()

    def _fire_gap_wake(self) -> None:
        """Process the earliest gap wake (clock already advanced)."""
        entry = self._gap_wakes.pop(self._gap_min_qid)
        self._recompute_gap_min()
        queue = entry[3]
        self._dirty_queues[queue.queue_id] = queue
        self._dispatch_batched()

    def _dispatch_batched(self) -> None:
        """:meth:`_dispatch` with gap wakes as pseudo-events and the
        epoch rebalance at the tail (batched/jit modes only)."""
        started = False
        progressing = False
        dirty = self._dirty_queues
        faults = self._faults
        now = self.now
        horizon = now + 1e-9
        while dirty:
            # Creation order mirrors the historical full-scan order.
            if len(dirty) == 1:
                batch = (dirty.popitem()[1],)
            else:
                batch = [dirty.pop(qid) for qid in sorted(dirty)]
            for queue in batch:
                pending = queue._pending
                if queue._running is not None or not pending:
                    continue
                head = pending[0]
                spec = head.spec
                last_finish = queue.last_finish_time
                if last_finish != _NEVER_FINISHED:
                    ready_at = last_finish + spec.dispatch_gap_us
                    if ready_at > horizon:
                        self._ensure_gap_wake(queue, ready_at)
                        continue
                pending.popleft()
                head.start_time = now
                queue._running = head
                context = queue.context
                head.traced_context_id = context.context_id
                head.traced_context_limit = context.sm_limit
                kind = spec.kind
                if kind is KernelKind.SYNC or spec.base_duration_us == 0:
                    self._complete_kernel(queue, head)
                    progressing = True
                else:
                    if faults is not None:
                        multiplier = faults.work_multiplier(head)
                        if multiplier != 1.0:
                            head.remaining_work = spec.base_duration_us * multiplier
                    if kind is KernelKind.COMPUTE:
                        self._add_running(head, context)
                    else:
                        self._running_memcpy.append(head)
                        self._running_dirty = True
                    started = True
        if started or progressing:
            if self._running_dirty or self.record_timeline:
                self._rebalance_batched()
            else:
                self._rebalances_skipped += 1
                if self._completion_time == math.inf and (
                    self._running_compute or self._running_memcpy
                ):
                    self._accrue_busy_time()
                    self._rearm_completion()

    def _maybe_rebalance_batched(self) -> None:
        if self._running_dirty or self.record_timeline:
            self._rebalance_batched()
            return
        self._rebalances_skipped += 1
        if self._completion_time == math.inf and (
            self._running_compute or self._running_memcpy
        ):
            self._accrue_busy_time()
            self._rearm_completion()

    def _rebalance_batched(self) -> None:
        """:meth:`_rebalance`'s fast branch with the completion kept as
        a pseudo-event: arming it is two stores and a seq draw instead
        of a heap cancel + push.  The rebalance memo adds a process-wide
        second level (portable value signatures) so the engines of later
        serves in a sweep start warm."""
        self._rebalances += 1
        if self.now > self._busy_since:
            self._accrue_busy_time()

        running = self._running_compute
        if not running and not self._running_memcpy:
            # Idle GPU (solo-queue engines park here between a kernel's
            # completion and its successor's gap wake): nothing to rate,
            # no completion to arm.  Skipping the memo probe here means
            # the empty set never counts as a "cache hit" — acceptable,
            # since machinery counters are per-mode diagnostics, not
            # part of the cross-mode identity contract.
            self._current_busy_fraction = 0.0
            self._running_dirty = False
            if self.record_timeline:
                self._record_segment_start()
            self._completion_time = math.inf
            return

        key = tuple(self._sig_parts)
        cache = self._rebalance_cache
        cached = cache.get(key)
        if cached is not None:
            self._rebalance_cache_hits += 1
            if len(cache) >= _REBALANCE_CACHE_TRACK:
                cache.move_to_end(key)
        else:
            l2 = _rates_l2
            portable = self._portable_signature()
            cached = l2.get(portable)
            if cached is None:
                cached = self._compute_rates()
                if len(l2) >= _RATES_L2_SIZE:
                    l2.clear()
                l2[portable] = cached
            else:
                self._rebalance_l2_hits += 1
            cache[key] = cached
            if len(cache) > _REBALANCE_CACHE_SIZE:
                cache.popitem(last=False)
        fractions, rates, busy = cached

        now = self.now
        eta = math.inf
        running = self._running_compute
        n = len(running)
        if n >= _EPOCH_VECTOR_MIN:
            # Structured-array epoch refresh: one vectorized ETA step,
            # store-only python loops for the kernel attributes.
            arr = self._epoch_view(n)
            arr["kernel"][:] = [k.uid for k in running]
            arr["context"][:] = [c.context_id for c in self._running_ctx]
            rem = arr["remaining"]
            rate_col = arr["rate"]
            eta_col = arr["eta"]
            rem[:] = [k.remaining_work for k in running]
            rate_col[:] = rates
            positive = rate_col > 0.0
            div = np.divide(
                rem, rate_col, out=np.full(n, np.inf), where=positive
            )
            np.add(div, now, out=eta_col)
            eta_min = eta_col.min()
            if eta_min != np.inf:
                eta = float(eta_min)
            for kernel, sm, rate in zip(running, fractions, rates):
                kernel.current_sm_fraction = sm
                kernel.current_rate = rate
        else:
            for kernel, sm, rate in zip(running, fractions, rates):
                kernel.current_sm_fraction = sm
                kernel.current_rate = rate
                if rate > 0:
                    finish = now + kernel.remaining_work / rate
                    if finish < eta:
                        eta = finish
        self._current_busy_fraction = busy

        if self._running_memcpy:
            pcie_rates = self.pcie.rates(self._running_memcpy)
            for kernel in self._running_memcpy:
                rate = pcie_rates.get(kernel.uid, 0.0)
                kernel.current_rate = rate
                kernel.current_sm_fraction = 0.0
                if rate > 0:
                    finish = now + kernel.remaining_work / rate
                    if finish < eta:
                        eta = finish

        self._running_dirty = False
        if self.record_timeline:
            self._record_segment_start()
        if eta != math.inf:
            # schedule_at's arithmetic, without the event or the heap.
            delay = eta - now
            if delay < 0.0:
                delay = 0.0
            self._completion_time = now + delay
            self._completion_seq = next(self._event_seq)
        else:
            self._completion_time = math.inf

    def _rearm_completion(self) -> None:
        """Batched :meth:`_schedule_next_completion` (epsilon-miss re-arm)."""
        best_time = math.inf
        now = self.now
        for kernel in self._running_compute:
            rate = kernel.current_rate
            if rate <= 0:
                continue
            eta = now + kernel.remaining_work / rate
            if eta < best_time:
                best_time = eta
        for kernel in self._running_memcpy:
            rate = kernel.current_rate
            if rate <= 0:
                continue
            eta = now + kernel.remaining_work / rate
            if eta < best_time:
                best_time = eta
        if math.isfinite(best_time):
            delay = best_time - now
            if delay < 0.0:
                delay = 0.0
            self._completion_time = now + delay
            self._completion_seq = next(self._event_seq)
        else:
            self._completion_time = math.inf

    def _tick_batched(self) -> None:
        """Completion pseudo-event: one fused epoch step.

        Advances every running kernel by the epoch (``_accrue_busy_time``
        and the finish sweep of ``_on_completion_tick`` fused into one
        pass — scalar below ``_EPOCH_VECTOR_MIN`` kernels, a structured-
        array step at or above it), completes what drained, re-dispatches
        and re-rates.  Arithmetic and sweep order match the heap-driven
        tick exactly.
        """
        self._completion_time = math.inf
        now = self.now
        dt = now - self._busy_since
        time_eps = 4.0 * math.ulp(now)
        if time_eps < 1e-9:
            time_eps = 1e-9
        running_compute = self._running_compute
        memcpy = self._running_memcpy
        finished_compute = []
        finished_memcpy = []
        if dt > 0:
            n = len(running_compute)
            advanced = n + len(memcpy)
            self._epoch_batches += 1
            self._epoch_kernels_advanced += advanced
            if advanced > self._epoch_max_batch:
                self._epoch_max_batch = advanced
            if n >= _EPOCH_VECTOR_MIN:
                arr = self._epoch_view(n)
                rem = arr["remaining"]
                rate_col = arr["rate"]
                rate_col[:] = [k.current_rate for k in running_compute]
                rem[:] = [k.remaining_work for k in running_compute]
                left = rem - rate_col * dt
                left[left <= 0.0] = 0.0
                threshold = rate_col * time_eps
                np.maximum(threshold, 1e-9, out=threshold)
                done = left <= threshold
                rem[:] = left
                for kernel, value in zip(running_compute, left.tolist()):
                    kernel.remaining_work = value
                if done.any():
                    finished_compute = [
                        running_compute[i] for i in np.nonzero(done)[0].tolist()
                    ]
            else:
                for k in running_compute:
                    rate = k.current_rate
                    left = k.remaining_work - rate * dt
                    if left <= 0.0:
                        k.remaining_work = 0.0
                        finished_compute.append(k)
                    else:
                        k.remaining_work = left
                        threshold = rate * time_eps
                        if left <= (threshold if threshold > 1e-9 else 1e-9):
                            finished_compute.append(k)
            for k in memcpy:
                rate = k.current_rate
                left = k.remaining_work - rate * dt
                if left <= 0.0:
                    k.remaining_work = 0.0
                    finished_memcpy.append(k)
                else:
                    k.remaining_work = left
                    threshold = rate * time_eps
                    if left <= (threshold if threshold > 1e-9 else 1e-9):
                        finished_memcpy.append(k)
            self._busy_integral += self._current_busy_fraction * dt
            if self.record_timeline:
                self._record_segment_end()
            self._busy_since = now
        else:
            for k in running_compute:
                threshold = k.current_rate * time_eps
                if k.remaining_work <= (threshold if threshold > 1e-9 else 1e-9):
                    finished_compute.append(k)
            for k in memcpy:
                threshold = k.current_rate * time_eps
                if k.remaining_work <= (threshold if threshold > 1e-9 else 1e-9):
                    finished_memcpy.append(k)
        for kernel in finished_compute:
            try:
                index = running_compute.index(kernel)
            except ValueError:
                # Removed by a fault handler (kill/shed) earlier in this
                # same sweep — nothing left to complete.
                continue
            del running_compute[index]
            del self._running_ctx[index]
            del self._sig_parts[index]
            self._running_dirty = True
            self._complete_kernel(self._queue_of[kernel.uid], kernel)
        for kernel in finished_memcpy:
            try:
                memcpy.remove(kernel)
            except ValueError:
                continue
            self._running_dirty = True
            self._complete_kernel(self._queue_of[kernel.uid], kernel)
        if self._epoch_hooks:
            self._drain_epoch_hooks()
        self._dispatch_batched()
        if self._running_dirty or self.record_timeline:
            self._rebalance_batched()
        else:
            self._rebalances_skipped += 1
            if self._completion_time == math.inf and (
                self._running_compute or self._running_memcpy
            ):
                self._accrue_busy_time()
                self._rearm_completion()

    def _check_invariants(self, allocations) -> None:
        """Debug-mode physical invariants (``validate=True``).

        * the GPU is never oversubscribed (sum of SM shares <= 1);
        * no kernel exceeds its own demand or its context's limit;
        * every execution rate lies in [0, 1] (no free speedups);
        * remaining work never goes negative.
        """
        total = 0.0
        for alloc in allocations:
            kernel = alloc.kernel
            total += alloc.sm_fraction
            if alloc.sm_fraction > kernel.spec.sm_demand + 1e-9:
                raise AssertionError(
                    f"{kernel.name}: granted {alloc.sm_fraction:.3f} SMs "
                    f"above demand {kernel.spec.sm_demand:.3f}"
                )
            limit = self._queue_of[kernel.uid].context.sm_limit
            if alloc.sm_fraction > limit + 1e-9:
                raise AssertionError(
                    f"{kernel.name}: granted {alloc.sm_fraction:.3f} SMs "
                    f"above context limit {limit:.3f}"
                )
            if kernel.remaining_work < -1e-9:
                raise AssertionError(f"{kernel.name}: negative remaining work")
        if total > 1.0 + 1e-6:
            raise AssertionError(f"GPU oversubscribed: {total:.4f} SM fractions")
        for kernel in self._running_compute:
            if not 0.0 <= kernel.current_rate <= 1.0 + 1e-9:
                raise AssertionError(
                    f"{kernel.name}: rate {kernel.current_rate:.4f} out of [0, 1]"
                )

    def _schedule_next_completion(self) -> None:
        if self._completion_event is not None:
            self.cancel(self._completion_event)
            self._completion_event = None
        best_time = math.inf
        now = self.now
        for kernel in self._running_compute:
            rate = kernel.current_rate
            if rate <= 0:
                continue
            eta = now + kernel.remaining_work / rate
            if eta < best_time:
                best_time = eta
        for kernel in self._running_memcpy:
            rate = kernel.current_rate
            if rate <= 0:
                continue
            eta = now + kernel.remaining_work / rate
            if eta < best_time:
                best_time = eta
        if math.isfinite(best_time):
            self._completion_event = self.schedule_at(best_time, self._on_completion_tick)

    def _on_completion_tick(self) -> None:
        # Advances work to `now`, accrues utilization, resets _busy_since
        # so the later _rebalance does not double-count the interval.
        self._completion_event = None
        self._accrue_busy_time()
        # Finish threshold: completion times are floats; at large
        # simulated times the residual work after advancing can be
        # ~ulp(now) * rate and would never drain (the next event would
        # round to the same instant).  Treat anything the kernel would
        # clear within ~1 ulp of `now` (floored at a picosecond) as done.
        time_eps = max(1e-9, 4.0 * math.ulp(self.now))
        running_compute = self._running_compute
        finished_compute = []
        for k in running_compute:
            threshold = k.current_rate * time_eps
            if k.remaining_work <= (threshold if threshold > 1e-9 else 1e-9):
                finished_compute.append(k)
        finished_memcpy = []
        if self._running_memcpy:
            for k in self._running_memcpy:
                threshold = k.current_rate * time_eps
                if k.remaining_work <= (threshold if threshold > 1e-9 else 1e-9):
                    finished_memcpy.append(k)
        for kernel in finished_compute:
            try:
                index = running_compute.index(kernel)
            except ValueError:
                # Removed by a fault handler (kill/shed) earlier in this
                # same sweep — nothing left to complete.
                continue
            del running_compute[index]
            del self._running_ctx[index]
            del self._sig_parts[index]
            self._running_dirty = True
            self._complete_kernel(self._queue_of[kernel.uid], kernel)
        for kernel in finished_memcpy:
            try:
                self._running_memcpy.remove(kernel)
            except ValueError:
                continue
            self._running_dirty = True
            self._complete_kernel(self._queue_of[kernel.uid], kernel)
        if self._epoch_hooks:
            self._drain_epoch_hooks()
        self._dispatch()
        # _maybe_rebalance, inlined: membership is dirty here unless
        # the dispatch above already rebalanced (or the tick was an
        # epsilon miss, which the re-arm branch repairs).
        if self._running_dirty or self._legacy or self.record_timeline or self.validate:
            self._rebalance()
        else:
            self._rebalances_skipped += 1
            if self._completion_event is None and (
                self._running_compute or self._running_memcpy
            ):
                self._accrue_busy_time()
                self._schedule_next_completion()

    def _complete_kernel(self, queue: DeviceQueue, kernel: KernelInstance) -> None:
        # queue.finish_running + _mark_ready, inlined (hot: once per
        # kernel).  The queue invariably holds `kernel` as its running
        # entry here — dispatch and the completion sweep guarantee it.
        faults = self._faults
        if (
            faults is not None
            and not kernel.failed
            and kernel.spec.base_duration_us > 0.0
            and kernel.spec.kind is not KernelKind.SYNC
            and faults.should_fail(kernel)
        ):
            if kernel.attempts < faults.max_retries:
                # Transient failure: the queue stays blocked on this
                # kernel while it backs off, exactly like a stalled
                # stream — ordering within the queue is preserved.
                kernel.attempts += 1
                self._kernels_retried += 1
                backoff = faults.backoff_us(kernel.attempts)
                event = self.schedule(
                    backoff,
                    lambda: self._retry_kernel(queue, kernel),
                )
                self._pending_retries[kernel.uid] = event
                if self.trace is not None:
                    self.trace.emit(
                        "fault.retry",
                        kernel.app_id,
                        request_id=kernel.request_id,
                        seq=kernel.seq,
                        name=kernel.name,
                        attempt=kernel.attempts,
                        backoff_us=backoff,
                    )
                return
            kernel.failed = True
        now = self.now
        kernel.finish_time = now
        queue._running = None
        queue.last_finish_time = now
        kernel.remaining_work = 0.0
        self._queue_of.pop(kernel.uid, None)
        self._dirty_queues[queue.queue_id] = queue
        callback = self._per_kernel_callbacks.pop(kernel.uid, None)
        if kernel.failed:
            # Permanent failure: notify the harness first (it sheds the
            # owning request), then drain the per-kernel callback so
            # squad/batch accounting never stalls.
            self._kernels_failed += 1
            if self.trace is not None:
                self.trace.emit(
                    "fault.kernel_failed",
                    kernel.app_id,
                    request_id=kernel.request_id,
                    seq=kernel.seq,
                    name=kernel.name,
                    attempts=kernel.attempts,
                )
            for subscriber in self._failure_subscribers:
                subscriber(kernel)
            if callback is not None:
                callback(kernel)
            return
        self._kernels_completed += 1
        if callback is not None:
            callback(kernel)
        for subscriber in self._finish_subscribers:
            subscriber(kernel)

    def _retry_kernel(self, queue: DeviceQueue, kernel: KernelInstance) -> None:
        """Re-issue a transiently-failed kernel after its backoff.

        The kernel never left ``queue._running``, so the queue order is
        intact; work is reset (re-rolling the slowdown spike for the new
        attempt) and the kernel re-enters the running set.
        """
        self._pending_retries.pop(kernel.uid, None)
        kernel.start_time = self.now
        multiplier = self._faults.work_multiplier(kernel) if self._faults else 1.0
        kernel.remaining_work = kernel.spec.base_duration_us * multiplier
        if kernel.spec.is_memcpy:
            self._running_memcpy.append(kernel)
            self._running_dirty = True
        else:
            self._add_running(kernel, queue.context)
        self._maybe_rebalance()

    # ------------------------------------------------------------------
    # Fault teardown: killing kernels, requests, and whole contexts
    # ------------------------------------------------------------------
    def _remove_from_running(self, kernel: KernelInstance) -> bool:
        """Drop ``kernel`` from the running sets; False if not running
        (e.g. parked in retry backoff or still pending)."""
        if kernel.spec.is_memcpy:
            try:
                self._running_memcpy.remove(kernel)
            except ValueError:
                return False
            self._running_dirty = True
            return True
        try:
            index = self._running_compute.index(kernel)
        except ValueError:
            return False
        del self._running_compute[index]
        del self._running_ctx[index]
        del self._sig_parts[index]
        self._running_dirty = True
        return True

    def _kill_kernel(self, queue: DeviceQueue, kernel: KernelInstance) -> tuple:
        """Common kill bookkeeping; returns the (kernel, callback) pair."""
        self._remove_from_running(kernel)
        retry = self._pending_retries.pop(kernel.uid, None)
        if retry is not None:
            self.cancel(retry)
        kernel.failed = True
        self._kernels_killed += 1
        if self.trace is not None:
            self.trace.emit(
                "fault.kernel_killed",
                kernel.app_id,
                request_id=kernel.request_id,
                seq=kernel.seq,
                name=kernel.name,
            )
        self._queue_of.pop(kernel.uid, None)
        return kernel, self._per_kernel_callbacks.pop(kernel.uid, None)

    def kill_request(
        self, app_id: str, request_id: int
    ) -> List[Tuple[KernelInstance, Optional[Callable[[KernelInstance], None]]]]:
        """Remove every queued/running kernel of one request.

        Killed kernels are marked ``failed`` and returned with their
        per-kernel callbacks (in queue order) so the caller can drain
        accounting.  The engine does NOT invoke the callbacks itself.
        """
        killed = []
        had_running = False
        for queue in self._queues:
            running = queue._running
            if (
                running is not None
                and running.app_id == app_id
                and running.request_id == request_id
            ):
                had_running = True
                killed.append(self._kill_kernel(queue, running))
                queue._running = None
                queue.last_finish_time = self.now
                self._dirty_queues[queue.queue_id] = queue
            pending = queue._pending
            if pending:
                kept = deque()
                for kernel in pending:
                    if kernel.app_id == app_id and kernel.request_id == request_id:
                        killed.append(self._kill_kernel(queue, kernel))
                    else:
                        kept.append(kernel)
                if len(kept) != len(pending):
                    queue._pending = kept
                    self._dirty_queues[queue.queue_id] = queue
        if had_running:
            # Freed queue heads and/or SM share: re-dispatch and re-rate.
            self._dispatch()
            self._maybe_rebalance()
        return killed

    # ------------------------------------------------------------------
    # Squad-boundary preemption (serving gateway)
    # ------------------------------------------------------------------
    def request_preemption(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` once at the next rate-change epoch.

        Hooks drain inside the completion tick, after the finish sweep
        and before re-dispatch — i.e. at a kernel/squad boundary, never
        mid-kernel — in both the heap-driven and epoch-batched loops,
        so preemption timing is mode-independent.  If nothing is
        running (idle GPU: no completion tick will ever fire), a
        zero-delay event drains the hooks instead.
        """
        self._epoch_hooks.append(hook)
        if not (self._running_compute or self._running_memcpy):
            self.schedule(0.0, self._drain_epoch_hooks)

    def _drain_epoch_hooks(self) -> None:
        hooks = self._epoch_hooks
        if not hooks:
            return
        self._epoch_hooks = []
        for hook in hooks:
            hook()

    def preempt_pending(
        self, app_id: str, request_id: int
    ) -> List[Tuple[KernelInstance, Optional[Callable[[KernelInstance], None]]]]:
        """Withdraw every *pending* (not yet running) kernel of a request.

        The cooperative half of squad-boundary preemption: running
        kernels are left to finish (kernel-boundary semantics, as in
        Hummingbird), queued ones are handed back to the caller so the
        scheduler can re-issue them in a later squad.  Unlike
        :meth:`kill_request`, withdrawn kernels are NOT marked failed
        and no kill counters move — the request is still live, merely
        rescheduled.  Per-kernel callbacks are returned uninvoked.
        """
        removed = []
        for queue in self._queues:
            pending = queue._pending
            if not pending:
                continue
            kept = deque()
            for kernel in pending:
                if kernel.app_id == app_id and kernel.request_id == request_id:
                    self._queue_of.pop(kernel.uid, None)
                    removed.append(
                        (kernel, self._per_kernel_callbacks.pop(kernel.uid, None))
                    )
                else:
                    kept.append(kernel)
            if len(kept) != len(pending):
                queue._pending = kept
                self._dirty_queues[queue.queue_id] = queue
        return removed

    def kill_context(
        self, context: GPUContext
    ) -> List[Tuple[KernelInstance, Optional[Callable[[KernelInstance], None]]]]:
        """Tear down ``context``: its queues die with every buffered kernel.

        Models an MPS context crash.  Queues bonded to the context are
        removed from the engine and flagged ``dead`` so in-flight
        launches fail instead of executing on a ghost context.  Returns
        (kernel, callback) pairs in queue order for the caller to shed
        or relaunch.
        """
        killed = []
        removed_running = False
        survivors = []
        for queue in self._queues:
            if queue.context is not context:
                survivors.append(queue)
                continue
            running = queue._running
            if running is not None:
                # A kernel parked in retry backoff is queue._running but
                # not in the running sets; it frees no SM share.
                was_running = running.uid not in self._pending_retries
                killed.append(self._kill_kernel(queue, running))
                removed_running = removed_running or was_running
                queue._running = None
            for kernel in queue._pending:
                killed.append(self._kill_kernel(queue, kernel))
            queue._pending.clear()
            queue.dead = True
            self._dirty_queues.pop(queue.queue_id, None)
            gap = self._gap_events.pop(queue.queue_id, None)
            if gap is not None:
                self.cancel(gap[1])
            self._discard_gap_wake(queue.queue_id)
        self._queues = survivors
        if removed_running:
            self._maybe_rebalance()
        return killed

    def remove_queue(self, queue: DeviceQueue) -> None:
        """Detach an *idle* queue (context eviction, not a crash).

        The queue must have no running or pending kernels.  It is
        flagged ``dead`` so that any launch already in flight (inside
        its launch-overhead window) fails cleanly instead of landing on
        a detached queue and stalling forever.
        """
        if queue._running is not None or queue._pending:
            raise ValueError("cannot remove a non-idle queue")
        try:
            self._queues.remove(queue)
        except ValueError:
            pass
        queue.dead = True
        self._dirty_queues.pop(queue.queue_id, None)
        gap = self._gap_events.pop(queue.queue_id, None)
        if gap is not None:
            self.cancel(gap[1])
        self._discard_gap_wake(queue.queue_id)

    # ------------------------------------------------------------------
    # Utilization accounting
    # ------------------------------------------------------------------
    def _accrue_busy_time(self) -> None:
        # Advance remaining work to 'now' before rates change
        # (_advance_work inlined: this runs on every event).
        now = self.now
        dt = now - self._busy_since
        if dt > 0:
            for kernel in self._running_compute:
                left = kernel.remaining_work - kernel.current_rate * dt
                kernel.remaining_work = left if left > 0.0 else 0.0
            for kernel in self._running_memcpy:
                left = kernel.remaining_work - kernel.current_rate * dt
                kernel.remaining_work = left if left > 0.0 else 0.0
            self._busy_integral += self._current_busy_fraction * dt
            if self.record_timeline:
                self._record_segment_end()
            self._busy_since = now

    def _record_segment_start(self) -> None:
        running = {}
        for kernel in itertools.chain(self._running_compute, self._running_memcpy):
            running[kernel.uid] = (
                kernel.app_id,
                kernel.current_sm_fraction,
                kernel.current_rate,
            )
        self._pending_segment = TimelineSegment(start=self.now, end=self.now, running=running)

    def _record_segment_end(self) -> None:
        segment = self._pending_segment
        if segment is None or segment.start >= self.now:
            return
        segment.end = self.now
        self.timeline.append(segment)

    def utilization(self, since: float = 0.0) -> float:
        """Average busy-SM fraction over ``[since, now]``."""
        elapsed = self.now - since
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_integral / elapsed)

    @property
    def busy_sm_time(self) -> float:
        """Integral of busy SM fraction (SM-fraction x microseconds)."""
        return self._busy_integral

    @property
    def kernels_completed(self) -> int:
        return self._kernels_completed

    @property
    def has_running_kernels(self) -> bool:
        return bool(self._running_compute or self._running_memcpy)

    @property
    def running_kernels(self) -> List[KernelInstance]:
        return list(itertools.chain(self._running_compute, self._running_memcpy))

    @property
    def counters(self) -> Dict[str, int]:
        """Hot-path diagnostics for this engine's lifetime."""
        return {
            "events_processed": self._events_processed,
            "rebalances": self._rebalances,
            "rebalances_skipped": self._rebalances_skipped,
            # _rebalance_l2_hits is deliberately absent: the L2 memo is
            # process-global, so its hit count depends on what ran
            # earlier in the process (run topology), and results must
            # fingerprint identically under serial and parallel serves.
            "rebalance_cache_hits": self._rebalance_cache_hits,
            "epoch_batches": self._epoch_batches,
            "epoch_kernels_advanced": self._epoch_kernels_advanced,
            "epoch_max_batch": self._epoch_max_batch,
            "heap_compactions": self._heap_compactions,
            "peak_heap_size": self._peak_heap_size,
            "gap_events_superseded": self._gap_events_superseded,
            "kernels_failed": self._kernels_failed,
            "kernels_retried": self._kernels_retried,
            "kernels_killed": self._kernels_killed,
        }

    @property
    def kernels_failed(self) -> int:
        return self._kernels_failed

    @property
    def kernels_retried(self) -> int:
        return self._kernels_retried

    @property
    def kernels_killed(self) -> int:
        return self._kernels_killed

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next event; returns False when nothing is left."""
        if self._batched:
            return self._step_batched()
        heap = self._heap
        while heap:
            time, _, event = heapq.heappop(heap)
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            now = self.now
            if time < now - 1e-9:
                raise RuntimeError("event in the past — engine invariant broken")
            if time > now:
                self.now = time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def _step_batched(self) -> bool:
        """One event across the three batched sources (heap / completion
        pseudo-event / gap-wake pseudo-events), earliest ``(time, seq)``
        first."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled_in_heap -= 1
        if heap:
            head = heap[0]
            best_time = head[0]
            best_seq = head[1]
            source = 0
        else:
            best_time = math.inf
            best_seq = 0
            source = -1
        time = self._completion_time
        if time < best_time or (
            time == best_time and self._completion_seq < best_seq
        ):
            best_time = time
            best_seq = self._completion_seq
            source = 1
        time = self._gap_min_time
        if time < best_time or (time == best_time and self._gap_min_seq < best_seq):
            best_time = time
            source = 2
        if source < 0 or best_time == math.inf:
            return False
        now = self.now
        if best_time < now - 1e-9:
            raise RuntimeError("event in the past — engine invariant broken")
        if best_time > now:
            self.now = best_time
        self._events_processed += 1
        if source == 0:
            event = heapq.heappop(heap)[2]
            event.callback()
        elif source == 1:
            self._tick_batched()
        else:
            self._fire_gap_wake()
        return True

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the event queue drains (or ``until`` is reached)."""
        if self._batched:
            return self._run_batched(until, max_events)
        events = 0
        if until is None:
            # Unbounded run: no per-event peek at the heap top.
            while self.step():
                events += 1
                if events >= max_events:
                    raise RuntimeError(f"simulation exceeded {max_events} events")
            self._accrue_busy_time()
            return self.now
        while self._heap:
            next_time = self._heap[0][0]
            if next_time > until:
                self._accrue_busy_time_at(until)
                self.now = until
                return self.now
            if not self.step():
                break
            events += 1
            if events >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
        self._accrue_busy_time()
        return self.now

    def _run_batched(
        self, until: Optional[float], max_events: int
    ) -> float:
        """Batched main loop: the heap plus two out-of-heap pseudo-event
        sources, merged by ``(time, seq)``.

        The ``until`` gate mirrors the heap loop's observable quirk of
        peeking the *raw* earliest pending time (cancelled heap entries
        included) before deciding whether to stop.
        """
        heap = self._heap
        events = 0
        while True:
            if until is not None:
                # Gate on the *raw* earliest pending time — cancelled
                # heap entries included — before lazily skipping them,
                # exactly like the heap loop's peek-then-step order.
                raw = heap[0][0] if heap else math.inf
                if self._completion_time < raw:
                    raw = self._completion_time
                if self._gap_min_time < raw:
                    raw = self._gap_min_time
                if raw == math.inf:
                    break
                if raw > until:
                    self._accrue_busy_time_at(until)
                    self.now = until
                    return self.now
            while heap and heap[0][2].cancelled:
                heapq.heappop(heap)
                self._cancelled_in_heap -= 1
            if heap:
                head = heap[0]
                best_time = head[0]
                best_seq = head[1]
                source = 0
            else:
                best_time = math.inf
                best_seq = 0
                source = -1
            time = self._completion_time
            if time < best_time or (
                time == best_time and self._completion_seq < best_seq
            ):
                best_time = time
                best_seq = self._completion_seq
                source = 1
            time = self._gap_min_time
            if time < best_time or (
                time == best_time and self._gap_min_seq < best_seq
            ):
                best_time = time
                source = 2
            if source < 0 or best_time == math.inf:
                break
            now = self.now
            if best_time < now - 1e-9:
                raise RuntimeError("event in the past — engine invariant broken")
            if best_time > now:
                self.now = best_time
            self._events_processed += 1
            if source == 0:
                event = heapq.heappop(heap)[2]
                event.callback()
            elif source == 1:
                self._tick_batched()
            else:
                self._fire_gap_wake()
            events += 1
            if events >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
        self._accrue_busy_time()
        return self.now

    def _accrue_busy_time_at(self, time: float) -> None:
        saved = self.now
        self.now = time
        self._accrue_busy_time()
        self.now = saved
