"""GPU contexts with SM affinity — the simulator's MPS analogue.

A :class:`GPUContext` mirrors a CUDA context created through
``cuCtxCreate_v3`` with an SM-affinity restriction: every kernel
launched into a device queue bonded to the context is capped to the
context's SM share.  BLESS pre-creates several contexts per client with
different restrictions and switches between them at runtime (§4.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .device import GPUDevice


@dataclass
class GPUContext:
    """A GPU context with an optional SM restriction.

    ``sm_limit`` is a fraction of the GPU in ``(0, 1]``; ``1.0`` means
    unrestricted (the default CUDA context).  ``owner`` identifies the
    client application the context was created for.
    """

    context_id: int
    owner: str
    sm_limit: float = 1.0
    label: str = ""
    # Dispatch priority: higher-priority contexts' kernels are granted
    # SMs first (REEF-style real-time clients); equal priorities share
    # fairly (the common case).
    priority: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.sm_limit <= 1.0:
            raise ValueError(f"sm_limit must be in (0, 1], got {self.sm_limit}")

    @property
    def restricted(self) -> bool:
        return self.sm_limit < 1.0

    def __hash__(self) -> int:
        return self.context_id

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GPUContext) and other.context_id == self.context_id

    def __repr__(self) -> str:  # pragma: no cover
        pct = f"{self.sm_limit:.0%}"
        return f"GPUContext(#{self.context_id} owner={self.owner!r} sm={pct})"


class ContextRegistry:
    """Creates and tracks contexts on a device, charging MPS memory.

    Each extra restricted context costs ``mps_context_mb`` of device
    memory (§6.9) — creating many contexts is not free, which is why
    BLESS pre-creates a small fixed set per client at deployment.
    """

    def __init__(self, device: GPUDevice):
        self.device = device
        self._contexts: List[GPUContext] = []

    @property
    def contexts(self) -> List[GPUContext]:
        return list(self._contexts)

    def create(
        self,
        owner: str,
        sm_limit: float = 1.0,
        label: str = "",
        charge_memory: bool = True,
        priority: int = 0,
    ) -> GPUContext:
        ctx = GPUContext(
            context_id=self.device.new_context_id(),
            owner=owner,
            sm_limit=sm_limit,
            label=label,
            priority=priority,
        )
        if charge_memory:
            self.device.memory.allocate(
                f"mps-context:{owner}:{ctx.context_id}",
                self.device.spec.mps_context_mb,
            )
        self._contexts.append(ctx)
        return ctx

    def destroy(self, ctx: GPUContext) -> None:
        self._contexts.remove(ctx)
        self.device.memory.release(f"mps-context:{ctx.owner}:{ctx.context_id}")

    def owned_by(self, owner: str) -> List[GPUContext]:
        return [c for c in self._contexts if c.owner == owner]

    def find(self, owner: str, sm_limit: float, tol: float = 1e-9) -> Optional[GPUContext]:
        """Find an existing context of ``owner`` with the given limit."""
        for ctx in self._contexts:
            if ctx.owner == owner and abs(ctx.sm_limit - sm_limit) <= tol:
                return ctx
        return None
