"""MIG (Multi-Instance GPU) partitioning model.

MIG slices an A100 into up to 7 physically-isolated instances.  Each
instance owns a fixed share of SMs *and* memory/L2 bandwidth; unlike
MPS, a MIG instance can never borrow idle resources from a neighbour,
and only a fixed menu of slice sizes exists.  That rigidity is exactly
what Fig. 14 penalises MIG for ("MIG fails to provide such diverse
quota configurations").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

# A100 MIG profiles: (name, compute slices of 7, memory slices of 8).
MIG_PROFILES = (
    ("1g.5gb", 1, 1),
    ("2g.10gb", 2, 2),
    ("3g.20gb", 3, 4),
    ("4g.20gb", 4, 4),
    ("7g.40gb", 7, 8),
)

MIG_COMPUTE_SLICES = 7


@dataclass(frozen=True)
class MIGInstance:
    """One MIG instance: a fixed, isolated slice of the GPU."""

    profile: str
    compute_slices: int
    memory_slices: int

    @property
    def sm_fraction(self) -> float:
        return self.compute_slices / MIG_COMPUTE_SLICES

    @property
    def bandwidth_fraction(self) -> float:
        return self.memory_slices / 8.0


def nearest_profile(quota: float) -> MIGInstance:
    """Smallest MIG profile whose compute share covers ``quota``.

    MIG cannot express arbitrary quotas; the provider must round up to
    the next slice size (wasting the difference) — or round down and
    violate the quota.  We round up, matching provider practice.
    """
    if not 0.0 < quota <= 1.0:
        raise ValueError(f"quota must be in (0, 1], got {quota}")
    for name, compute, memory in MIG_PROFILES:
        if compute / MIG_COMPUTE_SLICES >= quota - 1e-9:
            return MIGInstance(name, compute, memory)
    return MIGInstance(*MIG_PROFILES[-1])


_VALID_SLICES = (1, 2, 3, 4, 7)


def _clamp_slices(n: int) -> int:
    """Clamp a compute-slice count to an existing MIG profile size."""
    best = _VALID_SLICES[0]
    for size in _VALID_SLICES:
        if size <= n:
            best = size
    return best


def _instance_for_slices(n: int) -> MIGInstance:
    n = _clamp_slices(n)
    for name, compute, memory in MIG_PROFILES:
        if compute == n:
            return MIGInstance(name, compute, memory)
    raise AssertionError(f"no MIG profile with {n} compute slices")


def assign_slices(quotas: Sequence[float]) -> List[MIGInstance]:
    """Best-effort MIG assignment for an arbitrary quota mix.

    Unlike :func:`partition` (which raises when the exact mix does not
    fit), this mirrors what a provider actually does: start from the
    floor of ``quota * 7`` slices (at least 1), hand spare slices to the
    apps with the largest deficit, and clamp to existing profile sizes.
    The result frequently under-provisions some apps — MIG's fixed
    1/7-granularity is exactly the inflexibility Fig. 14 penalises.
    """
    if not quotas:
        return []
    if any(not 0.0 < q <= 1.0 for q in quotas):
        raise ValueError(f"quotas must be in (0, 1]: {list(quotas)}")
    want = [q * MIG_COMPUTE_SLICES for q in quotas]
    slices = [max(1, int(w)) for w in want]
    if sum(slices) > MIG_COMPUTE_SLICES:
        # Shrink the biggest holders until the mix fits.
        while sum(slices) > MIG_COMPUTE_SLICES:
            i = max(range(len(slices)), key=lambda j: slices[j])
            if slices[i] == 1:
                raise ValueError(
                    f"quota mix {list(quotas)} cannot fit {len(quotas)} MIG instances"
                )
            slices[i] -= 1
    else:
        # Distribute spare slices to apps short by more than half a
        # slice; equally-deficient apps (e.g. a symmetric 50/50 pair)
        # get no spare — a provider won't break symmetry, so the spare
        # slice is simply wasted, one more facet of MIG's rigidity.
        while sum(slices) < MIG_COMPUTE_SLICES:
            deficits = [want[j] - slices[j] for j in range(len(slices))]
            i = max(range(len(slices)), key=lambda j: deficits[j])
            if deficits[i] <= 0.5:
                break
            slices[i] += 1
    return [_instance_for_slices(n) for n in slices]


def partition(quotas: Sequence[float]) -> List[MIGInstance]:
    """Assign a MIG instance per quota; raises if they do not fit.

    The total compute slices across instances cannot exceed 7.  When the
    rounded-up assignment does not fit, MIG simply cannot host this
    quota mix (this is the infeasibility Fig. 14 reports).
    """
    instances = [nearest_profile(q) for q in quotas]
    total = sum(inst.compute_slices for inst in instances)
    if total > MIG_COMPUTE_SLICES:
        raise ValueError(
            f"quota mix {list(quotas)} needs {total} compute slices; "
            f"MIG provides only {MIG_COMPUTE_SLICES}"
        )
    return instances
