"""The simulated GPU device: SM pool, memory, bandwidth, clock rates.

The device object is pure configuration plus memory bookkeeping; the
dynamic behaviour (who runs when) lives in :mod:`repro.gpusim.engine`
and :mod:`repro.gpusim.hwsched`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class GPUSpec:
    """Static hardware description (defaults model an Nvidia A100)."""

    name: str = "A100"
    num_sms: int = 108
    memory_mb: int = 40 * 1024
    # Aggregate global-memory bandwidth, normalised to 1.0; the
    # interference model works on fractions of this.
    mem_bandwidth: float = 1.0
    # PCIe gen4 x16 effective bandwidth, bytes/us (~25 GB/s).
    pcie_bytes_per_us: float = 25_000.0
    # Overhead charged by the simulator per kernel launch (paper: ~3us).
    kernel_launch_us: float = 3.0
    # MPS context switch vacuum period (paper: ~50us).
    context_switch_us: float = 50.0
    # Host/device synchronisation at a squad boundary (paper: ~20us).
    sync_overhead_us: float = 20.0
    # GPU memory consumed per extra MPS context (paper: ~230MB).
    mps_context_mb: int = 230

    def sm_fraction(self, num_sms: int) -> float:
        """Convert a physical SM count to a fraction of this GPU."""
        if not 0 <= num_sms <= self.num_sms:
            raise ValueError(f"{num_sms} SMs out of range for {self.name}")
        return num_sms / self.num_sms

    def sm_count(self, fraction: float) -> int:
        """Convert an SM fraction to a (rounded) physical SM count."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"SM fraction {fraction} out of [0, 1]")
        return round(fraction * self.num_sms)


class OutOfMemoryError(RuntimeError):
    """Raised when a device memory allocation exceeds capacity."""


@dataclass
class MemoryPool:
    """Tracks device-memory allocations per owner (application id)."""

    capacity_mb: int
    _allocations: Dict[str, int] = field(default_factory=dict)

    @property
    def used_mb(self) -> int:
        return sum(self._allocations.values())

    @property
    def free_mb(self) -> int:
        return self.capacity_mb - self.used_mb

    def allocate(self, owner: str, size_mb: int) -> None:
        if size_mb < 0:
            raise ValueError("allocation size must be non-negative")
        if size_mb > self.free_mb:
            raise OutOfMemoryError(
                f"cannot allocate {size_mb}MB for {owner!r}: "
                f"{self.free_mb}MB free of {self.capacity_mb}MB"
            )
        self._allocations[owner] = self._allocations.get(owner, 0) + size_mb

    def release(self, owner: str) -> int:
        """Free all memory owned by ``owner``; returns the amount freed."""
        return self._allocations.pop(owner, 0)

    def owned_by(self, owner: str) -> int:
        return self._allocations.get(owner, 0)


class GPUDevice:
    """A simulated GPU: spec + memory pool + context registry."""

    def __init__(self, spec: GPUSpec | None = None):
        self.spec = spec or GPUSpec()
        self.memory = MemoryPool(self.spec.memory_mb)
        self._next_context_id = 0

    def new_context_id(self) -> int:
        cid = self._next_context_id
        self._next_context_id += 1
        return cid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GPUDevice({self.spec.name}, {self.spec.num_sms} SMs, "
            f"{self.memory.free_mb}/{self.spec.memory_mb}MB free)"
        )
