"""PCIe / DMA channel model for memcpy kernels.

H2D and D2H transfers contend for the PCIe link.  We model one
full-duplex-ish shared channel: concurrent transfers split the link
bandwidth equally (equal-share processor sharing), which reproduces the
DMA/PCI-e interference the multi-task scheduler compensates for
(§4.3.2).
"""

from __future__ import annotations

from typing import Sequence

from .kernel import KernelInstance, KernelKind


class PCIeChannel:
    """Equal-share DMA channel.

    The engine asks for each active transfer's execution rate; with
    ``n`` concurrent transfers every one proceeds at ``1/n`` of solo
    speed.
    """

    def rates(self, transfers: Sequence[KernelInstance]) -> dict:
        """Map ``kernel.uid -> rate`` for the active memcpy set."""
        active = [k for k in transfers if k.spec.kind in (KernelKind.H2D, KernelKind.D2H)]
        if not active:
            return {}
        share = 1.0 / len(active)
        return {k.uid: share for k in active}
