"""Kernel descriptors and the kernel work/scaling model.

All times in this package are simulated microseconds (``float``).  SM
quantities are expressed as *fractions* of the whole GPU in ``[0, 1]``;
the device translates fractions to physical SM counts when needed.

A :class:`KernelSpec` is the static description of a kernel, produced by
the application substrate (``repro.apps``).  A :class:`KernelInstance`
is one dynamic execution of a spec, owned by the simulation engine.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional


class KernelKind(enum.Enum):
    """The classes of GPU work the simulator distinguishes.

    COMPUTE kernels occupy SMs; H2D/D2H memcpy kernels occupy the PCIe
    DMA channel; SYNC kernels are zero-work markers used to model
    host/device synchronisation points.
    """

    COMPUTE = "compute"
    H2D = "h2d"
    D2H = "d2h"
    SYNC = "sync"


# Serial (non-SM-parallel) fraction of a compute kernel's runtime.  With
# fewer SMs than its demand, a kernel slows down proportionally except
# for this fixed fraction (kernel launch tails, DRAM latency, etc.).
DEFAULT_SERIAL_FRACTION = 0.05


@dataclass(frozen=True)
class KernelSpec:
    """Static description of one GPU kernel.

    Parameters
    ----------
    name:
        Human-readable identifier, unique within an application.
    kind:
        What resource the kernel occupies (SMs or the DMA channel).
    base_duration_us:
        Solo-run duration when the kernel is granted ``sm_demand`` of
        the GPU with no memory-bandwidth contention.  For memcpy
        kernels, the solo transfer duration on an idle PCIe link.
    sm_demand:
        ``d%`` in the paper — the fraction of the GPU's SMs the kernel
        can actively occupy.  Granting more SMs than this does not make
        the kernel faster.
    mem_intensity:
        Fraction of peak global-memory bandwidth the kernel consumes
        while running at full speed.  Drives the interference model.
    serial_fraction:
        Amdahl-style fraction of the runtime insensitive to SM count.
    dispatch_gap_us:
        Host-side stall between the previous kernel's completion in the
        same device queue and this kernel's dispatch (dependency syncs,
        framework overhead, small CPU ops).  These gaps are the
        *intra-request bubbles* of Fig. 1 — a solo app only reaches
        ~80-86% GPU utilization because of them, and co-located work
        can execute during them.
    """

    name: str
    kind: KernelKind = KernelKind.COMPUTE
    base_duration_us: float = 10.0
    sm_demand: float = 1.0
    mem_intensity: float = 0.3
    serial_fraction: float = DEFAULT_SERIAL_FRACTION
    dispatch_gap_us: float = 0.0

    def __post_init__(self) -> None:
        if self.base_duration_us < 0:
            raise ValueError(f"negative duration for kernel {self.name!r}")
        if not 0.0 < self.sm_demand <= 1.0:
            raise ValueError(
                f"sm_demand must be in (0, 1], got {self.sm_demand} for {self.name!r}"
            )
        if not 0.0 <= self.mem_intensity <= 1.0:
            raise ValueError(
                f"mem_intensity must be in [0, 1], got {self.mem_intensity}"
            )
        if not 0.0 <= self.serial_fraction < 1.0:
            raise ValueError(
                f"serial_fraction must be in [0, 1), got {self.serial_fraction}"
            )
        if self.dispatch_gap_us < 0:
            raise ValueError(
                f"dispatch_gap_us must be non-negative, got {self.dispatch_gap_us}"
            )

    @property
    def is_compute(self) -> bool:
        return self.kind is KernelKind.COMPUTE

    @property
    def is_memcpy(self) -> bool:
        return self.kind in (KernelKind.H2D, KernelKind.D2H)

    def duration_at(self, sm_fraction: float) -> float:
        """Solo-run duration when restricted to ``sm_fraction`` of the GPU.

        This is the kernel scaling model shared by the simulator and —
        via offline profiling — by BLESS's estimators.  A kernel that
        demands ``d`` of the GPU and receives ``n < d`` slows down by
        ``d / n`` on its parallel part only:

        ``t(n) = base * (serial + (1 - serial) * d / min(n, d))``

        Non-compute kernels do not scale with SMs.
        """
        if not self.is_compute:
            return self.base_duration_us
        if sm_fraction <= 0.0:
            raise ValueError("sm_fraction must be positive")
        usable = min(sm_fraction, self.sm_demand)
        slowdown = self.sm_demand / usable
        parallel = 1.0 - self.serial_fraction
        return self.base_duration_us * (self.serial_fraction + parallel * slowdown)

    def rate_at(self, sm_fraction: float) -> float:
        """Execution rate relative to solo full-demand speed (<= 1.0)."""
        if self.base_duration_us == 0.0:
            return 1.0
        return self.base_duration_us / self.duration_at(sm_fraction)

    def bandwidth_demand(self, sm_fraction: float) -> float:
        """Memory-bandwidth demand while running on ``sm_fraction`` SMs.

        Bandwidth consumption scales with the rate the kernel actually
        executes at: a kernel squeezed to half speed issues half the
        memory traffic per unit time.
        """
        if not self.is_compute:
            return 0.0
        return self.mem_intensity * self.rate_at(sm_fraction)


_instance_counter = itertools.count()


@dataclass
class KernelInstance:
    """One dynamic execution of a :class:`KernelSpec`.

    ``remaining_work`` is measured in *solo-speed microseconds*: it
    starts at ``spec.base_duration_us`` and drains at the current
    execution rate (1.0 = solo full-demand speed).
    """

    spec: KernelSpec
    app_id: str = ""
    request_id: int = -1
    seq: int = 0  # index of this kernel within its request
    uid: int = field(default_factory=lambda: next(_instance_counter))
    remaining_work: float = field(init=False)
    enqueue_time: Optional[float] = None
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    # Filled in by the engine while the kernel runs:
    current_rate: float = 0.0
    current_sm_fraction: float = 0.0
    # Fault machinery (see gpusim.faults): how many failed attempts this
    # instance has retried, and whether it ended in permanent failure
    # (either exhausted retries or killed with its context/request).
    attempts: int = 0
    failed: bool = False

    def __post_init__(self) -> None:
        self.remaining_work = self.spec.base_duration_us

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def done(self) -> bool:
        return self.remaining_work <= 1e-12

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return isinstance(other, KernelInstance) and other.uid == self.uid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KernelInstance({self.spec.name!r}, app={self.app_id!r}, "
            f"req={self.request_id}, seq={self.seq}, remaining={self.remaining_work:.1f}us)"
        )
