"""Memory-system interference model for concurrent kernels.

The paper measures (§4.4.2, Fig. 9) on an A100:

* kernel-level slowdown from co-running with even a highly
  memory-intensive kernel stays **<= 2x** (the large L2 and HBM
  bandwidth bound the damage);
* application-level mutual-pair interference averages **~7%** when the
  apps occupy MPS SM partitions;
* most inter-SM interference is L2-cache conflict and bandwidth
  competition [76, 77], which **SM-affinity partitioning mitigates**:
  on the A100, L2 slices are physically associated with SM groups, so
  kernels pinned to disjoint SM partitions thrash each other's cache
  far less than kernels scattered across all SMs.  This is why strict
  spatial partitioning shortens a squad versus unrestricted overlap
  (Fig. 7: 8.5 ms -> 7.3 ms) and why unbounded sharing is costly.

Model: a running kernel ``k`` with memory intensity ``m_k`` co-running
with others suffers::

    slowdown_k = min(max_slowdown, 1 + kappa_k * pressure^gamma * m_k)
    pressure   = min(1, sum_{j != k} m_j)

``kappa_k`` depends on how the kernel's blocks are placed:
``kappa_restricted`` when the kernel is pinned to an SM partition *or*
is the only scattered kernel (it then simply occupies the complement of
the pinned partitions); ``kappa_unrestricted`` when two or more
scattered kernels interleave blocks on the same SMs.

The superlinear ``pressure^gamma`` (default gamma=2) makes a single
moderate co-runner cheap while an extreme memory hog still doubles the
victim's latency — the shape of Fig. 9(a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class InterferenceModel:
    """L2/bandwidth contention with partition-aware coupling."""

    kappa_unrestricted: float = 2.4
    kappa_restricted: float = 0.56
    gamma: float = 2.0
    max_slowdown: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.kappa_restricted <= self.kappa_unrestricted:
            raise ValueError("need 0 <= kappa_restricted <= kappa_unrestricted")
        if self.max_slowdown < 1.0:
            raise ValueError("max_slowdown must be >= 1")
        if self.gamma <= 0.0:
            raise ValueError("gamma must be positive")

    def slowdowns(
        self,
        kernels: Sequence[Tuple[float, bool]],
        total_sm_demand: float = 2.0,
    ) -> List[float]:
        """Per-kernel slowdown factors for a co-running set.

        ``kernels`` is a sequence of ``(mem_intensity, restricted)``
        pairs; ``total_sm_demand`` is the co-running set's combined SM
        demand.  Returns a slowdown >= 1 per kernel, in order.

        Scattered (unrestricted) kernels pay the high coupling whenever
        another scattered kernel co-runs: the hardware spreads both
        kernels' blocks breadth-first across *all* SMs, so their L2
        footprints interleave everywhere even when their combined
        demand would nominally fit the GPU.  (``total_sm_demand`` is
        accepted for forward compatibility but does not soften the
        coupling.)
        """
        del total_sm_demand  # kept in the signature for callers/ablations
        total_intensity = sum(m for m, _ in kernels)
        num_unrestricted = sum(1 for _, restricted in kernels if not restricted)
        kappa_scattered = self.kappa_unrestricted
        result = []
        for m, restricted in kernels:
            if m < 0:
                raise ValueError("memory intensity cannot be negative")
            pressure = min(1.0, max(0.0, total_intensity - m))
            scattered_with_company = not restricted and num_unrestricted >= 2
            kappa = (
                kappa_scattered if scattered_with_company else self.kappa_restricted
            )
            slowdown = 1.0 + kappa * (pressure ** self.gamma) * min(1.0, m)
            result.append(min(self.max_slowdown, slowdown))
        return result

    def slowdowns_array(self, mem, restricted):
        """Vectorized :meth:`slowdowns` over numpy arrays.

        ``mem`` is a float64 array of memory intensities, ``restricted``
        a bool array; returns a float64 slowdown array in the same
        order.  Bit-identical to the scalar path: the total intensity
        is reduced with Python's left-to-right ``sum`` and every
        per-kernel operation is element-wise in the scalar's evaluation
        order.
        """
        total_intensity = sum(mem.tolist())
        num_unrestricted = int(np.count_nonzero(~restricted))
        pressure = np.minimum(1.0, np.maximum(0.0, total_intensity - mem))
        scattered_with_company = (~restricted) & (num_unrestricted >= 2)
        kappa = np.where(
            scattered_with_company, self.kappa_unrestricted, self.kappa_restricted
        )
        slowdown = 1.0 + kappa * (pressure ** self.gamma) * np.minimum(1.0, mem)
        return np.minimum(self.max_slowdown, slowdown)

    def solo_slowdown(self, mem_intensity: float) -> float:
        """A kernel running alone never interferes with itself."""
        return 1.0

    def pair_slowdown(
        self,
        m_self: float,
        m_other: float,
        restricted: bool = False,
        total_sm_demand: float = 2.0,
    ) -> float:
        """Convenience for two co-running kernels (Fig. 9(a) shape)."""
        values = self.slowdowns(
            [(m_self, restricted), (m_other, restricted)],
            total_sm_demand=total_sm_demand,
        )
        return values[0]
