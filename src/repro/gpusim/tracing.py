"""Structured kernel-event tracing.

Subscribes to an engine's kernel completions and records one structured
event per kernel — app, request, sequence number, queue/context, SM
share, enqueue/start/finish times.  Traces export to JSON-lines for
external analysis and re-load into numpy-friendly columns.

This is the simulator's equivalent of a CUPTI/Nsight activity trace,
at the granularity BLESS's own profiler works at.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from .engine import SimEngine
from .kernel import KernelInstance


@dataclass(frozen=True)
class KernelEvent:
    """One completed kernel execution."""

    name: str
    app_id: str
    request_id: int
    seq: int
    kind: str
    enqueue_us: float
    start_us: float
    finish_us: float
    sm_fraction: float
    context_id: int
    context_limit: float

    @property
    def duration_us(self) -> float:
        return self.finish_us - self.start_us

    @property
    def queue_wait_us(self) -> float:
        return self.start_us - self.enqueue_us


class KernelTracer:
    """Collects a :class:`KernelEvent` per completed kernel."""

    def __init__(self, engine: SimEngine):
        self.engine = engine
        self.events: List[KernelEvent] = []
        engine.subscribe_finish(self._on_finish)

    def _on_finish(self, kernel: KernelInstance) -> None:
        # The engine unmaps the kernel's queue before notifying
        # subscribers, so the context is captured from the execution
        # state recorded on the instance (or marked unknown).
        context_id = getattr(kernel, "traced_context_id", -1)
        context_limit = getattr(kernel, "traced_context_limit", 1.0)
        self.events.append(
            KernelEvent(
                name=kernel.name,
                app_id=kernel.app_id,
                request_id=kernel.request_id,
                seq=kernel.seq,
                kind=kernel.spec.kind.value,
                enqueue_us=kernel.enqueue_time or 0.0,
                start_us=kernel.start_time or 0.0,
                finish_us=kernel.finish_time or 0.0,
                sm_fraction=kernel.current_sm_fraction,
                context_id=context_id,
                context_limit=context_limit,
            )
        )

    # ------------------------------------------------------------------
    def by_app(self) -> Dict[str, List[KernelEvent]]:
        grouped: Dict[str, List[KernelEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.app_id, []).append(event)
        return grouped

    def total_queue_wait_us(self, app_id: Optional[str] = None) -> float:
        return sum(
            e.queue_wait_us
            for e in self.events
            if app_id is None or e.app_id == app_id
        )

    def save_jsonl(self, path: Union[str, Path]) -> int:
        """One JSON object per line; returns the event count."""
        with Path(path).open("w") as handle:
            for event in self.events:
                handle.write(json.dumps(asdict(event)) + "\n")
        return len(self.events)


def load_jsonl(path: Union[str, Path]) -> List[KernelEvent]:
    """Load a trace written by :meth:`KernelTracer.save_jsonl`."""
    events = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        events.append(KernelEvent(**json.loads(line)))
    return events


def summarize_trace(events: List[KernelEvent]) -> Dict[str, float]:
    """Headline statistics of a kernel trace.

    NaN-safe on empty traces: the full key schema is always returned,
    with counts at 0.0 and aggregate statistics at ``nan`` (mirroring
    the empty-input behaviour of ``metrics.stats`` percentiles), so
    downstream consumers never key-error or divide by zero.
    """
    if not events:
        return {
            "kernels": 0.0,
            "span_us": math.nan,
            "mean_duration_us": math.nan,
            "mean_queue_wait_us": math.nan,
            "apps": 0.0,
        }
    durations = [e.duration_us for e in events]
    waits = [e.queue_wait_us for e in events]
    return {
        "kernels": float(len(events)),
        "span_us": max(e.finish_us for e in events)
        - min(e.enqueue_us for e in events),
        "mean_duration_us": sum(durations) / len(durations),
        "mean_queue_wait_us": sum(waits) / len(waits),
        "apps": float(len({e.app_id for e in events})),
    }
