"""Device queues (streams): FIFO ring buffers bonded to a GPU context.

Kernels in one queue execute strictly in order; kernels in different
queues may overlap, subject to the hardware scheduler and the SM
restriction of each queue's context.  This mirrors CUDA streams / MPS
device queues as described in §3.1 of the paper.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from .context import GPUContext
from .kernel import KernelInstance

_queue_counter = itertools.count()


@dataclass
class DeviceQueue:
    """A FIFO kernel queue bonded to one GPU context."""

    context: GPUContext
    label: str = ""
    queue_id: int = field(default_factory=lambda: next(_queue_counter))
    # Completion time of the most recent kernel in this queue; the next
    # head becomes dispatchable at last_finish_time + its dispatch gap.
    last_finish_time: float = float("-inf")
    # Set by SimEngine.kill_context: launches that were in flight when
    # the context died land on a dead queue and fail instead of running.
    dead: bool = False
    _pending: Deque[KernelInstance] = field(default_factory=deque)
    _running: Optional[KernelInstance] = None

    @property
    def sm_limit(self) -> float:
        return self.context.sm_limit

    @property
    def running(self) -> Optional[KernelInstance]:
        return self._running

    @property
    def depth(self) -> int:
        """Number of kernels buffered (pending + running)."""
        return len(self._pending) + (1 if self._running is not None else 0)

    @property
    def empty(self) -> bool:
        return self.depth == 0

    def push(self, kernel: KernelInstance, now: float) -> None:
        kernel.enqueue_time = now
        self._pending.append(kernel)

    def head(self) -> Optional[KernelInstance]:
        """The kernel eligible to start (None if busy or empty)."""
        if self._running is not None or not self._pending:
            return None
        return self._pending[0]

    def start_head(self, now: float) -> KernelInstance:
        """Mark the head kernel as running; returns it."""
        if self._running is not None:
            raise RuntimeError(f"queue {self.queue_id} already has a running kernel")
        if not self._pending:
            raise RuntimeError(f"queue {self.queue_id} is empty")
        kernel = self._pending.popleft()
        kernel.start_time = now
        self._running = kernel
        return kernel

    def finish_running(self, now: float) -> KernelInstance:
        """Mark the running kernel complete; returns it."""
        if self._running is None:
            raise RuntimeError(f"queue {self.queue_id} has no running kernel")
        kernel = self._running
        kernel.finish_time = now
        self._running = None
        self.last_finish_time = now
        return kernel

    def head_ready_at(self) -> Optional[float]:
        """Earliest time the head kernel may dispatch (None if no head)."""
        head = self.head()
        if head is None:
            return None
        if self.last_finish_time == float("-inf"):
            return 0.0
        return self.last_finish_time + head.spec.dispatch_gap_us

    def drain(self) -> int:
        """Drop all pending kernels (used on teardown); returns count."""
        n = len(self._pending)
        self._pending.clear()
        return n

    def __hash__(self) -> int:
        return self.queue_id

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DeviceQueue) and other.queue_id == self.queue_id

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"DeviceQueue(#{self.queue_id} ctx=#{self.context.context_id} "
            f"depth={self.depth})"
        )
