"""Deterministic fault injection for the simulator and the harnesses.

Production GPU sharing is not a perfect world: kernels hit clock
throttling and ECC stalls, MPS contexts die with their server, and
offline profiles drift away from what the device actually delivers.
This module defines the *fault model* the repository uses to show that
BLESS degrades gracefully (see docs/robustness.md):

* **slowdown spikes** — a kernel attempt runs ``slowdown_factor`` times
  its profiled duration with probability ``slowdown_rate``;
* **transient kernel failures** — a kernel attempt fails at completion
  time with probability ``kernel_failure_rate`` and is retried in place
  with bounded exponential backoff; after ``max_retries`` failed
  retries the kernel fails permanently and the serving harness sheds
  its request;
* **context crashes** — at each time in ``context_crash_times`` one
  restricted (MPS) context is torn down, killing every kernel buffered
  in its queues; runtimes recover by re-registering the client and
  relaunching the killed work on a surviving context;
* **profile drift** — each (app, kernel) pair gains a persistent
  multiplicative error of up to ``profile_drift``, so offline profiles
  systematically mispredict and staleness detection has something real
  to detect;
* **request timeouts** — requests still unfinished ``request_timeout_us``
  after arrival are shed (per-request deadline policing).

Everything is a pure function of ``seed`` and the kernel's *stable
identity* — ``(app_id, seq, occurrence, attempt)``, where occurrence
counts how many instances of that (app, seq) slot the injector has seen.
Global uid/request counters are deliberately not used: they are not
stable across runs within one process, and same-seed replays must be
byte-identical.
"""

from __future__ import annotations

import dataclasses
import os
import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .kernel import KernelInstance

_MASK64 = (1 << 64) - 1
# Domain separators so the three decision streams never correlate.
_DOMAIN_FAIL = 0x9E3779B97F4A7C15
_DOMAIN_SPIKE = 0xC2B2AE3D27D4EB4F
_DOMAIN_DRIFT = 0x165667B19E3779F9
_DOMAIN_CRASH = 0x27D4EB2F165667C5


def _mix(x: int) -> int:
    """splitmix64 finalizer: avalanche one 64-bit integer."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def _hash_u01(*parts: int) -> float:
    """Deterministic uniform in [0, 1) from a tuple of integers."""
    h = 0x2545F4914F6CDD1D
    for part in parts:
        h = _mix(h ^ (part & _MASK64))
    return h / float(1 << 64)


def _app_token(app_id: str) -> int:
    # Stable across processes and PYTHONHASHSEED values (built-in hash
    # is neither).
    return zlib.crc32(app_id.encode("utf-8"))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, replayable description of every fault to inject.

    An all-default plan is *inactive*: passing it around is equivalent
    to no fault injection at all.  Plans are frozen and picklable so
    experiment cells can ship them to worker processes.
    """

    seed: int = 0
    # Per-attempt probability that a kernel fails at completion time.
    kernel_failure_rate: float = 0.0
    # Per-attempt probability of a slowdown spike, and its magnitude.
    slowdown_rate: float = 0.0
    slowdown_factor: float = 3.0
    # Simulated times (us) at which one restricted context is torn down.
    context_crash_times: Tuple[float, ...] = ()
    # Persistent per-(app, kernel) profile error amplitude: each slot
    # runs a fixed factor in [1, 1 + profile_drift] vs its profile.
    profile_drift: float = 0.0
    # Transient-failure retry policy (bounded exponential backoff).
    max_retries: int = 3
    retry_backoff_us: float = 25.0
    retry_backoff_mult: float = 2.0
    # Requests unfinished this long after arrival are shed (None = off).
    request_timeout_us: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.kernel_failure_rate < 1.0:
            raise ValueError("kernel_failure_rate must be in [0, 1)")
        if not 0.0 <= self.slowdown_rate <= 1.0:
            raise ValueError("slowdown_rate must be in [0, 1]")
        if self.slowdown_factor < 1.0:
            raise ValueError("slowdown_factor must be >= 1")
        if self.profile_drift < 0.0:
            raise ValueError("profile_drift must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_us < 0.0:
            raise ValueError("retry_backoff_us must be >= 0")
        if self.retry_backoff_mult < 1.0:
            raise ValueError("retry_backoff_mult must be >= 1")
        if any(t < 0 for t in self.context_crash_times):
            raise ValueError("context_crash_times must be non-negative")
        if self.request_timeout_us is not None and self.request_timeout_us <= 0:
            raise ValueError("request_timeout_us must be positive")

    @property
    def active(self) -> bool:
        """Whether this plan injects anything at all."""
        return bool(
            self.kernel_failure_rate > 0.0
            or self.slowdown_rate > 0.0
            or self.profile_drift > 0.0
            or self.context_crash_times
            or self.request_timeout_us is not None
        )

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a CLI-style plan spec.

        Comma-separated ``key=value`` pairs, e.g.::

            failure=0.05,slowdown=0.1,crash=3000/9000,drift=0.3,
            timeout=5e6,retries=4,backoff=50,backoff_mult=2,seed=7

        ``crash`` takes slash-separated times in microseconds.
        """
        kwargs: Dict[str, object] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"bad fault-plan entry {item!r} (want key=value)")
            key, _, value = item.partition("=")
            key = key.strip().lower()
            value = value.strip()
            if key == "failure":
                kwargs["kernel_failure_rate"] = float(value)
            elif key == "slowdown":
                kwargs["slowdown_rate"] = float(value)
            elif key in ("slowdown_factor", "factor"):
                kwargs["slowdown_factor"] = float(value)
            elif key == "crash":
                kwargs["context_crash_times"] = tuple(
                    float(t) for t in value.split("/") if t
                )
            elif key == "drift":
                kwargs["profile_drift"] = float(value)
            elif key == "timeout":
                kwargs["request_timeout_us"] = float(value)
            elif key == "retries":
                kwargs["max_retries"] = int(value)
            elif key == "backoff":
                kwargs["retry_backoff_us"] = float(value)
            elif key == "backoff_mult":
                kwargs["retry_backoff_mult"] = float(value)
            elif key == "seed":
                kwargs["seed"] = int(value)
            else:
                raise ValueError(f"unknown fault-plan key {key!r}")
        return cls(**kwargs)

    def with_seed(self, seed: int) -> "FaultPlan":
        return dataclasses.replace(self, seed=seed)

    def describe(self) -> str:
        parts = []
        if self.kernel_failure_rate:
            parts.append(f"failure={self.kernel_failure_rate:g}")
        if self.slowdown_rate:
            parts.append(
                f"slowdown={self.slowdown_rate:g}x{self.slowdown_factor:g}"
            )
        if self.profile_drift:
            parts.append(f"drift={self.profile_drift:g}")
        if self.context_crash_times:
            times = "/".join(f"{t:g}" for t in self.context_crash_times)
            parts.append(f"crash@{times}us")
        if self.request_timeout_us is not None:
            parts.append(f"timeout={self.request_timeout_us:g}us")
        if not parts:
            return "inactive"
        parts.append(f"retries={self.max_retries}")
        parts.append(f"seed={self.seed}")
        return ",".join(parts)


def resolve_fault_plan(
    spec: Optional[str] = None, seed: Optional[int] = None
) -> Optional[FaultPlan]:
    """Resolve a plan from an explicit spec and/or the environment.

    ``REPRO_FAULT_PLAN`` supplies a default spec for the whole process
    tree (mirroring ``REPRO_ENGINE_MODE``); ``REPRO_FAULT_SEED``
    overrides the plan's seed, which is how CI replays a fault run
    byte-identically.  Returns ``None`` when no spec is available.
    """
    if spec is None:
        spec = os.environ.get("REPRO_FAULT_PLAN", "").strip() or None
    if seed is None:
        env_seed = os.environ.get("REPRO_FAULT_SEED", "").strip()
        seed = int(env_seed) if env_seed else None
    if spec is None:
        return None
    plan = FaultPlan.from_spec(spec)
    if seed is not None:
        plan = plan.with_seed(seed)
    return plan


class FaultInjector:
    """Per-serve decision oracle for a :class:`FaultPlan`.

    One injector is created per ``serve()`` and handed to the engine.
    Every decision hashes the kernel's stable identity, so the injector
    has no mutable randomness: two runs with the same plan (and the
    same deterministic event order) make identical decisions.
    """

    def __init__(self, plan: FaultPlan, stats=None):
        self.plan = plan
        self.stats = stats
        self._seed = plan.seed & _MASK64
        # kernel uid -> (app_token, seq, occurrence); memoized so every
        # query about one instance sees the same identity.
        self._identity: Dict[int, Tuple[int, int, int]] = {}
        self._occurrences: Dict[Tuple[int, int], int] = {}
        self._drift_cache: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    def _identity_of(self, kernel: KernelInstance) -> Tuple[int, int, int]:
        identity = self._identity.get(kernel.uid)
        if identity is None:
            slot = (_app_token(kernel.app_id), kernel.seq)
            occurrence = self._occurrences.get(slot, 0)
            self._occurrences[slot] = occurrence + 1
            identity = (slot[0], slot[1], occurrence)
            self._identity[kernel.uid] = identity
        return identity

    # ------------------------------------------------------------------
    def work_multiplier(self, kernel: KernelInstance) -> float:
        """Duration multiplier for this attempt (drift x spike)."""
        plan = self.plan
        multiplier = 1.0
        app, seq, occurrence = self._identity_of(kernel)
        if plan.profile_drift > 0.0:
            slot = (app, seq)
            drift = self._drift_cache.get(slot)
            if drift is None:
                drift = 1.0 + plan.profile_drift * _hash_u01(
                    self._seed, _DOMAIN_DRIFT, app, seq
                )
                self._drift_cache[slot] = drift
            multiplier *= drift
        if plan.slowdown_rate > 0.0:
            roll = _hash_u01(
                self._seed, _DOMAIN_SPIKE, app, seq, occurrence, kernel.attempts
            )
            if roll < plan.slowdown_rate:
                multiplier *= plan.slowdown_factor
                if self.stats is not None:
                    self.stats.slowdown_spikes += 1
        return multiplier

    def should_fail(self, kernel: KernelInstance) -> bool:
        """Whether this attempt of ``kernel`` fails at completion."""
        plan = self.plan
        if plan.kernel_failure_rate <= 0.0:
            return False
        app, seq, occurrence = self._identity_of(kernel)
        roll = _hash_u01(
            self._seed, _DOMAIN_FAIL, app, seq, occurrence, kernel.attempts
        )
        return roll < plan.kernel_failure_rate

    @property
    def max_retries(self) -> int:
        return self.plan.max_retries

    def backoff_us(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        exponent = max(0, attempt - 1)
        return self.plan.retry_backoff_us * (
            self.plan.retry_backoff_mult**exponent
        )

    def pick_index(self, count: int, ordinal: int) -> int:
        """Deterministically pick a crash victim among ``count`` options."""
        if count <= 0:
            raise ValueError("pick_index needs at least one option")
        index = int(_hash_u01(self._seed, _DOMAIN_CRASH, ordinal) * count)
        return min(index, count - 1)
