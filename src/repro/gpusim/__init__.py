"""GPU simulator substrate: a discrete-event model of a shared GPU.

This package replaces the physical Nvidia A100 used by the paper.  It
models SMs as a divisible pool allocated max-min fairly by a hardware
scheduler, MPS contexts with SM affinity, FIFO device queues, a
saturating memory-bandwidth interference model, a PCIe DMA channel, MIG
slicing, and the launch/sync/context-switch overheads of §6.9.
"""

from .context import ContextRegistry, GPUContext
from .device import GPUDevice, GPUSpec, MemoryPool, OutOfMemoryError
from .engine import SimEngine, TimelineSegment
from .faults import FaultInjector, FaultPlan, resolve_fault_plan
from .hwsched import Allocation, HardwareScheduler
from .interference import InterferenceModel
from .kernel import KernelInstance, KernelKind, KernelSpec
from .mig import MIG_PROFILES, MIGInstance, assign_slices, nearest_profile, partition
from .pcie import PCIeChannel
from .stream import DeviceQueue
from .tracing import KernelEvent, KernelTracer, load_jsonl, summarize_trace

__all__ = [
    "Allocation",
    "assign_slices",
    "ContextRegistry",
    "DeviceQueue",
    "FaultInjector",
    "FaultPlan",
    "GPUContext",
    "GPUDevice",
    "GPUSpec",
    "HardwareScheduler",
    "InterferenceModel",
    "KernelInstance",
    "KernelKind",
    "KernelSpec",
    "MemoryPool",
    "MIGInstance",
    "MIG_PROFILES",
    "nearest_profile",
    "OutOfMemoryError",
    "partition",
    "PCIeChannel",
    "resolve_fault_plan",
    "SimEngine",
    "TimelineSegment",
    "KernelEvent",
    "KernelTracer",
    "load_jsonl",
    "summarize_trace",
]
