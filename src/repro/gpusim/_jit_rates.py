"""Numba-compiled rebalance kernel for ``engine_mode="jit"``.

The engine's rebalance miss path — max-min fair SM allocation, the
interference slowdown, and the SM-scaling rate — re-stated as loops
over flat numpy arrays so numba can compile them to native code.  The
arithmetic mirrors :func:`repro.gpusim.hwsched.waterfill`, the general
branch of ``HardwareScheduler.allocate_fair_indexed``, and the scalar
branch of ``SimEngine._compute_rates_vectorized`` **operation for
operation, in the same order**, so the compiled results are
bit-identical to the interpreted ones (the 5-way equivalence tests in
``tests/test_engine_fastpath.py`` enforce this).

numba is an optional dependency (``pip install .[perf]``).  When it is
absent the decorator below degrades to an identity wrapper: the module
still imports, ``HAVE_NUMBA`` is False, and the engine silently falls
back to the interpreted batched path — but the *uncompiled* functions
remain callable, which is how the equivalence tests exercise this file
on numba-less environments.
"""

from __future__ import annotations

import numpy as np

from .hwsched import CAPACITY_EPS, SATISFIED_EPS

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the only path on bare installs
    HAVE_NUMBA = False

    def njit(*args, **kwargs):
        """Identity decorator standing in for ``numba.njit``."""
        if args and callable(args[0]):
            return args[0]

        def wrap(func):
            return func

        return wrap


@njit(cache=True)
def _waterfill_arrays(demands, n, capacity, fill):
    """Max-min fair split of ``capacity`` over ``demands[:n]`` into
    ``fill[:n]`` — :func:`repro.gpusim.hwsched.waterfill` on arrays.

    The satisfied set of each round is decided against the fills as
    they stood at the round's start (updating ``fill[i]`` after its own
    check never feeds into a later index's check), and the capacity
    subtraction runs in ascending index order — both exactly as the
    list-based original, so every intermediate float matches.  The
    tolerances are ``hwsched``'s module constants, frozen into the
    compiled code at jit time.
    """
    active = np.ones(n, np.bool_)
    for i in range(n):
        fill[i] = 0.0
    count = n
    remaining = capacity
    while count > 0 and remaining > CAPACITY_EPS:
        share = remaining / count
        n_sat = 0
        for i in range(n):
            if active[i] and demands[i] - fill[i] <= share + SATISFIED_EPS:
                n_sat += 1
        if n_sat > 0:
            for i in range(n):
                if active[i] and demands[i] - fill[i] <= share + SATISFIED_EPS:
                    remaining -= demands[i] - fill[i]
                    fill[i] = demands[i]
                    active[i] = False
            count -= n_sat
        else:
            for i in range(n):
                if active[i]:
                    fill[i] += share
            remaining = 0.0
            count = 0


@njit(cache=True)
def rate_kernel(
    demand,
    mem,
    serial,
    base,
    limit,
    priority,
    cid,
    restricted,
    kappa_unrestricted,
    kappa_restricted,
    gamma,
    max_slowdown,
):
    """Allocation -> slowdown -> rate for one running set.

    Inputs are parallel arrays over the running compute kernels (spec
    fields, context limit/priority/id/restriction); the four trailing
    scalars are the :class:`InterferenceModel` parameters.  Returns
    ``(fractions, rates, busy)`` aligned with the input order.

    Stage order matches the interpreted pipeline: context grouping in
    first-appearance order, priority levels descending, the two-pass
    water-fill per level, then busy/intensity accumulation and the
    per-kernel slowdown + rate in allocation-pairs order.
    """
    n = demand.shape[0]
    fractions = np.zeros(n, np.float64)
    rates = np.zeros(n, np.float64)
    if n == 0:
        return fractions, rates, 0.0

    # Context slots in first-appearance order (the only identity the
    # allocation reads).
    ctx_of = np.empty(n, np.int64)
    ctx_cid = np.empty(n, np.int64)
    ctx_limit = np.empty(n, np.float64)
    ctx_priority = np.empty(n, np.int64)
    n_ctx = 0
    for i in range(n):
        slot = -1
        for j in range(n_ctx):
            if ctx_cid[j] == cid[i]:
                slot = j
                break
        if slot < 0:
            slot = n_ctx
            ctx_cid[slot] = cid[i]
            ctx_limit[slot] = limit[i]
            ctx_priority[slot] = priority[i]
            n_ctx += 1
        ctx_of[i] = slot

    # Distinct priority levels, descending (insertion sort: n_ctx is
    # a handful).
    levels = np.empty(n_ctx, np.int64)
    n_levels = 0
    for j in range(n_ctx):
        p = ctx_priority[j]
        seen = False
        for t in range(n_levels):
            if levels[t] == p:
                seen = True
                break
        if not seen:
            levels[n_levels] = p
            n_levels += 1
    for a in range(1, n_levels):
        v = levels[a]
        b = a - 1
        while b >= 0 and levels[b] < v:
            levels[b + 1] = levels[b]
            b -= 1
        levels[b + 1] = v

    order = np.empty(n, np.int64)  # allocation-pairs order -> kernel
    grants = np.empty(n, np.float64)
    per_kernel_want = np.zeros(n, np.float64)
    context_want = np.zeros(n_ctx, np.float64)
    scratch_demand = np.empty(n, np.float64)
    scratch_fill = np.empty(n, np.float64)
    scratch_member = np.empty(n, np.int64)

    capacity = 1.0
    n_pairs = 0
    for t in range(n_levels):
        level = levels[t]
        # Pass 1: split each context's limit among its kernels.
        for j in range(n_ctx):
            if ctx_priority[j] != level:
                continue
            n_members = 0
            for i in range(n):
                if ctx_of[i] == j:
                    scratch_member[n_members] = i
                    scratch_demand[n_members] = demand[i]
                    n_members += 1
            _waterfill_arrays(scratch_demand, n_members, ctx_limit[j], scratch_fill)
            total = 0.0
            for g in range(n_members):
                per_kernel_want[scratch_member[g]] = scratch_fill[g]
                total = total + scratch_fill[g]
            context_want[j] = total
        # Pass 2: water-fill this level's contexts over what's left.
        n_level_ctx = 0
        for j in range(n_ctx):
            if ctx_priority[j] == level:
                scratch_demand[n_level_ctx] = context_want[j]
                n_level_ctx += 1
        _waterfill_arrays(scratch_demand, n_level_ctx, capacity, scratch_fill)
        pos = 0
        for j in range(n_ctx):
            if ctx_priority[j] != level:
                continue
            ctx_fill = scratch_fill[pos]
            pos += 1
            want = context_want[j]
            scale = ctx_fill / want if want > 0 else 0.0
            for i in range(n):
                if ctx_of[i] == j:
                    grant = per_kernel_want[i] * scale
                    capacity -= grant
                    order[n_pairs] = i
                    grants[n_pairs] = grant
                    n_pairs += 1
        if capacity < 0.0:
            capacity = 0.0

    # Active subset (grant > 0), compacted in place in pairs order:
    # busy, total intensity, and the unrestricted count accumulate in
    # exactly the interpreted reduction order.
    busy = 0.0
    total_intensity = 0.0
    num_unrestricted = 0
    n_active = 0
    for p in range(n_pairs):
        grant = grants[p]
        if grant > 0.0:
            i = order[p]
            busy += grant
            total_intensity = total_intensity + mem[i]
            if not restricted[i]:
                num_unrestricted += 1
            order[n_active] = i
            grants[n_active] = grant
            n_active += 1

    for p in range(n_active):
        i = order[p]
        grant = grants[p]
        m = mem[i]
        pressure = total_intensity - m
        if pressure < 0.0:
            pressure = 0.0
        if pressure > 1.0:
            pressure = 1.0
        if (not restricted[i]) and num_unrestricted >= 2:
            kappa = kappa_unrestricted
        else:
            kappa = kappa_restricted
        m_clamped = m if m < 1.0 else 1.0
        slowdown = 1.0 + kappa * pressure**gamma * m_clamped
        if slowdown > max_slowdown:
            slowdown = max_slowdown
        d = demand[i]
        usable = grant if grant < d else d
        duration = base[i] * (serial[i] + (1.0 - serial[i]) * (d / usable))
        fractions[i] = grant
        rates[i] = base[i] / duration / slowdown
    if busy > 1.0:
        busy = 1.0
    return fractions, rates, busy
