"""Queryable sqlite results catalog (ROADMAP item 5).

Every experiment cell, cluster epoch, CLI serve, and benchmark
trajectory snapshot is recorded — automatically, opt-out via
``REPRO_CATALOG=off`` — into one sqlite file keyed on config hashes, so
cross-PR comparisons and CI regression gates are a query
(``python -m repro results ...``) instead of a re-run.

Layout:

* :mod:`~repro.catalog.schema` — pinned DDL + canonical config hashing;
* :mod:`~repro.catalog.store`  — :class:`ResultsCatalog` (WAL sqlite,
  query/compare/gc API);
* :mod:`~repro.catalog.ingest` — the automatic write path used by the
  parallel harness, the cluster layer, and ``tools/bench_trajectory.py``;
* :mod:`~repro.catalog.gate`   — signed-threshold regression-gate
  semantics shared by ``repro results compare`` and
  ``tools/perf_gate.py``.

See docs/results-catalog.md for the schema and the query cookbook.
"""

from .gate import (
    DEFAULT_THRESHOLDS,
    GateViolation,
    ThresholdError,
    evaluate,
    format_comparison_table,
    parse_thresholds,
)
from .ingest import (
    DEFAULT_CATALOG_PATH,
    bench_entry_metrics,
    catalog_enabled,
    get_catalog,
    ingest_bench_entry,
    ingest_bench_file,
    ingest_metrics_safe,
    ingest_result,
    reset_catalog_cache,
    resolve_catalog_path,
    result_metrics,
)
from .schema import (
    SCHEMA_VERSION,
    canonical_json,
    config_hash,
    describe_callable,
    stable_repr,
)
from .store import (
    CatalogSchemaError,
    MetricComparison,
    ResultsCatalog,
    RunRow,
    current_git_rev,
)

__all__ = [
    "CatalogSchemaError",
    "DEFAULT_CATALOG_PATH",
    "DEFAULT_THRESHOLDS",
    "GateViolation",
    "MetricComparison",
    "ResultsCatalog",
    "RunRow",
    "SCHEMA_VERSION",
    "ThresholdError",
    "bench_entry_metrics",
    "canonical_json",
    "catalog_enabled",
    "config_hash",
    "current_git_rev",
    "describe_callable",
    "evaluate",
    "format_comparison_table",
    "get_catalog",
    "ingest_bench_entry",
    "ingest_bench_file",
    "ingest_metrics_safe",
    "ingest_result",
    "parse_thresholds",
    "reset_catalog_cache",
    "resolve_catalog_path",
    "result_metrics",
    "stable_repr",
]
