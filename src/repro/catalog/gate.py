"""Regression-gate semantics on top of catalog comparisons.

A threshold is ``metric=signed_fraction`` where the **sign encodes the
bad direction**:

* ``throughput_qps=-0.05`` — fail when throughput *drops* more than 5%
  (relative delta below −0.05);
* ``p99_latency_us=0.10``  — fail when p99 latency *rises* more than
  10% (relative delta above +0.10).

This keeps the gate direction-explicit without a separate
higher/lower-is-better table, and makes custom gates one CLI flag:
``--threshold speedup=-0.25``.  The defaults are the CI contract
(docs/results-catalog.md): throughput −5%, p99 +10%, and the
benchmarks' interleaved-median ``speedup`` ratios −25%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .store import MetricComparison

DEFAULT_THRESHOLDS: Dict[str, float] = {
    "throughput_qps": -0.05,
    "p99_latency_us": 0.10,
    # Speedup ratios divide by optimized legs that finish in
    # milliseconds, so even interleaved-pair medians swing ~15% on
    # shared boxes.  -25% still catches any real regression by a wide
    # margin (breaking memoization or vectorization drops the ratio
    # more than 90%).
    "speedup": -0.25,
}


class ThresholdError(ValueError):
    """A malformed ``metric=fraction`` threshold spec."""


def parse_thresholds(specs: Iterable[str]) -> Dict[str, float]:
    """Parse ``metric=signed_fraction`` CLI specs (empty -> defaults)."""
    specs = list(specs)
    if not specs:
        return dict(DEFAULT_THRESHOLDS)
    out: Dict[str, float] = {}
    for spec in specs:
        name, sep, raw = spec.partition("=")
        name = name.strip()
        if not sep or not name:
            raise ThresholdError(
                f"threshold {spec!r} is not of the form metric=signed_fraction"
            )
        try:
            value = float(raw)
        except ValueError as exc:
            raise ThresholdError(f"threshold {spec!r}: {raw!r} is not a number") from exc
        if value == 0.0:
            raise ThresholdError(
                f"threshold {spec!r}: the fraction's sign encodes the bad "
                "direction, so it cannot be zero"
            )
        out[name] = value
    return out


@dataclass
class GateViolation:
    """One comparison that moved past its threshold."""

    comparison: MetricComparison
    threshold: float

    def describe(self) -> str:
        c = self.comparison
        direction = "fell" if self.threshold < 0 else "rose"
        return (
            f"{c.experiment}/{c.system}: {c.metric} {direction} "
            f"{c.rel_delta:+.1%} ({c.baseline:.6g} -> {c.current:.6g}), "
            f"threshold {self.threshold:+.0%}"
        )


def evaluate(
    comparisons: Sequence[MetricComparison],
    thresholds: Dict[str, float],
) -> Tuple[List[GateViolation], List[MetricComparison]]:
    """Split comparisons into violations and checked-and-passed.

    Only metrics named in ``thresholds`` are gated; everything else is
    informational.  A negative threshold fails drops below it, a
    positive one fails rises above it.
    """
    violations: List[GateViolation] = []
    checked: List[MetricComparison] = []
    for comparison in comparisons:
        threshold = thresholds.get(comparison.metric)
        if threshold is None:
            continue
        checked.append(comparison)
        delta = comparison.rel_delta
        if threshold < 0 and delta < threshold:
            violations.append(GateViolation(comparison, threshold))
        elif threshold > 0 and delta > threshold:
            violations.append(GateViolation(comparison, threshold))
    return violations, checked


def format_comparison_table(
    comparisons: Sequence[MetricComparison],
    thresholds: Dict[str, float],
    violations: Sequence[GateViolation],
) -> str:
    """A fixed-width report of every compared metric, gated ones marked."""
    bad = {id(v.comparison) for v in violations}
    header = ["experiment", "system", "metric", "baseline", "current",
              "delta", "runs", "gate"]
    rows: List[List[str]] = []
    for c in comparisons:
        if c.metric in thresholds:
            verdict = "FAIL" if id(c) in bad else "ok"
        else:
            verdict = "-"
        rows.append(
            [
                c.experiment,
                c.system,
                c.metric,
                f"{c.baseline:.6g}",
                f"{c.current:.6g}",
                f"{c.rel_delta:+.1%}",
                f"{c.runs_baseline}/{c.runs_current}",
                verdict,
            ]
        )
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
