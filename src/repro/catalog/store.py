"""The sqlite-backed results catalog: durable runs, one-query comparisons.

``ResultsCatalog`` wraps one sqlite file (WAL mode, busy-timeout) with
the write/read API every layer shares:

* :meth:`record_run` — insert one run + its metrics + artifact pointers
  in a single transaction (concurrent writers from ``REPRO_JOBS`` pool
  parents are safe: WAL serializes them without lost rows);
* :meth:`runs` / :meth:`metrics` / :meth:`artifacts` — filtered reads;
* :meth:`compare` — per-``(experiment, system, metric)`` medians of two
  git revisions with the ratio/relative-delta a regression gate needs
  (medians, not single runs: CI boxes swing 30%+ between back-to-back
  runs, so every gate consumes the median over whatever runs landed);
* :meth:`gc` — bound the catalog by keeping the newest N runs per
  ``(experiment, system, config_hash)`` and/or dropping runs older than
  a cutoff.

Schema (see :mod:`repro.catalog.schema`) is pinned; opening a catalog
written by a different ``schema_version`` raises
:class:`CatalogSchemaError` instead of misjoining old rows.
"""

from __future__ import annotations

import datetime
import os
import sqlite3
import statistics
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from .schema import (
    EXPECTED_TABLES,
    SCHEMA_DDL,
    SCHEMA_VERSION,
    canonical_json,
    config_hash,
)

_REV_CACHE: Dict[str, str] = {}


class CatalogSchemaError(RuntimeError):
    """The on-disk catalog was written by an incompatible schema."""


def current_git_rev(repo_dir: Optional[Union[str, Path]] = None) -> str:
    """The git revision runs are recorded under.

    ``REPRO_GIT_REV`` overrides (CI sets it to the commit under test so
    ingest inside worker checkouts stays consistent); otherwise
    ``git rev-parse HEAD`` of ``repo_dir``/cwd, cached per directory;
    ``"unknown"`` outside a git checkout.
    """
    env = os.environ.get("REPRO_GIT_REV", "").strip()
    if env:
        return env
    key = str(repo_dir or os.getcwd())
    cached = _REV_CACHE.get(key)
    if cached is not None:
        return cached
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=key,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except Exception:
        rev = "unknown"
    _REV_CACHE[key] = rev or "unknown"
    return _REV_CACHE[key]


@dataclass
class RunRow:
    """One ``runs`` row, config JSON already parsed."""

    run_id: int
    config_hash: str
    experiment: str
    system: str
    git_rev: str
    seed: Optional[int]
    jobs: Optional[int]
    fault_plan: Optional[str]
    config: Dict[str, Any] = field(default_factory=dict)
    wall_time_s: Optional[float] = None
    created_at: str = ""


@dataclass
class MetricComparison:
    """One gated metric across two revisions (medians over runs)."""

    experiment: str
    system: str
    metric: str
    baseline: float
    current: float
    runs_baseline: int
    runs_current: int

    @property
    def rel_delta(self) -> float:
        """(current - baseline) / baseline; 0.0 when both are zero."""
        if self.baseline == 0.0:
            return 0.0 if self.current == 0.0 else float("inf")
        return (self.current - self.baseline) / abs(self.baseline)


class ResultsCatalog:
    """One sqlite results catalog (WAL mode, pinned schema)."""

    def __init__(self, path: Union[str, Path], timeout_s: float = 30.0):
        self.path = Path(path)
        if str(self.path) != ":memory:":
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path), timeout=timeout_s)
        self._conn.row_factory = sqlite3.Row
        # WAL lets REPRO_JOBS-parallel pool parents append concurrently
        # without lost rows; NORMAL sync is durable enough for results.
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(f"PRAGMA busy_timeout={int(timeout_s * 1000)}")
        self._init_schema()

    # -- lifecycle ----------------------------------------------------

    def _init_schema(self) -> None:
        with self._conn:
            self._conn.executescript(SCHEMA_DDL)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
            elif row["value"] != str(SCHEMA_VERSION):
                raise CatalogSchemaError(
                    f"catalog {self.path} has schema_version {row['value']!r}, "
                    f"this build expects {SCHEMA_VERSION!r} "
                    "(regenerate it or run with REPRO_CATALOG pointing elsewhere)"
                )

    def table_columns(self) -> Dict[str, Tuple[str, ...]]:
        """``table -> ordered column names`` (the schema pin surface)."""
        out: Dict[str, Tuple[str, ...]] = {}
        for table in EXPECTED_TABLES:
            info = self._conn.execute(f"PRAGMA table_info({table})").fetchall()
            out[table] = tuple(row["name"] for row in info)
        return out

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultsCatalog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- writes -------------------------------------------------------

    def record_run(
        self,
        experiment: str,
        system: str,
        config: Mapping[str, Any],
        metrics: Optional[Mapping[str, float]] = None,
        *,
        git_rev: Optional[str] = None,
        seed: Optional[int] = None,
        jobs: Optional[int] = None,
        fault_plan: Optional[str] = None,
        wall_time_s: Optional[float] = None,
        artifacts: Iterable[Tuple[str, str]] = (),
        created_at: Optional[str] = None,
    ) -> int:
        """Insert one run (+ metrics + artifacts) atomically; returns run_id."""
        if created_at is None:
            created_at = datetime.datetime.now(datetime.timezone.utc).isoformat()
        if git_rev is None:
            git_rev = current_git_rev()
        config_text = canonical_json(config)
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO runs (config_hash, experiment, system, git_rev, "
                "seed, jobs, fault_plan, config_json, wall_time_s, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    config_hash(config),
                    experiment,
                    system,
                    git_rev,
                    seed,
                    jobs,
                    fault_plan,
                    config_text,
                    wall_time_s,
                    created_at,
                ),
            )
            run_id = int(cursor.lastrowid)
            if metrics:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO metrics (run_id, name, value) "
                    "VALUES (?, ?, ?)",
                    [(run_id, name, float(value)) for name, value in metrics.items()],
                )
            rows = [(run_id, kind, str(path)) for kind, path in artifacts]
            if rows:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO artifacts (run_id, kind, path) "
                    "VALUES (?, ?, ?)",
                    rows,
                )
        return run_id

    # -- reads --------------------------------------------------------

    def runs(
        self,
        experiment: Optional[str] = None,
        system: Optional[str] = None,
        git_rev: Optional[str] = None,
        config_hash_prefix: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[RunRow]:
        """Filtered run rows, newest first."""
        clauses, params = [], []
        if experiment is not None:
            clauses.append("experiment = ?")
            params.append(experiment)
        if system is not None:
            clauses.append("system = ?")
            params.append(system)
        if git_rev is not None:
            clauses.append("git_rev = ?")
            params.append(git_rev)
        if config_hash_prefix:
            clauses.append("config_hash LIKE ?")
            params.append(config_hash_prefix + "%")
        sql = "SELECT * FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY run_id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        return [self._row_to_run(row) for row in self._conn.execute(sql, params)]

    @staticmethod
    def _row_to_run(row: sqlite3.Row) -> RunRow:
        import json

        return RunRow(
            run_id=row["run_id"],
            config_hash=row["config_hash"],
            experiment=row["experiment"],
            system=row["system"],
            git_rev=row["git_rev"],
            seed=row["seed"],
            jobs=row["jobs"],
            fault_plan=row["fault_plan"],
            config=json.loads(row["config_json"]),
            wall_time_s=row["wall_time_s"],
            created_at=row["created_at"],
        )

    def metrics(self, run_id: int) -> Dict[str, float]:
        return {
            row["name"]: row["value"]
            for row in self._conn.execute(
                "SELECT name, value FROM metrics WHERE run_id = ? ORDER BY name",
                (run_id,),
            )
        }

    def artifacts(self, run_id: int) -> List[Tuple[str, str]]:
        return [
            (row["kind"], row["path"])
            for row in self._conn.execute(
                "SELECT kind, path FROM artifacts WHERE run_id = ? "
                "ORDER BY kind, path",
                (run_id,),
            )
        ]

    def count_runs(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0])

    def revisions(self) -> List[Tuple[str, int]]:
        """``(git_rev, run count)`` pairs, newest rev first."""
        return [
            (row["git_rev"], row["n"])
            for row in self._conn.execute(
                "SELECT git_rev, COUNT(*) AS n, MAX(run_id) AS latest "
                "FROM runs GROUP BY git_rev ORDER BY latest DESC"
            )
        ]

    def resolve_rev(self, token: str) -> str:
        """Resolve a user-supplied revision token against stored revs.

        ``HEAD`` means the current checkout's revision; otherwise an
        exact stored rev or a unique prefix of one.  Raises ``ValueError``
        on no match or an ambiguous prefix.
        """
        if token == "HEAD":
            return current_git_rev()
        stored = [rev for rev, _ in self.revisions()]
        if token in stored:
            return token
        matches = [rev for rev in stored if rev.startswith(token)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ValueError(
                f"revision {token!r} has no runs in {self.path} "
                f"(known: {[r[:12] for r in stored] or 'none'})"
            )
        raise ValueError(f"revision prefix {token!r} is ambiguous: "
                         f"{[r[:12] for r in matches]}")

    def metric_values(
        self,
        git_rev: str,
        metric: Optional[str] = None,
        experiment: Optional[str] = None,
        system: Optional[str] = None,
    ) -> Dict[Tuple[str, str, str], List[float]]:
        """``(experiment, system, metric) -> values`` at one revision."""
        clauses = ["runs.git_rev = ?"]
        params: List[Any] = [git_rev]
        if metric is not None:
            clauses.append("metrics.name = ?")
            params.append(metric)
        if experiment is not None:
            clauses.append("runs.experiment = ?")
            params.append(experiment)
        if system is not None:
            clauses.append("runs.system = ?")
            params.append(system)
        sql = (
            "SELECT runs.experiment AS experiment, runs.system AS system, "
            "metrics.name AS name, metrics.value AS value "
            "FROM metrics JOIN runs ON runs.run_id = metrics.run_id "
            "WHERE " + " AND ".join(clauses) + " ORDER BY metrics.run_id"
        )
        out: Dict[Tuple[str, str, str], List[float]] = {}
        for row in self._conn.execute(sql, params):
            out.setdefault(
                (row["experiment"], row["system"], row["name"]), []
            ).append(row["value"])
        return out

    # -- comparison ---------------------------------------------------

    def compare(
        self,
        rev_baseline: str,
        rev_current: str,
        metrics: Optional[Sequence[str]] = None,
        experiment: Optional[str] = None,
        system: Optional[str] = None,
    ) -> List[MetricComparison]:
        """Median-vs-median comparison of two revisions.

        Only ``(experiment, system, metric)`` triples with runs at
        *both* revisions are compared — a metric that exists on one side
        only (new benchmark, renamed experiment) is not a regression.
        Medians over all stored runs absorb machine noise the same way
        the interleaved-pair benchmarks do.
        """
        base = self.metric_values(rev_baseline, experiment=experiment, system=system)
        curr = self.metric_values(rev_current, experiment=experiment, system=system)
        wanted = set(metrics) if metrics else None
        out: List[MetricComparison] = []
        for key in sorted(set(base) & set(curr)):
            exp, sys_name, name = key
            if wanted is not None and name not in wanted:
                continue
            out.append(
                MetricComparison(
                    experiment=exp,
                    system=sys_name,
                    metric=name,
                    baseline=statistics.median(base[key]),
                    current=statistics.median(curr[key]),
                    runs_baseline=len(base[key]),
                    runs_current=len(curr[key]),
                )
            )
        return out

    # -- retention ----------------------------------------------------

    def gc(
        self,
        keep_per_config: Optional[int] = None,
        before: Optional[str] = None,
        dry_run: bool = False,
    ) -> int:
        """Delete old runs; returns how many runs were (or would be) dropped.

        ``keep_per_config`` keeps the newest N runs of every
        ``(experiment, system, config_hash)`` group; ``before`` drops
        runs whose ISO ``created_at`` sorts strictly earlier.  Metrics
        and artifact rows of dropped runs are deleted too.
        """
        doomed: List[int] = []
        if keep_per_config is not None:
            if keep_per_config < 1:
                raise ValueError("keep_per_config must be >= 1")
            groups: Dict[Tuple[str, str, str], List[int]] = {}
            for row in self._conn.execute(
                "SELECT run_id, experiment, system, config_hash FROM runs "
                "ORDER BY run_id DESC"
            ):
                key = (row["experiment"], row["system"], row["config_hash"])
                groups.setdefault(key, []).append(row["run_id"])
            for run_ids in groups.values():
                doomed.extend(run_ids[keep_per_config:])
        if before is not None:
            doomed.extend(
                row["run_id"]
                for row in self._conn.execute(
                    "SELECT run_id FROM runs WHERE created_at < ?", (before,)
                )
            )
        doomed = sorted(set(doomed))
        if dry_run or not doomed:
            return len(doomed)
        with self._conn:
            marks = ",".join("?" * len(doomed))
            self._conn.execute(f"DELETE FROM metrics WHERE run_id IN ({marks})", doomed)
            self._conn.execute(
                f"DELETE FROM artifacts WHERE run_id IN ({marks})", doomed
            )
            self._conn.execute(f"DELETE FROM runs WHERE run_id IN ({marks})", doomed)
        return len(doomed)
