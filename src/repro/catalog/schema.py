"""Pinned sqlite schema + canonical config hashing for the results catalog.

The catalog stores every serving/benchmark run in three tables keyed on
a **config hash** — the sha-256 of the run's canonicalized configuration
— so "the same experiment cell at two git revisions" is one SQL join,
not a re-run:

* ``runs``      — one row per run: experiment name, system, git rev,
  seed, worker count, fault plan, wall time, the full config JSON and
  its hash;
* ``metrics``   — per-run ``(name, value)`` float measurements (the
  ``ServingResult`` headline numbers plus every ``extras`` counter);
* ``artifacts`` — per-run pointers to on-disk byproducts (Perfetto
  traces, golden files, ``BENCH_*.json`` snapshots);
* ``meta``      — catalog-level key/value pairs, including
  ``schema_version``.

The schema is **pinned**: ``tests/test_catalog.py`` asserts the exact
table/column layout, and :class:`~repro.catalog.store.ResultsCatalog`
refuses to open a catalog whose ``schema_version`` differs — bump
:data:`SCHEMA_VERSION` (and the pin test) on any DDL change so stale
baselines fail loudly instead of silently misjoining.
"""

from __future__ import annotations

import hashlib
import json
import re
from functools import partial
from typing import Any, Dict, Mapping

SCHEMA_VERSION = 1

# One statement per table; executed verbatim by ResultsCatalog and
# introspected by the schema pin test.
SCHEMA_DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS runs (
    run_id      INTEGER PRIMARY KEY AUTOINCREMENT,
    config_hash TEXT NOT NULL,
    experiment  TEXT NOT NULL,
    system      TEXT NOT NULL,
    git_rev     TEXT NOT NULL,
    seed        INTEGER,
    jobs        INTEGER,
    fault_plan  TEXT,
    config_json TEXT NOT NULL,
    wall_time_s REAL,
    created_at  TEXT NOT NULL
);

CREATE INDEX IF NOT EXISTS idx_runs_config_hash ON runs (config_hash);
CREATE INDEX IF NOT EXISTS idx_runs_experiment  ON runs (experiment, system);
CREATE INDEX IF NOT EXISTS idx_runs_git_rev     ON runs (git_rev);

CREATE TABLE IF NOT EXISTS metrics (
    run_id INTEGER NOT NULL,
    name   TEXT NOT NULL,
    value  REAL NOT NULL,
    PRIMARY KEY (run_id, name)
);

CREATE TABLE IF NOT EXISTS artifacts (
    run_id INTEGER NOT NULL,
    kind   TEXT NOT NULL,
    path   TEXT NOT NULL,
    PRIMARY KEY (run_id, kind, path)
);
"""

# The pinned layout: table -> ordered column names.  The store asserts
# this against PRAGMA table_info at open, and the pin test asserts it
# against this module, so schema drift cannot land silently.
EXPECTED_TABLES: Dict[str, tuple] = {
    "meta": ("key", "value"),
    "runs": (
        "run_id",
        "config_hash",
        "experiment",
        "system",
        "git_rev",
        "seed",
        "jobs",
        "fault_plan",
        "config_json",
        "wall_time_s",
        "created_at",
    ),
    "metrics": ("run_id", "name", "value"),
    "artifacts": ("run_id", "kind", "path"),
}

_ADDRESS = re.compile(r"0x[0-9a-fA-F]+")


def stable_repr(value: Any) -> str:
    """``repr`` with memory addresses scrubbed.

    Plain ``repr`` of functions, bound objects, and partials embeds
    ``at 0x7f...`` addresses that change every process, which would make
    config hashes useless for cross-run joins.  Dataclass reprs (apps,
    bindings, fault plans) pass through untouched.
    """
    return _ADDRESS.sub("0x0", repr(value))


def describe_callable(fn: Any) -> Any:
    """A JSON-friendly, process-stable description of a callable.

    ``functools.partial`` chains (the harness's bindings factories) are
    unwrapped recursively so the bound arguments — models, loads,
    request counts, seeds — land in the config and therefore the hash.
    """
    if isinstance(fn, partial):
        return {
            "func": describe_callable(fn.func),
            "args": [stable_repr(a) for a in fn.args],
            "kwargs": {k: stable_repr(v) for k, v in sorted(fn.keywords.items())},
        }
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if module and qualname:
        return f"{module}.{qualname}"
    return stable_repr(fn)


def canonical_json(config: Mapping[str, Any]) -> str:
    """Canonical JSON text of a config mapping.

    Keys are sorted recursively and separators are fixed, so two dicts
    that differ only in insertion order serialize — and therefore hash —
    identically.  Non-JSON values fall back to :func:`stable_repr`.
    """
    return json.dumps(
        config, sort_keys=True, separators=(",", ":"), default=stable_repr
    )


def config_hash(config: Mapping[str, Any]) -> str:
    """sha-256 hex digest of the canonicalized config."""
    return hashlib.sha256(canonical_json(config).encode("utf-8")).hexdigest()
