"""Automatic write path into the results catalog.

Every experiment runner already funnels its independent simulations
through :func:`repro.parallel.run_cells`; this module is the thin layer
that turns each completed cell — plus cluster epochs, CLI serves, and
``tools/bench_trajectory.py`` snapshots — into catalog rows without the
callers managing connections.

Environment contract (``REPRO_CATALOG``):

* unset/empty — ingest **on**, into ``results/catalog.sqlite`` under
  the current directory (gitignored in this repo);
* a path      — ingest on, into that sqlite file;
* ``off``/``0``/``false``/``none``/``no`` — ingest disabled.

The automatic paths must never turn catalog trouble (read-only
filesystem, version skew, a corrupt file) into a failed experiment:
``*_safe`` entry points catch everything, warn once per path, and
disable that catalog for the rest of the process.  Explicit API/CLI
users call :class:`~repro.catalog.store.ResultsCatalog` directly and do
get exceptions.
"""

from __future__ import annotations

import math
import os
import sys
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from ..metrics.stats import ServingResult
from .schema import describe_callable, stable_repr
from .store import ResultsCatalog

_OFF_VALUES = {"off", "0", "false", "none", "no"}
DEFAULT_CATALOG_PATH = Path("results") / "catalog.sqlite"

# path -> open catalog, keyed per process (forked pool workers must not
# share the parent's sqlite connection).
_catalogs: Dict[Tuple[str, int], Optional[ResultsCatalog]] = {}
_warned: set = set()


def resolve_catalog_path(
    explicit: Optional[Union[str, Path]] = None,
) -> Optional[Path]:
    """Where ingest writes, or ``None`` when opted out."""
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get("REPRO_CATALOG", "").strip()
    if env.lower() in _OFF_VALUES and env:
        return None
    if env:
        return Path(env)
    return DEFAULT_CATALOG_PATH


def catalog_enabled() -> bool:
    return resolve_catalog_path() is not None


def get_catalog(
    path: Optional[Union[str, Path]] = None,
) -> Optional[ResultsCatalog]:
    """The cached catalog for ``path`` (or the env default); None when off.

    A catalog that fails to open is remembered as broken for this
    process so one unwritable path warns once instead of erroring every
    ``run_cells`` call.
    """
    resolved = resolve_catalog_path(path)
    if resolved is None:
        return None
    key = (str(resolved), os.getpid())
    if key in _catalogs:
        return _catalogs[key]
    try:
        catalog: Optional[ResultsCatalog] = ResultsCatalog(resolved)
    except Exception as exc:
        catalog = None
        _warn_once(resolved, exc)
    _catalogs[key] = catalog
    return catalog


def reset_catalog_cache() -> None:
    """Close and forget cached connections (tests switch paths a lot)."""
    for catalog in _catalogs.values():
        if catalog is not None:
            try:
                catalog.close()
            except Exception:
                pass
    _catalogs.clear()
    _warned.clear()


def _warn_once(path: Path, exc: BaseException) -> None:
    key = str(path)
    if key not in _warned:
        _warned.add(key)
        print(
            f"repro: results catalog disabled for {path}: "
            f"{type(exc).__name__}: {exc}",
            file=sys.stderr,
        )


def result_metrics(result: ServingResult) -> Dict[str, float]:
    """The headline ``ServingResult`` numbers plus every extras counter.

    Non-finite values (an empty run's NaN mean) are dropped — sqlite
    would store NaN as NULL and break the lossless round-trip contract.
    The ``extras`` counters keep their existing names (``fault_*``,
    ``config_cache_*``, ``engine_*``, ``slo_*``), so cluster-merged
    results carry the ``completed + shed == arrived`` accounting into
    the catalog.  When a serving gateway ran (``slo_*`` extras
    present), two derived headline metrics are added for the
    latency-critical class: ``slo_attainment`` (deadline hits over
    arrivals — gate-shed and fault-shed requests count against
    attainment, matching the SLO-attainment figures of serving papers)
    and ``deadline_miss_rate`` (misses over completions).
    """
    metrics: Dict[str, float] = {
        "mean_latency_us": result.mean_of_app_means(),
        "p50_latency_us": result.percentile_latency(50),
        "p99_latency_us": result.percentile_latency(99),
        "throughput_qps": result.throughput_qps(),
        "utilization": result.utilization,
        "makespan_us": result.makespan_us,
        "completed": float(len(result.records)),
    }
    lc_arrived = float(result.extras.get("slo_arrived_latency_critical", 0.0))
    if lc_arrived > 0.0:
        hits = float(result.extras.get("slo_deadline_hits_latency_critical", 0.0))
        misses = float(
            result.extras.get("slo_deadline_misses_latency_critical", 0.0)
        )
        lc_completed = float(
            result.extras.get("slo_completed_latency_critical", 0.0)
        )
        metrics["slo_attainment"] = hits / lc_arrived
        if lc_completed > 0.0:
            metrics["deadline_miss_rate"] = misses / lc_completed
    for key, value in result.extras.items():
        metrics.setdefault(key, float(value))
    return {
        name: float(value)
        for name, value in metrics.items()
        if isinstance(value, (int, float)) and math.isfinite(value)
    }


def _fault_plan_fields(system_kwargs: Mapping[str, Any]) -> Tuple[Optional[str],
                                                                  Optional[int]]:
    plan = system_kwargs.get("fault_plan")
    if plan is None:
        return None, None
    describe = getattr(plan, "describe", None)
    text = describe() if callable(describe) else stable_repr(plan)
    seed = getattr(plan, "seed", None)
    return text, seed if isinstance(seed, int) else None


def ingest_result(
    result: ServingResult,
    *,
    experiment: str,
    config: Mapping[str, Any],
    catalog: Optional[ResultsCatalog] = None,
    system: Optional[str] = None,
    seed: Optional[int] = None,
    jobs: Optional[int] = None,
    fault_plan: Optional[str] = None,
    wall_time_s: Optional[float] = None,
    artifacts: Iterable[Tuple[str, str]] = (),
) -> Optional[int]:
    """Record one serving result; returns the run_id (None when off)."""
    catalog = catalog if catalog is not None else get_catalog()
    if catalog is None:
        return None
    return catalog.record_run(
        experiment=experiment,
        system=system or result.system,
        config=config,
        metrics=result_metrics(result),
        seed=seed,
        jobs=jobs,
        fault_plan=fault_plan,
        wall_time_s=wall_time_s,
        artifacts=artifacts,
    )


def cell_config(cell: Any, experiment: str) -> Dict[str, Any]:
    """The canonical (hashable) config of one harness cell.

    Includes everything that determines the cell's output — system
    factory, bindings factory with its bound arguments, extra system
    kwargs — so equal configs at two revisions are directly joinable.
    """
    return {
        "experiment": experiment,
        "key": stable_repr(cell.key),
        "system": cell.system,
        "system_factory": describe_callable(cell.system_factory),
        "bindings": describe_callable(cell.bindings_factory),
        "system_kwargs": {
            k: stable_repr(v) for k, v in sorted(cell.system_kwargs.items())
        },
    }


def ingest_cells_safe(
    cells: Sequence[Any],
    results: Sequence[ServingResult],
    walls: Sequence[Optional[float]],
    *,
    experiment: str,
    jobs: Optional[int] = None,
) -> None:
    """Best-effort ingest of a completed ``run_cells`` grid.

    Called by the parallel harness after every grid; catalog failure
    must never fail the experiment, so everything is caught and the
    offending catalog is disabled for the process.
    """
    catalog = get_catalog()
    if catalog is None:
        return
    try:
        for cell, result, wall in zip(cells, results, walls):
            fault_plan, seed = _fault_plan_fields(cell.system_kwargs)
            catalog.record_run(
                experiment=experiment,
                system=cell.system,
                config=cell_config(cell, experiment),
                metrics=result_metrics(result),
                seed=seed,
                jobs=jobs,
                fault_plan=fault_plan,
                wall_time_s=wall,
            )
    except Exception as exc:
        _warn_once(catalog.path, exc)
        _catalogs[(str(catalog.path), os.getpid())] = None


def ingest_metrics_safe(
    experiment: str,
    system: str,
    config: Mapping[str, Any],
    metrics: Mapping[str, float],
    *,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    wall_time_s: Optional[float] = None,
    artifacts: Iterable[Tuple[str, str]] = (),
) -> Optional[int]:
    """Best-effort ingest of one scenario-level metrics dict."""
    catalog = get_catalog()
    if catalog is None:
        return None
    try:
        finite = {
            name: float(value)
            for name, value in metrics.items()
            if isinstance(value, (int, float)) and math.isfinite(value)
        }
        return catalog.record_run(
            experiment=experiment,
            system=system,
            config=config,
            metrics=finite,
            seed=seed,
            jobs=jobs,
            wall_time_s=wall_time_s,
            artifacts=artifacts,
        )
    except Exception as exc:
        _warn_once(catalog.path, exc)
        _catalogs[(str(catalog.path), os.getpid())] = None
        return None


def bench_entry_metrics(bench: Mapping[str, Any]) -> Dict[str, float]:
    """Flatten one ``BENCH_*.json`` benchmark record into metric rows.

    Wall stats become ``wall_s_min``/``wall_s_mean``/...; numeric
    ``extra_info`` values (the interleaved-median ``speedup`` ratios the
    perf gate consumes) pass through by name; numeric lists (e.g.
    ``pair_speedups``) contribute their median as ``<name>_median``.
    """
    import statistics

    metrics: Dict[str, float] = {}
    for stat, value in (bench.get("wall_s") or {}).items():
        if isinstance(value, (int, float)) and math.isfinite(value):
            metrics[f"wall_s_{stat}"] = float(value)
    for name, value in (bench.get("extra_info") or {}).items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)) and math.isfinite(float(value)):
            metrics[name] = float(value)
        elif (
            isinstance(value, (list, tuple))
            and value
            and all(isinstance(v, (int, float)) for v in value)
        ):
            metrics[f"{name}_median"] = float(statistics.median(value))
    return metrics


def ingest_bench_entry(
    entry: Mapping[str, Any],
    *,
    catalog: Optional[ResultsCatalog] = None,
    source: Optional[str] = None,
) -> int:
    """Ingest one trajectory entry (one ``bench_trajectory`` append).

    Each benchmark becomes a run under ``experiment="bench"`` keyed on
    the benchmark name, recorded at the entry's ``git_rev`` (falling
    back to the current checkout for pre-rev snapshots).  Returns how
    many runs were recorded.  Raises on catalog errors — the callers
    (``tools/bench_trajectory.py`` via a safe wrapper, the CLI and
    ``tools/perf_gate.py`` deliberately) decide how loud to be.
    """
    catalog = catalog if catalog is not None else get_catalog()
    if catalog is None:
        return 0
    git_rev = entry.get("git_rev") or None
    artifacts = [("bench", source)] if source else []
    count = 0
    for bench in entry.get("benchmarks", []):
        name = bench.get("name") or "unnamed"
        config = {
            "experiment": "bench",
            "benchmark": name,
            "python": entry.get("python", ""),
        }
        wall = (bench.get("wall_s") or {}).get("min")
        catalog.record_run(
            experiment="bench",
            system=name,
            config=config,
            metrics=bench_entry_metrics(bench),
            git_rev=git_rev,
            wall_time_s=wall if isinstance(wall, (int, float)) else None,
            artifacts=artifacts,
            created_at=entry.get("timestamp") or None,
        )
        count += 1
    return count


def ingest_bench_file(
    path: Union[str, Path], catalog: Optional[ResultsCatalog] = None
) -> int:
    """Ingest every entry of a ``BENCH_*.json`` trajectory file."""
    import json

    payload = json.loads(Path(path).read_text())
    if isinstance(payload, Mapping):
        payload = [payload]
    count = 0
    for entry in payload:
        count += ingest_bench_entry(entry, catalog=catalog, source=str(path))
    return count
