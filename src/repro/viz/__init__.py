"""Terminal visualisation: execution timelines and figure-style charts."""

from .charts import bar_chart, line_sweep, reduction_table, scatter
from .timeline import TimelineView, bubble_profile, bucketise, render_timeline

__all__ = [
    "bar_chart",
    "bubble_profile",
    "bucketise",
    "line_sweep",
    "reduction_table",
    "render_timeline",
    "scatter",
    "TimelineView",
]
