"""ASCII chart rendering for experiment outputs.

Terminal-friendly renderers for the figure data the experiment modules
produce: horizontal bar charts (Fig. 13/14/17-style comparisons), the
Fig. 12 latency scatter, and line sweeps (Fig. 19).  No plotting
dependency — everything prints.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 50,
    unit: str = "ms",
    highlight: Optional[str] = None,
) -> str:
    """Horizontal bar chart; the longest bar spans ``width`` chars."""
    if not values:
        raise ValueError("no values to chart")
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("values must contain a positive maximum")
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "█" * max(1, round(width * value / peak))
        marker = " ◄" if name == highlight else ""
        lines.append(f"{name.rjust(label_width)} {bar} {value:.2f}{unit}{marker}")
    return "\n".join(lines)


def scatter(
    points: Sequence[Tuple[float, float, str]],
    width: int = 56,
    height: int = 18,
    x_label: str = "app1 latency (ms)",
    y_label: str = "app2 latency (ms)",
    title: str = "",
) -> str:
    """A Fig. 12-style scatter: ``(x, y, glyph)`` points on a grid."""
    if not points:
        raise ValueError("no points to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_max = max(xs) * 1.1
    y_max = max(ys) * 1.1
    grid = [[" "] * width for _ in range(height)]
    for x, y, glyph in points:
        col = min(width - 1, int(x / x_max * (width - 1)))
        row = min(height - 1, int(y / y_max * (height - 1)))
        grid[height - 1 - row][col] = glyph[0]
    lines = [title] if title else []
    lines.append(f"{y_max:8.1f} ┤")
    for row in grid:
        lines.append("         │" + "".join(row))
    lines.append("       0 └" + "─" * width)
    lines.append(f"          0{x_label.rjust(width - 1)} (max {x_max:.1f})")
    lines.append(f"          y: {y_label}")
    return "\n".join(lines)


def line_sweep(
    series: Mapping[str, Mapping[float, float]],
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """Overlayed line sweeps (Fig. 19-style): x -> y per named series."""
    if not series:
        raise ValueError("no series to plot")
    all_x = sorted({x for s in series.values() for x in s})
    all_y = [y for s in series.values() for y in s.values()]
    if not all_x or not all_y:
        raise ValueError("series are empty")
    y_lo, y_hi = min(all_y), max(all_y)
    span = (y_hi - y_lo) or 1.0
    glyphs = "oxv*+#"
    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        glyph = glyphs[index % len(glyphs)]
        for x, y in points.items():
            col = min(
                width - 1,
                int((all_x.index(x) / max(1, len(all_x) - 1)) * (width - 1)),
            )
            row = min(height - 1, int((y - y_lo) / span * (height - 1)))
            grid[height - 1 - row][col] = glyph
    lines = [title] if title else []
    lines.append(f"{y_hi:10.2f} ┤")
    for row in grid:
        lines.append("           │" + "".join(row))
    lines.append(f"{y_lo:10.2f} └" + "─" * width)
    lines.append(
        "           x: " + ", ".join(f"{x:g}" for x in all_x)
    )
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(series)
    )
    lines.append("           " + legend)
    return "\n".join(lines)


def reduction_table(
    baseline_ms: Mapping[str, float],
    target: str = "BLESS",
) -> str:
    """Latency reductions of ``target`` vs every other system."""
    if target not in baseline_ms:
        raise KeyError(f"{target!r} missing from results")
    target_value = baseline_ms[target]
    lines = [f"{target} latency reduction:"]
    for name, value in baseline_ms.items():
        if name == target:
            continue
        reduction = 1.0 - target_value / value if value > 0 else float("nan")
        lines.append(f"  vs {name:10s} {reduction:+7.1%}")
    return "\n".join(lines)
