"""ASCII timeline rendering of simulated GPU execution.

Renders an engine's recorded :class:`TimelineSegment` stream as the
kind of per-application Gantt strip the paper draws in Fig. 1 / Fig. 3 /
Fig. 18(a): one lane per application, one lane for total GPU occupancy,
with bubbles visible as gaps.

The renderer is resolution-independent: the window is divided into
fixed-width buckets and each bucket shows the app's average SM share
through a shade ramp (`` .:-=+*#%@``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..gpusim.engine import TimelineSegment

# Shade ramp from idle to fully busy.
_RAMP = " .:-=+*#%@"


def _shade(fraction: float) -> str:
    fraction = min(1.0, max(0.0, fraction))
    index = min(len(_RAMP) - 1, int(round(fraction * (len(_RAMP) - 1))))
    return _RAMP[index]


@dataclass
class TimelineView:
    """A rendered timeline: per-app lanes plus the total-occupancy lane."""

    start_us: float
    end_us: float
    width: int
    lanes: Dict[str, str]
    total: str

    def render(self) -> str:
        label_width = max(
            [len(app) for app in self.lanes] + [len("GPU total")]
        )
        lines = [
            f"timeline {self.start_us / 1000:.2f}ms .. {self.end_us / 1000:.2f}ms "
            f"({self.width} buckets of "
            f"{(self.end_us - self.start_us) / self.width / 1000:.3f}ms)"
        ]
        for app, lane in self.lanes.items():
            lines.append(f"{app.rjust(label_width)} |{lane}|")
        lines.append(f"{'GPU total'.rjust(label_width)} |{self.total}|")
        return "\n".join(lines)


def bucketise(
    timeline: Sequence[TimelineSegment],
    start_us: float,
    end_us: float,
    width: int,
) -> Tuple[Dict[str, List[float]], List[float]]:
    """Average SM share per app per time bucket.

    Returns ``(per_app, total)`` where ``per_app[app][i]`` is the app's
    mean SM fraction in bucket ``i`` and ``total[i]`` the sum over apps.
    """
    if width < 1:
        raise ValueError("width must be at least 1")
    if end_us <= start_us:
        raise ValueError("end must be after start")
    bucket_us = (end_us - start_us) / width
    per_app: Dict[str, List[float]] = {}
    total = [0.0] * width

    for segment in timeline:
        lo = max(segment.start, start_us)
        hi = min(segment.end, end_us)
        if hi <= lo:
            continue
        # Aggregate this segment's per-app SM share.
        shares: Dict[str, float] = {}
        for app_id, sm_fraction, _rate in segment.running.values():
            shares[app_id] = shares.get(app_id, 0.0) + sm_fraction
        first = int((lo - start_us) / bucket_us)
        last = min(width - 1, int((hi - start_us - 1e-12) / bucket_us))
        for bucket in range(first, last + 1):
            b_lo = start_us + bucket * bucket_us
            b_hi = b_lo + bucket_us
            overlap = max(0.0, min(hi, b_hi) - max(lo, b_lo))
            weight = overlap / bucket_us
            for app_id, share in shares.items():
                lane = per_app.setdefault(app_id, [0.0] * width)
                lane[bucket] += share * weight
                total[bucket] += share * weight
    return per_app, total


def render_timeline(
    timeline: Sequence[TimelineSegment],
    start_us: Optional[float] = None,
    end_us: Optional[float] = None,
    width: int = 80,
    apps: Optional[Sequence[str]] = None,
) -> TimelineView:
    """Render a recorded timeline into an ASCII view.

    ``apps`` restricts/reorders the lanes; by default lanes appear in
    first-seen order.  Use ``view.render()`` for the printable string.
    """
    if not timeline:
        raise ValueError("empty timeline — run the engine with record_timeline=True")
    lo = start_us if start_us is not None else timeline[0].start
    hi = end_us if end_us is not None else timeline[-1].end
    per_app, total = bucketise(timeline, lo, hi, width)

    if apps is None:
        apps = list(per_app)
    lanes = {
        app: "".join(_shade(v) for v in per_app.get(app, [0.0] * width))
        for app in apps
    }
    total_lane = "".join(_shade(min(1.0, v)) for v in total)
    return TimelineView(start_us=lo, end_us=hi, width=width, lanes=lanes, total=total_lane)


def bubble_profile(
    timeline: Sequence[TimelineSegment],
    start_us: float,
    end_us: float,
    width: int = 80,
) -> List[float]:
    """Idle-GPU fraction per bucket — the bubbles, ready to plot."""
    _, total = bucketise(timeline, start_us, end_us, width)
    return [max(0.0, 1.0 - min(1.0, v)) for v in total]
