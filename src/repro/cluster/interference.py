"""Contention-aware placement: interference estimates and cost model.

The §4.2.2 central controller is supposed to use "the memory
requirement and profiled kernel information to decide which specific
GPU to place applications **to avoid conflict**" — but the quota-fit
policies of :mod:`.placement` never look at *which* applications
interfere.  The Eq. 2 workload-equivalence predictor
(:func:`repro.core.predictors.workload_equivalence_estimate`) already
estimates exactly that signal: co-located kernels serialize wave by
wave at the SMs they jointly activate, so the predicted squad duration
of a co-resident group is the cross-app slowdown every member suffers.

This module turns that predictor into a placement objective, following
the contention-aware GPU partitioning line of work (PAPERS.md):

* :class:`InterferenceEstimator` — Eq. 2 joint-duration estimates over
  an application group's full kernel windows, memoized on **profile
  signatures** (``(model, calibration version, kernel count)``) so a
  64-GPU sweep re-scores thousands of candidate groups against a
  handful of distinct model combinations;
* :class:`PlacementCostModel` — scores one GPU's co-resident group as
  the sum of every member's predicted **excess completion time** over
  solo, in microseconds (optionally SLO-class-weighted so
  latency-critical tenants dominate the objective), and a full
  assignment as the sum over GPUs;
* :func:`solve_placement` — deterministic greedy construction plus
  bounded local-search refinement (move and swap moves), with an
  optional exact enumeration for small clusters (``N <= 4`` GPUs)
  behind the ``exact`` flag.

The solver is pure (it never touches :class:`~.placement.GPUSlot`
state); :class:`~.placement.ClusterPlacer` drives it when its policy is
``CONTENTION_AWARE`` and commits the returned assignment.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..apps.application import Application, Request
from ..core.config import DEFAULT_CONFIG, BlessConfig
from ..core.predictors import workload_equivalence_estimate
from ..core.profiler import OfflineProfiler
from ..core.squad import KernelSquad
from ..gpusim.device import GPUSpec

#: Default SLO-class weights of the cost model: a latency-critical
#: app's predicted slowdown counts this much more than a best-effort
#: one, so the solver keeps LC tenants on the quieter GPUs.  Class
#: names duck-type against ``repro.gateway.SLOSpec.slo_class`` — the
#: cluster layer carries no gateway import.
DEFAULT_CLASS_WEIGHTS: Mapping[str, float] = {
    "latency_critical": 4.0,
    "best_effort": 1.0,
}

#: Local-search budget: the refinement loop applies at most
#: ``LOCAL_SEARCH_ROUNDS * num_apps`` improving moves before stopping
#: (each move strictly reduces the assignment cost, so termination is
#: guaranteed anyway; the bound caps worst-case work on big clusters).
LOCAL_SEARCH_ROUNDS = 4

#: Exact enumeration is attempted only within these bounds — beyond
#: them the state space (``slots ** apps``) dwarfs what local search
#: loses, so the solver silently falls back to greedy + refinement.
EXACT_MAX_SLOTS = 4
EXACT_MAX_APPS = 8

#: Cost deltas below this are ties: local search only takes strictly
#: improving moves, and tie-breaks fall through to deterministic keys.
#: Costs are microseconds, so sub-microsecond deltas are float noise.
COST_EPS = 1e-6

#: A feasibility oracle: may ``candidate`` join ``group`` on one GPU?
FeasibilityCheck = Callable[[Sequence[Application], Application], bool]


class InterferenceEstimator:
    """Eq. 2 joint-duration estimates for co-resident application groups.

    ``joint_us(group)`` predicts how long one request of every group
    member takes when the group shares a GPU unrestricted — the Eq. 2
    wave model serializes the members' kernels at their jointly
    activated SM width, so the estimate grows with every co-runner's
    work and shrinks with parallel speedup at wider activation.  The
    per-app slowdown ``joint(group) / joint({app})`` is the predicted
    interference the placement cost model minimizes.

    Estimates are memoized on the group's sorted **profile signatures**
    — ``(model name, calibration version, kernel count)`` per member —
    so groups of the same models (regardless of app_id or quota, which
    Eq. 2 does not read) share one computation.  The profiler's
    ``recalibrate()`` bumps the version, invalidating stale entries by
    construction.
    """

    def __init__(
        self,
        profiler: Optional[OfflineProfiler] = None,
        config: BlessConfig = DEFAULT_CONFIG,
        gpu_spec: Optional[GPUSpec] = None,
    ):
        self.profiler = profiler or OfflineProfiler(
            config=config, gpu_spec=gpu_spec
        )
        self._joint_cache: Dict[Hashable, float] = {}
        self.hits = 0
        self.misses = 0

    def profile_signature(self, app: Application) -> Tuple[str, int, int]:
        """The memoization term one application contributes."""
        profile = self.profiler.profile(app)
        return (profile.app_name, profile.version, profile.num_kernels)

    def joint_us(self, group: Sequence[Application]) -> float:
        """Eq. 2 estimate of one full request-wave of ``group``."""
        if not group:
            return 0.0
        key = tuple(sorted(self.profile_signature(app) for app in group))
        cached = self._joint_cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        squad = KernelSquad()
        profiles = {}
        for index, app in enumerate(group):
            # Synthetic full-window squad: one request per member over
            # its entire kernel trace.  request_id is pinned so the
            # estimator never consumes the process-global request
            # counter (placement must not perturb serving-run ids),
            # and entry ids are position-unique so a group may legally
            # contain two deployments of one app_id.
            entry_id = f"{app.app_id}#{index}"
            request = Request(
                app=app.with_quota(app.quota, app_id=entry_id),
                arrival_time=0.0,
                request_id=index,
            )
            for kernel in range(app.num_kernels):
                squad.add(request, kernel)
            profiles[entry_id] = self.profiler.profile(app)
        estimate = float(workload_equivalence_estimate(squad, profiles))
        self._joint_cache[key] = estimate
        return estimate

    def solo_us(self, app: Application) -> float:
        """The singleton estimate the slowdown ratio is taken against."""
        return self.joint_us([app])

    def slowdown(
        self, app: Application, co_resident: Sequence[Application]
    ) -> float:
        """Predicted slowdown of ``app`` next to ``co_resident``."""
        solo = self.solo_us(app)
        if solo <= 0.0:
            return 1.0
        return self.joint_us([app, *co_resident]) / solo

    def matrix(
        self, apps: Sequence[Application]
    ) -> Dict[Tuple[str, str], float]:
        """The pairwise interference matrix over ``apps``.

        ``matrix[(a, b)]`` is the predicted slowdown of ``a`` when
        co-located with ``b`` alone — asymmetric by construction (a
        light app suffers more next to a heavy one than vice versa).
        """
        out: Dict[Tuple[str, str], float] = {}
        for a in apps:
            for b in apps:
                if a.app_id == b.app_id:
                    continue
                out[(a.app_id, b.app_id)] = self.slowdown(a, [b])
        return out


class PlacementCostModel:
    """Scores assignments as summed, weighted predicted excess time.

    One GPU hosting group ``G`` costs
    ``sum_{a in G} w_a * (joint(G) - solo(a))`` microseconds — each
    member's predicted slowdown expressed in time units
    (``solo(a) * (slowdown_a - 1)``), zero for an empty or singleton
    slot.  Keeping the objective in microseconds rather than
    dimensionless ratios matters: a ratio objective prefers pairing two
    heavy apps (each "only" doubles) over shielding a light app whose
    ratio would spike, which piles the most work onto one GPU; the
    time-unit objective instead predicts aggregate latency inflation,
    so minimizing it balances predicted work — and therefore makespan,
    throughput, and tail latency — across the cluster.  ``w_a`` is 1.0
    unless an SLO spec classes the app, in which case ``class_weights``
    applies (latency-critical tenants weigh more, steering them onto
    quieter GPUs).  A full assignment's cost is the sum over GPUs;
    minimizing it is the §4.2.2 "avoid conflict" objective made
    concrete.
    """

    def __init__(
        self,
        estimator: Optional[InterferenceEstimator] = None,
        slo=None,
        class_weights: Optional[Mapping[str, float]] = None,
        config: BlessConfig = DEFAULT_CONFIG,
        gpu_spec: Optional[GPUSpec] = None,
    ):
        self.estimator = estimator or InterferenceEstimator(
            config=config, gpu_spec=gpu_spec
        )
        self.slo = slo
        self.class_weights = dict(class_weights or DEFAULT_CLASS_WEIGHTS)

    def weight(self, app: Application) -> float:
        if self.slo is None:
            return 1.0
        return float(
            self.class_weights.get(self.slo.slo_class(app.app_id), 1.0)
        )

    def slot_cost(self, group: Sequence[Application]) -> float:
        """Weighted predicted excess time (μs) of one GPU's group."""
        if len(group) <= 1:
            return 0.0
        joint = self.estimator.joint_us(group)
        total = 0.0
        for app in group:
            solo = self.estimator.solo_us(app)
            total += self.weight(app) * max(0.0, joint - solo)
        return total

    def add_cost(
        self, group: Sequence[Application], candidate: Application
    ) -> float:
        """Marginal cost of adding ``candidate`` to ``group``."""
        return self.slot_cost([*group, candidate]) - self.slot_cost(group)

    def assignment_cost(
        self, groups: Sequence[Sequence[Application]]
    ) -> float:
        """Total cost of a full assignment (one group per GPU)."""
        return sum(self.slot_cost(group) for group in groups)


def _construct_greedy(
    apps: Sequence[Application],
    num_slots: int,
    cost_model: PlacementCostModel,
    feasible: FeasibilityCheck,
    key: Callable[[Sequence[Application], Application, int], Tuple],
) -> Optional[List[List[Application]]]:
    """Place ``apps`` one by one, choosing slots by ``key`` (min wins)."""
    groups: List[List[Application]] = [[] for _ in range(num_slots)]
    for app in apps:
        candidates = [
            index
            for index in range(num_slots)
            if feasible(groups[index], app)
        ]
        if not candidates:
            return None
        chosen = min(candidates, key=lambda i: key(groups[i], app, i))
        groups[chosen].append(app)
    return groups


def _local_search(
    groups: List[List[Application]],
    cost_model: PlacementCostModel,
    feasible: FeasibilityCheck,
) -> List[List[Application]]:
    """Bounded best-improvement refinement with move and swap moves.

    Each round scans every single-app **move** (app to another slot)
    and every pairwise **swap** (exchange two apps between slots),
    applies the strictly-cheapest feasible one, and repeats until no
    move improves or the ``LOCAL_SEARCH_ROUNDS``-scaled budget is
    spent.  All scans iterate in deterministic (slot index, app_id)
    order and ties break on ``(kind, app_id, target)`` so two runs
    refine identically.
    """
    num_apps = sum(len(group) for group in groups)
    budget = LOCAL_SEARCH_ROUNDS * max(1, num_apps)
    for _ in range(budget):
        best: Optional[Tuple[Tuple, Callable[[], None]]] = None

        def consider(gain: float, tie: Tuple, apply_move: Callable[[], None]):
            nonlocal best
            entry = ((-gain,) + tie, apply_move)
            if best is None or entry[0] < best[0]:
                best = entry

        for source in range(len(groups)):
            for app in sorted(groups[source], key=lambda a: a.app_id):
                others = [a for a in groups[source] if a is not app]
                source_cost = cost_model.slot_cost(groups[source])
                source_without = cost_model.slot_cost(others)
                for target in range(len(groups)):
                    if target == source:
                        continue
                    target_group = groups[target]
                    target_cost = cost_model.slot_cost(target_group)
                    # Move: app leaves source for target.
                    if feasible(target_group, app):
                        gain = (
                            source_cost
                            + target_cost
                            - source_without
                            - cost_model.slot_cost([*target_group, app])
                        )
                        if gain > COST_EPS:
                            consider(
                                gain,
                                (0, app.app_id, "", target),
                                lambda s=source, t=target, a=app: (
                                    groups[s].remove(a),
                                    groups[t].append(a),
                                ),
                            )
                    # Swap: app exchanges places with one target app.
                    for other in sorted(target_group, key=lambda a: a.app_id):
                        target_without = [
                            a for a in target_group if a is not other
                        ]
                        if not feasible(target_without, app):
                            continue
                        if not feasible(others, other):
                            continue
                        gain = (
                            source_cost
                            + target_cost
                            - cost_model.slot_cost([*others, other])
                            - cost_model.slot_cost([*target_without, app])
                        )
                        if gain > COST_EPS:
                            consider(
                                gain,
                                (1, app.app_id, other.app_id, target),
                                lambda s=source, t=target, a=app, o=other: (
                                    groups[s].remove(a),
                                    groups[t].remove(o),
                                    groups[s].append(o),
                                    groups[t].append(a),
                                ),
                            )
        if best is None:
            break
        best[1]()
    return groups


def _exact_search(
    apps: Sequence[Application],
    num_slots: int,
    cost_model: PlacementCostModel,
    feasible: FeasibilityCheck,
) -> Optional[List[List[Application]]]:
    """Enumerate every feasible assignment; return the cheapest.

    Only attempted within ``EXACT_MAX_SLOTS`` / ``EXACT_MAX_APPS`` —
    the caller falls back to greedy + local search outside the bounds.
    Enumeration order and the strict ``<`` comparison make the argmin
    deterministic (first-found among equal-cost assignments wins, and
    the iteration order is itself deterministic).
    """
    if num_slots > EXACT_MAX_SLOTS or len(apps) > EXACT_MAX_APPS:
        return None
    best_cost = float("inf")
    best_groups: Optional[List[List[Application]]] = None
    for choice in itertools.product(range(num_slots), repeat=len(apps)):
        groups: List[List[Application]] = [[] for _ in range(num_slots)]
        ok = True
        for app, slot in zip(apps, choice):
            if not feasible(groups[slot], app):
                ok = False
                break
            groups[slot].append(app)
        if not ok:
            continue
        cost = cost_model.assignment_cost(groups)
        if cost < best_cost - COST_EPS:
            best_cost = cost
            best_groups = groups
    return best_groups


def solve_placement(
    apps: Sequence[Application],
    num_slots: int,
    cost_model: PlacementCostModel,
    feasible: FeasibilityCheck,
    exact: bool = False,
) -> Optional[List[List[Application]]]:
    """Assign ``apps`` to ``num_slots`` GPUs minimizing predicted cost.

    Deterministic pipeline:

    1. order apps by descending solo estimate (heaviest first — the
       classic bin-packing order, with app_id tie-breaks);
    2. construct two candidate assignments greedily — one by marginal
       *cost* (spread-by-interference) over the solo order, and one
       replicating :meth:`~.placement.ClusterPlacer.place_all` under
       best-fit exactly (quota-descending stable order, headroom key)
       — so the result is **never worse than the best-fit placer's
       assignment** under this cost model (a property the test suite
       pins);
    3. refine each with bounded local search and keep the cheaper;
    4. with ``exact=True`` on a small cluster, replace the answer with
       the enumerated optimum when enumeration is tractable.

    Returns one group per slot, or ``None`` when no construction can
    place every app (the caller decides between degrading and
    shedding).
    """
    order = sorted(
        apps,
        key=lambda a: (-cost_model.estimator.solo_us(a), a.app_id),
    )
    # Stable quota-descending order — byte-for-byte the order the
    # best-fit placer batches in, so the headroom construction below
    # reproduces its assignment exactly before refinement only ever
    # improves it.
    bf_order = sorted(apps, key=lambda a: a.quota, reverse=True)

    def cost_key(group, app, index):
        return (cost_model.add_cost(group, app), index)

    def headroom_key(group, app, index):
        free = 1.0 - sum(a.quota for a in group)
        return (float(free - app.quota), index)

    candidates = []
    for construction_order, key in ((order, cost_key), (bf_order, headroom_key)):
        groups = _construct_greedy(
            construction_order, num_slots, cost_model, feasible, key
        )
        if groups is None:
            continue
        groups = _local_search(groups, cost_model, feasible)
        candidates.append((cost_model.assignment_cost(groups), groups))
    if exact:
        enumerated = _exact_search(order, num_slots, cost_model, feasible)
        if enumerated is not None:
            candidates.append(
                (cost_model.assignment_cost(enumerated), enumerated)
            )
    if not candidates:
        return None
    best_cost, best_groups = candidates[0]
    for cost, groups in candidates[1:]:
        if cost < best_cost - COST_EPS:
            best_cost, best_groups = cost, groups
    return best_groups
