"""Application placement across multiple GPUs (§4.2.2).

The paper sketches the multi-GPU extension: replicate the BLESS runtime
per GPU and let "a central controller leverage the memory requirement
and profiled kernel information to decide which specific GPU to place
applications to avoid conflict" (as in GPUlet).  This module implements
that controller's placement decision:

* an application fits a GPU only if memory (including the MPS contexts
  BLESS will create), quota headroom, and kernel-duration compatibility
  (§4.2.2's starvation rule) all allow it;
* among feasible GPUs, `best_fit` picks the one whose remaining quota
  headroom is smallest after placement (pack tightly, keep whole GPUs
  free), `worst_fit` the largest (balance load), `first_fit` the first.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps.application import Application
from ..core.deployment import check_admission
from ..gpusim.device import GPUSpec


class PlacementPolicy(enum.Enum):
    FIRST_FIT = "first_fit"
    BEST_FIT = "best_fit"
    WORST_FIT = "worst_fit"


class PlacementError(RuntimeError):
    """No GPU can host the application."""


@dataclass
class GPUSlot:
    """A single GPU's deployment state inside the cluster."""

    index: int
    spec: GPUSpec
    apps: List[Application] = field(default_factory=list)

    @property
    def quota_used(self) -> float:
        return sum(app.quota for app in self.apps)

    @property
    def quota_free(self) -> float:
        return 1.0 - self.quota_used

    @property
    def memory_used_mb(self) -> int:
        contexts = 2 * len(self.apps) * self.spec.mps_context_mb
        return sum(app.memory_mb for app in self.apps) + contexts

    @property
    def memory_free_mb(self) -> int:
        return self.spec.memory_mb - self.memory_used_mb

    def fits(self, app: Application) -> bool:
        """Would ``app`` be admitted alongside this GPU's current apps?"""
        if app.quota > self.quota_free + 1e-9:
            return False
        report = check_admission(self.apps + [app], gpu_spec=self.spec)
        return report.accepted


class ClusterPlacer:
    """Places applications on a pool of GPUs."""

    def __init__(
        self,
        num_gpus: int,
        gpu_spec: Optional[GPUSpec] = None,
        policy: PlacementPolicy = PlacementPolicy.BEST_FIT,
    ):
        if num_gpus < 1:
            raise ValueError("need at least one GPU")
        spec = gpu_spec or GPUSpec()
        self.policy = policy
        self.slots = [GPUSlot(index=i, spec=spec) for i in range(num_gpus)]

    def select(self, app: Application) -> Optional[GPUSlot]:
        """The slot ``place`` would choose, without recording (None = none).

        Both fit keys sort by the slot's quota headroom *after*
        placement with the slot index as an explicit tie-break:
        ``app.quota`` is slot-invariant so it never changes the argmin,
        but float-equal headrooms (common with the Table-2 rational
        quotas, and representation-sensitive across numpy/python float
        paths) previously tie-broke on whatever order ``min``/``max``
        happened to scan — the index makes the decision deterministic
        by construction.
        """
        feasible = [slot for slot in self.slots if slot.fits(app)]
        if not feasible:
            return None
        if self.policy is PlacementPolicy.FIRST_FIT:
            return feasible[0]
        if self.policy is PlacementPolicy.BEST_FIT:
            return min(
                feasible,
                key=lambda s: (float(s.quota_free - app.quota), s.index),
            )
        # WORST_FIT: largest headroom, lowest index on ties.
        return min(
            feasible,
            key=lambda s: (-float(s.quota_free - app.quota), s.index),
        )

    def place(self, app: Application) -> GPUSlot:
        """Choose a GPU for ``app`` and record the placement."""
        chosen = self.select(app)
        if chosen is None:
            raise PlacementError(
                f"no GPU can host {app.app_id!r} "
                f"(quota {app.quota:.0%}, {app.memory_mb}MB)"
            )
        chosen.apps.append(app)
        return chosen

    def remove(self, app_id: str) -> GPUSlot:
        """Undo a placement (application departure); returns its slot."""
        for slot in self.slots:
            for app in slot.apps:
                if app.app_id == app_id:
                    slot.apps.remove(app)
                    return slot
        raise KeyError(f"app {app_id!r} is not placed on any GPU")

    def slot_of(self, app_id: str) -> Optional[GPUSlot]:
        for slot in self.slots:
            if any(app.app_id == app_id for app in slot.apps):
                return slot
        return None

    def quota_spread(self) -> float:
        """Max minus min per-slot quota load (the imbalance measure)."""
        used = [slot.quota_used for slot in self.slots]
        return max(used) - min(used)

    def propose_migration(self) -> Optional[Tuple[Application, GPUSlot, GPUSlot]]:
        """One load-balancing move, or None when no move helps.

        Deterministic rule: take the most-loaded slot (lowest index on
        ties), and among its apps that *fit* on the least-loaded slot,
        pick the smallest-quota one (app_id tie-break) whose move
        strictly reduces the cluster's quota spread.  Returns
        ``(app, source, target)`` without applying the move.
        """
        if len(self.slots) < 2:
            return None
        source = min(self.slots, key=lambda s: (-s.quota_used, s.index))
        target = min(self.slots, key=lambda s: (s.quota_used, s.index))
        if source.index == target.index:
            return None
        spread = source.quota_used - target.quota_used
        candidates = sorted(
            source.apps, key=lambda a: (float(a.quota), a.app_id)
        )
        for app in candidates:
            # The move must strictly shrink the spread (otherwise the
            # orchestrator would oscillate the same app back and forth).
            new_source = source.quota_used - app.quota
            new_target = target.quota_used + app.quota
            if max(new_source, new_target) - min(new_source, new_target) >= spread - 1e-9:
                continue
            if target.fits(app):
                return app, source, target
        return None

    def apply_migration(
        self, app: Application, source: GPUSlot, target: GPUSlot
    ) -> None:
        source.apps.remove(app)
        target.apps.append(app)

    def place_all(self, apps: Sequence[Application]) -> Dict[int, List[Application]]:
        """Place a batch (largest quota first — classic bin packing).

        Returns ``{gpu_index: [apps...]}``.  Raises
        :class:`PlacementError` if any app cannot be placed; previously
        recorded placements are kept (callers wanting transactionality
        should use a fresh placer).
        """
        for app in sorted(apps, key=lambda a: a.quota, reverse=True):
            self.place(app)
        return {slot.index: list(slot.apps) for slot in self.slots if slot.apps}

    def utilization_summary(self) -> str:
        lines = []
        for slot in self.slots:
            names = ", ".join(a.app_id for a in slot.apps) or "(idle)"
            lines.append(
                f"GPU{slot.index}: quota {slot.quota_used:.0%}, "
                f"memory {slot.memory_used_mb}/{slot.spec.memory_mb}MB — {names}"
            )
        return "\n".join(lines)
