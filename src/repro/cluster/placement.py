"""Application placement across multiple GPUs (§4.2.2).

The paper sketches the multi-GPU extension: replicate the BLESS runtime
per GPU and let "a central controller leverage the memory requirement
and profiled kernel information to decide which specific GPU to place
applications to avoid conflict" (as in GPUlet).  This module implements
that controller's placement decision:

* an application fits a GPU only if memory (including the MPS contexts
  BLESS will create), quota headroom, and kernel-duration compatibility
  (§4.2.2's starvation rule) all allow it;
* among feasible GPUs, `best_fit` picks the one whose remaining quota
  headroom is smallest after placement (pack tightly, keep whole GPUs
  free), `worst_fit` the largest (balance load), `first_fit` the first.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..apps.application import Application
from ..core.deployment import check_admission
from ..gpusim.device import GPUSpec


class PlacementPolicy(enum.Enum):
    FIRST_FIT = "first_fit"
    BEST_FIT = "best_fit"
    WORST_FIT = "worst_fit"


class PlacementError(RuntimeError):
    """No GPU can host the application."""


@dataclass
class GPUSlot:
    """A single GPU's deployment state inside the cluster."""

    index: int
    spec: GPUSpec
    apps: List[Application] = field(default_factory=list)

    @property
    def quota_used(self) -> float:
        return sum(app.quota for app in self.apps)

    @property
    def quota_free(self) -> float:
        return 1.0 - self.quota_used

    @property
    def memory_used_mb(self) -> int:
        contexts = 2 * len(self.apps) * self.spec.mps_context_mb
        return sum(app.memory_mb for app in self.apps) + contexts

    @property
    def memory_free_mb(self) -> int:
        return self.spec.memory_mb - self.memory_used_mb

    def fits(self, app: Application) -> bool:
        """Would ``app`` be admitted alongside this GPU's current apps?"""
        if app.quota > self.quota_free + 1e-9:
            return False
        report = check_admission(self.apps + [app], gpu_spec=self.spec)
        return report.accepted


class ClusterPlacer:
    """Places applications on a pool of GPUs."""

    def __init__(
        self,
        num_gpus: int,
        gpu_spec: Optional[GPUSpec] = None,
        policy: PlacementPolicy = PlacementPolicy.BEST_FIT,
    ):
        if num_gpus < 1:
            raise ValueError("need at least one GPU")
        spec = gpu_spec or GPUSpec()
        self.policy = policy
        self.slots = [GPUSlot(index=i, spec=spec) for i in range(num_gpus)]

    def place(self, app: Application) -> GPUSlot:
        """Choose a GPU for ``app`` and record the placement."""
        feasible = [slot for slot in self.slots if slot.fits(app)]
        if not feasible:
            raise PlacementError(
                f"no GPU can host {app.app_id!r} "
                f"(quota {app.quota:.0%}, {app.memory_mb}MB)"
            )
        if self.policy is PlacementPolicy.FIRST_FIT:
            chosen = feasible[0]
        elif self.policy is PlacementPolicy.BEST_FIT:
            chosen = min(feasible, key=lambda s: s.quota_free - app.quota)
        else:  # WORST_FIT
            chosen = max(feasible, key=lambda s: s.quota_free - app.quota)
        chosen.apps.append(app)
        return chosen

    def place_all(self, apps: Sequence[Application]) -> Dict[int, List[Application]]:
        """Place a batch (largest quota first — classic bin packing).

        Returns ``{gpu_index: [apps...]}``.  Raises
        :class:`PlacementError` if any app cannot be placed; previously
        recorded placements are kept (callers wanting transactionality
        should use a fresh placer).
        """
        for app in sorted(apps, key=lambda a: a.quota, reverse=True):
            self.place(app)
        return {slot.index: list(slot.apps) for slot in self.slots if slot.apps}

    def utilization_summary(self) -> str:
        lines = []
        for slot in self.slots:
            names = ", ".join(a.app_id for a in slot.apps) or "(idle)"
            lines.append(
                f"GPU{slot.index}: quota {slot.quota_used:.0%}, "
                f"memory {slot.memory_used_mb}/{slot.spec.memory_mb}MB — {names}"
            )
        return "\n".join(lines)
