"""Application placement across multiple GPUs (§4.2.2).

The paper sketches the multi-GPU extension: replicate the BLESS runtime
per GPU and let "a central controller leverage the memory requirement
and profiled kernel information to decide which specific GPU to place
applications to avoid conflict" (as in GPUlet).  This module implements
that controller's placement decision:

* an application fits a GPU only if memory (including the MPS contexts
  BLESS will create), quota headroom, and kernel-duration compatibility
  (§4.2.2's starvation rule) all allow it;
* among feasible GPUs, `best_fit` picks the one whose remaining quota
  headroom is smallest after placement (pack tightly, keep whole GPUs
  free), `worst_fit` the largest (balance load), `first_fit` the first;
* `contention_aware` scores candidates with the Eq. 2 interference
  cost model of :mod:`.interference` instead of quota headroom —
  greedy marginal-cost selection online, greedy construction plus
  local-search refinement for batches, and cost-driven migration
  proposals (see ``docs/cluster.md``).

Admission feasibility (:func:`repro.core.deployment.check_admission`)
is memoized on the co-resident group's **admission signature** — the
exact per-app fields the check reads — so scoring many candidate slots
against the same model mix costs one admission check, not one per
probe (the 64-GPU sweeps were previously quadratic in checks).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps.application import Application
from ..core.deployment import check_admission
from ..gpusim.device import GPUSpec
from .interference import COST_EPS, PlacementCostModel, solve_placement


class PlacementPolicy(enum.Enum):
    FIRST_FIT = "first_fit"
    BEST_FIT = "best_fit"
    WORST_FIT = "worst_fit"
    CONTENTION_AWARE = "contention_aware"


class PlacementError(RuntimeError):
    """No GPU can host the application."""


# -- admission memoization ------------------------------------------------
#
# ``check_admission`` reads exactly these per-app fields: memory_mb,
# quota, and the mean/max compute-kernel durations (the §4.2.2
# starvation rule).  A group's decision is therefore a pure function of
# the multiset of per-app signatures plus the GPU spec, which is what
# the cache keys on — byte-identical decisions, pinned by
# ``tests/test_cluster.py::TestAdmissionMemoization``.
_ADMISSION_CACHE: Dict[Tuple, bool] = {}


def _duration_stats(app: Application) -> Tuple[float, float]:
    """(mean, max) compute-kernel durations, cached on the instance."""
    cached = app.__dict__.get("_admission_durations")
    if cached is None:
        durations = [k.base_duration_us for k in app.kernels if k.is_compute]
        if durations:
            cached = (sum(durations) / len(durations), max(durations))
        else:
            cached = (0.0, 0.0)
        app.__dict__["_admission_durations"] = cached
    return cached


def admission_signature(app: Application) -> Tuple[float, float, float, float]:
    """Everything ``check_admission`` reads about one application."""
    mean, longest = _duration_stats(app)
    return (float(app.memory_mb), float(app.quota), mean, longest)


def admission_accepts(
    apps: Sequence[Application], spec: GPUSpec
) -> bool:
    """Memoized ``check_admission(apps, spec).accepted``."""
    key = (
        spec.memory_mb,
        spec.mps_context_mb,
        tuple(sorted(admission_signature(app) for app in apps)),
    )
    cached = _ADMISSION_CACHE.get(key)
    if cached is None:
        cached = check_admission(list(apps), gpu_spec=spec).accepted
        _ADMISSION_CACHE[key] = cached
    return cached


def group_feasible(
    group: Sequence[Application], candidate: Application, spec: GPUSpec
) -> bool:
    """May ``candidate`` join ``group`` on one GPU of ``spec``?

    The quota-headroom pre-check mirrors :meth:`GPUSlot.fits` so the
    contention solver and the slot-based policies agree on feasibility.
    """
    free = 1.0 - sum(app.quota for app in group)
    if candidate.quota > free + 1e-9:
        return False
    return admission_accepts([*group, candidate], spec)


@dataclass
class GPUSlot:
    """A single GPU's deployment state inside the cluster."""

    index: int
    spec: GPUSpec
    apps: List[Application] = field(default_factory=list)

    @property
    def quota_used(self) -> float:
        return sum(app.quota for app in self.apps)

    @property
    def quota_free(self) -> float:
        return 1.0 - self.quota_used

    @property
    def memory_used_mb(self) -> int:
        contexts = 2 * len(self.apps) * self.spec.mps_context_mb
        return sum(app.memory_mb for app in self.apps) + contexts

    @property
    def memory_free_mb(self) -> int:
        return self.spec.memory_mb - self.memory_used_mb

    def fits(self, app: Application) -> bool:
        """Would ``app`` be admitted alongside this GPU's current apps?"""
        return group_feasible(self.apps, app, self.spec)


class ClusterPlacer:
    """Places applications on a pool of GPUs.

    ``policy`` selects among quota-fit rules (first/best/worst-fit) and
    the interference-cost objective (``CONTENTION_AWARE``).  The cost
    model is built lazily for the contention policy (pass ``cost_model``
    to share an estimator or supply SLO class weights); ``exact=True``
    additionally enables exhaustive batch placement on small clusters
    (``N <= 4`` GPUs, see :mod:`.interference`).
    """

    def __init__(
        self,
        num_gpus: int,
        gpu_spec: Optional[GPUSpec] = None,
        policy: PlacementPolicy = PlacementPolicy.BEST_FIT,
        cost_model: Optional[PlacementCostModel] = None,
        slo=None,
        exact: bool = False,
    ):
        if num_gpus < 1:
            raise ValueError("need at least one GPU")
        spec = gpu_spec or GPUSpec()
        self.policy = policy
        self.exact = exact
        self.slots = [GPUSlot(index=i, spec=spec) for i in range(num_gpus)]
        if cost_model is None and policy is PlacementPolicy.CONTENTION_AWARE:
            cost_model = PlacementCostModel(gpu_spec=spec, slo=slo)
        self.cost_model = cost_model

    @property
    def gpu_spec(self) -> GPUSpec:
        return self.slots[0].spec

    def _feasible(
        self, group: Sequence[Application], candidate: Application
    ) -> bool:
        return group_feasible(group, candidate, self.gpu_spec)

    def select(self, app: Application) -> Optional[GPUSlot]:
        """The slot ``place`` would choose, without recording (None = none).

        The quota-fit keys sort by the slot's headroom *after*
        placement with the slot index as an explicit tie-break:
        ``app.quota`` is slot-invariant so it never changes the argmin,
        but float-equal headrooms (common with the Table-2 rational
        quotas, and representation-sensitive across numpy/python float
        paths) previously tie-broke on whatever order ``min``/``max``
        happened to scan — the index makes the decision deterministic
        by construction.  ``CONTENTION_AWARE`` sorts by the marginal
        interference cost of joining each slot's group instead (an
        empty GPU costs nothing, so the rule spreads first and then
        co-locates the least-conflicting mixes), same index tie-break.
        """
        feasible = [slot for slot in self.slots if slot.fits(app)]
        if not feasible:
            return None
        if self.policy is PlacementPolicy.FIRST_FIT:
            return feasible[0]
        if self.policy is PlacementPolicy.CONTENTION_AWARE:
            return min(
                feasible,
                key=lambda s: (self.cost_model.add_cost(s.apps, app), s.index),
            )
        if self.policy is PlacementPolicy.BEST_FIT:
            return min(
                feasible,
                key=lambda s: (float(s.quota_free - app.quota), s.index),
            )
        # WORST_FIT: largest headroom, lowest index on ties.
        return min(
            feasible,
            key=lambda s: (-float(s.quota_free - app.quota), s.index),
        )

    def place(self, app: Application) -> GPUSlot:
        """Choose a GPU for ``app`` and record the placement."""
        chosen = self.select(app)
        if chosen is None:
            raise PlacementError(
                f"no GPU can host {app.app_id!r} "
                f"(quota {app.quota:.0%}, {app.memory_mb}MB)"
            )
        chosen.apps.append(app)
        return chosen

    def remove(self, app_id: str) -> GPUSlot:
        """Undo a placement (application departure); returns its slot."""
        for slot in self.slots:
            for app in slot.apps:
                if app.app_id == app_id:
                    slot.apps.remove(app)
                    return slot
        raise KeyError(f"app {app_id!r} is not placed on any GPU")

    def slot_of(self, app_id: str) -> Optional[GPUSlot]:
        for slot in self.slots:
            if any(app.app_id == app_id for app in slot.apps):
                return slot
        return None

    def quota_spread(self) -> float:
        """Max minus min per-slot quota load (the imbalance measure)."""
        used = [slot.quota_used for slot in self.slots]
        return max(used) - min(used)

    def placement_cost(self) -> Optional[float]:
        """Interference cost of the current assignment (None = no model)."""
        if self.cost_model is None:
            return None
        return self.cost_model.assignment_cost(
            [slot.apps for slot in self.slots]
        )

    def propose_migration(self) -> Optional[Tuple[Application, GPUSlot, GPUSlot]]:
        """One improving move, or None when no move helps.

        Quota policies keep the deterministic load-balancing rule: take
        the most-loaded slot (lowest index on ties), and among its apps
        that *fit* on the least-loaded slot, pick the smallest-quota
        one (app_id tie-break) whose move strictly reduces the
        cluster's quota spread.  ``CONTENTION_AWARE`` replaces it with
        a cost-driven proposal: the single move that most reduces the
        assignment's interference cost (ties: app_id, then target then
        source index).  Returns ``(app, source, target)`` without
        applying the move.
        """
        if len(self.slots) < 2:
            return None
        if self.policy is PlacementPolicy.CONTENTION_AWARE:
            return self._propose_migration_cost()
        source = min(self.slots, key=lambda s: (-s.quota_used, s.index))
        target = min(self.slots, key=lambda s: (s.quota_used, s.index))
        if source.index == target.index:
            return None
        spread = source.quota_used - target.quota_used
        candidates = sorted(
            source.apps, key=lambda a: (float(a.quota), a.app_id)
        )
        for app in candidates:
            # The move must strictly shrink the spread (otherwise the
            # orchestrator would oscillate the same app back and forth).
            new_source = source.quota_used - app.quota
            new_target = target.quota_used + app.quota
            if max(new_source, new_target) - min(new_source, new_target) >= spread - 1e-9:
                continue
            if target.fits(app):
                return app, source, target
        return None

    def _propose_migration_cost(
        self,
    ) -> Optional[Tuple[Application, GPUSlot, GPUSlot]]:
        """The single move with the largest strict cost reduction."""
        model = self.cost_model
        best: Optional[Tuple[Tuple, Application, GPUSlot, GPUSlot]] = None
        for source in self.slots:
            source_cost = model.slot_cost(source.apps)
            for app in sorted(source.apps, key=lambda a: a.app_id):
                others = [a for a in source.apps if a is not app]
                source_without = model.slot_cost(others)
                for target in self.slots:
                    if target.index == source.index:
                        continue
                    if not target.fits(app):
                        continue
                    gain = (
                        source_cost
                        + model.slot_cost(target.apps)
                        - source_without
                        - model.slot_cost([*target.apps, app])
                    )
                    if gain <= COST_EPS:
                        continue
                    key = (-gain, app.app_id, target.index, source.index)
                    if best is None or key < best[0]:
                        best = (key, app, source, target)
        if best is None:
            return None
        return best[1], best[2], best[3]

    def apply_migration(
        self, app: Application, source: GPUSlot, target: GPUSlot
    ) -> None:
        source.apps.remove(app)
        target.apps.append(app)

    def place_all(self, apps: Sequence[Application]) -> Dict[int, List[Application]]:
        """Place a batch (largest quota first — classic bin packing).

        Returns ``{gpu_index: [apps...]}``.  Raises
        :class:`PlacementError` if any app cannot be placed; previously
        recorded placements are kept (callers wanting transactionality
        should use a fresh placer).  Under ``CONTENTION_AWARE`` the
        batch is solved as one cost minimization instead
        (:func:`repro.cluster.interference.solve_placement`): greedy
        construction, local-search refinement, optional exact search
        (``exact=True``, small clusters) — and nothing is recorded if
        the solver cannot place every app.
        """
        if self.policy is PlacementPolicy.CONTENTION_AWARE:
            return self._place_all_contention(apps)
        for app in sorted(apps, key=lambda a: a.quota, reverse=True):
            self.place(app)
        return {slot.index: list(slot.apps) for slot in self.slots if slot.apps}

    def _place_all_contention(
        self, apps: Sequence[Application]
    ) -> Dict[int, List[Application]]:
        occupied = sum(len(slot.apps) for slot in self.slots)
        if occupied:
            # Mixed batch-on-occupied placement falls back to the
            # marginal-cost greedy rule app by app (the online
            # controller's path); the solver owns only clean batches.
            for app in sorted(
                apps,
                key=lambda a: (-self.cost_model.estimator.solo_us(a), a.app_id),
            ):
                self.place(app)
            return {
                slot.index: list(slot.apps)
                for slot in self.slots
                if slot.apps
            }
        groups = solve_placement(
            apps,
            len(self.slots),
            self.cost_model,
            self._feasible,
            exact=self.exact,
        )
        if groups is None:
            total = sum(app.quota for app in apps)
            raise PlacementError(
                f"no feasible contention-aware assignment for "
                f"{len(apps)} apps (total quota {total:.0%}) on "
                f"{len(self.slots)} GPUs"
            )
        for slot, group in zip(self.slots, groups):
            slot.apps.extend(group)
        return {slot.index: list(slot.apps) for slot in self.slots if slot.apps}

    def utilization_summary(self) -> str:
        lines = []
        for slot in self.slots:
            names = ", ".join(a.app_id for a in slot.apps) or "(idle)"
            lines.append(
                f"GPU{slot.index}: quota {slot.quota_used:.0%}, "
                f"memory {slot.memory_used_mb}/{slot.spec.memory_mb}MB — {names}"
            )
        return "\n".join(lines)
