"""Multi-GPU serving: the central controller of §4.2.2.

``ClusterController`` replicates a sharing system's runtime per GPU,
places applications via :class:`ClusterPlacer`, splits a cluster-wide
workload by placement, serves every GPU independently (GPUs do not
interfere with one another), and merges the results with
:meth:`ServingResult.merge`.

Because the per-GPU simulations share no state, they fan out over the
same :class:`~repro.parallel.ServeCell` process pool the experiment
harness uses (``jobs=`` / ``REPRO_JOBS``); results are merged in GPU
slot-index order, so parallel output is byte-identical to serial.

When tracing is on the controller owns a :class:`ClusterTracer`: its
own decisions (``cluster.place`` …) land on the cluster clock, and each
GPU's :class:`DecisionTracer` stream is absorbed with a ``gpu`` tag so
the Perfetto export lays every GPU out on its own track.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..baselines.base import SharingSystem
from ..catalog.ingest import ingest_metrics_safe, result_metrics
from ..core.runtime import BlessRuntime
from ..gpusim.device import GPUSpec
from ..metrics.stats import ServingResult
from ..obs import ClusterTracer, resolve_tracing
from ..obs.events import CLUSTER_COST, CLUSTER_INTERFERENCE, CLUSTER_PLACE
from ..parallel import (
    ServeCell,
    cells_are_picklable,
    resolve_backend,
    resolve_jobs,
    run_cells,
)
from ..workloads.suite import WorkloadBinding
from .placement import ClusterPlacer, PlacementPolicy

SystemFactory = Callable[..., SharingSystem]


def _rebuild_bindings(
    bindings: Tuple[WorkloadBinding, ...],
) -> List[WorkloadBinding]:
    # Module-level bindings factory: ServeCell fields must pickle, and
    # partial(_rebuild_bindings, tuple_of_bindings) does while a lambda
    # closing over the list would not.
    return list(bindings)


def system_name(
    system_factory: SystemFactory, system_kwargs: Optional[dict] = None
) -> str:
    """The display name of the systems a factory builds.

    Sharing systems carry ``name`` as a class attribute, so the common
    case needs no instantiation; opaque callables (a partial, a lambda
    in tests) fall back to building one instance.
    """
    name = getattr(system_factory, "name", None)
    if isinstance(name, str):
        return name
    return system_factory(**(system_kwargs or {})).name


def serve_gpus(
    gpu_bindings: Sequence[Tuple[int, Sequence[WorkloadBinding]]],
    system_factory: SystemFactory,
    system_kwargs: Optional[dict] = None,
    jobs: Optional[int] = None,
    tracer: Optional[ClusterTracer] = None,
    offset_us: float = 0.0,
    experiment: str = "cluster",
    backend: Optional[str] = None,
) -> Dict[int, ServingResult]:
    """Serve each GPU's bindings on a private system instance.

    ``gpu_bindings`` is ``[(gpu_index, bindings), ...]``; each entry
    becomes one :class:`ServeCell` executed through the shared process
    pool — or in this process when ``backend="inproc"`` (small squads,
    where pool submit+pickle would dominate the serve itself).
    Bindings that cannot pickle (a test handed us closures) run
    serially instead of failing one round-trip per GPU.

    Tracing forces the in-process path: per-GPU tracer records never
    cross the pickle boundary (``ServingResult`` does not carry them),
    and they must be absorbed onto the cluster clock here anyway.
    """
    kwargs = dict(system_kwargs or {})
    per_gpu: Dict[int, ServingResult] = {}
    if tracer is not None:
        for gpu_index, bindings in gpu_bindings:
            system = system_factory(
                **{**kwargs, "trace": True, "gpu_index": gpu_index}
            )
            per_gpu[gpu_index] = system.serve(list(bindings))
            if system.obs.tracer is not None:
                tracer.absorb(
                    system.obs.tracer.records,
                    offset_us=offset_us,
                    gpu=gpu_index,
                )
        return per_gpu
    cells = [
        ServeCell(
            key=gpu_index,
            system=f"gpu{gpu_index}",
            system_factory=system_factory,
            bindings_factory=partial(_rebuild_bindings, tuple(bindings)),
            system_kwargs=kwargs,
        )
        for gpu_index, bindings in gpu_bindings
    ]
    pool_possible = resolve_backend(backend) != "inproc"
    if pool_possible and resolve_jobs(jobs) > 1 and not cells_are_picklable(cells):
        jobs = 1
    results = run_cells(cells, jobs=jobs, experiment=experiment, backend=backend)
    for (gpu_index, _), result in zip(gpu_bindings, results):
        per_gpu[gpu_index] = result
    return per_gpu


@dataclass
class ClusterResult:
    """Merged outcome of a cluster-wide serving run."""

    merged: ServingResult
    per_gpu: Dict[int, ServingResult]
    placements: Dict[int, List[str]]

    @property
    def mean_latency_ms(self) -> float:
        return self.merged.mean_of_app_means() / 1000.0


class ClusterController:
    """Places applications on GPUs and serves them with per-GPU runtimes."""

    def __init__(
        self,
        num_gpus: int,
        gpu_spec: Optional[GPUSpec] = None,
        policy: PlacementPolicy = PlacementPolicy.BEST_FIT,
        system_factory: SystemFactory = BlessRuntime,
        system_kwargs: Optional[dict] = None,
        trace: Optional[bool] = None,
        exact_placement: bool = False,
    ):
        self.gpu_spec = gpu_spec or GPUSpec()
        self.system_kwargs = dict(system_kwargs or {})
        self.placer = ClusterPlacer(
            num_gpus,
            self.gpu_spec,
            policy,
            slo=self.system_kwargs.get("slo"),
            exact=exact_placement,
        )
        self.system_factory = system_factory
        self.tracing = resolve_tracing(trace)
        self.tracer: Optional[ClusterTracer] = (
            ClusterTracer() if self.tracing else None
        )

    @property
    def num_gpus(self) -> int:
        return len(self.placer.slots)

    def serve(
        self,
        bindings: Sequence[WorkloadBinding],
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> ClusterResult:
        """Place every binding's app, then serve each GPU to completion.

        ``jobs`` follows the harness-wide policy (None → ``REPRO_JOBS``
        → serial); GPUs serve concurrently across the process pool with
        byte-identical output to a serial run.  ``backend`` follows
        :func:`repro.parallel.resolve_backend` (``"inproc"`` keeps
        small squads out of the pool).
        """
        if not bindings:
            raise ValueError("cannot serve an empty cluster workload")
        by_app = {binding.app.app_id: binding for binding in bindings}
        if len(by_app) != len(bindings):
            raise ValueError("duplicate app_ids in cluster workload")

        placements = self.placer.place_all([b.app for b in bindings])
        cost_model = self.placer.cost_model
        placement_cost = self.placer.placement_cost()
        if self.tracer is not None:
            self.tracer.now = 0.0
            for gpu_index in sorted(placements):
                for app in placements[gpu_index]:
                    self.tracer.emit(
                        CLUSTER_PLACE,
                        app_id=app.app_id,
                        gpu=gpu_index,
                        quota=app.quota,
                        policy=self.placer.policy.value,
                    )
                    if cost_model is not None:
                        group = placements[gpu_index]
                        co = [a for a in group if a is not app]
                        self.tracer.emit(
                            CLUSTER_INTERFERENCE,
                            app_id=app.app_id,
                            gpu=gpu_index,
                            slowdown=cost_model.estimator.slowdown(app, co),
                            slot_cost=cost_model.slot_cost(group),
                        )
            if cost_model is not None:
                self.tracer.emit(
                    CLUSTER_COST,
                    cost=placement_cost,
                    policy=self.placer.policy.value,
                    estimator_hits=cost_model.estimator.hits,
                    estimator_misses=cost_model.estimator.misses,
                )

        gpu_bindings = [
            (gpu_index, [by_app[app.app_id] for app in apps])
            for gpu_index, apps in sorted(placements.items())
        ]
        per_gpu = serve_gpus(
            gpu_bindings,
            self.system_factory,
            self.system_kwargs,
            jobs=jobs,
            tracer=self.tracer,
            backend=backend,
        )
        # Merge in GPU slot-index order — deterministic regardless of
        # pool completion order.  num_slots counts idle GPUs too: a
        # pool of three GPUs serving one app is one-third utilised,
        # not fully utilised (the historical len(per_gpu) denominator
        # bug), and merged extras keep the fault/engine counters every
        # GPU accumulated (previously dropped entirely).
        merged = ServingResult.merge(
            [per_gpu[gpu_index] for gpu_index, _ in gpu_bindings],
            system=f"cluster/{system_name(self.system_factory, self.system_kwargs)}",
            num_slots=len(self.placer.slots),
        )
        # The contention policy's objective value rides in extras (and
        # thus the catalog) as ``cluster_placement_cost``; quota
        # policies keep the historical extras schema byte for byte.
        if placement_cost is not None:
            merged.extras["cluster_placement_cost"] = float(placement_cost)
        # Record the cluster-wide merge (not just the per-GPU cells) so
        # the catalog carries the completed + shed == arrived accounting
        # at the level CI perf queries compare.
        ingest_metrics_safe(
            "cluster_merged",
            merged.system,
            {
                "experiment": "cluster_merged",
                "num_gpus": len(self.placer.slots),
                "policy": self.placer.policy.value,
                "placements": {
                    str(index): [a.app_id for a in apps]
                    for index, apps in sorted(placements.items())
                },
            },
            result_metrics(merged),
            jobs=jobs,
        )
        return ClusterResult(
            merged=merged,
            per_gpu=per_gpu,
            placements={
                index: [a.app_id for a in apps]
                for index, apps in placements.items()
            },
        )
