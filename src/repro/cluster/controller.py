"""Multi-GPU serving: the central controller of §4.2.2.

``ClusterController`` replicates a sharing system's runtime per GPU,
places applications via :class:`ClusterPlacer`, splits a cluster-wide
workload by placement, serves every GPU independently (GPUs do not
interfere with one another), and merges the results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..baselines.base import SharingSystem
from ..core.runtime import BlessRuntime
from ..gpusim.device import GPUSpec
from ..metrics.stats import ServingResult
from ..workloads.suite import WorkloadBinding
from .placement import ClusterPlacer, PlacementPolicy

SystemFactory = Callable[[], SharingSystem]


@dataclass
class ClusterResult:
    """Merged outcome of a cluster-wide serving run."""

    merged: ServingResult
    per_gpu: Dict[int, ServingResult]
    placements: Dict[int, List[str]]

    @property
    def mean_latency_ms(self) -> float:
        return self.merged.mean_of_app_means() / 1000.0


class ClusterController:
    """Places applications on GPUs and serves them with per-GPU runtimes."""

    def __init__(
        self,
        num_gpus: int,
        gpu_spec: Optional[GPUSpec] = None,
        policy: PlacementPolicy = PlacementPolicy.BEST_FIT,
        system_factory: SystemFactory = BlessRuntime,
    ):
        self.gpu_spec = gpu_spec or GPUSpec()
        self.placer = ClusterPlacer(num_gpus, self.gpu_spec, policy)
        self.system_factory = system_factory

    def serve(self, bindings: Sequence[WorkloadBinding]) -> ClusterResult:
        """Place every binding's app, then serve each GPU to completion."""
        if not bindings:
            raise ValueError("cannot serve an empty cluster workload")
        by_app = {binding.app.app_id: binding for binding in bindings}
        if len(by_app) != len(bindings):
            raise ValueError("duplicate app_ids in cluster workload")

        placements = self.placer.place_all([b.app for b in bindings])

        merged = ServingResult(system=f"cluster/{self.system_factory().name}")
        per_gpu: Dict[int, ServingResult] = {}
        makespan = 0.0
        busy = 0.0
        for gpu_index, apps in placements.items():
            gpu_bindings = [by_app[app.app_id] for app in apps]
            system = self.system_factory()
            result = system.serve(gpu_bindings)
            per_gpu[gpu_index] = result
            merged.records.extend(result.records)
            makespan = max(makespan, result.makespan_us)
            busy += result.utilization * result.makespan_us
        merged.makespan_us = makespan
        merged.utilization = (
            min(1.0, busy / (makespan * len(per_gpu))) if makespan > 0 else 0.0
        )
        return ClusterResult(
            merged=merged,
            per_gpu=per_gpu,
            placements={
                index: [a.app_id for a in apps]
                for index, apps in placements.items()
            },
        )
