"""Online cluster orchestration: arrivals, departures, shedding, migration.

The §4.2.2 controller of :mod:`.controller` serves one static workload.
Real clusters are online: applications arrive over time, run for a
while, and depart.  This module models that as an **epoch loop** — an
epoch is one pass of every active application's workload, and the
cluster clock advances by each epoch's makespan (epoch ``e`` starts at
the cumulative makespan of epochs ``0..e-1``).

Per epoch the orchestrator:

1. processes departures (``depart_epoch == e``), freeing their GPUs;
2. optionally performs one migration between epochs (GPUs are drained
   at epoch boundaries, so moving an app is free) — quota-spread
   balancing under the quota-fit policies, the largest strict
   interference-cost reduction under ``CONTENTION_AWARE``;
3. admits arrivals (``arrive_epoch == e``) through a load-shedding
   ladder: place at full quota → retry at degraded quotas (the PR-3
   graceful-degradation idea applied at cluster scope) → after a
   defragmenting migration, retry once more → shed the application,
   accounting its offered requests so ``completed + shed == arrived``
   holds cluster-wide;
4. serves every occupied GPU (optionally in parallel via the shared
   process pool) and merges the epoch's results.

Epoch results chain into one :class:`ServingResult` via
:meth:`ServingResult.merge` with per-epoch cluster-clock offsets, and
every decision lands on the :class:`ClusterTracer` (``cluster.place`` /
``cluster.shed`` / ``cluster.migrate`` / ``cluster.depart`` /
``cluster.epoch``) for the Perfetto per-GPU view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..apps.application import Application
from ..core.runtime import BlessRuntime
from ..gpusim.device import GPUSpec
from ..metrics.stats import ServingResult
from ..obs import ClusterTracer, resolve_tracing
from ..obs.events import (
    CLUSTER_COST,
    CLUSTER_DEPART,
    CLUSTER_EPOCH,
    CLUSTER_INTERFERENCE,
    CLUSTER_MIGRATE,
    CLUSTER_PLACE,
    CLUSTER_SHED,
)
from ..catalog.ingest import ingest_metrics_safe, result_metrics
from ..parallel import resolve_backend
from ..workloads.arrivals import ArrivalProcess, drain_process
from ..workloads.suite import WorkloadBinding, estimated_solo_us
from .controller import SystemFactory, serve_gpus, system_name
from .placement import ClusterPlacer, PlacementPolicy

#: Quota multipliers the admission ladder tries, in order, when an
#: application does not fit at its requested quota (cluster-scope
#: analogue of the robustness layer's degraded relaunches).
DEFAULT_DEGRADE_FACTORS: Tuple[float, ...] = (0.75, 0.5)

#: Below this many occupied GPUs in an epoch, the serve fans out
#: in-process instead of over the pool: ProcessPoolExecutor submit +
#: pickle + result round-trips cost more than the epochs themselves
#: for squads this small (results are byte-identical either way).
INPROC_GPU_THRESHOLD = 4


@dataclass(frozen=True)
class AppArrival:
    """One application's lifetime in the online schedule.

    The app is active for epochs ``[arrive_epoch, depart_epoch)``;
    ``depart_epoch=None`` means it stays until the end of the run.
    """

    binding: WorkloadBinding
    arrive_epoch: int = 0
    depart_epoch: Optional[int] = None

    @property
    def app_id(self) -> str:
        return self.binding.app.app_id


@dataclass
class ClusterStats:
    """Orchestrator-level accounting (admission, shedding, churn)."""

    epochs: int = 0
    apps_arrived: int = 0
    apps_admitted: int = 0
    apps_degraded: int = 0
    apps_shed: int = 0
    apps_departed: int = 0
    migrations: int = 0
    # Offered requests of shed applications — the load the cluster
    # turned away at admission (distinct from the per-request
    # fault_shed_* counters the runtimes report for admitted apps).
    requests_shed: int = 0
    # Ladder-shed offered requests split by SLO class, populated only
    # when an SLOSpec rides in ``system_kwargs``.  Kept disjoint from
    # the gateway's ``slo_shed_admission_*`` counters by construction:
    # a ladder-shed app never reaches a GPU, so its requests are never
    # offered to any gateway — each request is counted exactly once,
    # either here (app refused) or in the gateway books (app placed).
    requests_shed_by_class: Dict[str, int] = field(default_factory=dict)

    def as_dict(self, prefix: str = "cluster_") -> Dict[str, float]:
        out = {
            f"{prefix}epochs": float(self.epochs),
            f"{prefix}apps_arrived": float(self.apps_arrived),
            f"{prefix}apps_admitted": float(self.apps_admitted),
            f"{prefix}apps_degraded": float(self.apps_degraded),
            f"{prefix}apps_shed": float(self.apps_shed),
            f"{prefix}apps_departed": float(self.apps_departed),
            f"{prefix}migrations": float(self.migrations),
            f"{prefix}requests_shed": float(self.requests_shed),
        }
        # Per-class keys only when classes exist — non-SLO runs keep
        # the historical extras schema byte for byte.
        for cls, count in sorted(self.requests_shed_by_class.items()):
            out[f"{prefix}requests_shed_{cls}"] = float(count)
        return out


@dataclass
class OnlineClusterResult:
    """Merged outcome of an online serving run."""

    merged: ServingResult
    per_epoch: List[ServingResult]
    placements: List[Dict[int, List[str]]]
    stats: ClusterStats
    shed_apps: List[str] = field(default_factory=list)
    degraded_quotas: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_latency_ms(self) -> float:
        return self.merged.mean_of_app_means() / 1000.0


def offered_requests(binding: WorkloadBinding) -> int:
    """How many requests a binding would submit in one epoch.

    Used to account shed applications: draining a fresh arrival process
    against the app's estimated solo latency bounds the load the
    cluster refused, keeping ``completed + shed == arrived`` meaningful
    at cluster scope even for apps that never ran.
    """
    process: ArrivalProcess = binding.fresh_process()
    return len(drain_process(process, estimated_solo_us(binding.app)))


class OnlineClusterController:
    """Epoch-driven orchestrator over a :class:`ClusterPlacer`."""

    def __init__(
        self,
        num_gpus: int,
        gpu_spec: Optional[GPUSpec] = None,
        policy: PlacementPolicy = PlacementPolicy.BEST_FIT,
        system_factory: SystemFactory = BlessRuntime,
        system_kwargs: Optional[dict] = None,
        migrate: bool = False,
        degrade_factors: Sequence[float] = DEFAULT_DEGRADE_FACTORS,
        trace: Optional[bool] = None,
        exact_placement: bool = False,
    ):
        self.gpu_spec = gpu_spec or GPUSpec()
        self.system_kwargs = dict(system_kwargs or {})
        self.placer = ClusterPlacer(
            num_gpus,
            self.gpu_spec,
            policy,
            slo=self.system_kwargs.get("slo"),
            exact=exact_placement,
        )
        self.system_factory = system_factory
        self.migrate = migrate
        self.degrade_factors = tuple(degrade_factors)
        self.tracing = resolve_tracing(trace)
        self.tracer: Optional[ClusterTracer] = (
            ClusterTracer() if self.tracing else None
        )
        self.stats = ClusterStats()
        # app_id -> the binding's original process factory; placements
        # hold the (possibly quota-degraded) deployed Application.
        self._factories: Dict[str, Callable[[], ArrivalProcess]] = {}

    @property
    def num_gpus(self) -> int:
        return len(self.placer.slots)

    def _emit(self, etype: str, app_id: str = "", **args) -> None:
        if self.tracer is not None:
            self.tracer.emit(etype, app_id=app_id, **args)

    # -- admission ladder ------------------------------------------------
    def _try_place(self, app: Application) -> Optional[int]:
        slot = self.placer.select(app)
        if slot is None:
            return None
        self.placer.place(app)
        return slot.index

    def _admit(self, arrival: AppArrival) -> Optional[Application]:
        """Run the load-shedding ladder for one arriving application.

        Returns the deployed (possibly degraded) application, or None
        when the app was shed.
        """
        app = arrival.binding.app
        candidates = [app] + [
            app.with_quota(app.quota * factor) for factor in self.degrade_factors
        ]
        for attempt in range(2):
            for candidate in candidates:
                gpu = self._try_place(candidate)
                if gpu is not None:
                    degraded = candidate.quota < app.quota - 1e-12
                    if degraded:
                        self.stats.apps_degraded += 1
                    self.stats.apps_admitted += 1
                    self._emit(
                        CLUSTER_PLACE,
                        app_id=app.app_id,
                        gpu=gpu,
                        quota=candidate.quota,
                        degraded=degraded,
                        policy=self.placer.policy.value,
                    )
                    cost_model = self.placer.cost_model
                    if cost_model is not None:
                        group = self.placer.slots[gpu].apps
                        co = [a for a in group if a is not candidate]
                        self._emit(
                            CLUSTER_INTERFERENCE,
                            app_id=app.app_id,
                            gpu=gpu,
                            slowdown=cost_model.estimator.slowdown(
                                candidate, co
                            ),
                            slot_cost=cost_model.slot_cost(group),
                        )
                    return candidate
            # One defragmenting migration, then retry the ladder once.
            if attempt == 0 and self.migrate and self._migrate_once():
                continue
            break
        self.stats.apps_shed += 1
        lost = offered_requests(arrival.binding)
        self.stats.requests_shed += lost
        slo = self.system_kwargs.get("slo")
        slo_class = slo.slo_class(app.app_id) if slo is not None else None
        if slo_class is not None:
            self.stats.requests_shed_by_class[slo_class] = (
                self.stats.requests_shed_by_class.get(slo_class, 0) + lost
            )
        self._emit(
            CLUSTER_SHED,
            app_id=app.app_id,
            quota=app.quota,
            requests_lost=lost,
            **({"slo_class": slo_class} if slo_class is not None else {}),
        )
        return None

    def _migrate_once(self) -> bool:
        move = self.placer.propose_migration()
        if move is None:
            return False
        app, source, target = move
        self.placer.apply_migration(app, source, target)
        self.stats.migrations += 1
        self._emit(
            CLUSTER_MIGRATE,
            app_id=app.app_id,
            source=source.index,
            target=target.index,
            quota=app.quota,
        )
        return True

    # -- the epoch loop --------------------------------------------------
    def serve(
        self,
        schedule: Sequence[AppArrival],
        epochs: Optional[int] = None,
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> OnlineClusterResult:
        """Run the online schedule to completion.

        ``epochs`` defaults to the horizon the schedule implies (every
        app arrives and departs); ``jobs`` fans occupied GPUs over the
        shared process pool each epoch, byte-identical to serial.
        ``backend=None`` picks per epoch: squads smaller than
        ``INPROC_GPU_THRESHOLD`` occupied GPUs serve in-process (the
        pool's submit+pickle tax exceeds such epochs' work), larger
        ones go to the pool; pass ``"inproc"``/``"pool"`` to force.
        """
        schedule = list(schedule)
        ids = [arrival.app_id for arrival in schedule]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate app_ids in online schedule")
        for arrival in schedule:
            if (
                arrival.depart_epoch is not None
                and arrival.depart_epoch <= arrival.arrive_epoch
            ):
                raise ValueError(
                    f"app {arrival.app_id!r} departs at epoch "
                    f"{arrival.depart_epoch} <= arrival {arrival.arrive_epoch}"
                )
        if epochs is None:
            epochs = max(
                [a.arrive_epoch + 1 for a in schedule]
                + [a.depart_epoch for a in schedule if a.depart_epoch is not None]
                + [1]
            )

        name = f"cluster/{system_name(self.system_factory, self.system_kwargs)}"
        per_epoch: List[ServingResult] = []
        offsets: List[float] = []
        placements: List[Dict[int, List[str]]] = []
        shed_apps: List[str] = []
        degraded_quotas: Dict[str, float] = {}
        shed_ids = set()
        epoch_costs: List[float] = []
        offset = 0.0

        for epoch in range(epochs):
            self.stats.epochs += 1
            if self.tracer is not None:
                self.tracer.now = offset

            # 1. Departures free their GPU before this epoch serves.
            for arrival in schedule:
                if arrival.depart_epoch != epoch:
                    continue
                if arrival.app_id in shed_ids or arrival.arrive_epoch >= epoch:
                    continue
                slot = self.placer.remove(arrival.app_id)
                self._factories.pop(arrival.app_id, None)
                self.stats.apps_departed += 1
                self._emit(CLUSTER_DEPART, app_id=arrival.app_id, gpu=slot.index)

            # 2. Rebalance across the drained epoch boundary.
            if self.migrate:
                self._migrate_once()

            # 3. Admissions, in schedule order.
            for arrival in schedule:
                if arrival.arrive_epoch != epoch:
                    continue
                self.stats.apps_arrived += 1
                deployed = self._admit(arrival)
                if deployed is None:
                    shed_apps.append(arrival.app_id)
                    shed_ids.add(arrival.app_id)
                    continue
                self._factories[arrival.app_id] = arrival.binding.process_factory
                if deployed.quota < arrival.binding.app.quota - 1e-12:
                    degraded_quotas[arrival.app_id] = deployed.quota

            # Contention policy: record the epoch's objective value on
            # the trace and in the per-run cost trail (averaged into
            # ``cluster_placement_cost`` at the end).
            if self.placer.cost_model is not None:
                epoch_cost = self.placer.placement_cost()
                epoch_costs.append(epoch_cost)
                self._emit(
                    CLUSTER_COST,
                    epoch=epoch,
                    cost=epoch_cost,
                    policy=self.placer.policy.value,
                    estimator_hits=self.placer.cost_model.estimator.hits,
                    estimator_misses=self.placer.cost_model.estimator.misses,
                )

            # 4. Serve every occupied GPU for one workload pass.
            gpu_bindings = [
                (
                    slot.index,
                    [
                        WorkloadBinding(
                            app=app, process_factory=self._factories[app.app_id]
                        )
                        for app in slot.apps
                    ],
                )
                for slot in self.placer.slots
                if slot.apps
            ]
            placements.append(
                {
                    index: [binding.app.app_id for binding in bindings]
                    for index, bindings in gpu_bindings
                }
            )
            if not gpu_bindings:
                continue
            epoch_backend = resolve_backend(backend)
            if epoch_backend == "auto" and len(gpu_bindings) < INPROC_GPU_THRESHOLD:
                epoch_backend = "inproc"
            per_gpu = serve_gpus(
                gpu_bindings,
                self.system_factory,
                self.system_kwargs,
                jobs=jobs,
                tracer=self.tracer,
                offset_us=offset,
                backend=epoch_backend,
            )
            epoch_result = ServingResult.merge(
                [per_gpu[index] for index, _ in gpu_bindings],
                system=name,
                num_slots=self.num_gpus,
            )
            self._emit(
                CLUSTER_EPOCH,
                epoch=epoch,
                makespan_us=epoch_result.makespan_us,
                utilization=epoch_result.utilization,
                **{
                    f"util_gpu{index}": per_gpu[index].utilization
                    for index, _ in gpu_bindings
                },
            )
            per_epoch.append(epoch_result)
            offsets.append(offset)
            offset += epoch_result.makespan_us

        if per_epoch:
            merged = ServingResult.merge(
                per_epoch,
                system=name,
                num_slots=self.num_gpus,
                weights=[float(self.num_gpus)] * len(per_epoch),
                offsets=offsets,
            )
        else:
            merged = ServingResult(system=name)
        merged.extras.update(self.stats.as_dict())
        if epoch_costs:
            # Mean per-epoch interference cost — the scenario-level
            # ``placement_cost`` metric the catalog compares across
            # policies.  Absent for quota policies (historical schema).
            merged.extras["cluster_placement_cost"] = float(
                sum(epoch_costs) / len(epoch_costs)
            )
        ingest_metrics_safe(
            "cluster_online",
            merged.system,
            {
                "experiment": "cluster_online",
                "num_gpus": self.num_gpus,
                "policy": self.placer.policy.value,
                "migrate": self.migrate,
                "epochs": epochs,
                "schedule": [
                    [a.app_id, a.arrive_epoch, a.depart_epoch] for a in schedule
                ],
            },
            result_metrics(merged),
            jobs=jobs,
        )
        return OnlineClusterResult(
            merged=merged,
            per_epoch=per_epoch,
            placements=placements,
            stats=self.stats,
            shed_apps=shed_apps,
            degraded_quotas=degraded_quotas,
        )
