"""Multi-GPU extension (§4.2.2): placement controller + per-GPU runtimes."""

from .controller import ClusterController, ClusterResult
from .placement import (
    ClusterPlacer,
    GPUSlot,
    PlacementError,
    PlacementPolicy,
)

__all__ = [
    "ClusterController",
    "ClusterPlacer",
    "ClusterResult",
    "GPUSlot",
    "PlacementError",
    "PlacementPolicy",
]
