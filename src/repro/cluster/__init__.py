"""Multi-GPU extension (§4.2.2): placement, per-GPU runtimes, online orchestration."""

from .controller import (
    ClusterController,
    ClusterResult,
    serve_gpus,
    system_name,
)
from .online import (
    AppArrival,
    ClusterStats,
    OnlineClusterController,
    OnlineClusterResult,
    offered_requests,
)
from .placement import (
    ClusterPlacer,
    GPUSlot,
    PlacementError,
    PlacementPolicy,
)

__all__ = [
    "AppArrival",
    "ClusterController",
    "ClusterPlacer",
    "ClusterResult",
    "ClusterStats",
    "GPUSlot",
    "OnlineClusterController",
    "OnlineClusterResult",
    "PlacementError",
    "PlacementPolicy",
    "offered_requests",
    "serve_gpus",
    "system_name",
]
