"""Multi-GPU extension (§4.2.2): placement, per-GPU runtimes, online orchestration."""

from .controller import (
    ClusterController,
    ClusterResult,
    serve_gpus,
    system_name,
)
from .interference import (
    InterferenceEstimator,
    PlacementCostModel,
    solve_placement,
)
from .online import (
    AppArrival,
    ClusterStats,
    OnlineClusterController,
    OnlineClusterResult,
    offered_requests,
)
from .placement import (
    ClusterPlacer,
    GPUSlot,
    PlacementError,
    PlacementPolicy,
    admission_accepts,
)

__all__ = [
    "AppArrival",
    "ClusterController",
    "ClusterPlacer",
    "ClusterResult",
    "ClusterStats",
    "GPUSlot",
    "InterferenceEstimator",
    "OnlineClusterController",
    "OnlineClusterResult",
    "PlacementCostModel",
    "PlacementError",
    "PlacementPolicy",
    "admission_accepts",
    "offered_requests",
    "serve_gpus",
    "solve_placement",
    "system_name",
]
