"""Offline analysis: bubble taxonomy and what-if quota planning."""

from .bubbles import BubbleTaxonomy, analyze_run, compare_taxonomies
from .whatif import INTERFERENCE_MARGIN, QuotaPlan, WhatIfPlanner

__all__ = [
    "analyze_run",
    "BubbleTaxonomy",
    "compare_taxonomies",
    "INTERFERENCE_MARGIN",
    "QuotaPlan",
    "WhatIfPlanner",
]
