"""What-if quota planning from offline profiles alone.

Capacity-planning questions ("can these three services share a GPU at
these quotas and hold their SLOs?") shouldn't need a simulation per
candidate.  This module answers them analytically from the §4.2
profiles, the way a provider would before deployment:

* the ISO latency surface ``T_j[n%]`` per app over all quota grid
  points;
* feasible quota assignments for a pair given per-app latency budgets
  (the mint-green region of Fig. 12);
* a conservative co-location latency estimate: quota-pace service plus
  the calibrated mutual-interference margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps.application import Application
from ..core.config import BlessConfig, DEFAULT_CONFIG
from ..core.profiler import OfflineProfiler

# Fig. 9(b): mutual-pair interference margin under MPS partitions.
INTERFERENCE_MARGIN = 1.07


@dataclass(frozen=True)
class QuotaPlan:
    """One feasible quota assignment with its predicted latencies."""

    quotas: Tuple[float, ...]
    predicted_latency_us: Tuple[float, ...]

    def render(self, app_ids: Sequence[str]) -> str:
        parts = [
            f"{app_id}={quota:.0%}->{latency / 1000:.1f}ms"
            for app_id, quota, latency in zip(
                app_ids, self.quotas, self.predicted_latency_us
            )
        ]
        return ", ".join(parts)


class WhatIfPlanner:
    """Analytic quota planning over the profiled latency surfaces."""

    def __init__(self, config: BlessConfig = DEFAULT_CONFIG):
        self.config = config
        self.profiler = OfflineProfiler(config=config)

    def iso_surface(self, app: Application) -> Dict[int, float]:
        """``T[n%]`` for every partition size (1..N)."""
        profile = self.profiler.profile(app)
        return {
            partition: profile.iso_latency(partition)
            for partition in range(1, self.config.num_partitions + 1)
        }

    def predicted_latency(self, app: Application, partition: int) -> float:
        """Conservative co-located latency at a partition: quota pace
        plus the calibrated interference margin."""
        profile = self.profiler.profile(app)
        return profile.iso_latency(partition) * INTERFERENCE_MARGIN

    def feasible_plans(
        self,
        apps: Sequence[Application],
        budgets_us: Sequence[float],
    ) -> List[QuotaPlan]:
        """All quota assignments meeting every app's latency budget.

        Enumerates partition compositions (the same grid BLESS's
        determiner uses) and keeps those whose conservative predicted
        latency fits each budget.
        """
        if len(apps) != len(budgets_us):
            raise ValueError("apps and budgets must align")
        if not apps:
            return []
        n = self.config.num_partitions
        plans: List[QuotaPlan] = []

        def recurse(index: int, remaining: int, chosen: List[int]) -> None:
            if index == len(apps) - 1:
                candidates = [remaining] if remaining >= 1 else []
            else:
                candidates = range(1, remaining - (len(apps) - index - 1) + 1)
            for parts in candidates:
                latency = self.predicted_latency(apps[index], parts)
                if latency > budgets_us[index]:
                    continue
                chosen.append(parts)
                if index == len(apps) - 1:
                    plans.append(
                        QuotaPlan(
                            quotas=tuple(p / n for p in chosen),
                            predicted_latency_us=tuple(
                                self.predicted_latency(app, p)
                                for app, p in zip(apps, chosen)
                            ),
                        )
                    )
                else:
                    recurse(index + 1, remaining - parts, chosen)
                chosen.pop()

        recurse(0, n, [])
        return plans

    def cheapest_plan(
        self,
        apps: Sequence[Application],
        budgets_us: Sequence[float],
    ) -> Optional[QuotaPlan]:
        """The feasible plan leaving the most unallocated headroom for
        the first app... no — the plan minimising the *largest* quota,
        i.e. the most even feasible split (easiest to place)."""
        plans = self.feasible_plans(apps, budgets_us)
        if not plans:
            return None
        return min(plans, key=lambda plan: max(plan.quotas))

    def min_quota_for_budget(
        self, app: Application, budget_us: float
    ) -> Optional[float]:
        """Smallest quota meeting a latency budget (None if infeasible)."""
        for partition in range(1, self.config.num_partitions + 1):
            if self.predicted_latency(app, partition) <= budget_us:
                return partition / self.config.num_partitions
        return None
