"""Bubble taxonomy: where does idle GPU capacity come from? (§1, §3.2)

The paper's first contribution is a "sophisticated analysis of bubbles
when a GPU is shared by multiple applications".  This module implements
that analysis for a recorded serving run, splitting idle SM capacity
into the categories the paper's motivation distinguishes:

* **intra-request** — at least one request in flight, the GPU partially
  idle *while kernels run* (narrow kernels, dispatch gaps);
* **inter-request** — requests in flight somewhere, but the GPU wholly
  idle (squad boundaries, context switches, host stalls);
* **vacant** — no request in flight at all (not a bubble: there is
  nothing to run, so no system can use it).

``analyze_run`` produces a :class:`BubbleTaxonomy`; comparing the
taxonomy across systems shows exactly which bubbles a scheduler
squeezes (BLESS attacks the first two; GSLICE/MIG cannot touch either).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..gpusim.engine import TimelineSegment
from ..metrics.bubbles import _merge_windows


@dataclass(frozen=True)
class BubbleTaxonomy:
    """Idle-capacity breakdown over a serving run (SM-fraction x µs)."""

    horizon_us: float
    busy: float
    intra_request_bubble: float
    inter_request_bubble: float
    vacant: float

    @property
    def total_bubble(self) -> float:
        return self.intra_request_bubble + self.inter_request_bubble

    @property
    def bubble_ratio(self) -> float:
        """Bubbles as a fraction of in-flight capacity."""
        inflight_capacity = self.busy + self.total_bubble
        if inflight_capacity <= 0:
            return 0.0
        return self.total_bubble / inflight_capacity

    def render(self) -> str:
        rows = [
            ("busy", self.busy),
            ("intra-request bubble", self.intra_request_bubble),
            ("inter-request bubble", self.inter_request_bubble),
            ("vacant (no work)", self.vacant),
        ]
        total = max(1e-12, self.horizon_us)
        lines = ["bubble taxonomy (SM-fraction x ms, share of horizon):"]
        for name, value in rows:
            lines.append(f"  {name:22s} {value / 1000:9.2f}  ({value / total:6.1%})")
        lines.append(f"  bubble ratio while in flight: {self.bubble_ratio:.1%}")
        return "\n".join(lines)


def analyze_run(
    timeline: Sequence[TimelineSegment],
    inflight_windows: Sequence[Tuple[float, float]],
    horizon_us: float,
) -> BubbleTaxonomy:
    """Classify every unit of GPU capacity over ``[0, horizon_us]``."""
    if horizon_us <= 0:
        raise ValueError("horizon must be positive")
    windows = _merge_windows(inflight_windows)

    def inflight_overlap(lo: float, hi: float) -> float:
        return sum(max(0.0, min(hi, we) - max(lo, ws)) for ws, we in windows)

    busy = 0.0
    intra = 0.0
    covered = 0.0  # time covered by timeline segments
    for segment in timeline:
        lo = max(0.0, segment.start)
        hi = min(horizon_us, segment.end)
        if hi <= lo:
            continue
        duration = hi - lo
        covered += duration
        fraction = min(1.0, segment.busy_fraction)
        busy += fraction * duration
        # Idle capacity while kernels run is intra-request by definition
        # (segments only exist while something executes).
        overlap = inflight_overlap(lo, hi)
        intra += (1.0 - fraction) * overlap

    inflight_total = inflight_overlap(0.0, horizon_us)
    # Whole-GPU idle time while requests are in flight: the in-flight
    # span not covered by any executing segment.
    covered_inflight = 0.0
    for segment in timeline:
        lo = max(0.0, segment.start)
        hi = min(horizon_us, segment.end)
        if hi > lo:
            covered_inflight += inflight_overlap(lo, hi)
    inter = max(0.0, inflight_total - covered_inflight)

    vacant = max(0.0, horizon_us - inflight_total)
    return BubbleTaxonomy(
        horizon_us=horizon_us,
        busy=busy,
        intra_request_bubble=intra,
        inter_request_bubble=inter,
        vacant=vacant,
    )


def compare_taxonomies(
    taxonomies: dict,
) -> List[str]:
    """Side-by-side render of named taxonomies (one line per system)."""
    lines = [
        f"{'system':10s} {'busy':>8s} {'intra':>8s} {'inter':>8s} "
        f"{'vacant':>8s} {'bubble%':>8s}"
    ]
    for name, taxonomy in taxonomies.items():
        lines.append(
            f"{name:10s} {taxonomy.busy / 1000:8.2f} "
            f"{taxonomy.intra_request_bubble / 1000:8.2f} "
            f"{taxonomy.inter_request_bubble / 1000:8.2f} "
            f"{taxonomy.vacant / 1000:8.2f} "
            f"{taxonomy.bubble_ratio:8.1%}"
        )
    return lines
