"""Built-in scenario components: the evaluation axes as registry keys.

Every axis PRs 3–9 built — workload suites, arrival styles, fault
plans, SLO mixes, the §6.1 system matrix, cluster placement — becomes a
named component here, so a scenario YAML can combine them without a new
experiment module.  Everything registered in this module is a plain
module-level function (or class), so component references pickle and
can be re-resolved inside pool workers.

The module is imported for its side effects by ``repro.scenarios``;
importing it twice is harmless (re-registration is last-wins on
identical factories).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..apps.application import Application, AppKind
from ..apps.models import inference_app, training_app
from ..cluster.placement import PlacementPolicy
from ..experiments.common import INFERENCE_SYSTEMS, TRAINING_SYSTEMS
from ..gateway.slo import (
    BEST_EFFORT,
    LATENCY_CRITICAL,
    SLOPolicy,
    SLOSpec,
    parse_slo_mix,
)
from ..gpusim.faults import FaultPlan
from ..workloads.arrivals import AutoregressiveLoop, TraceReplay
from ..workloads.suite import (
    WorkloadBinding,
    bind_closed_loop,
    bind_continuous,
    bind_load,
    bind_trace,
    estimated_solo_us,
    multi_app_mix,
    symmetric_pair,
    training_pair,
)
from ..workloads.traces import flash_crowd_trace
from .registry import ScenarioError, register

# Partial over module-level functions so bindings pickle (same rule as
# repro.workloads.suite).
from functools import partial


# ----------------------------------------------------------------------
# apps: application-mix factories -> List[Application]
# ----------------------------------------------------------------------
def apps_from_models(
    models: Sequence[str],
    quotas: Optional[Sequence[float]] = None,
    training: bool = False,
) -> List[Application]:
    """Deploy ``models`` with ``quotas`` (default: an even split)."""
    maker = training_app if training else inference_app
    if quotas is None:
        quotas = [1.0 / len(models)] * len(models)
    if len(quotas) != len(models):
        raise ScenarioError(
            f"quotas ({len(quotas)}) must match models ({len(models)})"
        )
    apps = []
    for index, (model, quota) in enumerate(zip(models, quotas)):
        base = maker(model)
        apps.append(base.with_quota(quota, app_id=f"{base.name}#{index}"))
    return apps


def mixed_tenants(
    inference: Sequence[str],
    training: Sequence[str],
    inference_quota: float = 0.3,
) -> List[Application]:
    """Train + serve tenants on one GPU (the classic consolidation mix).

    Inference tenants split ``inference_quota`` evenly; training
    tenants share the remainder.  Training work is dense and long —
    the bubbles it leaves are what the co-located inference apps
    harvest.
    """
    if not inference or not training:
        raise ScenarioError("mixed_tenants needs both inference and training apps")
    if not 0.0 < inference_quota < 1.0:
        raise ScenarioError("inference_quota must be in (0, 1)")
    apps = []
    per_inference = inference_quota / len(inference)
    for index, model in enumerate(inference):
        base = inference_app(model)
        apps.append(
            base.with_quota(per_inference, app_id=f"{base.name}#serve{index}")
        )
    per_training = (1.0 - inference_quota) / len(training)
    for index, model in enumerate(training):
        base = training_app(model)
        apps.append(
            base.with_quota(per_training, app_id=f"{base.name}#train{index}")
        )
    return apps


register("apps", "models", apps_from_models)
register("apps", "multi_app_mix", multi_app_mix)
register("apps", "symmetric_pair", symmetric_pair)
register("apps", "training_pair", training_pair)
register("apps", "mixed_tenants", mixed_tenants)


# ----------------------------------------------------------------------
# arrivals: binders (apps, **kwargs) -> List[WorkloadBinding]
# ----------------------------------------------------------------------
def bind_autoregressive(
    apps: Sequence[Application],
    factor: float = 1.0,
    requests: int = 8,
    tail_shape: float = 1.8,
    tail_mean: float = 3.0,
    tail_cap: float = 50.0,
    seed: int = 0,
) -> List[WorkloadBinding]:
    """LLM-style closed loop with a heavy autoregressive decode tail.

    Base think time = ``factor`` x estimated solo latency, scaled per
    request by a seeded Pareto multiplier (see
    :class:`~repro.workloads.arrivals.AutoregressiveLoop`).  Clients
    start staggered across one base interval, mirroring
    ``bind_closed_loop``.
    """
    bindings = []
    for index, app in enumerate(apps):
        interval = factor * estimated_solo_us(app)
        start = interval * index / max(1, len(apps))
        bindings.append(
            WorkloadBinding(
                app=app,
                process_factory=partial(
                    AutoregressiveLoop,
                    interval_us=interval,
                    max_requests=requests,
                    start_us=start,
                    tail_shape=tail_shape,
                    tail_mean=tail_mean,
                    tail_cap=tail_cap,
                    seed=seed + index,
                ),
            )
        )
    return bindings


def bind_flash_crowd(
    apps: Sequence[Application],
    mean_interval_factor: float = 2.0,
    duration_intervals: float = 30.0,
    spike_start_frac: float = 0.4,
    spike_duration_frac: float = 0.15,
    spike_magnitude: float = 8.0,
    seed: int = 0,
) -> List[WorkloadBinding]:
    """Open-loop flash-crowd replay: calm baseline, one traffic spike."""
    bindings = []
    for index, app in enumerate(apps):
        mean_interval = mean_interval_factor * estimated_solo_us(app)
        times = flash_crowd_trace(
            duration_intervals * mean_interval,
            mean_interval,
            seed=seed + index,
            spike_start_frac=spike_start_frac,
            spike_duration_frac=spike_duration_frac,
            spike_magnitude=spike_magnitude,
        )
        bindings.append(
            WorkloadBinding(
                app=app,
                process_factory=partial(TraceReplay, times_us=tuple(times)),
            )
        )
    return bindings


def bind_mixed(
    apps: Sequence[Application],
    factor: float = 2.0 / 3.0,
    requests: int = 8,
    training_requests: Optional[int] = None,
    jitter: float = 0.25,
    seed: int = 0,
) -> List[WorkloadBinding]:
    """Mixed tenants: training runs continuously, inference closed-loop.

    Training iterations arrive back to back (a training job never
    idles); inference clients pace at ``factor`` x solo latency.  The
    per-kind request counts keep runs bounded.
    """
    training_apps = [a for a in apps if a.kind is AppKind.TRAINING]
    inference_apps = [a for a in apps if a.kind is not AppKind.TRAINING]
    bindings = bind_closed_loop(
        inference_apps, factor, requests=requests, jitter=jitter, seed=seed
    )
    bindings.extend(
        bind_continuous(
            training_apps,
            requests=training_requests if training_requests is not None else requests,
        )
    )
    # Keep the binding order aligned with the app order (training and
    # inference tenants may interleave in the mix).
    by_id = {binding.app.app_id: binding for binding in bindings}
    return [by_id[app.app_id] for app in apps]


register("arrivals", "load", bind_load)
register("arrivals", "closed_loop", bind_closed_loop)
register("arrivals", "continuous", bind_continuous)
register("arrivals", "trace", bind_trace)
register("arrivals", "autoregressive", bind_autoregressive)
register("arrivals", "flash_crowd", bind_flash_crowd)
register("arrivals", "mixed", bind_mixed)


# ----------------------------------------------------------------------
# faults: factories -> FaultPlan
# ----------------------------------------------------------------------
def fault_plan_spec(spec: str, seed: Optional[int] = None) -> FaultPlan:
    """A plan from the CLI-style spec string (``failure=0.05,...``)."""
    plan = FaultPlan.from_spec(spec)
    return plan.with_seed(seed) if seed is not None else plan


def correlated_crashes(
    at_us: float = 4_000.0,
    crashes: int = 3,
    gap_us: float = 500.0,
    kernel_failure_rate: float = 0.0,
    slowdown_rate: float = 0.0,
    seed: int = 0,
    max_retries: int = 4,
) -> FaultPlan:
    """A correlated-failure storm: ``crashes`` context teardowns in a
    tight window starting at ``at_us`` (a rack power dip, a driver
    wedge), optionally over a background transient-failure rate.

    Independent single-crash plans understate recovery cost — the
    second crash lands while the runtime is still rebuilding from the
    first; clustering them is the point of this component.
    """
    if crashes < 1:
        raise ScenarioError("correlated_crashes needs at least one crash")
    if gap_us < 0:
        raise ScenarioError("gap_us must be non-negative")
    times = tuple(at_us + index * gap_us for index in range(crashes))
    return FaultPlan(
        seed=seed,
        kernel_failure_rate=kernel_failure_rate,
        slowdown_rate=slowdown_rate,
        context_crash_times=times,
        max_retries=max_retries,
    )


register("faults", "plan", FaultPlan)
register("faults", "spec", fault_plan_spec)
register("faults", "correlated_crashes", correlated_crashes)


# ----------------------------------------------------------------------
# slo: builders (apps, **kwargs) -> SLOSpec
# ----------------------------------------------------------------------
def slo_mix(
    apps: Sequence[Application], classes: str, preempt: bool = True
) -> SLOSpec:
    """The CLI ``--slo-mix`` grammar over the scenario's app mix."""
    spec = parse_slo_mix(classes, [app.app_id for app in apps])
    if spec.preempt != preempt:
        spec = SLOSpec(policies=spec.policies, preempt=preempt)
    return spec


def slo_alternating(
    apps: Sequence[Application],
    deadline_factor: float = 3.0,
    preempt: bool = True,
) -> SLOSpec:
    """Alternate latency-critical / best-effort across the app mix."""
    policies: Dict[str, SLOPolicy] = {
        app.app_id: SLOPolicy(
            slo_class=LATENCY_CRITICAL if index % 2 == 0 else BEST_EFFORT,
            deadline_factor=deadline_factor,
        )
        for index, app in enumerate(apps)
    }
    return SLOSpec(policies=policies, preempt=preempt)


register("slo", "mix", slo_mix)
register("slo", "alternating", slo_alternating)


# ----------------------------------------------------------------------
# system + placement: the comparison matrix and the cluster policies
# ----------------------------------------------------------------------
for _name, _factory in {**TRAINING_SYSTEMS, **INFERENCE_SYSTEMS}.items():
    register("system", _name, _factory)
for _policy in PlacementPolicy:
    register("placement", _policy.value, _policy)
