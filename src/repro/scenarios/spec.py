"""Declarative scenario specs: schema, validation, (de)serialization.

A scenario is data, not code: a YAML (or JSON) document that *names*
components from the registry and the axes to sweep.  The pinned
``schema_version`` keeps committed zoo files honest — a framework
change that would reinterpret old specs must bump the version, and a
spec written for another version fails loudly instead of silently
resolving differently.

Top-level schema (version 1)::

    schema_version: 1                  # required, must equal 1
    name: llm-inference-tails          # required; catalog experiment key
    description: free text             # optional
    apps:                              # required component ref
      component: models
      kwargs: {models: [R50, BERT]}
    arrivals: {component: load, kwargs: {load: B}}   # required
    systems: [GSLICE, BLESS]           # required, registry "system" keys
    faults: {component: spec, kwargs: {spec: failure=0.05}}   # optional
    slo: {component: alternating, kwargs: {deadline_factor: 2}} # optional
    cluster: {gpus: 4, placement: best_fit, online: true}       # optional
    requests: 8                        # per-client request budget
    seed: 0                            # workload seed offset
    sweep:                             # optional: axis -> values
      arrivals.factor: [0.5, 1.0]
      cluster.gpus: [2, 4]

A component ref is either a bare string (``arrivals: continuous``) or a
mapping with only ``component`` and ``kwargs`` keys.  Sweep axis names
are dotted paths: ``<section>.<kwarg>`` for the four component sections
(``apps``/``arrivals``/``faults``/``slo``), ``cluster.<field>``, or the
bare runner scalars ``requests``/``seed``.

YAML needs the optional ``[yaml]`` extra (PyYAML); JSON always works,
so the core stays dependency-free.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from .registry import ScenarioError

#: Pinned spec schema version.  Bump on any change that reinterprets
#: existing documents; loading any other version is an error.
SCHEMA_VERSION = 1

_TOP_LEVEL_KEYS = {
    "schema_version",
    "name",
    "description",
    "apps",
    "arrivals",
    "systems",
    "faults",
    "slo",
    "cluster",
    "requests",
    "seed",
    "sweep",
}
_CLUSTER_KEYS = {"gpus", "placement", "online", "migrate"}
#: Component sections a sweep axis may target (plus cluster/runner).
COMPONENT_SECTIONS = ("apps", "arrivals", "faults", "slo")
RUNNER_AXES = ("requests", "seed")


@dataclass(frozen=True)
class ComponentRef:
    """A ``(registry name, kwargs)`` reference; kwargs stay data."""

    name: str
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def parse(cls, value: Any, section: str) -> "ComponentRef":
        if isinstance(value, str):
            return cls(name=value)
        if isinstance(value, Mapping):
            unknown = set(value) - {"component", "kwargs"}
            if unknown:
                raise ScenarioError(
                    f"{section}: unknown component-ref keys {sorted(unknown)} "
                    "(a ref is a string or {component, kwargs})"
                )
            name = value.get("component")
            if not isinstance(name, str) or not name:
                raise ScenarioError(f"{section}: component name must be a string")
            kwargs = value.get("kwargs", {})
            if not isinstance(kwargs, Mapping):
                raise ScenarioError(f"{section}: kwargs must be a mapping")
            return cls(name=name, kwargs=tuple(sorted(kwargs.items())))
        raise ScenarioError(
            f"{section}: expected a component name or mapping, got "
            f"{type(value).__name__}"
        )

    def kwargs_dict(self) -> Dict[str, Any]:
        return dict(self.kwargs)

    def with_kwarg(self, key: str, value: Any) -> "ComponentRef":
        kwargs = self.kwargs_dict()
        kwargs[key] = value
        return ComponentRef(name=self.name, kwargs=tuple(sorted(kwargs.items())))

    def to_dict(self) -> Dict[str, Any]:
        return {"component": self.name, "kwargs": self.kwargs_dict()}


@dataclass(frozen=True)
class ClusterSection:
    """Optional multi-GPU topology: run each point through the
    §4.2.2 cluster controller instead of a single-GPU serve."""

    gpus: int = 2
    placement: str = "best_fit"
    online: bool = False
    migrate: bool = False

    def __post_init__(self) -> None:
        if self.gpus < 1:
            raise ScenarioError("cluster.gpus must be >= 1")

    def replace(self, **changes) -> "ClusterSection":
        import dataclasses

        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "gpus": self.gpus,
            "placement": self.placement,
            "online": self.online,
            "migrate": self.migrate,
        }


@dataclass(frozen=True)
class ScenarioSpec:
    """One validated scenario document."""

    name: str
    apps: ComponentRef
    arrivals: ComponentRef
    systems: Tuple[str, ...]
    description: str = ""
    faults: Optional[ComponentRef] = None
    slo: Optional[ComponentRef] = None
    cluster: Optional[ClusterSection] = None
    requests: int = 8
    seed: int = 0
    # axis -> swept values, axes sorted by name (canonical order).
    sweep: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-data form; ``from_dict`` round-trips it."""
        payload: Dict[str, Any] = {
            "schema_version": self.schema_version,
            "name": self.name,
            "description": self.description,
            "apps": self.apps.to_dict(),
            "arrivals": self.arrivals.to_dict(),
            "systems": list(self.systems),
            "requests": self.requests,
            "seed": self.seed,
        }
        if self.faults is not None:
            payload["faults"] = self.faults.to_dict()
        if self.slo is not None:
            payload["slo"] = self.slo.to_dict()
        if self.cluster is not None:
            payload["cluster"] = self.cluster.to_dict()
        if self.sweep:
            payload["sweep"] = {axis: list(values) for axis, values in self.sweep}
        return payload


def from_dict(payload: Mapping[str, Any], source: str = "<dict>") -> ScenarioSpec:
    """Validate a plain-data document into a :class:`ScenarioSpec`."""
    if not isinstance(payload, Mapping):
        raise ScenarioError(f"{source}: scenario document must be a mapping")
    unknown = set(payload) - _TOP_LEVEL_KEYS
    if unknown:
        raise ScenarioError(
            f"{source}: unknown top-level keys {sorted(unknown)}; "
            f"allowed: {sorted(_TOP_LEVEL_KEYS)}"
        )
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ScenarioError(
            f"{source}: schema_version must be {SCHEMA_VERSION}, got {version!r} "
            "(this framework only reads specs it can interpret faithfully)"
        )
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise ScenarioError(f"{source}: 'name' is required and must be a string")
    for required in ("apps", "arrivals"):
        if required not in payload:
            raise ScenarioError(f"{source}: '{required}' section is required")
    systems = payload.get("systems")
    if (
        not isinstance(systems, (list, tuple))
        or not systems
        or not all(isinstance(s, str) for s in systems)
    ):
        raise ScenarioError(
            f"{source}: 'systems' must be a non-empty list of system names"
        )
    requests = payload.get("requests", 8)
    seed = payload.get("seed", 0)
    if not isinstance(requests, int) or requests < 1:
        raise ScenarioError(f"{source}: 'requests' must be a positive integer")
    if not isinstance(seed, int):
        raise ScenarioError(f"{source}: 'seed' must be an integer")

    cluster = None
    if "cluster" in payload:
        section = payload["cluster"]
        if not isinstance(section, Mapping):
            raise ScenarioError(f"{source}: 'cluster' must be a mapping")
        unknown = set(section) - _CLUSTER_KEYS
        if unknown:
            raise ScenarioError(
                f"{source}: unknown cluster keys {sorted(unknown)}; "
                f"allowed: {sorted(_CLUSTER_KEYS)}"
            )
        cluster = ClusterSection(**dict(section))

    sweep_section = payload.get("sweep", {})
    if not isinstance(sweep_section, Mapping):
        raise ScenarioError(f"{source}: 'sweep' must be a mapping of axis -> values")
    sweep = []
    for axis in sorted(sweep_section):
        values = sweep_section[axis]
        if not isinstance(values, (list, tuple)) or not values:
            raise ScenarioError(
                f"{source}: sweep axis {axis!r} must list at least one value"
            )
        _validate_axis(axis, cluster, source)
        sweep.append((axis, tuple(values)))

    return ScenarioSpec(
        name=name,
        description=str(payload.get("description", "")).strip(),
        apps=ComponentRef.parse(payload["apps"], "apps"),
        arrivals=ComponentRef.parse(payload["arrivals"], "arrivals"),
        systems=tuple(systems),
        faults=(
            ComponentRef.parse(payload["faults"], "faults")
            if "faults" in payload
            else None
        ),
        slo=ComponentRef.parse(payload["slo"], "slo") if "slo" in payload else None,
        cluster=cluster,
        requests=requests,
        seed=seed,
        sweep=tuple(sweep),
    )


def _validate_axis(
    axis: str, cluster: Optional[ClusterSection], source: str
) -> None:
    """A sweep axis must target a real, overridable spot in the spec."""
    if axis in RUNNER_AXES:
        return
    section, _, rest = axis.partition(".")
    if section == "cluster":
        if cluster is None:
            raise ScenarioError(
                f"{source}: sweep axis {axis!r} needs a 'cluster' section"
            )
        if rest not in _CLUSTER_KEYS:
            raise ScenarioError(
                f"{source}: unknown cluster sweep field {rest!r}; "
                f"allowed: {sorted(_CLUSTER_KEYS)}"
            )
        return
    if section in COMPONENT_SECTIONS and rest:
        return
    raise ScenarioError(
        f"{source}: sweep axis {axis!r} is not sweepable; use "
        f"'<section>.<kwarg>' with section in {COMPONENT_SECTIONS}, "
        f"'cluster.<field>', or one of {RUNNER_AXES}"
    )


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def dumps(spec: ScenarioSpec) -> str:
    """Canonical JSON text: sorted keys, stable across round-trips."""
    return json.dumps(spec.to_dict(), sort_keys=True, indent=2) + "\n"


def loads(text: str, fmt: str = "json", source: str = "<text>") -> ScenarioSpec:
    """Parse ``text`` (``fmt`` = ``json`` or ``yaml``) into a spec."""
    if fmt == "json":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"{source}: invalid JSON: {exc}") from exc
    elif fmt == "yaml":
        payload = _load_yaml(text, source)
    else:
        raise ScenarioError(f"unknown scenario format {fmt!r} (json or yaml)")
    return from_dict(payload, source=source)


def _load_yaml(text: str, source: str):
    try:
        import yaml
    except ImportError:
        raise ScenarioError(
            f"{source}: reading YAML scenarios needs PyYAML — install the "
            "[yaml] extra (pip install 'repro[yaml]') or use a .json spec"
        ) from None
    try:
        return yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise ScenarioError(f"{source}: invalid YAML: {exc}") from exc


def load_scenario(path: Union[str, Path]) -> ScenarioSpec:
    """Load a spec file; the extension picks the format."""
    path = Path(path)
    fmt = "yaml" if path.suffix.lower() in (".yaml", ".yml") else "json"
    return loads(path.read_text(encoding="utf-8"), fmt=fmt, source=str(path))
