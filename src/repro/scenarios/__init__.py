"""Declarative scenario framework: specs, component registry, runner.

``repro.scenarios`` turns the repo's evaluation axes into data: a YAML
or JSON document names registered components (application mixes,
arrival processes, fault plans, SLO mixes, sharing systems, placement
policies) plus the axes to sweep, and the matrix runner expands it
into the same ``ServeCell`` grids every experiment already uses —
pool-parallel, byte-identical to serial, auto-ingested into the
results catalog under the scenario name.

See ``docs/scenarios.md`` for the document schema, the component
catalog, the committed zoo, and the plugin protocol.
"""

from .registry import (
    KINDS,
    PLUGINS_ENV,
    REGISTRY,
    ComponentBuildError,
    ComponentRegistry,
    ScenarioError,
    UnknownComponentError,
    load_plugins,
    register,
)
from .spec import (
    SCHEMA_VERSION,
    ClusterSection,
    ComponentRef,
    ScenarioSpec,
    dumps,
    from_dict,
    load_scenario,
    loads,
)
from .runner import (
    BASE_POINT_KEY,
    build_apps,
    build_bindings,
    build_faults,
    build_slo,
    expand_sweep,
    find_scenario,
    list_zoo,
    load_zoo,
    point_key,
    resolve_scenario,
    run_scenario,
    scenario_cells,
    zoo_dir,
)

# Importing the built-in components registers them (idempotent).
from . import components as _components  # noqa: F401

__all__ = [
    "KINDS",
    "PLUGINS_ENV",
    "REGISTRY",
    "SCHEMA_VERSION",
    "BASE_POINT_KEY",
    "ComponentBuildError",
    "ComponentRegistry",
    "ClusterSection",
    "ComponentRef",
    "ScenarioError",
    "ScenarioSpec",
    "UnknownComponentError",
    "build_apps",
    "build_bindings",
    "build_faults",
    "build_slo",
    "dumps",
    "expand_sweep",
    "find_scenario",
    "from_dict",
    "list_zoo",
    "load_plugins",
    "load_scenario",
    "load_zoo",
    "loads",
    "point_key",
    "register",
    "resolve_scenario",
    "run_scenario",
    "scenario_cells",
    "zoo_dir",
]
