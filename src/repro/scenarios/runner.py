"""Matrix runner: expand a scenario's sweep into ServeCell grids.

Every sweep point × system becomes one :class:`~repro.parallel.ServeCell`
executed through the existing ``run_cells`` machinery — the same pool,
the same submission-order collection, the same byte-identical
parallel ≡ serial guarantee, and the same automatic catalog ingest
(each run lands under the scenario's ``name`` as its experiment label,
with the cell config hashed by the catalog).

Cells ship to pool workers, so nothing here may close over live
objects: a cell's ``bindings_factory`` is a ``functools.partial`` over
the module-level :func:`_bindings_for` carrying the (picklable)
:class:`~repro.scenarios.spec.ScenarioSpec` of its point, and the
workload is re-resolved against the component registry *inside* the
worker.  Plugin components keep working there because
:func:`~repro.scenarios.registry.load_plugins` re-imports the
``REPRO_SCENARIO_PLUGINS`` modules wherever bindings are rebuilt.
"""

from __future__ import annotations

import inspect
import itertools
from dataclasses import replace
from functools import partial
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..catalog.ingest import result_metrics
from ..metrics.stats import ServingResult
from ..parallel import ServeCell, run_cells
from ..workloads.suite import WorkloadBinding
from .registry import REGISTRY, ScenarioError, load_plugins
from .spec import ScenarioSpec, load_scenario

#: Point key used when a scenario has no sweep section.
BASE_POINT_KEY = "base"


# ----------------------------------------------------------------------
# Sweep expansion
# ----------------------------------------------------------------------
def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return format(value, "g")
    return str(value)


def point_key(overrides: Sequence[Tuple[str, Any]]) -> str:
    """Canonical point label: ``axis=value`` joined in axis order."""
    if not overrides:
        return BASE_POINT_KEY
    return ",".join(f"{axis}={_format_value(value)}" for axis, value in overrides)


def apply_point(
    spec: ScenarioSpec, overrides: Sequence[Tuple[str, Any]]
) -> ScenarioSpec:
    """One sweep point: ``spec`` with ``overrides`` applied, sweep cleared."""
    changes: Dict[str, Any] = {"sweep": ()}
    for axis, value in overrides:
        if axis in ("requests", "seed"):
            changes[axis] = value
            continue
        section, _, fld = axis.partition(".")
        if section == "cluster":
            cluster = changes.get("cluster", spec.cluster)
            if cluster is None:
                raise ScenarioError(
                    f"sweep axis {axis!r} needs a 'cluster' section"
                )
            changes["cluster"] = cluster.replace(**{fld: value})
            continue
        ref = changes.get(section, getattr(spec, section))
        if ref is None:
            raise ScenarioError(
                f"sweep axis {axis!r} targets the absent {section!r} section"
            )
        changes[section] = ref.with_kwarg(fld, value)
    return replace(spec, **changes)


def expand_sweep(spec: ScenarioSpec) -> List[Tuple[str, ScenarioSpec]]:
    """Every sweep point as ``(point key, concrete spec)``.

    Axes iterate in sorted-name order (the spec stores them sorted) and
    values in their listed order, so expansion — and therefore result
    and catalog ordering — is deterministic and independent of the
    order axes were written in the document.
    """
    if not spec.sweep:
        return [(BASE_POINT_KEY, replace(spec, sweep=()))]
    axes = [axis for axis, _ in spec.sweep]
    value_lists = [values for _, values in spec.sweep]
    points = []
    for combo in itertools.product(*value_lists):
        overrides = tuple(zip(axes, combo))
        points.append((point_key(overrides), apply_point(spec, overrides)))
    return points


# ----------------------------------------------------------------------
# Component building
# ----------------------------------------------------------------------
def _accepts_kwarg(factory, name: str) -> bool:
    try:
        params = inspect.signature(factory).parameters
    except (TypeError, ValueError):
        return False
    if any(p.kind is p.VAR_KEYWORD for p in params.values()):
        return True
    return name in params


def build_apps(spec: ScenarioSpec) -> List:
    """The point's application mix, via the ``apps`` registry."""
    return REGISTRY.build("apps", spec.apps.name, **spec.apps.kwargs_dict())


def build_bindings(spec: ScenarioSpec) -> List[WorkloadBinding]:
    """Apps + arrival process bindings for one concrete point.

    The spec's top-level ``requests`` and ``seed`` flow into the
    arrival binder when its signature accepts them and the spec didn't
    set them explicitly — so ``requests: 4`` at the top of a document
    bounds every arrival style that is request-bounded, while trace
    binders (bounded by duration instead) are left alone.
    """
    apps = build_apps(spec)
    factory = REGISTRY.resolve("arrivals", spec.arrivals.name)
    kwargs = spec.arrivals.kwargs_dict()
    for name, value in (("requests", spec.requests), ("seed", spec.seed)):
        if name not in kwargs and _accepts_kwarg(factory, name):
            kwargs[name] = value
    return REGISTRY.build("arrivals", spec.arrivals.name, apps, **kwargs)


def build_faults(spec: ScenarioSpec):
    """The point's FaultPlan, or None without a ``faults`` section."""
    if spec.faults is None:
        return None
    return REGISTRY.build("faults", spec.faults.name, **spec.faults.kwargs_dict())


def build_slo(spec: ScenarioSpec, apps: Optional[Sequence] = None):
    """The point's SLOSpec, or None without an ``slo`` section."""
    if spec.slo is None:
        return None
    if apps is None:
        apps = build_apps(spec)
    return REGISTRY.build("slo", spec.slo.name, apps, **spec.slo.kwargs_dict())


def _bindings_for(spec: ScenarioSpec) -> List[WorkloadBinding]:
    # Module-level cell bindings factory (must pickle as a partial):
    # re-imports plugins first so plugin-registered components resolve
    # inside freshly-forked pool workers too.
    load_plugins()
    return build_bindings(spec)


class ClusterCellSystem:
    """Adapter: one whole cluster serve, shaped like a sharing system.

    Lets a multi-GPU point ride the single-GPU ``ServeCell`` grid: the
    cell's "system" is the entire cluster controller, and ``serve``
    returns the merged :class:`ServingResult`.  The inner controller is
    forced to ``jobs=1``/``backend="inproc"`` — the *outer* grid already
    fans points across the pool, and a worker must never open a nested
    pool of its own.
    """

    def __init__(
        self,
        system: str,
        num_gpus: int = 2,
        placement: str = "best_fit",
        online: bool = False,
        migrate: bool = False,
        fault_plan=None,
        slo=None,
    ):
        self.system = system
        self.num_gpus = num_gpus
        self.placement = placement
        self.online = online
        self.migrate = migrate
        self.system_kwargs: Dict[str, Any] = {}
        if fault_plan is not None:
            self.system_kwargs["fault_plan"] = fault_plan
        if slo is not None:
            self.system_kwargs["slo"] = slo

    def serve(self, bindings: Sequence[WorkloadBinding]) -> ServingResult:
        from ..cluster.controller import ClusterController
        from ..cluster.online import AppArrival, OnlineClusterController

        load_plugins()
        factory = REGISTRY.resolve("system", self.system)
        policy = REGISTRY.resolve("placement", self.placement)
        if self.online:
            controller = OnlineClusterController(
                self.num_gpus,
                policy=policy,
                system_factory=factory,
                system_kwargs=self.system_kwargs,
                migrate=self.migrate,
            )
            # Online points stagger the mix in: two tenants per epoch,
            # everyone stays to the end — churn comes from arrivals.
            schedule = [
                AppArrival(binding=binding, arrive_epoch=index // 2)
                for index, binding in enumerate(bindings)
            ]
            return controller.serve(schedule, jobs=1, backend="inproc").merged
        controller = ClusterController(
            self.num_gpus,
            policy=policy,
            system_factory=factory,
            system_kwargs=self.system_kwargs,
        )
        return controller.serve(bindings, jobs=1, backend="inproc").merged


def _cell_system(spec: ScenarioSpec, system: str, fault_plan, slo):
    """(system_factory, system_kwargs) for one point × system cell."""
    REGISTRY.resolve("system", system)  # fail in the parent, not a worker
    kwargs: Dict[str, Any] = {}
    if fault_plan is not None:
        kwargs["fault_plan"] = fault_plan
    if slo is not None:
        kwargs["slo"] = slo
    if spec.cluster is None:
        return REGISTRY.resolve("system", system), kwargs
    REGISTRY.resolve("placement", spec.cluster.placement)
    kwargs.update(
        system=system,
        num_gpus=spec.cluster.gpus,
        placement=spec.cluster.placement,
        online=spec.cluster.online,
        migrate=spec.cluster.migrate,
    )
    return ClusterCellSystem, kwargs


def scenario_cells(spec: ScenarioSpec) -> List[ServeCell]:
    """The full point × system grid as ready-to-run cells."""
    load_plugins()
    cells: List[ServeCell] = []
    for key, point_spec in expand_sweep(spec):
        apps = build_apps(point_spec)
        fault_plan = build_faults(point_spec)
        slo = build_slo(point_spec, apps)
        for system in point_spec.systems:
            factory, kwargs = _cell_system(point_spec, system, fault_plan, slo)
            cells.append(
                ServeCell(
                    key=(key, system),
                    system=system,
                    system_factory=factory,
                    bindings_factory=partial(_bindings_for, point_spec),
                    system_kwargs=kwargs,
                )
            )
    return cells


def run_scenario(
    spec: ScenarioSpec,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Run every point × system cell; ``{point: {system: metrics}}``.

    Metrics are the catalog's :func:`result_metrics` view of each
    :class:`ServingResult`, so scenario output and catalog rows agree.
    Cells fan out through :func:`repro.parallel.run_cells` (``jobs`` /
    ``backend`` follow the harness-wide policy) and every run is
    ingested under ``spec.name``.
    """
    cells = scenario_cells(spec)
    results = run_cells(cells, jobs=jobs, experiment=spec.name, backend=backend)
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for cell, result in zip(cells, results):
        key, system = cell.key
        out.setdefault(key, {})[system] = result_metrics(result)
    return out


def resolve_scenario(spec: ScenarioSpec) -> Dict[str, Any]:
    """Resolve every component of every point without simulating.

    The validation pass behind ``repro scenario show`` and
    ``tools/check_scenarios.py``: builds each point's apps, bindings,
    fault plan, and SLO spec, and resolves each named system and
    placement policy, so a committed zoo file that names a missing
    component or bad kwargs fails here — not halfway into a run.
    """
    load_plugins()
    points = expand_sweep(spec)
    apps_summary: List[str] = []
    cells = 0
    for _, point_spec in points:
        apps = build_apps(point_spec)
        bindings = build_bindings(point_spec)
        if len(bindings) != len(apps):
            raise ScenarioError(
                f"arrivals component {point_spec.arrivals.name!r} returned "
                f"{len(bindings)} bindings for {len(apps)} apps"
            )
        build_faults(point_spec)
        build_slo(point_spec, apps)
        for system in point_spec.systems:
            _cell_system(point_spec, system, None, None)
            cells += 1
        if not apps_summary:
            apps_summary = [app.app_id for app in apps]
    return {
        "name": spec.name,
        "points": len(points),
        "cells": cells,
        "systems": list(spec.systems),
        "apps": apps_summary,
    }


# ----------------------------------------------------------------------
# The committed scenario zoo
# ----------------------------------------------------------------------
_ZOO_SUFFIXES = (".yaml", ".yml", ".json")


def zoo_dir() -> Path:
    """Directory holding the committed scenario documents."""
    return Path(__file__).resolve().parent / "zoo"


def list_zoo() -> List[str]:
    """Sorted scenario names (file stems) in the zoo."""
    directory = zoo_dir()
    if not directory.is_dir():
        return []
    return sorted(
        path.stem
        for path in directory.iterdir()
        if path.suffix.lower() in _ZOO_SUFFIXES
    )


def find_scenario(name: str) -> Path:
    """Resolve ``name`` to a spec file: a path as-is, else a zoo entry."""
    path = Path(name)
    if path.suffix.lower() in _ZOO_SUFFIXES and path.is_file():
        return path
    for suffix in _ZOO_SUFFIXES:
        candidate = zoo_dir() / f"{name}{suffix}"
        if candidate.is_file():
            return candidate
    known = ", ".join(list_zoo()) or "<none>"
    raise ScenarioError(
        f"unknown scenario {name!r}; pass a spec file path or one of the "
        f"zoo scenarios: {known}"
    )


def load_zoo(name: str) -> ScenarioSpec:
    """Load a zoo scenario (or any spec file path) by name."""
    return load_scenario(find_scenario(name))
