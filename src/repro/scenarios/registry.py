"""Component registry: named, resolvable scenario building blocks.

A scenario spec (:mod:`repro.scenarios.spec`) never imports python
objects — it names components by ``(kind, name)`` registry key plus
kwargs, and this registry resolves them.  The shape follows vivarium's
component manager/plugin split (PAPERS.md): the framework owns the
*kinds* (what slots a scenario has), while the components themselves
are pluggable — anything can call :func:`register` to add one without
touching the framework.

Kinds
-----
``apps``       application-mix factories → ``List[Application]``
``arrivals``   binders ``(apps, requests=..., **kw) → List[WorkloadBinding]``
``faults``     fault-plan factories → :class:`~repro.gpusim.faults.FaultPlan`
``slo``        gateway-spec builders ``(apps, **kw) → SLOSpec``
``system``     sharing-system factories (the §6.1 comparison matrix)
``placement``  cluster placement policies → :class:`PlacementPolicy`

Plugins
-------
Entry-point-style extension without packaging metadata: name modules in
the ``REPRO_SCENARIO_PLUGINS`` environment variable (comma-separated
import paths) and :func:`load_plugins` imports each one before specs
resolve; a plugin module registers its components at import time with
the :func:`register` decorator::

    from repro.scenarios import register

    @register("arrivals", "my_arrivals")
    def bind_my_arrivals(apps, requests=8, **kw): ...
"""

from __future__ import annotations

import importlib
import inspect
import os
from typing import Callable, Dict, List, Optional, Tuple

KINDS: Tuple[str, ...] = (
    "apps",
    "arrivals",
    "faults",
    "slo",
    "system",
    "placement",
)

#: Environment variable naming plugin modules to import (comma-sep).
PLUGINS_ENV = "REPRO_SCENARIO_PLUGINS"


class ScenarioError(ValueError):
    """Base class for every scenario framework error."""


class UnknownComponentError(ScenarioError):
    """A spec named a component the registry does not know."""


class ComponentBuildError(ScenarioError):
    """A component factory rejected the spec's kwargs."""


class ComponentRegistry:
    """Maps ``(kind, name)`` keys to component factories."""

    def __init__(self) -> None:
        self._components: Dict[Tuple[str, str], Callable] = {}

    # ------------------------------------------------------------------
    def register(
        self, kind: str, name: str, factory: Optional[Callable] = None
    ) -> Callable:
        """Register ``factory`` under ``(kind, name)``; decorator-friendly.

        Re-registering a key overwrites it (last wins), so plugins can
        shadow a built-in deliberately.
        """
        if kind not in KINDS:
            raise ScenarioError(
                f"unknown component kind {kind!r}; expected one of {KINDS}"
            )
        if factory is None:
            def decorator(fn: Callable) -> Callable:
                self._components[(kind, name)] = fn
                return fn

            return decorator
        self._components[(kind, name)] = factory
        return factory

    def names(self, kind: str) -> List[str]:
        """Sorted component names registered under ``kind``."""
        return sorted(n for k, n in self._components if k == kind)

    def resolve(self, kind: str, name: str) -> Callable:
        """The factory for ``(kind, name)``; raise listing alternatives."""
        factory = self._components.get((kind, name))
        if factory is None:
            known = ", ".join(self.names(kind)) or "<none>"
            raise UnknownComponentError(
                f"unknown {kind} component {name!r}; registered {kind} "
                f"components: {known}"
            )
        return factory

    def build(self, kind: str, name: str, *args, **kwargs):
        """Resolve and call a component, turning bad kwargs into a
        :class:`ComponentBuildError` that names the component and its
        accepted signature instead of a bare ``TypeError``."""
        factory = self.resolve(kind, name)
        try:
            return factory(*args, **kwargs)
        except TypeError as exc:
            try:
                signature = str(inspect.signature(factory))
            except (TypeError, ValueError):  # builtins without signatures
                signature = "(...)"
            raise ComponentBuildError(
                f"{kind} component {name!r} rejected kwargs "
                f"{sorted(kwargs)}: {exc} (signature: {name}{signature})"
            ) from exc


#: The process-global registry every spec resolves against.
REGISTRY = ComponentRegistry()


def register(kind: str, name: str, factory: Optional[Callable] = None):
    """Module-level shorthand for ``REGISTRY.register`` (plugin API)."""
    return REGISTRY.register(kind, name, factory)


def load_plugins(modules: Optional[List[str]] = None) -> List[str]:
    """Import plugin modules (argument, else ``REPRO_SCENARIO_PLUGINS``).

    Each module registers its components at import time.  Returns the
    module names imported; a module that fails to import raises — a
    half-registered scenario namespace is worse than a loud error.
    """
    if modules is None:
        env = os.environ.get(PLUGINS_ENV, "").strip()
        modules = [m.strip() for m in env.split(",") if m.strip()]
    for module in modules:
        importlib.import_module(module)
    return modules
