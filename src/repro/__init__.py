"""BLESS reproduction: adaptive bubbleless spatial-temporal GPU sharing.

A full Python reproduction of "Improving GPU Sharing Performance
through Adaptive Bubbleless Spatial-Temporal Sharing" (EuroSys '25) on
a discrete-event GPU simulator.

Quick start::

    from repro import BlessRuntime, symmetric_pair, bind_load

    apps = symmetric_pair("R50")          # two R50s, 50/50 quotas
    bindings = bind_load(apps, "B")       # medium load (Table 2)
    result = BlessRuntime().serve(bindings)
    print(result.mean_of_app_means() / 1000, "ms")
"""

from .apps import (
    Application,
    AppKind,
    MODEL_NAMES,
    Request,
    inference_app,
    training_app,
)
from .baselines import (
    GSLICESystem,
    ISOSystem,
    MIGSystem,
    REEFPlusSystem,
    SharingSystem,
    TemporalSystem,
    UnboundSystem,
    ZicoSystem,
    iso_targets_us,
    solo_latency_us,
)
from .catalog import (
    ResultsCatalog,
    config_hash,
    current_git_rev,
)
from .core import (
    BlessConfig,
    BlessRuntime,
    OfflineProfiler,
    check_admission,
)
from .gpusim import (
    FaultPlan,
    GPUDevice,
    GPUSpec,
    KernelKind,
    KernelSpec,
    SimEngine,
    resolve_fault_plan,
)
from .metrics import (
    ServingResult,
    latency_deviation_us,
    qos_violation_rate,
)
from .obs import (
    DecisionTracer,
    MetricsRegistry,
    Observability,
    TraceEvent,
)
from .workloads import (
    QUOTAS_2MODEL,
    WorkloadBinding,
    bind_biased,
    bind_load,
    bind_trace,
    multi_app_mix,
    symmetric_pair,
    training_pair,
)

__version__ = "1.0.0"

__all__ = [
    "Application",
    "AppKind",
    "bind_biased",
    "bind_load",
    "bind_trace",
    "BlessConfig",
    "BlessRuntime",
    "check_admission",
    "config_hash",
    "current_git_rev",
    "DecisionTracer",
    "FaultPlan",
    "GPUDevice",
    "GPUSpec",
    "GSLICESystem",
    "inference_app",
    "ISOSystem",
    "iso_targets_us",
    "KernelKind",
    "KernelSpec",
    "latency_deviation_us",
    "MetricsRegistry",
    "MIGSystem",
    "MODEL_NAMES",
    "multi_app_mix",
    "Observability",
    "OfflineProfiler",
    "qos_violation_rate",
    "QUOTAS_2MODEL",
    "REEFPlusSystem",
    "Request",
    "resolve_fault_plan",
    "ResultsCatalog",
    "ServingResult",
    "SharingSystem",
    "SimEngine",
    "solo_latency_us",
    "symmetric_pair",
    "TemporalSystem",
    "TraceEvent",
    "training_app",
    "training_pair",
    "UnboundSystem",
    "WorkloadBinding",
    "ZicoSystem",
]
