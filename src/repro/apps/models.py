"""Synthetic DNN model traces matching Table 1 of the paper.

The paper benchmarks inference and training of five models on an A100:

=========  ========  =====  =====  =====  =====
(Table 1)  VGG       R50    R101   NAS    BERT
=========  ========  =====  =====  =====  =====
inference  10.2 ms   8.7    17.2   32.7   12.8
 kernels   31        80     148    458    382
training   11.2 ms   25.2   40.1   157.8  186.1
 kernels   80        306    598    2824   5035
=========  ========  =====  =====  =====  =====

We cannot run TVM/PyTorch CUDA kernels, so each model is a *seeded
synthetic trace* with exactly the paper's kernel count and solo-run
duration; per-kernel durations follow a lognormal spread inside the
paper's 3 µs – 3 ms range, and SM demand / memory intensity are drawn
from per-model ranges (BERT inference uses tensor cores → short, very
wide kernels; NasNet has many small branchy kernels).  The scheduler
only ever observes (duration, SM demand, memory intensity), so these
traces exercise the same code paths as the real models.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Tuple

import numpy as np

from ..gpusim.kernel import KernelKind, KernelSpec
from .application import Application, AppKind
from .dag import OperatorDAG

MODEL_NAMES: Tuple[str, ...] = ("VGG", "R50", "R101", "NAS", "BERT")

# Duration (ms) and kernel counts straight from Table 1.
_TABLE1_INFERENCE = {
    "VGG": (10.2, 31),
    "R50": (8.7, 80),
    "R101": (17.2, 148),
    "NAS": (32.7, 458),
    "BERT": (12.8, 382),
}
_TABLE1_TRAINING = {
    "VGG": (11.2, 80),
    "R50": (25.2, 306),
    "R101": (40.1, 598),
    "NAS": (157.8, 2824),
    "BERT": (186.1, 5035),
}

# Device-memory footprint per application (weights + activations +
# workspace), in MB.  Not given by the paper; sized so that typical
# pairs fit a 40 GB A100 comfortably while 8-app mixes stress it.
_MEMORY_MB_INFERENCE = {"VGG": 1100, "R50": 800, "R101": 1400, "NAS": 1700, "BERT": 1300}
_MEMORY_MB_TRAINING = {"VGG": 2300, "R50": 2100, "R101": 3600, "NAS": 4200, "BERT": 5800}

# Per-model kernel character: (sm_demand range, mem_intensity range,
# lognormal sigma of the duration spread).
_CHARACTER = {
    "VGG": ((0.55, 1.00), (0.35, 0.75), 0.8),   # big convs, wide kernels
    "R50": ((0.40, 0.95), (0.30, 0.70), 0.9),
    "R101": ((0.40, 0.95), (0.30, 0.70), 0.9),
    "NAS": ((0.20, 0.85), (0.25, 0.60), 1.0),   # many branchy cell kernels
    "BERT": ((0.60, 1.00), (0.40, 0.80), 0.7),  # tensor-core GEMMs
}

# Solo-run GPU utilization — the fraction of a request's lifetime the
# GPU is actually computing.  Fig. 1 reports 81% for VGG11 and 86% for
# ResNet50; the rest is host-side dispatch gaps between kernels (the
# intra-request "bubbles" every sharing system fights over).  Training
# (eager PyTorch) has more host overhead than compiled inference.
_SOLO_UTILIZATION = {
    "inference": {"VGG": 0.81, "R50": 0.86, "R101": 0.85, "NAS": 0.78, "BERT": 0.84},
    "training": {"VGG": 0.76, "R50": 0.80, "R101": 0.80, "NAS": 0.74, "BERT": 0.78},
}

# Input/output transfer sizes per request (bytes): one H2D upload and
# one D2H download around the compute kernels.
_H2D_BYTES = {"VGG": 602_112, "R50": 602_112, "R101": 602_112, "NAS": 602_112, "BERT": 196_608}
_D2H_BYTES = {"VGG": 4_000, "R50": 4_000, "R101": 4_000, "NAS": 4_000, "BERT": 3_072}

_PCIE_BYTES_PER_US = 25_000.0


def _seed_for(name: str, kind: str) -> int:
    return zlib.crc32(f"{name}:{kind}".encode())


def _memcpy_spec(name: str, kind: KernelKind, num_bytes: int) -> KernelSpec:
    duration = max(2.0, num_bytes / _PCIE_BYTES_PER_US)
    return KernelSpec(
        name=name,
        kind=kind,
        base_duration_us=duration,
        sm_demand=0.01,
        mem_intensity=0.0,
    )


def _synth_compute_kernels(
    model: str, kind: str, n_kernels: int, budget_us: float, gap_budget_us: float
) -> List[KernelSpec]:
    """Generate ``n_kernels`` compute kernels.

    Kernel durations sum to ``budget_us``; host dispatch gaps sum to
    ``gap_budget_us`` (so the solo request lasts the Table-1 duration at
    the model's published GPU utilization).
    """
    (d_lo, d_hi), (m_lo, m_hi), sigma = _CHARACTER[model]
    rng = np.random.default_rng(_seed_for(model, kind))
    raw = rng.lognormal(mean=0.0, sigma=sigma, size=n_kernels)
    durations = raw / raw.sum() * budget_us
    # Respect the paper's 3us..3ms per-kernel envelope, then re-normalise.
    durations = np.clip(durations, 3.0, 3000.0)
    durations = durations / durations.sum() * budget_us
    # SM demand is correlated with duration: big kernels fill the GPU.
    rank = durations.argsort().argsort() / max(1, n_kernels - 1)
    noise = rng.uniform(0.0, 1.0, size=n_kernels)
    level = 0.6 * rank + 0.4 * noise
    demands = np.clip(d_lo + (d_hi - d_lo) * level, 0.02, 1.0)
    intensities = rng.uniform(m_lo, m_hi, size=n_kernels)
    # Dispatch gaps: mildly variable, independent of kernel size.  The
    # first kernel of a request has no predecessor to stall on.
    raw_gaps = rng.lognormal(mean=0.0, sigma=0.5, size=n_kernels)
    raw_gaps[0] = 0.0
    total_raw = raw_gaps.sum()
    gaps = raw_gaps / total_raw * gap_budget_us if total_raw > 0 else raw_gaps
    return [
        KernelSpec(
            name=f"{model}-{kind}-k{i:04d}",
            kind=KernelKind.COMPUTE,
            base_duration_us=float(durations[i]),
            sm_demand=float(demands[i]),
            mem_intensity=float(intensities[i]),
            dispatch_gap_us=float(gaps[i]),
        )
        for i in range(n_kernels)
    ]


def build_model_dag(model: str, kind: str = "inference") -> OperatorDAG:
    """An operator DAG whose linearisation is the model's kernel trace.

    CNNs are near-chains; NasNet gets branchy cells (two parallel arms
    re-joining), matching its architecture.  The DAG exists so that the
    launch order provably respects dependencies; schedulers consume the
    linearised sequence.
    """
    table = _TABLE1_INFERENCE if kind == "inference" else _TABLE1_TRAINING
    if model not in table:
        raise KeyError(f"unknown model {model!r}; choose from {MODEL_NAMES}")
    total_ms, n_kernels = table[model]
    h2d = _memcpy_spec(f"{model}-{kind}-h2d", KernelKind.H2D, _H2D_BYTES[model])
    d2h = _memcpy_spec(f"{model}-{kind}-d2h", KernelKind.D2H, _D2H_BYTES[model])
    utilization = _SOLO_UTILIZATION[kind][model]
    total_us = total_ms * 1000.0
    gap_budget = total_us * (1.0 - utilization)
    budget = (
        total_us * utilization - h2d.base_duration_us - d2h.base_duration_us
    )
    kernels = _synth_compute_kernels(model, kind, n_kernels, budget, gap_budget)

    dag = OperatorDAG()
    dag.add_op("input", [h2d])
    if model == "NAS":
        # Branchy cells: kernels grouped in cells of 8, two arms per cell.
        prev = "input"
        cell = 0
        i = 0
        while i < len(kernels):
            chunk = kernels[i : i + 8]
            left, right = chunk[: len(chunk) // 2], chunk[len(chunk) // 2 :]
            left_name, right_name = f"cell{cell}-a", f"cell{cell}-b"
            join_name = f"cell{cell}-join"
            dag.add_op(left_name, left, deps=[prev])
            dag.add_op(right_name, right, deps=[prev])
            dag.add_op(join_name, [], deps=[left_name, right_name])
            prev = join_name
            cell += 1
            i += 8
        dag.add_op("output", [d2h], deps=[prev])
    else:
        prev = "input"
        layer = 0
        i = 0
        while i < len(kernels):
            chunk = kernels[i : i + 4]
            name = f"layer{layer}"
            dag.add_op(name, chunk, deps=[prev])
            prev = name
            layer += 1
            i += 4
        dag.add_op("output", [d2h], deps=[prev])
    return dag


def _build_application(model: str, kind: str) -> Application:
    dag = build_model_dag(model, kind)
    memory = _MEMORY_MB_INFERENCE if kind == "inference" else _MEMORY_MB_TRAINING
    return Application(
        name=f"{model}-{kind[:3]}",
        kind=AppKind.INFERENCE if kind == "inference" else AppKind.TRAINING,
        kernels=dag.kernel_sequence(),
        memory_mb=memory[model],
    )


_cache: Dict[Tuple[str, str], Application] = {}


def inference_app(model: str) -> Application:
    """The inference application for ``model`` (VGG/R50/R101/NAS/BERT)."""
    key = (model, "inference")
    if key not in _cache:
        _cache[key] = _build_application(model, "inference")
    return _cache[key]


def training_app(model: str) -> Application:
    """One training iteration of ``model`` as an application."""
    key = (model, "training")
    if key not in _cache:
        _cache[key] = _build_application(model, "training")
    return _cache[key]


def all_inference_apps() -> List[Application]:
    return [inference_app(m) for m in MODEL_NAMES]


def all_training_apps() -> List[Application]:
    return [training_app(m) for m in MODEL_NAMES]


def table1_expectation(model: str, kind: str = "inference") -> Tuple[float, int]:
    """(duration_ms, compute_kernel_count) as printed in Table 1."""
    table = _TABLE1_INFERENCE if kind == "inference" else _TABLE1_TRAINING
    return table[model]


def microbenchmark_kernel(
    name: str = "micro",
    duration_us: float = 100.0,
    sm_demand: float = 0.5,
    mem_intensity: float = 0.3,
) -> KernelSpec:
    """A single tunable kernel for interference microbenchmarks (Fig. 9)."""
    return KernelSpec(
        name=name,
        kind=KernelKind.COMPUTE,
        base_duration_us=duration_us,
        sm_demand=sm_demand,
        mem_intensity=mem_intensity,
    )
