"""Operator DAGs for client applications.

Client applications "comprise DAGs of operators" (§3.1).  Each operator
lowers to one or more GPU kernels.  The host launches kernels in a
topological order of the DAG; BLESS and the baselines all consume the
resulting linear kernel sequence, so the DAG's role here is to produce
a valid, deterministic linearisation and to let tests assert dependency
correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from ..gpusim.kernel import KernelSpec


@dataclass
class Operator:
    """One DAG node: a named operator lowering to some kernels."""

    name: str
    kernels: List[KernelSpec] = field(default_factory=list)
    deps: List[str] = field(default_factory=list)


class CycleError(ValueError):
    """The operator graph contains a dependency cycle."""


class OperatorDAG:
    """A DAG of operators with deterministic topological linearisation."""

    def __init__(self) -> None:
        self._ops: Dict[str, Operator] = {}
        self._order: List[str] = []  # insertion order, used as tie-break

    def add(self, op: Operator) -> None:
        if op.name in self._ops:
            raise ValueError(f"duplicate operator {op.name!r}")
        for dep in op.deps:
            if dep not in self._ops:
                raise ValueError(f"operator {op.name!r} depends on unknown {dep!r}")
        self._ops[op.name] = op
        self._order.append(op.name)

    def add_op(
        self,
        name: str,
        kernels: Iterable[KernelSpec] = (),
        deps: Sequence[str] = (),
    ) -> Operator:
        op = Operator(name=name, kernels=list(kernels), deps=list(deps))
        self.add(op)
        return op

    def __len__(self) -> int:
        return len(self._ops)

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def operator(self, name: str) -> Operator:
        return self._ops[name]

    def topological_order(self) -> List[Operator]:
        """Kahn's algorithm with insertion-order tie-breaking.

        Deterministic: among ready operators, the one inserted first
        goes first, so repeated builds of the same model produce the
        identical kernel sequence.
        """
        indegree = {name: len(op.deps) for name, op in self._ops.items()}
        children: Dict[str, List[str]] = {name: [] for name in self._ops}
        for name, op in self._ops.items():
            for dep in op.deps:
                children[dep].append(name)
        ready = [name for name in self._order if indegree[name] == 0]
        result: List[Operator] = []
        position = {name: i for i, name in enumerate(self._order)}
        while ready:
            ready.sort(key=position.__getitem__)
            name = ready.pop(0)
            result.append(self._ops[name])
            for child in children[name]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if len(result) != len(self._ops):
            unresolved = sorted(set(self._ops) - {op.name for op in result})
            raise CycleError(f"cycle among operators: {unresolved}")
        return result

    def kernel_sequence(self) -> List[KernelSpec]:
        """All kernels in a dependency-respecting launch order."""
        kernels: List[KernelSpec] = []
        for op in self.topological_order():
            kernels.extend(op.kernels)
        return kernels
