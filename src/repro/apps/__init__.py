"""Application substrate: operator DAGs, model traces, requests."""

from .application import Application, AppKind, Request
from .dag import CycleError, Operator, OperatorDAG
from .models import (
    MODEL_NAMES,
    all_inference_apps,
    all_training_apps,
    build_model_dag,
    inference_app,
    microbenchmark_kernel,
    table1_expectation,
    training_app,
)

__all__ = [
    "Application",
    "AppKind",
    "build_model_dag",
    "CycleError",
    "inference_app",
    "microbenchmark_kernel",
    "MODEL_NAMES",
    "all_inference_apps",
    "all_training_apps",
    "Operator",
    "OperatorDAG",
    "Request",
    "table1_expectation",
    "training_app",
]
