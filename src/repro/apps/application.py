"""Registered applications and their requests.

An :class:`Application` is what a client registers with the sharing
system: a deterministic kernel trace (one request's worth of kernels),
a device-memory requirement, and a provisioned GPU quota.  A
:class:`Request` is one invocation of the application at runtime.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from ..gpusim.kernel import KernelInstance, KernelSpec


class AppKind(enum.Enum):
    INFERENCE = "inference"
    TRAINING = "training"


@dataclass
class Application:
    """A stationary GPU application with a deterministic kernel trace.

    ``kernels`` is the full per-request launch sequence including memcpy
    kernels.  ``quota`` is the provisioned GPU fraction; it may be
    (re)assigned at deployment time.
    """

    name: str
    kind: AppKind
    kernels: List[KernelSpec]
    memory_mb: int
    quota: float = 1.0
    app_id: str = ""
    # CUDA-graph granularity (§6.10): kernel indices at which graphs
    # start.  When set, schedulers treat each graph as indivisible.
    graph_boundaries: Optional[List[int]] = None

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError(f"application {self.name!r} has no kernels")
        if not 0.0 < self.quota <= 1.0:
            raise ValueError(f"quota must be in (0, 1], got {self.quota}")
        if not self.app_id:
            self.app_id = self.name

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    @property
    def num_compute_kernels(self) -> int:
        return sum(1 for k in self.kernels if k.is_compute)

    @property
    def total_compute_us(self) -> float:
        """Sum of solo-run kernel durations (compute + memcpy)."""
        return sum(k.base_duration_us for k in self.kernels)

    @property
    def total_gap_us(self) -> float:
        """Sum of host dispatch gaps (the intra-request bubbles)."""
        return sum(k.dispatch_gap_us for k in self.kernels)

    @property
    def solo_span_us(self) -> float:
        """Analytic solo-run request latency: kernel time plus gaps."""
        return self.total_compute_us + self.total_gap_us

    def with_quota(self, quota: float, app_id: Optional[str] = None) -> "Application":
        """A copy of this application deployed under a different quota."""
        return Application(
            name=self.name,
            kind=self.kind,
            kernels=self.kernels,
            memory_mb=self.memory_mb,
            quota=quota,
            app_id=app_id or self.app_id,
            graph_boundaries=self.graph_boundaries,
        )

    def mean_kernel_duration(self) -> float:
        compute = [k.base_duration_us for k in self.kernels if k.is_compute]
        return sum(compute) / len(compute) if compute else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Application({self.name!r}, {self.kind.value}, "
            f"{self.num_kernels} kernels, quota={self.quota:.2f})"
        )


_request_counter = itertools.count()


@dataclass
class Request:
    """One runtime invocation of an application."""

    app: Application
    arrival_time: float
    request_id: int = field(default_factory=lambda: next(_request_counter))
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    # Index of the next kernel (in app.kernels) not yet scheduled.
    next_kernel: int = 0
    # Index of the last kernel known to have completed, exclusive.
    completed_kernels: int = 0

    def make_kernel(self, index: int) -> KernelInstance:
        """Instantiate the ``index``-th kernel of this request."""
        spec = self.app.kernels[index]
        return KernelInstance(
            spec=spec,
            app_id=self.app.app_id,
            request_id=self.request_id,
            seq=index,
        )

    @property
    def total_kernels(self) -> int:
        return len(self.app.kernels)

    @property
    def all_scheduled(self) -> bool:
        return self.next_kernel >= self.total_kernels

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    @property
    def latency(self) -> float:
        if self.finish_time is None:
            raise RuntimeError(f"request {self.request_id} not finished")
        return self.finish_time - self.arrival_time

    def remaining_specs(self) -> List[KernelSpec]:
        return self.app.kernels[self.next_kernel:]

    def __repr__(self) -> str:  # pragma: no cover
        state = "done" if self.done else f"{self.next_kernel}/{self.total_kernels}"
        return f"Request(#{self.request_id} {self.app.name} t={self.arrival_time:.0f} {state})"
