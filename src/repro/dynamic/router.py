"""Routing dynamic requests to pre-profiled DAG variants (§6.10).

Turns a stream of LLM requests — ``(arrival_us, prompt_len,
decode_steps)`` — into the per-variant workload bindings the sharing
systems consume: every prefill lands on the bucketed prefill variant,
and each request's generation phase becomes decode-chunk invocations.
Since each variant is a distinct client application, BLESS profiles and
schedules them exactly like any stationary app, which is the paper's
proposed treatment of dynamic computation graphs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..workloads.arrivals import TraceReplay
from ..workloads.suite import WorkloadBinding
from .llm import DynamicLLMApp


@dataclass(frozen=True)
class LLMRequest:
    """One user request to the LLM service."""

    arrival_us: float
    prompt_len: int
    decode_steps: int

    def __post_init__(self) -> None:
        if self.prompt_len < 1 or self.decode_steps < 0:
            raise ValueError("invalid LLM request shape")


def synthesize_requests(
    count: int,
    mean_interval_us: float,
    seed: int = 0,
    prompt_range: Tuple[int, int] = (16, 512),
    decode_range: Tuple[int, int] = (8, 64),
) -> List[LLMRequest]:
    """A seeded stream of mixed-shape LLM requests (Poisson arrivals,
    log-uniform prompt lengths — short prompts dominate, as in real
    serving traces)."""
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_interval_us, size=count)
    arrivals = np.cumsum(gaps)
    lo, hi = prompt_range
    prompts = np.exp(rng.uniform(np.log(lo), np.log(hi), size=count)).astype(int)
    decodes = rng.integers(decode_range[0], decode_range[1] + 1, size=count)
    return [
        LLMRequest(float(arrivals[i]), int(prompts[i]), int(decodes[i]))
        for i in range(count)
    ]


def route_requests(
    app: DynamicLLMApp,
    requests: Sequence[LLMRequest],
) -> List[WorkloadBinding]:
    """Per-variant bindings for a dynamic request stream.

    The prefill of request *r* arrives at ``r.arrival_us`` on its
    bucket's variant; its generation phase arrives immediately after as
    ``ceil(decode_steps / decode_chunk)`` invocations of the decode
    variant.  (A production system would chain decode chunks on prefill
    completion; open-loop arrival of the chunks is a faithful
    approximation at the loads we evaluate and keeps the variants
    independent clients, as §6.10 prescribes.)
    """
    arrivals: Dict[str, List[float]] = defaultdict(list)
    for request in requests:
        arrivals[app.bucket_for(request.prompt_len)].append(request.arrival_us)
        chunks = -(-request.decode_steps // app.decode_chunk)  # ceil
        for chunk in range(chunks):
            # Stagger decode chunks after the prefill by its solo span.
            variant = app.variants[app.bucket_for(request.prompt_len)]
            offset = variant.solo_span_us * (1.0 + chunk)
            arrivals[app.decode_variant].append(request.arrival_us + offset)

    bindings = []
    for variant_id, times in arrivals.items():
        times.sort()
        bindings.append(
            WorkloadBinding(
                app=app.variants[variant_id],
                process_factory=lambda times=tuple(times): TraceReplay(
                    times_us=list(times)
                ),
            )
        )
    return bindings


def variant_mix(requests: Sequence[LLMRequest], app: DynamicLLMApp) -> Dict[str, int]:
    """How many invocations each variant receives (for reporting)."""
    counts: Dict[str, int] = defaultdict(int)
    for request in requests:
        counts[app.bucket_for(request.prompt_len)] += 1
        counts[app.decode_variant] += -(-request.decode_steps // app.decode_chunk)
    return dict(counts)
