"""Dynamic applications (§6.10): LLM serving via per-DAG variants."""

from .llm import DynamicLLMApp, LLMSpec
from .router import LLMRequest, route_requests, synthesize_requests, variant_mix

__all__ = [
    "DynamicLLMApp",
    "LLMRequest",
    "LLMSpec",
    "route_requests",
    "synthesize_requests",
    "variant_mix",
]
