"""Synthetic LLM inference applications (§6.10's dynamic-app extension).

The paper: "For dynamic applications, where the computation graph
changes at runtime, BLESS must treat each separate compute DAG as an
individual application and profile them during the deployment stage.
For example, in the inference of Large Language Models, which exhibit
an autoregressive computation pattern, BLESS could be enhanced by
treating each forward pass as a distinct application DAG."

This module builds that: a decoder-only transformer whose *prefill*
forward pass depends on the prompt length (bucketed into a small menu
of DAG variants, each a normal :class:`Application` BLESS can profile)
plus a *decode-step* variant for autoregressive generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..apps.application import Application, AppKind
from ..gpusim.kernel import KernelKind, KernelSpec


@dataclass(frozen=True)
class LLMSpec:
    """A small decoder-only transformer, sized for a shared GPU."""

    name: str = "llm-7b"
    num_layers: int = 16
    # Per-layer GEMM time for a 128-token prefill at full GPU, us.
    layer_gemm_us: float = 55.0
    # Per-layer attention time for a 128-token prefill, us (scales
    # quadratically with sequence length).
    layer_attention_us: float = 18.0
    # Decode步 per-layer time (single token, KV-cached), us.
    decode_layer_us: float = 9.0
    weights_mb: int = 3500
    kv_cache_mb_per_1k_tokens: int = 64


def _prefill_kernels(spec: LLMSpec, seq_len: int) -> List[KernelSpec]:
    """The prefill forward pass for one bucketed sequence length."""
    rel = seq_len / 128.0
    kernels: List[KernelSpec] = [
        KernelSpec(
            name=f"{spec.name}-p{seq_len}-h2d",
            kind=KernelKind.H2D,
            base_duration_us=max(2.0, seq_len * 0.05),
            sm_demand=0.01,
            mem_intensity=0.0,
        )
    ]
    # Wider sequences saturate the GPU; short ones do not.
    gemm_demand = min(1.0, 0.35 + 0.10 * rel)
    attn_demand = min(1.0, 0.25 + 0.12 * rel)
    for layer in range(spec.num_layers):
        kernels.append(
            KernelSpec(
                name=f"{spec.name}-p{seq_len}-l{layer}-qkv",
                base_duration_us=spec.layer_gemm_us * rel,
                sm_demand=gemm_demand,
                mem_intensity=0.45,
                dispatch_gap_us=4.0,
            )
        )
        kernels.append(
            KernelSpec(
                name=f"{spec.name}-p{seq_len}-l{layer}-attn",
                base_duration_us=spec.layer_attention_us * rel * rel,
                sm_demand=attn_demand,
                mem_intensity=0.55,
                dispatch_gap_us=3.0,
            )
        )
        kernels.append(
            KernelSpec(
                name=f"{spec.name}-p{seq_len}-l{layer}-mlp",
                base_duration_us=spec.layer_gemm_us * 1.6 * rel,
                sm_demand=gemm_demand,
                mem_intensity=0.5,
                dispatch_gap_us=4.0,
            )
        )
    kernels.append(
        KernelSpec(
            name=f"{spec.name}-p{seq_len}-d2h",
            kind=KernelKind.D2H,
            base_duration_us=2.0,
            sm_demand=0.01,
            mem_intensity=0.0,
        )
    )
    return kernels


def _decode_kernels(spec: LLMSpec, steps: int) -> List[KernelSpec]:
    """``steps`` autoregressive single-token forward passes."""
    kernels: List[KernelSpec] = []
    for step in range(steps):
        for layer in range(spec.num_layers):
            kernels.append(
                KernelSpec(
                    name=f"{spec.name}-d{steps}-s{step}-l{layer}",
                    base_duration_us=spec.decode_layer_us,
                    sm_demand=0.3,          # memory-bound, narrow
                    mem_intensity=0.7,
                    dispatch_gap_us=2.0,
                )
            )
    kernels.append(
        KernelSpec(
            name=f"{spec.name}-d{steps}-d2h",
            kind=KernelKind.D2H,
            base_duration_us=2.0,
            sm_demand=0.01,
            mem_intensity=0.0,
        )
    )
    return kernels


@dataclass
class DynamicLLMApp:
    """An LLM service exposed as a menu of pre-profiled DAG variants.

    Each variant is an ordinary :class:`Application` (so the ordinary
    profiler/scheduler machinery applies); a request is routed to the
    variant matching its bucketed prompt length or decode-chunk size.
    """

    spec: LLMSpec
    quota: float
    prefill_buckets: Tuple[int, ...] = (64, 128, 256, 512)
    decode_chunk: int = 16
    variants: Dict[str, Application] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.prefill_buckets:
            raise ValueError("need at least one prefill bucket")
        for bucket in self.prefill_buckets:
            app_id = f"{self.spec.name}/prefill-{bucket}"
            self.variants[app_id] = Application(
                name=app_id,
                kind=AppKind.INFERENCE,
                kernels=_prefill_kernels(self.spec, bucket),
                memory_mb=self.spec.weights_mb,
                quota=self.quota,
                app_id=app_id,
            )
        decode_id = f"{self.spec.name}/decode-{self.decode_chunk}"
        self.variants[decode_id] = Application(
            name=decode_id,
            kind=AppKind.INFERENCE,
            kernels=_decode_kernels(self.spec, self.decode_chunk),
            memory_mb=self.spec.weights_mb,
            quota=self.quota,
            app_id=decode_id,
        )

    def bucket_for(self, prompt_len: int) -> str:
        """The prefill variant id whose bucket covers ``prompt_len``."""
        if prompt_len < 1:
            raise ValueError("prompt length must be positive")
        for bucket in self.prefill_buckets:
            if prompt_len <= bucket:
                return f"{self.spec.name}/prefill-{bucket}"
        return f"{self.spec.name}/prefill-{self.prefill_buckets[-1]}"

    @property
    def decode_variant(self) -> str:
        return f"{self.spec.name}/decode-{self.decode_chunk}"

    def memory_mb(self) -> int:
        """Weights are shared across variants; count them once."""
        return self.spec.weights_mb
