"""Process-parallel serving harness: independent simulations, one pool.

The paper's evaluation — and the §4.2.2 multi-GPU cluster — decompose
into *independent* simulations: each (system, workload-binding) cell,
and each GPU of a cluster, runs on its own private engine with no
shared state.  This module owns the machinery that fans such cells out
over a ``ProcessPoolExecutor`` while keeping the output byte-identical
to a serial run:

* every cell is self-contained — its bindings factory rebuilds the
  workload from its own seeds inside the worker;
* results are collected in submission order, never completion order;
* a cached pool is reused across calls (a report run executes dozens
  of grids back to back, and forking per grid would dominate small
  ones).

It used to live inside ``repro.experiments.common``; it moved here so
the cluster controller (``repro.cluster``) can reuse it without the
cluster layer importing the experiments layer.  ``experiments.common``
re-exports every public name, so existing imports keep working.

``jobs`` semantics (shared by the CLI, the experiment runners, and the
cluster controller): ``None`` falls back to the ``REPRO_JOBS``
environment variable and then to 1 (serial); ``0`` or a negative count
means "use every core".

``backend`` selects *how* a multi-cell grid executes once ``jobs``
says it may parallelise: ``"pool"`` is the process pool, ``"inproc"``
runs every cell in this process (no fork, no pickle — the right call
when the grid is smaller than the pool tax), and ``"auto"`` (the
default, also via ``REPRO_BACKEND``) keeps the historical rule: pool
whenever ``jobs > 1`` and there is more than one cell.  Results are
byte-identical across all three — cells rebuild their workloads from
their own seeds wherever they run.
"""

from __future__ import annotations

import os
import pickle
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, List, Optional, Sequence, Tuple

from .baselines.base import SharingSystem
from .metrics.stats import ServingResult
from .workloads.suite import WorkloadBinding


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker-count policy shared by the CLI and the runners.

    ``None`` falls back to the ``REPRO_JOBS`` environment variable and
    then to 1 (serial — today's behaviour); ``0`` or a negative count
    means "use every core".
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"invalid REPRO_JOBS value {env!r}; expected an "
                    "integer (1 = serial, 0 or negative = all cores)"
                ) from None
        else:
            jobs = 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


BACKENDS = ("auto", "inproc", "pool")


def resolve_backend(backend: Optional[str] = None) -> str:
    """Execution-backend policy: ``None`` → ``REPRO_BACKEND`` → auto.

    ``"inproc"`` runs every cell in the calling process (no fork, no
    pickle round-trip), ``"pool"`` uses the shared process pool, and
    ``"auto"`` defers to the historical jobs/cell-count rule.
    """
    from_env = backend is None
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND", "").strip() or "auto"
    backend = backend.lower()
    if backend not in BACKENDS:
        source = "REPRO_BACKEND value" if from_env else "backend"
        raise ValueError(
            f"unknown {source} {backend!r}; expected one of {BACKENDS}"
        )
    return backend


@dataclass(frozen=True)
class ServeCell:
    """One independent (system, workload-binding) simulation.

    Cells are shipped to worker processes, so every field must pickle:
    use ``functools.partial`` over module-level functions for the
    bindings factory, never a closure or lambda.
    """

    key: Hashable
    system: str
    system_factory: Callable[[], SharingSystem]
    bindings_factory: Callable[[], Sequence[WorkloadBinding]]
    # Extra keyword arguments for the system factory (picklable).
    system_kwargs: dict = field(default_factory=dict)

    def execute(self) -> ServingResult:
        system = self.system_factory(**self.system_kwargs)
        return system.serve(self.bindings_factory())


def _execute_cell(cell: ServeCell) -> Tuple[ServingResult, float]:
    # Module-level trampoline so ProcessPoolExecutor can pickle it.
    # Workers return (result, wall seconds) so the parent can ingest
    # each cell into the results catalog with its true simulation cost
    # — the worker-side wall time, not the parent's future-wait time.
    started = time.perf_counter()
    result = cell.execute()
    return result, time.perf_counter() - started


class CellExecutionError(RuntimeError):
    """A cell failed; carries which (system, binding) it was.

    A bare worker traceback loses the grid coordinates that make a
    failure debuggable; this wrapper pins them on.
    """

    def __init__(self, cell: ServeCell, cause: BaseException):
        self.key = cell.key
        self.system = cell.system
        super().__init__(
            f"cell {cell.key!r} (system={cell.system}) failed: "
            f"{type(cause).__name__}: {cause}"
        )


# One cached worker pool, reused across run_cells calls: a report run
# executes dozens of cell grids back to back, and forking a fresh pool
# for each would dominate small grids.  Keyed by the worker count plus
# every environment variable forked workers freeze at creation —
# workers that outlive an environment change would otherwise silently
# run cells under the old engine mode, fault plan, trace target, or
# catalog path, diverging from the serial path (scenario sweeps flip
# these between back-to-back grids).
_POOL_ENV_KEYS = (
    "REPRO_ENGINE_MODE",
    "REPRO_FAULT_PLAN",
    "REPRO_FAULT_SEED",
    "REPRO_TRACE",
    "REPRO_CATALOG",
)
_pool: Optional[ProcessPoolExecutor] = None
_pool_key: Optional[tuple] = None
# Counts pool constructions (never reset); tests assert grids of
# varying size reuse one pool instead of re-forking per grid.
_pool_generation = 0


def _pool_env_signature() -> tuple:
    return tuple(os.environ.get(key, "") for key in _POOL_ENV_KEYS)


def _get_pool(workers: int) -> ProcessPoolExecutor:
    global _pool, _pool_key, _pool_generation
    key = (workers, _pool_env_signature())
    if _pool is not None and _pool_key == key:
        return _pool
    if _pool is not None:
        _pool.shutdown(wait=False)
    _pool = ProcessPoolExecutor(max_workers=workers)
    _pool_key = key
    _pool_generation += 1
    return _pool


def _reset_pool() -> None:
    """Drop a broken cached pool so the next run_cells starts fresh."""
    global _pool, _pool_key
    if _pool is not None:
        _pool.shutdown(wait=False)
    _pool = None
    _pool_key = None


def _execute_serial(cell: ServeCell) -> Tuple[ServingResult, float]:
    started = time.perf_counter()
    try:
        result = cell.execute()
    except Exception as exc:
        raise CellExecutionError(cell, exc) from exc
    return result, time.perf_counter() - started


def _caller_experiment(depth: int = 2) -> str:
    """Short module name of the frame calling into the harness.

    Used as the catalog's default experiment label so every per-figure
    runner gets a sensible name (``fig13_overall``, ``resilience``, …)
    without threading a parameter through each module.
    """
    try:
        name = sys._getframe(depth).f_globals.get("__name__", "")
    except ValueError:
        name = ""
    return name.rsplit(".", 1)[-1] or "adhoc"


def cells_are_picklable(cells: Sequence[ServeCell]) -> bool:
    """Whether ``cells`` can be shipped to pool workers at all.

    Callers that build cells from objects handed to them (the cluster
    controller receives already-constructed bindings) use this to fall
    back to the serial path up front instead of paying one failed
    round-trip per cell.
    """
    try:
        pickle.dumps(list(cells))
    except Exception:
        return False
    return True


def run_cells(
    cells: Iterable[ServeCell],
    jobs: Optional[int] = None,
    experiment: Optional[str] = None,
    backend: Optional[str] = None,
) -> List[ServingResult]:
    """Execute every cell; results align with the input order.

    With ``jobs > 1`` cells run across a process pool; per-cell futures
    are collected in submission order, and each cell reconstructs its
    own workload from scratch inside the worker, so the output is
    byte-identical to the serial path.  ``backend="inproc"`` keeps the
    whole grid in this process regardless of ``jobs`` — the fast path
    when the grid is small enough that pool submit+pickle would
    dominate — while ``"pool"``/``"auto"`` follow the jobs rule.

    A failing cell raises :class:`CellExecutionError` naming its grid
    coordinates.  Before giving up, the failed cell is re-run serially
    in this process: a worker-environment casualty (pool torn down,
    import skew, resource limits) recovers transparently, while a
    genuine simulation bug fails the same way with a local, complete
    traceback.

    Every completed grid is recorded into the sqlite results catalog
    (``REPRO_CATALOG``; default ``results/catalog.sqlite``, ``off``
    disables) under ``experiment`` — defaulting to the calling module's
    name — with per-cell worker wall times; see docs/results-catalog.md.
    """
    cells = list(cells)
    if experiment is None:
        experiment = _caller_experiment(2)
    jobs = resolve_jobs(jobs)
    backend = resolve_backend(backend)
    outcomes: List[Tuple[ServingResult, float]]
    broken = False
    if backend == "inproc" or jobs <= 1 or len(cells) <= 1:
        outcomes = [_execute_serial(cell) for cell in cells]
    else:
        # Key the pool on the resolved job count, not min(jobs, cells):
        # clamping to the grid size re-forked the whole pool whenever
        # consecutive grids had different cell counts below ``jobs``.
        # ProcessPoolExecutor spawns workers on demand (and in-flight
        # submissions are bounded by its own queue), so a small grid on
        # a wide pool touches only as many workers as it has cells.
        pool = _get_pool(jobs)
        try:
            futures = [pool.submit(_execute_cell, cell) for cell in cells]
        except RuntimeError:
            # Pool already shut down (e.g. interpreter teardown races).
            _reset_pool()
            futures = None
        if futures is None:
            outcomes = [_execute_serial(cell) for cell in cells]
        else:
            outcomes = []
            for cell, future in zip(cells, futures):
                try:
                    outcomes.append(future.result())
                except BrokenProcessPool:
                    # The pool is gone (worker killed, fork bomb, OOM).
                    # All remaining futures will fail the same way:
                    # re-run each affected cell serially instead of
                    # losing the whole grid.
                    broken = True
                    outcomes.append(_execute_serial(cell))
                except Exception:
                    # Only this cell failed in the worker — retry it
                    # here so transient worker trouble doesn't kill the
                    # run; a real bug re-raises as CellExecutionError
                    # with full context.
                    outcomes.append(_execute_serial(cell))
            if broken:
                _reset_pool()
    results = [result for result, _ in outcomes]
    from .catalog.ingest import ingest_cells_safe

    ingest_cells_safe(
        cells,
        results,
        [wall for _, wall in outcomes],
        experiment=experiment,
        jobs=jobs,
    )
    return results
