"""BLESS core: the paper's contribution (profiler, scheduler, determiner,
kernel manager, runtime)."""

from .config import DEFAULT_CONFIG, BlessConfig
from .configurator import (
    ExecutionConfig,
    ExecutionConfigDeterminer,
    composition_count,
    quota_proportional_config,
)
from .deployment import AdmissionReport, check_admission
from .kernel_manager import ConcurrentKernelManager, SquadExecution
from .predictors import (
    estimate_squad_duration,
    interference_free_estimate,
    workload_equivalence_estimate,
)
from .profiler import AppProfile, OfflineProfiler, profile_via_simulation
from .progress import RequestProgress
from .runtime import BlessRuntime
from .squad import KernelSquad, SquadEntry, generate_squad

__all__ = [
    "AdmissionReport",
    "AppProfile",
    "BlessConfig",
    "BlessRuntime",
    "check_admission",
    "composition_count",
    "ConcurrentKernelManager",
    "DEFAULT_CONFIG",
    "estimate_squad_duration",
    "ExecutionConfig",
    "ExecutionConfigDeterminer",
    "generate_squad",
    "interference_free_estimate",
    "KernelSquad",
    "OfflineProfiler",
    "profile_via_simulation",
    "quota_proportional_config",
    "RequestProgress",
    "SquadEntry",
    "SquadExecution",
    "workload_equivalence_estimate",
]
