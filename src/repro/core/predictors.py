"""Kernel squad performance estimators (§4.4.2).

Two low-cost predictors estimate a squad's duration under a candidate
execution configuration:

* the **interference-free predictor** (Eq. 1) for strictly
  spatially-isolated configurations — the squad lasts as long as the
  longest per-request stack of restricted-kernel durations::

      t̂ = max_j  sum_i t[n_j%][k_i^j]

* the **workload-equivalence predictor** (Eq. 2) for the unrestricted
  configuration — overlapping kernels are modelled wave by wave
  (breadth-first over requests) as sequential execution in which each
  kernel occupies all the SMs the wave's kernels jointly activate::

      t̂ = sum_i sum_j t[ min(100%, sum_j d_i^j%) ][k_i^j]

Memcpy durations are included in both sums whether or not they overlap
at runtime; the over-estimate is similar across configurations so it
rarely flips the argmin (§4.4.2).

The public estimators are numpy-vectorized over each request's kernel
window (and, via :meth:`AppProfile.stack_costs`, over every partition
size at once for the configuration search).  The original per-kernel
Python loops are kept as ``*_scalar`` references; the test suite proves
the two agree, and ``benchmarks/test_config_search_perf.py`` measures
the gap.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..gpusim.interference import InterferenceModel
from .profiler import AppProfile
from .squad import KernelSquad


def interference_free_estimate(
    squad: KernelSquad,
    profiles: Mapping[str, AppProfile],
    partitions: Mapping[str, int],
) -> float:
    """Eq. 1: max over requests of the stacked restricted durations."""
    longest = 0.0
    for app_id, entry in squad.entries.items():
        profile = profiles[app_id]
        partition = partitions[app_id]
        cols = np.asarray(entry.kernel_indices, dtype=int)
        if cols.size == 0:
            continue
        stack = float(
            profile.durations[partition - 1, cols].sum() + profile.gaps[cols].sum()
        )
        longest = max(longest, stack)
    return longest


def interference_free_estimate_scalar(
    squad: KernelSquad,
    profiles: Mapping[str, AppProfile],
    partitions: Mapping[str, int],
) -> float:
    """Pre-vectorization Eq. 1 reference (per-kernel Python loop)."""
    longest = 0.0
    for app_id, entry in squad.entries.items():
        profile = profiles[app_id]
        partition = partitions[app_id]
        stack = 0.0
        for index in entry.kernel_indices:
            stack += profile.step_cost(partition, index)
        longest = max(longest, stack)
    return longest


def workload_equivalence_estimate(
    squad: KernelSquad,
    profiles: Mapping[str, AppProfile],
) -> float:
    """Eq. 2: breadth-first wave model for unrestricted execution."""
    entries = list(squad.entries.values())
    if not entries:
        return 0.0
    depth = max(entry.count for entry in entries)
    if depth == 0:
        return 0.0

    # Pad each request's kernel window to the squad depth: rows of
    # per-wave demand / gap, masked where the request has no kernel.
    n_entries = len(entries)
    mask = np.zeros((n_entries, depth), dtype=bool)
    demand = np.zeros((n_entries, depth), dtype=float)
    gaps = np.zeros((n_entries, depth), dtype=float)
    index_rows = []
    for row, entry in enumerate(entries):
        cols = np.asarray(entry.kernel_indices, dtype=int)
        index_rows.append(cols)
        count = cols.size
        if count == 0:
            continue
        profile = profiles[entry.app_id]
        mask[row, :count] = True
        demand[row, :count] = profile.sm_demand[cols]
        gaps[row, :count] = profile.gaps[cols]

    # Per wave: every member runs at the wave's combined activated SMs.
    active = np.minimum(1.0, demand.sum(axis=0))
    total = 0.0
    for row, entry in enumerate(entries):
        cols = index_rows[row]
        if cols.size == 0:
            continue
        profile = profiles[entry.app_id]
        total += float(
            profile.durations_at_fractions(active[: cols.size], cols).sum()
        )
    # Dispatch gaps overlap across requests in a wave; only the longest
    # gap of the wave extends the squad's critical path.
    members = mask.sum(axis=0)
    populated = members > 0
    if populated.any():
        wave_gap = np.where(mask, gaps, -np.inf).max(axis=0)
        total += float(
            (wave_gap[populated] / np.maximum(1, members[populated])).sum()
        )
    return total


def workload_equivalence_estimate_scalar(
    squad: KernelSquad,
    profiles: Mapping[str, AppProfile],
) -> float:
    """Pre-vectorization Eq. 2 reference (per-wave Python loop)."""
    entries = list(squad.entries.values())
    if not entries:
        return 0.0
    depth = max(entry.count for entry in entries)
    total = 0.0
    for wave in range(depth):
        wave_members = []
        combined_demand = 0.0
        for entry in entries:
            if wave < entry.count:
                index = entry.kernel_indices[wave]
                profile = profiles[entry.app_id]
                wave_members.append((profile, index))
                combined_demand += float(profile.sm_demand[index])
        active = min(1.0, combined_demand)
        for profile, index in wave_members:
            total += profile.duration_at_fraction(active, index)
        if wave_members:
            total += max(float(p.gaps[i]) for p, i in wave_members) / max(
                1, len(wave_members)
            )
    return total


def concurrent_wave_estimate(
    squad: KernelSquad,
    profiles: Mapping[str, AppProfile],
    interference: InterferenceModel | None = None,
) -> float:
    """Simulator-calibrated NSP estimator (independent-flow model).

    Eq. 2 models unrestricted overlap as *serialized at full width* —
    accurate for the saturating kernels of the authors' testbed, but an
    over-estimate when kernels' combined demand fits the GPU and the
    hardware genuinely runs them in parallel.  In this reproduction's
    simulator each request's queue flows independently while the
    hardware shares SMs max-min fairly, so the squad lasts as long as
    the *slowest per-request stack*, with each kernel running at its
    congestion-scaled share plus the scattered-interference slowdown.
    This is the default NSP estimator
    (``BlessConfig.nsp_predictor = "wave"``).
    """
    model = interference or InterferenceModel()
    entries = list(squad.entries.values())
    if not entries:
        return 0.0

    # Squad-average congestion: duration-weighted mean SM demand and
    # memory intensity per request, summed over co-running requests.
    per_app = []
    for entry in entries:
        profile = profiles[entry.app_id]
        cols = np.asarray(entry.kernel_indices, dtype=int)
        if cols.size == 0:
            per_app.append((cols, profile, 0.0, 0.0))
            continue
        weights = profile.durations[-1, cols]
        weight_sum = float(weights.sum())
        if weight_sum <= 0:
            per_app.append((cols, profile, 0.0, 0.0))
        else:
            mean_d = float(weights @ profile.sm_demand[cols]) / weight_sum
            mean_m = float(weights @ profile.mem_intensity[cols]) / weight_sum
            per_app.append((cols, profile, mean_d, mean_m))

    total_demand = sum(d for _, _, d, _ in per_app)
    total_intensity = sum(m for _, _, _, m in per_app)
    congestion = max(1.0, total_demand)
    concurrent = len(per_app) > 1

    longest = 0.0
    for cols, profile, _, mean_m in per_app:
        if cols.size == 0:
            continue
        demand = profile.sm_demand[cols]
        durations = profile.durations_at_fractions(demand / congestion, cols)
        if concurrent:
            pressure = min(1.0, max(0.0, total_intensity - mean_m))
            slowdown = 1.0 + model.kappa_unrestricted * (
                pressure ** model.gamma
            ) * np.minimum(1.0, profile.mem_intensity[cols])
            durations = durations * np.minimum(model.max_slowdown, slowdown)
        stack = float(durations.sum() + profile.gaps[cols].sum())
        longest = max(longest, stack)
    return longest


def concurrent_wave_estimate_scalar(
    squad: KernelSquad,
    profiles: Mapping[str, AppProfile],
    interference: InterferenceModel | None = None,
) -> float:
    """Pre-vectorization wave-estimator reference (per-kernel loop)."""
    model = interference or InterferenceModel()
    entries = list(squad.entries.values())
    if not entries:
        return 0.0

    per_app = []
    for entry in entries:
        profile = profiles[entry.app_id]
        weights = 0.0
        demand_acc = 0.0
        intensity_acc = 0.0
        for index in entry.kernel_indices:
            w = float(profile.durations[-1, index])
            weights += w
            demand_acc += w * float(profile.sm_demand[index])
            intensity_acc += w * float(profile.mem_intensity[index])
        if weights <= 0:
            per_app.append((entry, profile, 0.0, 0.0))
        else:
            per_app.append(
                (entry, profile, demand_acc / weights, intensity_acc / weights)
            )

    total_demand = sum(d for _, _, d, _ in per_app)
    total_intensity = sum(m for _, _, _, m in per_app)
    congestion = max(1.0, total_demand)
    concurrent = len(per_app) > 1

    longest = 0.0
    for entry, profile, _, mean_m in per_app:
        stack = 0.0
        for index in entry.kernel_indices:
            demand = float(profile.sm_demand[index])
            share = demand / congestion
            duration = profile.duration_at_fraction(share, index)
            if concurrent:
                pressure = min(1.0, max(0.0, total_intensity - mean_m))
                slowdown = 1.0 + model.kappa_unrestricted * (
                    pressure ** model.gamma
                ) * min(1.0, float(profile.mem_intensity[index]))
                duration *= min(model.max_slowdown, slowdown)
            stack += duration + float(profile.gaps[index])
        longest = max(longest, stack)
    return longest


def estimate_squad_duration(
    squad: KernelSquad,
    profiles: Mapping[str, AppProfile],
    partitions: Mapping[str, int] | None,
) -> float:
    """Dispatch to the right estimator for a configuration.

    ``partitions`` maps app_id -> partition index for a strict-spatial
    configuration; ``None`` means the unrestricted (NSP) configuration.
    """
    if partitions is None:
        return workload_equivalence_estimate(squad, profiles)
    return interference_free_estimate(squad, profiles, partitions)
