"""Kernel squad performance estimators (§4.4.2).

Two low-cost predictors estimate a squad's duration under a candidate
execution configuration:

* the **interference-free predictor** (Eq. 1) for strictly
  spatially-isolated configurations — the squad lasts as long as the
  longest per-request stack of restricted-kernel durations::

      t̂ = max_j  sum_i t[n_j%][k_i^j]

* the **workload-equivalence predictor** (Eq. 2) for the unrestricted
  configuration — overlapping kernels are modelled wave by wave
  (breadth-first over requests) as sequential execution in which each
  kernel occupies all the SMs the wave's kernels jointly activate::

      t̂ = sum_i sum_j t[ min(100%, sum_j d_i^j%) ][k_i^j]

Memcpy durations are included in both sums whether or not they overlap
at runtime; the over-estimate is similar across configurations so it
rarely flips the argmin (§4.4.2).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from ..gpusim.hwsched import waterfill
from ..gpusim.interference import InterferenceModel
from .profiler import AppProfile
from .squad import KernelSquad


def interference_free_estimate(
    squad: KernelSquad,
    profiles: Mapping[str, AppProfile],
    partitions: Mapping[str, int],
) -> float:
    """Eq. 1: max over requests of the stacked restricted durations."""
    longest = 0.0
    for app_id, entry in squad.entries.items():
        profile = profiles[app_id]
        partition = partitions[app_id]
        stack = 0.0
        for index in entry.kernel_indices:
            stack += profile.step_cost(partition, index)
        longest = max(longest, stack)
    return longest


def workload_equivalence_estimate(
    squad: KernelSquad,
    profiles: Mapping[str, AppProfile],
) -> float:
    """Eq. 2: breadth-first wave model for unrestricted execution."""
    entries = list(squad.entries.values())
    if not entries:
        return 0.0
    depth = max(entry.count for entry in entries)
    total = 0.0
    for wave in range(depth):
        wave_members = []
        combined_demand = 0.0
        for entry in entries:
            if wave < entry.count:
                index = entry.kernel_indices[wave]
                profile = profiles[entry.app_id]
                wave_members.append((profile, index))
                combined_demand += float(profile.sm_demand[index])
        active = min(1.0, combined_demand)
        for profile, index in wave_members:
            total += profile.duration_at_fraction(active, index)
        # Dispatch gaps overlap across requests in a wave; only the
        # longest gap of the wave extends the squad's critical path.
        if wave_members:
            total += max(float(p.gaps[i]) for p, i in wave_members) / max(
                1, len(wave_members)
            )
    return total


def concurrent_wave_estimate(
    squad: KernelSquad,
    profiles: Mapping[str, AppProfile],
    interference: InterferenceModel | None = None,
) -> float:
    """Simulator-calibrated NSP estimator (independent-flow model).

    Eq. 2 models unrestricted overlap as *serialized at full width* —
    accurate for the saturating kernels of the authors' testbed, but an
    over-estimate when kernels' combined demand fits the GPU and the
    hardware genuinely runs them in parallel.  In this reproduction's
    simulator each request's queue flows independently while the
    hardware shares SMs max-min fairly, so the squad lasts as long as
    the *slowest per-request stack*, with each kernel running at its
    congestion-scaled share plus the scattered-interference slowdown.
    This is the default NSP estimator
    (``BlessConfig.nsp_predictor = "wave"``).
    """
    model = interference or InterferenceModel()
    entries = list(squad.entries.values())
    if not entries:
        return 0.0

    # Squad-average congestion: duration-weighted mean SM demand and
    # memory intensity per request, summed over co-running requests.
    per_app = []
    for entry in entries:
        profile = profiles[entry.app_id]
        weights = 0.0
        demand_acc = 0.0
        intensity_acc = 0.0
        for index in entry.kernel_indices:
            w = float(profile.durations[-1, index])
            weights += w
            demand_acc += w * float(profile.sm_demand[index])
            intensity_acc += w * float(profile.mem_intensity[index])
        if weights <= 0:
            per_app.append((entry, profile, 0.0, 0.0))
        else:
            per_app.append(
                (entry, profile, demand_acc / weights, intensity_acc / weights)
            )

    total_demand = sum(d for _, _, d, _ in per_app)
    total_intensity = sum(m for _, _, _, m in per_app)
    congestion = max(1.0, total_demand)
    concurrent = len(per_app) > 1

    longest = 0.0
    for entry, profile, _, mean_m in per_app:
        stack = 0.0
        for index in entry.kernel_indices:
            demand = float(profile.sm_demand[index])
            share = demand / congestion
            duration = profile.duration_at_fraction(share, index)
            if concurrent:
                pressure = min(1.0, max(0.0, total_intensity - mean_m))
                slowdown = 1.0 + model.kappa_unrestricted * (
                    pressure ** model.gamma
                ) * min(1.0, float(profile.mem_intensity[index]))
                duration *= min(model.max_slowdown, slowdown)
            stack += duration + float(profile.gaps[index])
        longest = max(longest, stack)
    return longest


def estimate_squad_duration(
    squad: KernelSquad,
    profiles: Mapping[str, AppProfile],
    partitions: Mapping[str, int] | None,
) -> float:
    """Dispatch to the right estimator for a configuration.

    ``partitions`` maps app_id -> partition index for a strict-spatial
    configuration; ``None`` means the unrestricted (NSP) configuration.
    """
    if partitions is None:
        return workload_equivalence_estimate(squad, profiles)
    return interference_free_estimate(squad, profiles, partitions)
