"""Deployment admission checks (§4.2.2).

Before accepting a set of applications onto one GPU, BLESS checks:

* **memory** — the apps' footprints plus the MPS contexts BLESS will
  create must fit device memory (placement must not cause OOM);
* **kernel-duration compatibility** — applications with very short
  kernels must not be co-located with applications whose kernels are
  extremely long, or the former would starve inside every squad.  BLESS
  targets apps whose average kernel duration is in the ~10–300 µs band.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..apps.application import Application
from ..gpusim.device import GPUSpec
from .config import BlessConfig, DEFAULT_CONFIG

# Paper: "BLESS works well to co-locate most deep learning applications,
# with the average kernel duration varying from 10us to 300us."
MEAN_KERNEL_BAND_US = (10.0, 300.0)
# Starvation rule of thumb: reject when one app's longest kernels dwarf
# another app's average kernels by more than this factor.
MAX_DURATION_DISPARITY = 100.0


@dataclass
class AdmissionReport:
    """Outcome of an admission check."""

    accepted: bool
    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)


def _mean_compute_duration(app: Application) -> float:
    durations = [k.base_duration_us for k in app.kernels if k.is_compute]
    return sum(durations) / len(durations) if durations else 0.0


def _max_compute_duration(app: Application) -> float:
    durations = [k.base_duration_us for k in app.kernels if k.is_compute]
    return max(durations) if durations else 0.0


def check_admission(
    apps: Sequence[Application],
    gpu_spec: Optional[GPUSpec] = None,
    config: BlessConfig = DEFAULT_CONFIG,
    contexts_per_app: int = 2,
) -> AdmissionReport:
    """Decide whether ``apps`` can be co-deployed under BLESS."""
    spec = gpu_spec or GPUSpec()
    report = AdmissionReport(accepted=True)

    if not apps:
        report.accepted = False
        report.errors.append("no applications to deploy")
        return report

    # Memory: app footprints + the restricted MPS contexts BLESS keeps.
    total_mb = sum(app.memory_mb for app in apps)
    total_mb += len(apps) * contexts_per_app * spec.mps_context_mb
    if total_mb > spec.memory_mb:
        report.accepted = False
        report.errors.append(
            f"memory over-subscribed: need {total_mb}MB, "
            f"device has {spec.memory_mb}MB"
        )

    # Quotas must not oversubscribe the GPU.
    total_quota = sum(app.quota for app in apps)
    if total_quota > 1.0 + 1e-9:
        report.accepted = False
        report.errors.append(
            f"quotas sum to {total_quota:.2f} > 1.0"
        )

    # Kernel-duration compatibility.
    for app in apps:
        mean = _mean_compute_duration(app)
        if not MEAN_KERNEL_BAND_US[0] <= mean <= MEAN_KERNEL_BAND_US[1]:
            report.warnings.append(
                f"{app.app_id}: mean kernel duration {mean:.1f}us outside "
                f"the {MEAN_KERNEL_BAND_US} band BLESS targets"
            )
    for short in apps:
        for long in apps:
            if short is long:
                continue
            mean_short = _mean_compute_duration(short)
            max_long = _max_compute_duration(long)
            if mean_short > 0 and max_long / mean_short > MAX_DURATION_DISPARITY:
                report.accepted = False
                report.errors.append(
                    f"{short.app_id} (mean kernel {mean_short:.0f}us) would "
                    f"starve next to {long.app_id} (max kernel {max_long:.0f}us)"
                )
    return report
