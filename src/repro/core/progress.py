"""Request progress perception (§4.3.1).

The multi-task scheduler paces every active request against its
isolated-latency plan: a request provisioned ``n%`` of the GPU should,
``t`` microseconds after arrival, have completed the kernels that the
profiled solo run at ``n%`` would have completed by ``t``.

We express a request's state in two related forms:

* its *lag* behind the plan, ``(elapsed - tau[n%][k]) / T_ref`` —
  positive when the request has received less service than promised;
* its *deadline risk*, derived from the laxity against
  ``arrival + T_ref`` assuming a blend of quota-pace and whole-GPU
  service for the remainder.

``T_ref`` is the ISO latency ``T[n%]`` — or the QoS target when SLO
mode is active (§6.5: "replacing the isolated latency T[n%] with the
required QoS target").  The squad generator orders requests by
:meth:`RequestProgress.urgency` (deadline risk plus a bounded
finish-early bonus); this realises the same compensation the paper's
relative progress ``P̃ = P_r / P_e`` ordering provides — endangered
requests are fed first — while letting genuinely-slack capacity finish
the most-progressed request early (bubble squeezing) and letting SLO
targets slot in directly.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Optional

from ..apps.application import Request
from .profiler import AppProfile


@dataclass
class RequestProgress:
    """Scheduler-side view of one active request."""

    request: Request
    profile: AppProfile
    partition: int           # quota mapped to the nearest partition index
    t_ref_us: float          # T[n%] or the SLO target
    # Gateway SLO annotations (None outside gateway-driven serving).
    # ``slo_class`` is "latency_critical" or "best_effort" (the string
    # constants of ``repro.gateway.slo``, kept as plain strings here so
    # the core layer does not import the gateway); ``slo_deadline_us``
    # is the absolute deadline timestamp the gateway admitted against.
    slo_class: Optional[str] = None
    slo_deadline_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.t_ref_us <= 0:
            raise ValueError("reference latency must be positive")

    @property
    def scheduled(self) -> int:
        """Index of the next kernel to schedule."""
        return self.request.next_kernel

    @property
    def exhausted(self) -> bool:
        return self.request.all_scheduled

    def tau_scheduled(self) -> float:
        """Plan time consumed by the kernels scheduled so far."""
        if self.scheduled == 0:
            return 0.0
        return self.profile.tau(self.partition, self.scheduled - 1)

    def lag(self, now: float) -> float:
        """How far behind the ISO/SLO plan this request is (normalised).

        Positive: the request is owed service.  Negative: it is running
        ahead of its promise.
        """
        elapsed = max(0.0, now - self.request.arrival_time)
        return (elapsed - self.tau_scheduled()) / self.t_ref_us

    def remaining_full_gpu_us(self) -> float:
        """Remaining execution time if granted the whole GPU."""
        full = self.profile.num_partitions
        total = self.profile.iso_latency(full)
        done = (
            self.profile.tau(full, self.scheduled - 1) if self.scheduled else 0.0
        )
        return max(0.0, total - done)

    # Weight of the best-case (whole-GPU) service assumption when
    # projecting a request's remaining time.  1.0 assumes co-runners
    # always vacate in time (too optimistic under sustained contention);
    # 0.0 assumes only quota-pace service ever (too pessimistic, kills
    # bubble squeezing).  0.75 gives the best overall fidelity across
    # Fig. 12 adherence, Fig. 13 reductions and the saturation check.
    OPTIMISM = 0.75

    def remaining_quota_pace_us(self) -> float:
        """Remaining time at the provisioned quota's pace, scaled to the
        reference target (so SLO targets stretch the plan uniformly)."""
        done_fraction = 0.0
        if self.scheduled:
            done_fraction = self.profile.tau(
                self.partition, self.scheduled - 1
            ) / self.profile.iso_latency(self.partition)
        return self.t_ref_us * max(0.0, 1.0 - done_fraction)

    def slack_us(self, now: float) -> float:
        """Laxity against the ISO/SLO deadline.

        The remaining time blends the best case (whole GPU once
        co-runners vacate) and the guaranteed case (quota-pace service
        only), weighted by ``OPTIMISM``.  Positive slack: the request
        can afford to wait without endangering ``arrival + T_ref``.
        Negative: the promise is at risk and service is owed now.
        """
        deadline = self.request.arrival_time + self.t_ref_us
        remaining = (
            self.OPTIMISM * self.remaining_full_gpu_us()
            + (1.0 - self.OPTIMISM) * self.remaining_quota_pace_us()
        )
        return deadline - now - remaining

    # How strongly slack capacity favours the most-progressed request.
    # The bonus is bounded, so a co-runner is starved for at most
    # ~SLACK_BIAS * T_ref of plan lag before its growing lag wins the
    # comparison back — shortest-remaining-first with a fairness cap.
    SLACK_BIAS = 0.02

    def urgency(self, now: float) -> float:
        """Squad-generation priority (larger = served sooner).

        Primary term: normalised *deadline risk* — how much of the
        ISO/SLO promise is already forfeited assuming best-case service
        (``max(0, -slack) / T_ref``).  A request with positive slack
        can wait without endangering its promise, because it can catch
        up later on the whole GPU; one with negative slack is owed
        service immediately, and the laggiest such request is served
        first (the paper's compensation of lagged requests, §4.3.2, in
        deadline form so SLO targets slot in directly, §6.5).

        Secondary term: a small bounded bonus proportional to the
        request's *executed* progress, ``min(elapsed, tau)/T_ref``.
        Among unendangered requests, slack capacity flows to the
        most-progressed one so it finishes early and frees the whole
        GPU for the others (bubble squeezing).  Using executed time
        keeps the bonus at zero for freshly-arrived requests, so
        simultaneous arrivals interleave rather than one monopolising
        the squad.  The bonus caps at ``SLACK_BIAS``.
        """
        risk = max(0.0, -self.slack_us(now)) / self.t_ref_us
        elapsed = max(0.0, now - self.request.arrival_time)
        executed = min(elapsed, self.tau_scheduled())
        # Quantised so infinitesimal progress differences do not defeat
        # the squad generator's alternation tie-break; only differences
        # of >= 1/64 of the reference latency change the ordering.
        steps = math.floor(64.0 * min(1.0, executed / self.t_ref_us))
        bonus = self.SLACK_BIAS * steps / 64.0
        return risk + bonus

    # Constant squad-slot bias a latency-critical request enjoys over a
    # best-effort co-runner at equal lag (slo_aware mode).  Deliberately
    # larger than SLACK_BIAS so class priority dominates the
    # finish-early bonus but stays small against genuine deadline risk:
    # a best-effort request more than ~5% of a T_ref behind plan still
    # outranks an unendangered latency-critical one.
    SLO_CLASS_BIAS = 0.05

    def slo_urgency(self, now: float) -> float:
        """Deadline-aware squad priority (``BlessConfig.slo_aware``).

        Extends :meth:`urgency` for gateway-annotated requests: a
        latency-critical request gains a constant class bias plus a
        *deadline pressure* term — the normalised shortfall of its
        gateway-deadline laxity assuming best-case (whole-GPU) service
        for the remainder.  Pressure is zero while the deadline is
        comfortably reachable, so best-effort work still absorbs slack
        capacity; it grows without bound as the admission deadline
        approaches, so P-tilde selection is biased by slack exactly when
        the SLO is at risk.  Unannotated requests fall through to the
        legacy ordering unchanged.
        """
        base = self.urgency(now)
        if self.slo_class != "latency_critical" or self.slo_deadline_us is None:
            return base
        laxity = self.slo_deadline_us - now - self.remaining_full_gpu_us()
        pressure = max(0.0, -laxity) / self.t_ref_us
        return base + self.SLO_CLASS_BIAS + pressure

    def relative_progress(self, now: float) -> float:
        """The paper's ``P̃ = P_r/P_e`` (§4.3.1; smaller = more urgent).

        ``P_r`` is the request's real progress (plan time of the
        kernels scheduled so far, ``tau[n%][k]``) and ``P_e`` the
        expected progress (time elapsed since arrival), so ``P̃ = 1``
        means the request exactly tracks its quota-isolated plan and
        ``P̃ < 1`` means it is owed service.  This is the value the
        tracer records per app in ``squad.composed`` events.
        """
        elapsed = max(1e-9, now - self.request.arrival_time)
        return self.tau_scheduled() / elapsed

    def next_kernel_duration(self, partition: Optional[int] = None) -> float:
        """Profiled duration of the next unscheduled kernel."""
        if self.exhausted:
            raise RuntimeError("request fully scheduled")
        return self.profile.duration(partition or self.partition, self.scheduled)
