"""The BLESS runtime (§4): the paper's primary contribution, end to end.

``BlessRuntime`` plugs the three online components into the shared
serving harness:

1. the **multi-task scheduler** tracks per-request progress and builds
   kernel squads at every squad boundary (§4.3);
2. the **execution configuration determiner** picks each squad's
   spatial plan with the two estimators (§4.4);
3. the **concurrent kernel manager** launches the squad into the
   pre-established GPU contexts, realising Semi-SP spatial-temporal
   sharing (§4.5).

Between boundaries the host runs in parallel with the GPU; scheduling
cost is charged only when it cannot be hidden behind the previous
squad's execution (§6.9).  Fig. 20's ablations are the two config
switches; §6.5's SLO mode is ``BlessConfig.slo_targets_us``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..baselines.base import ClientState, SharingSystem
from ..gateway.slo import BEST_EFFORT, SLOSpec
from ..gpusim.context import GPUContext
from ..gpusim.device import GPUSpec
from ..gpusim.faults import FaultPlan
from ..gpusim.kernel import KernelInstance
from ..obs import events as obs_events
from .config import BlessConfig, DEFAULT_CONFIG
from .configurator import (
    ExecutionConfigDeterminer,
    quota_proportional_config,
)
from .kernel_manager import ConcurrentKernelManager, SquadExecution
from .profiler import AppProfile, OfflineProfiler
from .progress import RequestProgress
from .squad import generate_squad


class BlessRuntime(SharingSystem):
    """Bubble-less spatial-temporal GPU sharing.

    Parameters (all optional):

    * ``config`` — :class:`BlessConfig` hyper-parameters: squad cap,
      Semi-SP split ratio, SLO targets, the Fig. 20 ablation switches;
    * ``gpu_spec`` — the simulated GPU (defaults to the calibrated
      A100-like spec);
    * ``record_timeline`` — keep per-kernel execution records for the
      ASCII timeline renderer;
    * ``hw_policy`` — hardware block-dispatch policy (``"fair"``/
      ``"fifo"``);
    * ``validate`` — run invariant checks during serving;
    * ``fault_plan`` — deterministic fault injection
      (``docs/robustness.md``);
    * ``trace`` — opt into decision tracing: ``True`` attaches a
      :class:`~repro.obs.tracer.DecisionTracer` recording squad
      composition (with every request's relative progress ``P̃``),
      Eq. 1/Eq. 2 configuration decisions, Semi-SP switches, and fault
      events on the simulated clock; ``None`` defers to the
      ``REPRO_TRACE`` environment variable (``docs/observability.md``).

    ``serve(bindings)`` returns a
    :class:`~repro.metrics.stats.ServingResult`; the runtime's
    observability state lives on ``self.obs``.
    """

    name = "BLESS"

    def __init__(
        self,
        config: BlessConfig = DEFAULT_CONFIG,
        gpu_spec: Optional[GPUSpec] = None,
        record_timeline: bool = False,
        hw_policy: str = "fair",
        validate: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        trace: Optional[bool] = None,
        gpu_index: Optional[int] = None,
        slo: Optional[SLOSpec] = None,
    ):
        super().__init__(
            gpu_spec=gpu_spec,
            record_timeline=record_timeline,
            hw_policy=hw_policy,
            validate=validate,
            fault_plan=fault_plan,
            trace=trace,
            gpu_index=gpu_index,
            slo=slo,
        )
        self.config = config
        self.profiler = OfflineProfiler(config=config, gpu_spec=self.gpu_spec)
        # The determiner owns the squad-signature decision cache (LRU,
        # invalidated on profile recalibration — see recalibrate_profiles).
        self.determiner = ExecutionConfigDeterminer(config)
        # Populated in setup():
        self.manager: ConcurrentKernelManager
        self.profiles: Dict[str, AppProfile] = {}
        self._partition_of: Dict[str, int] = {}
        self._t_ref: Dict[str, float] = {}
        self._squad_inflight = False
        self._last_squad_duration = 0.0
        self._squad_count = 0
        self._squad_kernel_total = 0
        self._spatial_squads = 0
        self._profiles_stale = False
        self._stale_streak = 0
        # Squad-boundary preemption (serving gateway): the in-flight
        # execution, and whether an epoch hook is already armed.
        self._current_execution: Optional[SquadExecution] = None
        self._preempt_armed = False

    # ------------------------------------------------------------------
    # Deployment (§4.2)
    # ------------------------------------------------------------------
    def setup(self) -> None:
        self.manager = ConcurrentKernelManager(
            self.engine, self.registry, self.config
        )
        # Wire the run's decision tracer (None when tracing is off)
        # into the components that emit config/context events.
        self.determiner.trace = self.obs.tracer
        self.manager.trace = self.obs.tracer
        self.profiles = {}
        self._partition_of = {}
        self._t_ref = {}
        self._squad_inflight = False
        self._last_squad_duration = 0.0
        self._squad_count = 0
        self._squad_kernel_total = 0
        self._spatial_squads = 0
        self._profiles_stale = False
        self._stale_streak = 0
        self._current_execution = None
        self._preempt_armed = False

        slo = self.config.slo_targets_us or {}
        for client in self.clients.values():
            app = client.app
            profile = self.profiler.profile(app)
            self.profiles[app.app_id] = profile
            partition = self.config.nearest_partition(app.quota)
            self._partition_of[app.app_id] = partition
            self._t_ref[app.app_id] = slo.get(
                app.app_id, profile.iso_latency(partition)
            )
            self.manager.register_client(app.app_id)

    def recalibrate_profiles(self) -> None:
        """Re-measure every client's profile and drop stale decisions.

        The profiler's version token advances, so re-measured profiles
        produce new squad signatures; the explicit cache invalidation
        frees the memoized decisions built against the old calibration.
        """
        self.profiler.recalibrate()
        self.determiner.invalidate_cache()
        slo = self.config.slo_targets_us or {}
        for client in self.clients.values():
            app = client.app
            profile = self.profiler.profile(app)
            self.profiles[app.app_id] = profile
            partition = self._partition_of[app.app_id]
            self._t_ref[app.app_id] = slo.get(
                app.app_id, profile.iso_latency(partition)
            )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def on_request_activated(self, client: ClientState) -> None:
        if not self._squad_inflight:
            self._schedule_round(from_idle=True)

    def _active_progresses(self) -> List[RequestProgress]:
        progresses = []
        gateway = self._gateway
        for client in self.clients.values():
            request = client.active
            if request is None or request.all_scheduled:
                continue
            app_id = client.app_id
            progress = RequestProgress(
                request=request,
                profile=self.profiles[app_id],
                partition=self._partition_of[app_id],
                t_ref_us=self._t_ref[app_id],
            )
            if gateway is not None:
                # Annotate for slo_aware squad composition: class plus
                # the absolute deadline the gateway admitted against.
                progress.slo_class = gateway.class_of(app_id)
                progress.slo_deadline_us = gateway.deadline_of.get(
                    request.request_id
                )
            progresses.append(progress)
        return progresses

    def _schedule_round(self, from_idle: bool = False) -> None:
        """Arm the next scheduling round.

        Squad generation is deferred by the squad-boundary sync (20 µs,
        §6.9) — or a zero-delay event when waking from idle — so that
        every request arriving up to the generation instant joins the
        squad.  Without the deferral, two requests arriving at the same
        simulated time would be split into consecutive solo squads.
        """
        self._squad_inflight = True
        delay = 0.0 if from_idle else self.gpu_spec.sync_overhead_us
        self.engine.schedule(delay, lambda: self._generate_and_launch(from_idle))

    def _generate_and_launch(self, from_idle: bool) -> None:
        progresses = self._active_progresses()
        if not progresses:
            self._squad_inflight = False
            return

        # Generate against the *projected* end-of-squad time: a request
        # must receive enough kernels to still be on its plan when this
        # squad finishes, not merely now.  Without the horizon, a
        # high-quota (small T[n%]) app carries a standing lag of about
        # one squad duration — exactly the deviation Fig. 14 penalises.
        now = self.engine.now + self._last_squad_duration
        squad = generate_squad(progresses, now, self.config)
        if squad.total_kernels == 0:
            self._squad_inflight = False
            return

        tracer = self.obs.tracer
        if tracer is not None:
            tracer.emit(
                "squad.composed",
                squad_id=self._squad_count + 1,
                members=list(squad.app_ids),
                kernels={a: squad.entry(a).count for a in squad.app_ids},
                relative_progress={
                    p.request.app.app_id: p.relative_progress(self.engine.now)
                    for p in progresses
                },
            )

        if self.config.use_config_determiner and not self._profiles_stale:
            exec_config = self.determiner.determine(squad, self.profiles)
        else:
            # Either the determiner is ablated (Fig. 20) or the drift
            # watchdog flagged the offline profiles as untrustworthy —
            # degrade to the estimate-free quota-proportional plan.
            quotas = {c.app_id: c.app.quota for c in self.clients.values()}
            exec_config = quota_proportional_config(
                squad, self.profiles, quotas, self.config
            )
            if tracer is not None:
                tracer.emit(
                    "config.fallback",
                    reason=(
                        "profiles_stale"
                        if self.config.use_config_determiner
                        else "determiner_ablated"
                    ),
                    predicted_us=exec_config.predicted_duration_us,
                    is_spatial=exec_config.is_spatial,
                )

        # Host-side scheduling cost (§6.9): the host pipelines ~6.7us of
        # work per kernel with the GPU, so only the first kernel's
        # scheduling is exposed — plus any residue when kernels are so
        # short the host cannot keep ahead ("overspending").
        per_kernel = self.config.scheduling_us_per_kernel
        sched_time = per_kernel * squad.total_kernels
        overspend = max(0.0, sched_time - exec_config.predicted_duration_us)
        delay = per_kernel + overspend

        self._squad_count += 1
        self._squad_kernel_total += squad.total_kernels
        if exec_config.is_spatial:
            self._spatial_squads += 1

        preemptible = self.slo is not None and self.slo.preempt

        def launch() -> None:
            self._current_execution = self.manager.execute_squad(
                squad,
                exec_config,
                on_kernel_finish=self._on_kernel_finish,
                on_done=self._on_squad_done,
                preemptible=preemptible,
            )

        if delay > 0:
            self.engine.schedule(delay, launch)
        else:
            launch()

    def _on_kernel_finish(self, kernel: KernelInstance) -> None:
        if kernel.failed:
            # Killed/permanently-failed kernels still drain squad
            # accounting, but must not complete their (shed) request.
            return
        client = self.clients.get(kernel.app_id)
        if client is None or client.active is None:
            return
        request = client.active
        if (
            kernel.request_id == request.request_id
            and kernel.seq == request.total_kernels - 1
        ):
            self.finish_request(client)

    def _on_squad_done(self, execution: SquadExecution) -> None:
        if execution is self._current_execution:
            self._current_execution = None
        self._last_squad_duration = execution.duration_us
        if self.obs.tracer is not None:
            self.obs.emit(
                "squad.done",
                squad_id=self._squad_count,
                start_us=execution.started_at,
                duration_us=execution.duration_us,
                predicted_us=execution.config.predicted_duration_us,
                is_spatial=execution.config.is_spatial,
            )
        if self.fault_injector is not None and not self._profiles_stale:
            self._check_profile_drift(execution)
        self._schedule_round(from_idle=False)

    def _check_profile_drift(self, execution: SquadExecution) -> None:
        """Drift watchdog: distrust profiles that keep under-predicting.

        Fault injection can perturb kernel durations away from the
        offline profiles.  After ``profile_stale_patience`` consecutive
        squads overrunning their prediction by ``profile_stale_ratio``,
        the determiner is benched in favour of the quota-proportional
        fallback, which does not rely on duration estimates.
        """
        predicted = execution.config.predicted_duration_us
        if predicted <= 0:
            return
        if execution.duration_us / predicted >= self.config.profile_stale_ratio:
            self._stale_streak += 1
        else:
            self._stale_streak = 0
        if self._stale_streak >= self.config.profile_stale_patience:
            self._profiles_stale = True
            self.fault_stats.profile_stale_events += 1

    # ------------------------------------------------------------------
    # Squad-boundary preemption (serving gateway)
    # ------------------------------------------------------------------
    def request_slo_preemption(self, client: ClientState, request) -> None:
        """An admitted latency-critical request wants the GPU.

        Arms an epoch hook (:meth:`SimEngine.request_preemption`) that
        withdraws the running squad's best-effort kernels at the next
        rate-change epoch — running kernels finish naturally, pending
        and Semi-SP-rear ones are pulled back and rewound, so the squad
        boundary (the only reconfiguration point, §3.3) arrives early
        and the next squad is composed with the new request in it.
        """
        execution = self._current_execution
        if execution is None or execution.finished_at is not None:
            return
        gateway = self._gateway
        if gateway is None or self._preempt_armed:
            return
        if not any(
            gateway.class_of(app_id) == BEST_EFFORT
            and app_id not in execution.preempted
            for app_id in execution.squad.app_ids
        ):
            return  # nothing preemptible in flight
        self._preempt_armed = True
        self.engine.request_preemption(self._do_preempt)

    def _do_preempt(self) -> None:
        self._preempt_armed = False
        execution = self._current_execution
        gateway = self._gateway
        if execution is None or execution.finished_at is not None or gateway is None:
            return
        if execution.unconfirmed > 0:
            # A launch burst is inside its launch-overhead window, so
            # the pending queues are not the whole truth yet.  Re-arm
            # and preempt at the next epoch instead.
            self._preempt_armed = True
            self.engine.request_preemption(self._do_preempt)
            return
        be_apps = [
            app_id
            for app_id in execution.squad.app_ids
            if gateway.class_of(app_id) == BEST_EFFORT
        ]
        withdrawn = self.manager.preempt_squad(execution, be_apps)
        if not withdrawn:
            return
        for app_id, indices in withdrawn.items():
            gateway.on_preempt(len(indices))
            if self.obs.tracer is not None:
                self.obs.emit(
                    obs_events.SLO_PREEMPT,
                    app_id,
                    request_id=execution.squad.entry(app_id).request.request_id,
                    kernels=len(indices),
                    first_index=indices[0],
                )
        if execution.remaining == 0 and execution.finished_at is None:
            # Every surviving kernel had already drained: the squad is
            # over now; close it so the next round schedules at once.
            execution.finished_at = self.engine.now
            execution.on_done(execution)

    def on_context_crash(self, context: GPUContext, killed) -> None:
        """Recover from a restricted (MPS) context dying mid-squad.

        The manager forgets the dead cached queues (and re-registers
        the owner if its default context died), then the killed kernels
        are relaunched through the owner's default queue so the squad —
        and every non-faulted request in it — still completes.
        """
        self.manager.handle_context_crash(context)
        queue = self.manager.register_client(context.owner)
        self.relaunch_killed(killed, queue)

    # ------------------------------------------------------------------
    def serve(self, bindings):  # type: ignore[override]
        result = super().serve(bindings)
        # Runtime tallies flow through the metrics registry; the
        # ``bless/`` namespace maps to the historical bare extras keys
        # and ``config_cache/`` to ``config_cache_*`` via the shim, so
        # the extras schema (and the golden files) stay byte-identical.
        reg = self.obs.registry
        reg.gauge("bless/squads").set(float(self._squad_count))
        reg.gauge("bless/spatial_squads").set(float(self._spatial_squads))
        reg.gauge("bless/context_switches").set(float(self.manager.context_switches))
        reg.gauge("bless/context_memory_mb").set(float(self.manager.context_memory_mb))
        reg.gauge("bless/peak_context_memory_mb").set(
            float(self.manager.peak_context_memory_mb)
        )
        reg.gauge("bless/context_evictions").set(float(self.manager.context_evictions))
        reg.gauge("bless/oom_fallbacks").set(float(self.manager.oom_fallbacks))
        if self.fault_injector is not None:
            reg.gauge("bless/profile_stale").set(float(self._profiles_stale))
        if self._squad_count:
            reg.gauge("bless/kernels_per_squad").set(
                self._squad_kernel_total / self._squad_count
            )
        cache_stats = self.determiner.cache_stats
        if cache_stats is not None:
            reg.import_mapping("config_cache", cache_stats.as_dict())
        result.extras.update(self.obs.legacy_extras())
        return result
