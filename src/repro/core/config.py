"""BLESS configuration knobs (hyper-parameters of §6.7 and §6.9)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class BlessConfig:
    """Tunable parameters of the BLESS runtime.

    Defaults follow the paper's testbed choices: ``N = 18`` SM
    partitions on a 108-SM A100, at most 50 kernels per squad, and a
    50% Semi-SP split ratio.
    """

    # N — number of SM partitions the profiler measures and the
    # configuration determiner searches over (§4.2.1).
    num_partitions: int = 18
    # Maximum kernels per squad (§4.3.2; set to 50 in the testbed).
    max_kernels_per_squad: int = 50
    # Semi-SP split ratio c%: this fraction of each request's squad
    # kernels runs spatially restricted, the rest unrestricted (§4.5.2).
    split_ratio: float = 0.5
    # When only one request is active the squad is capped to this
    # fraction of max_kernels_per_squad, keeping squad boundaries — the
    # only points where resources can be re-configured — frequent, so a
    # newly arriving request shrinks the running one's resources
    # "instantly" (§3.3) instead of waiting out a full-size squad.
    solo_squad_fraction: float = 0.5
    # Time cap on solo squads (profiled full-GPU time).  Kernel counts
    # alone cannot bound the reconfiguration latency: 25 VGG kernels
    # are ~6.6 ms while 25 BERT kernels are ~0.7 ms.  A new arrival
    # never waits longer than roughly this budget.
    solo_squad_budget_us: float = 1_000.0
    # Host-side scheduling costs per kernel (§6.9): multi-task
    # scheduling 3.7us + configuration search 2us + squad generation 1us.
    multitask_sched_us_per_kernel: float = 3.7
    config_search_us_per_kernel: float = 2.0
    squad_generation_us_per_kernel: float = 1.0
    # Cap on exhaustively enumerated SP configurations; above this the
    # determiner falls back to proportional-split + local search.
    max_enumerated_configs: int = 4096
    # How the determiner evaluates the enumerated composition space:
    # "vectorized" builds one (n_configs, K) numpy cost matrix and
    # reduces it in bulk; "scalar" walks compositions depth-first with
    # branch-and-bound pruning; "legacy" is the pre-optimization
    # per-composition Python loop, kept as the equivalence/benchmark
    # reference.  All three provably pick the same configuration.
    config_search_mode: str = "vectorized"
    # Memoize chosen configurations by squad signature (quota mix,
    # kernel windows, K, N): repeat squads cost one dict lookup instead
    # of a full search.  Invalidated on profile recalibration.
    use_config_cache: bool = True
    config_cache_size: int = 1024
    # Semi-SP rear selection: "adaptive" sizes each request's
    # unrestricted rear to the kernels predicted to outlive the
    # shortest co-runner stack (Fig. 7(c)'s motivation); "static"
    # applies the fixed split ratio c% of §4.5.2.
    semi_sp_mode: str = "adaptive"
    # NSP (no-spatial-restriction) duration estimator: "wave" uses the
    # simulator-calibrated parallel-wave model; "paper" uses Eq. 2's
    # serialized-at-full-width model, which matches GPUs whose kernels
    # saturate the device (the authors' testbed).
    nsp_predictor: str = "wave"
    # Ablation switches (Fig. 20).
    use_multitask_scheduler: bool = True
    use_config_determiner: bool = True
    # Per-app QoS targets in us (§6.5).  When set for an app, the
    # scheduler paces it against this target instead of its ISO latency.
    slo_targets_us: Optional[Dict[str, float]] = None
    # Deadline-aware squad composition: when on, requests carrying a
    # gateway SLO class bias P-tilde selection by slack so
    # latency-critical requests win squad slots as their deadline
    # approaches.  Off by default — the byte-identical legacy ordering.
    slo_aware: bool = False
    # Profile-drift watchdog: when a squad's measured duration exceeds
    # its prediction by this ratio for ``profile_stale_patience``
    # consecutive squads, the offline profiles are declared stale and
    # the runtime falls back to the quota-proportional configuration
    # (the degraded mode that needs no trustworthy estimates).
    profile_stale_ratio: float = 1.5
    profile_stale_patience: int = 3

    def __post_init__(self) -> None:
        if self.num_partitions < 2:
            raise ValueError("need at least 2 SM partitions")
        if self.max_kernels_per_squad < 1:
            raise ValueError("squads must allow at least one kernel")
        if not 0.0 <= self.split_ratio <= 1.0:
            raise ValueError("split_ratio must be in [0, 1]")
        if not 0.0 < self.solo_squad_fraction <= 1.0:
            raise ValueError("solo_squad_fraction must be in (0, 1]")
        if self.nsp_predictor not in ("wave", "paper"):
            raise ValueError("nsp_predictor must be 'wave' or 'paper'")
        if self.semi_sp_mode not in ("adaptive", "static"):
            raise ValueError("semi_sp_mode must be 'adaptive' or 'static'")
        if self.config_search_mode not in ("vectorized", "scalar", "legacy"):
            raise ValueError(
                "config_search_mode must be 'vectorized', 'scalar' or 'legacy'"
            )
        if self.config_cache_size < 1:
            raise ValueError("config_cache_size must be >= 1")
        if self.profile_stale_ratio <= 1.0:
            raise ValueError("profile_stale_ratio must exceed 1.0")
        if self.profile_stale_patience < 1:
            raise ValueError("profile_stale_patience must be >= 1")

    @property
    def scheduling_us_per_kernel(self) -> float:
        """Total host-side scheduling time per kernel (6.7us, §6.9)."""
        return (
            self.multitask_sched_us_per_kernel
            + self.config_search_us_per_kernel
            + self.squad_generation_us_per_kernel
        )

    def partition_fraction(self, index: int) -> float:
        """SM fraction of partition ``index`` (1-based, up to N)."""
        if not 1 <= index <= self.num_partitions:
            raise ValueError(
                f"partition index must be in [1, {self.num_partitions}], got {index}"
            )
        return index / self.num_partitions

    def nearest_partition(self, fraction: float) -> int:
        """The partition index closest to an arbitrary SM fraction."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        return min(
            self.num_partitions, max(1, round(fraction * self.num_partitions))
        )


DEFAULT_CONFIG = BlessConfig()
