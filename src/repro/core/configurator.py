"""Execution configuration determiner (§4.4).

For each generated squad the determiner searches the execution
configuration space — the unrestricted case plus every strict spatial
split of the GPU's ``N`` partitions among the ``K`` active requests
(``C(N-1, K-1)`` compositions) — and returns the configuration with the
smallest estimated duration.

For large ``K`` the composition count explodes (K=8, N=18 → 19 448);
above ``config.max_enumerated_configs`` the determiner switches to a
proportional seed plus steepest-descent local search, which finds the
same optimum in the common cases the paper evaluates (the objective —
the max of per-app stacks, Eq. 1 — is unimodal along single-partition
moves).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from .config import BlessConfig
from .predictors import (
    concurrent_wave_estimate,
    interference_free_estimate,
    workload_equivalence_estimate,
)
from .profiler import AppProfile
from .squad import KernelSquad


@dataclass(frozen=True)
class ExecutionConfig:
    """The chosen execution plan for one squad.

    ``partitions`` maps app_id -> partition index (1-based, of N) for a
    strict-spatial plan; ``None`` means no spatial restriction (NSP).
    ``rear_counts`` (adaptive Semi-SP) maps app_id -> number of trailing
    kernels to launch without SM restriction: the kernels predicted to
    start after the shortest co-runner stack has drained (Fig. 7(c)).
    When absent, the kernel manager falls back to the static split
    ratio ``c%``.
    """

    partitions: Optional[Dict[str, int]]
    predicted_duration_us: float
    rear_counts: Optional[Dict[str, int]] = None

    @property
    def is_spatial(self) -> bool:
        return self.partitions is not None


def _compositions(total: int, parts: int):
    """All ways to split ``total`` units into ``parts`` positive ints."""
    if parts == 1:
        yield (total,)
        return
    for first in range(1, total - parts + 2):
        for rest in _compositions(total - first, parts - 1):
            yield (first,) + rest


def composition_count(n_partitions: int, k_requests: int) -> int:
    """``C(N-1, K-1)`` — size of the strict-spatial config space."""
    return math.comb(n_partitions - 1, k_requests - 1)


class ExecutionConfigDeterminer:
    """Searches the configuration space with the two estimators."""

    def __init__(self, config: BlessConfig):
        self.config = config

    def _nsp_estimate(
        self, squad: KernelSquad, profiles: Mapping[str, AppProfile]
    ) -> float:
        if self.config.nsp_predictor == "paper":
            return workload_equivalence_estimate(squad, profiles)
        return concurrent_wave_estimate(squad, profiles)

    def determine(
        self,
        squad: KernelSquad,
        profiles: Mapping[str, AppProfile],
    ) -> ExecutionConfig:
        """Pick the fastest configuration for ``squad``."""
        app_ids = squad.app_ids
        if not app_ids:
            raise ValueError("cannot configure an empty squad")

        # A single active request simply gets the whole GPU.
        if len(app_ids) == 1:
            duration = self._nsp_estimate(squad, profiles)
            return ExecutionConfig(partitions=None, predicted_duration_us=duration)

        nsp_duration = self._nsp_estimate(squad, profiles)
        best_sp = self._best_spatial(squad, profiles)

        if best_sp is not None and best_sp.predicted_duration_us < nsp_duration:
            return self._attach_rears(best_sp, squad, profiles)
        return ExecutionConfig(partitions=None, predicted_duration_us=nsp_duration)

    def _attach_rears(
        self,
        config: ExecutionConfig,
        squad: KernelSquad,
        profiles: Mapping[str, AppProfile],
    ) -> ExecutionConfig:
        """Compute adaptive Semi-SP rear counts for a spatial plan.

        The rear of each request is the set of its squad kernels whose
        predicted start lies past the *shortest* co-runner stack — by
        then that co-runner's partition is draining and the kernels can
        safely expand to the whole GPU (the semi-SP insight of §4.4.1).
        In static mode the kernel manager ignores this and applies the
        fixed ``c%`` instead.
        """
        if self.config.semi_sp_mode != "adaptive" or config.partitions is None:
            return config
        stacks = {}
        cumulative: Dict[str, List[float]] = {}
        for app_id, entry in squad.entries.items():
            profile = profiles[app_id]
            partition = config.partitions[app_id]
            acc = 0.0
            starts = []
            for index in entry.kernel_indices:
                starts.append(acc)
                acc += profile.step_cost(partition, index)
            stacks[app_id] = acc
            cumulative[app_id] = starts
        t_min = min(stacks.values())
        rear_counts = {}
        for app_id, starts in cumulative.items():
            rear_counts[app_id] = sum(1 for s in starts if s >= t_min - 1e-9)
        return ExecutionConfig(
            partitions=config.partitions,
            predicted_duration_us=config.predicted_duration_us,
            rear_counts=rear_counts,
        )

    # ------------------------------------------------------------------
    def _best_spatial(
        self,
        squad: KernelSquad,
        profiles: Mapping[str, AppProfile],
    ) -> Optional[ExecutionConfig]:
        app_ids = squad.app_ids
        n = self.config.num_partitions
        k = len(app_ids)
        if k > n:
            return None  # cannot give every request a partition
        if composition_count(n, k) <= self.config.max_enumerated_configs:
            return self._enumerate(squad, profiles, app_ids, n)
        return self._local_search(squad, profiles, app_ids, n)

    def _evaluate(
        self,
        squad: KernelSquad,
        profiles: Mapping[str, AppProfile],
        app_ids: List[str],
        split: Tuple[int, ...],
    ) -> Tuple[float, float]:
        """(makespan, total stack time) of a split under Eq. 1.

        The makespan is the paper's objective; the total stack time
        breaks ties among makespan-equivalent splits — without it the
        search may pointlessly squeeze a short side onto one partition
        (slowing that request) when wider allocations cost nothing.
        """
        total = 0.0
        longest = 0.0
        for app_id, parts in zip(app_ids, split):
            entry = squad.entry(app_id)
            profile = profiles[app_id]
            stack = 0.0
            for index in entry.kernel_indices:
                stack += profile.step_cost(parts, index)
            total += stack
            longest = max(longest, stack)
        return (longest, total)

    def _enumerate(
        self,
        squad: KernelSquad,
        profiles: Mapping[str, AppProfile],
        app_ids: List[str],
        n: int,
    ) -> ExecutionConfig:
        best_split: Optional[Tuple[int, ...]] = None
        best_score: Tuple[float, float] = (math.inf, math.inf)
        for split in _compositions(n, len(app_ids)):
            score = self._evaluate(squad, profiles, app_ids, split)
            if score < best_score:
                best_score = score
                best_split = split
        assert best_split is not None
        return ExecutionConfig(
            partitions=dict(zip(app_ids, best_split)),
            predicted_duration_us=best_score[0],
        )

    def _local_search(
        self,
        squad: KernelSquad,
        profiles: Mapping[str, AppProfile],
        app_ids: List[str],
        n: int,
    ) -> ExecutionConfig:
        # Seed: partitions proportional to each request's full-GPU stack.
        k = len(app_ids)
        stacks = []
        for app_id in app_ids:
            entry = squad.entry(app_id)
            profile = profiles[app_id]
            stacks.append(
                sum(profile.duration(n, i) for i in entry.kernel_indices)
            )
        total_stack = sum(stacks) or 1.0
        split = [max(1, round(n * s / total_stack)) for s in stacks]
        # Repair the seed to sum exactly to n.
        while sum(split) > n:
            i = max(range(k), key=lambda j: split[j])
            if split[i] > 1:
                split[i] -= 1
        while sum(split) < n:
            i = max(range(k), key=lambda j: stacks[j] / split[j])
            split[i] += 1

        best = tuple(split)
        best_score = self._evaluate(squad, profiles, app_ids, best)
        improved = True
        while improved:
            improved = False
            for src in range(k):
                for dst in range(k):
                    if dst == src or best[src] <= 1:
                        continue
                    candidate = list(best)
                    candidate[src] -= 1
                    candidate[dst] += 1
                    score = self._evaluate(
                        squad, profiles, app_ids, tuple(candidate)
                    )
                    if score < best_score:
                        best = tuple(candidate)
                        best_score = score
                        improved = True
        return ExecutionConfig(
            partitions=dict(zip(app_ids, best)),
            predicted_duration_us=best_score[0],
        )


def quota_proportional_config(
    squad: KernelSquad,
    profiles: Mapping[str, AppProfile],
    quotas: Mapping[str, float],
    config: BlessConfig,
) -> ExecutionConfig:
    """Fixed quota-proportional split (the Fig. 20 determiner ablation).

    Without the determiner, BLESS still runs squads spatially but simply
    slices the GPU by provisioned quota instead of searching.
    """
    app_ids = squad.app_ids
    if len(app_ids) == 1:
        duration = workload_equivalence_estimate(squad, profiles)
        return ExecutionConfig(partitions=None, predicted_duration_us=duration)
    n = config.num_partitions
    total_quota = sum(quotas[a] for a in app_ids) or 1.0
    split = [max(1, round(n * quotas[a] / total_quota)) for a in app_ids]
    while sum(split) > n:
        i = max(range(len(split)), key=lambda j: split[j])
        split[i] -= 1
    while sum(split) < n:
        i = min(range(len(split)), key=lambda j: split[j])
        split[i] += 1
    partitions = dict(zip(app_ids, split))
    duration = interference_free_estimate(squad, profiles, partitions)
    return ExecutionConfig(partitions=partitions, predicted_duration_us=duration)
