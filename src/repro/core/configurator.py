"""Execution configuration determiner (§4.4).

For each generated squad the determiner searches the execution
configuration space — the unrestricted case plus every strict spatial
split of the GPU's ``N`` partitions among the ``K`` active requests
(``C(N-1, K-1)`` compositions) — and returns the configuration with the
smallest estimated duration.

Candidates are scored with the paper's two estimators (§4.4.2, in
``repro.core.predictors``): spatial splits with the
**interference-free predictor** (Eq. 1, ``t̂ = max_j Σ_i t[n_j%][k_i^j]``
— the longest per-request stack of restricted-kernel durations) and
the unrestricted configuration with the **workload-equivalence
predictor** (Eq. 2 — breadth-first waves at the jointly-activated SM
fraction).  With tracing on (``docs/observability.md``) each decision
is recorded as a ``config.chosen`` event carrying both estimates
(``nsp_us`` = Eq. 2, ``sp_us`` = best Eq. 1) and the pick.

For large ``K`` the composition count explodes (K=8, N=18 → 19 448);
above ``config.max_enumerated_configs`` the determiner switches to a
proportional seed plus steepest-descent local search, which finds the
same optimum in the common cases the paper evaluates (the objective —
the max of per-app stacks, Eq. 1 — is unimodal along single-partition
moves).

Search-cost engineering (the §6.9 decision-latency budget):

* **memoization** — decisions are cached in an LRU keyed by the squad's
  signature (:meth:`KernelSquad.signature`); consecutive squads from
  the same request mix are near-identical, so steady-state serving hits
  the cache almost always (``repro.core.config_cache``);
* **vectorization** — the default search builds one ``(K, N)`` Eq. 1
  stack-cost matrix plus an ``(n_configs, K)`` composition matrix and
  reduces them in bulk with numpy instead of per-composition loops;
* **branch-and-bound** — the ``"scalar"`` mode walks the composition
  tree depth-first and abandons a prefix as soon as one app's partial
  stack already exceeds the incumbent best makespan (safe: granting the
  remaining apps partitions can only add new stacks, never shrink the
  prefix max).

The pre-optimization path survives as ``config_search_mode="legacy"``;
all three modes provably choose the same configuration (see
``tests/test_config_cache.py`` and ``benchmarks/test_config_search_perf.py``).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from .config import BlessConfig
from .config_cache import CachedDecision, ExecutionConfigCache
from .predictors import (
    concurrent_wave_estimate,
    interference_free_estimate,
    workload_equivalence_estimate,
)
from .profiler import AppProfile
from .squad import KernelSquad


@dataclass(frozen=True)
class ExecutionConfig:
    """The chosen execution plan for one squad.

    ``partitions`` maps app_id -> partition index (1-based, of N) for a
    strict-spatial plan; ``None`` means no spatial restriction (NSP).
    ``rear_counts`` (adaptive Semi-SP) maps app_id -> number of trailing
    kernels to launch without SM restriction: the kernels predicted to
    start after the shortest co-runner stack has drained (Fig. 7(c)).
    When absent, the kernel manager falls back to the static split
    ratio ``c%``.
    """

    partitions: Optional[Dict[str, int]]
    predicted_duration_us: float
    rear_counts: Optional[Dict[str, int]] = None

    @property
    def is_spatial(self) -> bool:
        return self.partitions is not None


def _compositions(total: int, parts: int):
    """All ways to split ``total`` units into ``parts`` positive ints.

    The space is empty when ``total < parts`` (some part would get 0)
    or ``parts <= 0``; both yield nothing, and callers must handle the
    empty space explicitly (the determiner falls back to the
    unrestricted configuration) instead of relying on the silent
    fall-through this used to be.
    """
    if parts <= 0 or total < parts:
        return
    if parts == 1:
        yield (total,)
        return
    for first in range(1, total - parts + 2):
        for rest in _compositions(total - first, parts - 1):
            yield (first,) + rest


def composition_count(n_partitions: int, k_requests: int) -> int:
    """``C(N-1, K-1)`` — size of the strict-spatial config space."""
    return math.comb(n_partitions - 1, k_requests - 1)


# (n, k) -> (n_configs, k) int array, in _compositions order.  A handful
# of (N, K) pairs recur for a given deployment, so the arrays are built
# once per process.
_COMPOSITION_ARRAYS: Dict[Tuple[int, int], np.ndarray] = {}


def _composition_array(total: int, parts: int) -> np.ndarray:
    """The full composition space as one ``(n_configs, parts)`` matrix.

    Compositions of ``total`` into ``parts`` positive integers biject
    with ``parts - 1`` cut positions chosen from ``total - 1`` interior
    gaps; ``itertools.combinations`` emits the cuts in lexicographic
    order, which reproduces :func:`_compositions` order exactly.
    """
    key = (total, parts)
    cached = _COMPOSITION_ARRAYS.get(key)
    if cached is not None:
        return cached
    if parts <= 0 or total < parts:
        array = np.empty((0, max(parts, 0)), dtype=np.int64)
    elif parts == 1:
        array = np.array([[total]], dtype=np.int64)
    else:
        cuts = np.array(
            list(itertools.combinations(range(1, total), parts - 1)),
            dtype=np.int64,
        )
        bounds = np.concatenate(
            [
                np.zeros((cuts.shape[0], 1), dtype=np.int64),
                cuts,
                np.full((cuts.shape[0], 1), total, dtype=np.int64),
            ],
            axis=1,
        )
        array = np.diff(bounds, axis=1)
    _COMPOSITION_ARRAYS[key] = array
    return array


class ExecutionConfigDeterminer:
    """Searches the configuration space with the two estimators.

    ``mode`` overrides ``config.config_search_mode``; ``cache`` injects
    a shared :class:`ExecutionConfigCache` (one is created from the
    config's knobs when omitted and caching is enabled).
    """

    def __init__(
        self,
        config: BlessConfig,
        cache: Optional[ExecutionConfigCache] = None,
        mode: Optional[str] = None,
    ):
        self.config = config
        self.mode = mode or config.config_search_mode
        if self.mode not in ("vectorized", "scalar", "legacy"):
            raise ValueError(f"unknown config_search_mode {self.mode!r}")
        if cache is None and config.use_config_cache:
            cache = ExecutionConfigCache(config.config_cache_size)
        self.cache = cache
        # Optional DecisionTracer (obs/), wired by the runtime's setup;
        # ``config.chosen`` events are emitted only when attached.
        self.trace = None

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    @property
    def cache_stats(self):
        """Hit/miss counters of the decision cache (None when disabled)."""
        return self.cache.stats if self.cache is not None else None

    def invalidate_cache(self) -> None:
        """Drop memoized decisions — call after profile recalibration."""
        if self.cache is not None:
            self.cache.invalidate()

    # ------------------------------------------------------------------
    def _nsp_estimate(
        self, squad: KernelSquad, profiles: Mapping[str, AppProfile]
    ) -> float:
        if self.config.nsp_predictor == "paper":
            return workload_equivalence_estimate(squad, profiles)
        return concurrent_wave_estimate(squad, profiles)

    def determine(
        self,
        squad: KernelSquad,
        profiles: Mapping[str, AppProfile],
    ) -> ExecutionConfig:
        """Pick the fastest configuration for ``squad``.

        Compares the unrestricted plan (scored with Eq. 2,
        workload equivalence) against every strict spatial split
        (each scored with Eq. 1, the max per-request stack) and
        returns the argmin as an :class:`ExecutionConfig`.  Decisions
        are memoized by :meth:`KernelSquad.signature`; a cache hit
        skips the search entirely (§6.9's decision-latency budget).
        """
        if not squad.app_ids:
            raise ValueError("cannot configure an empty squad")
        if self.cache is None:
            return self._determine_uncached(squad, profiles)

        key, canonical_order = squad.signature(profiles, self.config)
        hit = self.cache.get(key)
        if hit is not None:
            chosen = hit.rebuild(canonical_order)
            if self.trace is not None:
                self.trace.emit(
                    "config.chosen",
                    cache_hit=True,
                    apps=len(squad.app_ids),
                    predicted_us=chosen.predicted_duration_us,
                    is_spatial=chosen.is_spatial,
                )
            return chosen
        chosen = self._determine_uncached(squad, profiles)
        self.cache.put(key, CachedDecision.from_config(chosen, canonical_order))
        return chosen

    def _determine_uncached(
        self,
        squad: KernelSquad,
        profiles: Mapping[str, AppProfile],
    ) -> ExecutionConfig:
        app_ids = squad.app_ids

        # A single active request simply gets the whole GPU.
        if len(app_ids) == 1:
            duration = self._nsp_estimate(squad, profiles)
            chosen = ExecutionConfig(partitions=None, predicted_duration_us=duration)
            self._emit_chosen(chosen, apps=1, candidates=1, nsp_us=duration)
            return chosen

        nsp_duration = self._nsp_estimate(squad, profiles)
        best_sp = self._best_spatial(squad, profiles)

        if best_sp is not None and best_sp.predicted_duration_us < nsp_duration:
            chosen = self._attach_rears(best_sp, squad, profiles)
        else:
            chosen = ExecutionConfig(
                partitions=None, predicted_duration_us=nsp_duration
            )
        self._emit_chosen(
            chosen,
            apps=len(app_ids),
            candidates=1 + self._spatial_space_size(len(app_ids)),
            nsp_us=nsp_duration,
            sp_us=best_sp.predicted_duration_us if best_sp is not None else None,
        )
        return chosen

    def _spatial_space_size(self, k: int) -> int:
        """Size of the strict-spatial space searched for ``k`` requests."""
        n = self.config.num_partitions
        return composition_count(n, k) if k <= n else 0

    def _emit_chosen(
        self,
        chosen: ExecutionConfig,
        apps: int,
        candidates: int,
        nsp_us: float,
        sp_us: Optional[float] = None,
    ) -> None:
        """Trace a fresh (cache-miss) configuration decision (§4.4).

        ``nsp_us`` is the Eq. 2 workload-equivalence estimate of the
        unrestricted plan; ``sp_us`` the best Eq. 1 stacked estimate over
        the spatial space (None when no spatial plan exists).
        """
        if self.trace is None:
            return
        self.trace.emit(
            "config.chosen",
            cache_hit=False,
            apps=apps,
            candidates=candidates,
            nsp_us=nsp_us,
            sp_us=sp_us,
            predicted_us=chosen.predicted_duration_us,
            is_spatial=chosen.is_spatial,
        )

    def _attach_rears(
        self,
        config: ExecutionConfig,
        squad: KernelSquad,
        profiles: Mapping[str, AppProfile],
    ) -> ExecutionConfig:
        """Compute adaptive Semi-SP rear counts for a spatial plan.

        The rear of each request is the set of its squad kernels whose
        predicted start lies past the *shortest* co-runner stack — by
        then that co-runner's partition is draining and the kernels can
        safely expand to the whole GPU (the semi-SP insight of §4.4.1).
        In static mode the kernel manager ignores this and applies the
        fixed ``c%`` instead.
        """
        if self.config.semi_sp_mode != "adaptive" or config.partitions is None:
            return config
        stacks = {}
        cumulative: Dict[str, np.ndarray] = {}
        for app_id, entry in squad.entries.items():
            profile = profiles[app_id]
            partition = config.partitions[app_id]
            cols = np.asarray(entry.kernel_indices, dtype=int)
            costs = profile.durations[partition - 1, cols] + profile.gaps[cols]
            ends = np.cumsum(costs)
            stacks[app_id] = float(ends[-1]) if ends.size else 0.0
            cumulative[app_id] = ends - costs  # start time of each kernel
        t_min = min(stacks.values())
        rear_counts = {}
        for app_id, starts in cumulative.items():
            rear_counts[app_id] = int((starts >= t_min - 1e-9).sum())
        return ExecutionConfig(
            partitions=config.partitions,
            predicted_duration_us=config.predicted_duration_us,
            rear_counts=rear_counts,
        )

    # ------------------------------------------------------------------
    def _stack_matrix(
        self,
        squad: KernelSquad,
        profiles: Mapping[str, AppProfile],
        app_ids: List[str],
    ) -> np.ndarray:
        """The ``(K, N)`` Eq. 1 cost matrix: ``S[a, p-1]`` is app ``a``'s
        stacked restricted duration on a ``p``-partition slice."""
        return np.stack(
            [
                profiles[app_id].stack_costs(squad.entry(app_id).kernel_indices)
                for app_id in app_ids
            ]
        )

    def _best_spatial(
        self,
        squad: KernelSquad,
        profiles: Mapping[str, AppProfile],
    ) -> Optional[ExecutionConfig]:
        app_ids = squad.app_ids
        n = self.config.num_partitions
        k = len(app_ids)
        if k > n:
            return None  # cannot give every request a partition
        if composition_count(n, k) <= self.config.max_enumerated_configs:
            if self.mode == "legacy":
                return self._enumerate_legacy(squad, profiles, app_ids, n)
            stack = self._stack_matrix(squad, profiles, app_ids)
            if self.mode == "scalar":
                return self._enumerate_pruned(stack, app_ids, n)
            return self._enumerate_vectorized(stack, app_ids, n)
        return self._local_search(squad, profiles, app_ids, n)

    def _evaluate(
        self,
        squad: KernelSquad,
        profiles: Mapping[str, AppProfile],
        app_ids: List[str],
        split: Tuple[int, ...],
    ) -> Tuple[float, float]:
        """(makespan, total stack time) of a split under Eq. 1.

        The makespan is the paper's objective; the total stack time
        breaks ties among makespan-equivalent splits — without it the
        search may pointlessly squeeze a short side onto one partition
        (slowing that request) when wider allocations cost nothing.

        This is the pre-optimization per-kernel loop, retained for the
        ``"legacy"`` search mode and as the equivalence reference.
        """
        total = 0.0
        longest = 0.0
        for app_id, parts in zip(app_ids, split):
            entry = squad.entry(app_id)
            profile = profiles[app_id]
            stack = 0.0
            for index in entry.kernel_indices:
                stack += profile.step_cost(parts, index)
            total += stack
            longest = max(longest, stack)
        return (longest, total)

    def _enumerate_vectorized(
        self,
        stack: np.ndarray,
        app_ids: List[str],
        n: int,
    ) -> Optional[ExecutionConfig]:
        """Bulk-evaluate the whole composition space in numpy.

        One fancy-index gather turns the ``(n_configs, K)`` composition
        matrix into an ``(n_configs, K)`` cost matrix; a row-max and a
        row-sum reduce it to the (makespan, total) objective, and the
        argmin replicates the scalar scan's tie-breaking exactly
        (first composition in enumeration order wins ties).
        """
        k = len(app_ids)
        splits = _composition_array(n, k)
        if splits.shape[0] == 0:
            return None
        costs = stack[np.arange(k)[None, :], splits - 1]
        makespans = costs.max(axis=1)
        totals = costs.sum(axis=1)
        best_makespan = makespans.min()
        on_best = makespans == best_makespan
        best_total = totals[on_best].min()
        index = int(np.argmax(on_best & (totals == best_total)))
        return ExecutionConfig(
            partitions=dict(zip(app_ids, (int(p) for p in splits[index]))),
            predicted_duration_us=float(best_makespan),
        )

    def _enumerate_pruned(
        self,
        stack: np.ndarray,
        app_ids: List[str],
        n: int,
    ) -> Optional[ExecutionConfig]:
        """Depth-first enumeration with branch-and-bound pruning.

        Walks compositions in the same lexicographic order as
        :func:`_compositions`, carrying the incumbent best score.  A
        prefix whose partial stack max already *exceeds* the incumbent
        makespan cannot contain the winner (descendants only add
        stacks) and is cut.  Pruning is strict-greater only: an
        equal-makespan descendant may still win on the total-stack
        tie-break, so those subtrees survive — decisions stay identical
        to the exhaustive scan.
        """
        k = len(app_ids)
        if k <= 0 or n < k:
            return None
        best_split: Optional[Tuple[int, ...]] = None
        best_score = (math.inf, math.inf)
        prefix = [0] * k

        def descend(app: int, remaining: int, prefix_max: float, prefix_sum: float):
            nonlocal best_split, best_score
            if prefix_max > best_score[0]:
                return  # bound: no descendant can beat the incumbent
            if app == k - 1:
                cost = float(stack[app, remaining - 1])
                score = (max(prefix_max, cost), prefix_sum + cost)
                if score < best_score:
                    prefix[app] = remaining
                    best_score = score
                    best_split = tuple(prefix)
                return
            apps_left = k - app - 1
            for parts in range(1, remaining - apps_left + 1):
                cost = float(stack[app, parts - 1])
                new_max = max(prefix_max, cost)
                if new_max > best_score[0]:
                    # Larger allocations only shrink this app's stack,
                    # so later siblings may still fit — keep scanning.
                    continue
                prefix[app] = parts
                descend(app + 1, remaining - parts, new_max, prefix_sum + cost)

        descend(0, n, 0.0, 0.0)
        if best_split is None:
            return None
        return ExecutionConfig(
            partitions=dict(zip(app_ids, best_split)),
            predicted_duration_us=best_score[0],
        )

    def _enumerate_legacy(
        self,
        squad: KernelSquad,
        profiles: Mapping[str, AppProfile],
        app_ids: List[str],
        n: int,
    ) -> Optional[ExecutionConfig]:
        """The pre-optimization exhaustive scan (per-kernel loops)."""
        best_split: Optional[Tuple[int, ...]] = None
        best_score: Tuple[float, float] = (math.inf, math.inf)
        for split in _compositions(n, len(app_ids)):
            score = self._evaluate(squad, profiles, app_ids, split)
            if score < best_score:
                best_score = score
                best_split = split
        if best_split is None:
            # Empty composition space (e.g. more requests than
            # partitions): report "no spatial plan" so the caller falls
            # back to the unrestricted configuration.
            return None
        return ExecutionConfig(
            partitions=dict(zip(app_ids, best_split)),
            predicted_duration_us=best_score[0],
        )

    def _local_search(
        self,
        squad: KernelSquad,
        profiles: Mapping[str, AppProfile],
        app_ids: List[str],
        n: int,
    ) -> ExecutionConfig:
        k = len(app_ids)
        stack = self._stack_matrix(squad, profiles, app_ids)

        def score_of(split: Tuple[int, ...]) -> Tuple[float, float]:
            costs = stack[np.arange(k), np.asarray(split) - 1]
            return (float(costs.max()), float(costs.sum()))

        # Seed: partitions proportional to each request's full-GPU stack
        # (durations only — dispatch gaps don't scale with partitions).
        stacks = []
        for app_id in app_ids:
            entry = squad.entry(app_id)
            profile = profiles[app_id]
            cols = np.asarray(entry.kernel_indices, dtype=int)
            stacks.append(float(profile.durations[-1, cols].sum()))
        total_stack = sum(stacks) or 1.0
        split = [max(1, round(n * s / total_stack)) for s in stacks]
        # Repair the seed to sum exactly to n.
        while sum(split) > n:
            i = max(range(k), key=lambda j: split[j])
            if split[i] > 1:
                split[i] -= 1
        while sum(split) < n:
            i = max(range(k), key=lambda j: stacks[j] / split[j])
            split[i] += 1

        best = tuple(split)
        best_score = score_of(best)
        improved = True
        while improved:
            improved = False
            for src in range(k):
                for dst in range(k):
                    if dst == src or best[src] <= 1:
                        continue
                    candidate = list(best)
                    candidate[src] -= 1
                    candidate[dst] += 1
                    score = score_of(tuple(candidate))
                    if score < best_score:
                        best = tuple(candidate)
                        best_score = score
                        improved = True
        return ExecutionConfig(
            partitions=dict(zip(app_ids, best)),
            predicted_duration_us=best_score[0],
        )


def quota_proportional_config(
    squad: KernelSquad,
    profiles: Mapping[str, AppProfile],
    quotas: Mapping[str, float],
    config: BlessConfig,
) -> ExecutionConfig:
    """Fixed quota-proportional split (the Fig. 20 determiner ablation).

    Without the determiner, BLESS still runs squads spatially but simply
    slices the GPU by provisioned quota instead of searching.
    """
    app_ids = squad.app_ids
    if len(app_ids) == 1:
        duration = workload_equivalence_estimate(squad, profiles)
        return ExecutionConfig(partitions=None, predicted_duration_us=duration)
    n = config.num_partitions
    total_quota = sum(quotas[a] for a in app_ids) or 1.0
    split = [max(1, round(n * quotas[a] / total_quota)) for a in app_ids]
    while sum(split) > n:
        i = max(range(len(split)), key=lambda j: split[j])
        split[i] -= 1
    while sum(split) < n:
        i = min(range(len(split)), key=lambda j: split[j])
        split[i] += 1
    partitions = dict(zip(app_ids, split))
    duration = interference_free_estimate(squad, profiles, partitions)
    return ExecutionConfig(partitions=partitions, predicted_duration_us=duration)
