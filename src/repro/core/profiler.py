"""Offline profiler (§4.2): per-kernel statistics at every partition size.

For an application provisioned ``n%`` of the GPU the profiler records:

* ``T[n%]``     — isolated request latency on an MPS partition of n%;
* ``t[n%][k]``  — duration of kernel *k* at n% SMs;
* ``tau[n%][k]``— elapsed time from request start to the end of *k*;
* ``d%[k]``     — the kernel's maximum active SM usage.

The paper measures these with CUDA events over ``N`` solo runs (one per
partition size).  Our simulator's solo-run kernel duration at a
partition is exactly ``KernelSpec.duration_at``, so the profile can be
computed analytically; :func:`profile_via_simulation` cross-checks that
the analytic profile matches an actual simulated solo run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..apps.application import Application
from ..gpusim.device import GPUSpec
from .config import BlessConfig, DEFAULT_CONFIG


@dataclass
class AppProfile:
    """Profiled data of one application over all partition sizes."""

    app_name: str
    num_partitions: int
    # durations[p][k]: duration of kernel k at partition index p (1-based
    # index stored at p-1).
    durations: np.ndarray
    # elapsed[p][k]: time from request start to end of kernel k,
    # including the host dispatch gaps between kernels.
    elapsed: np.ndarray
    # sm_demand[k]: the kernel's d%.
    sm_demand: np.ndarray
    # gaps[k]: host dispatch gap preceding kernel k.
    gaps: np.ndarray
    # mem_intensity[k]: bandwidth appetite, used by the wave estimator.
    mem_intensity: np.ndarray
    memory_mb: int
    # Simulated profiling cost (one full run + N partitioned runs).
    profiling_cost_us: float = 0.0
    # Calibration token: bumped by OfflineProfiler.recalibrate().  The
    # squad-signature cache embeds it, so decisions memoized against an
    # older calibration become unreachable the moment the profile is
    # re-measured (repro.core.config_cache).
    version: int = 0

    @property
    def num_kernels(self) -> int:
        return self.durations.shape[1]

    def duration(self, partition: int, kernel: int) -> float:
        """``t[n%][k]`` with ``partition`` 1-based."""
        return float(self.durations[partition - 1, kernel])

    def step_cost(self, partition: int, kernel: int) -> float:
        """Kernel duration plus its preceding dispatch gap — the time
        the kernel occupies on its request's critical path."""
        return float(self.durations[partition - 1, kernel] + self.gaps[kernel])

    def tau(self, partition: int, kernel: int) -> float:
        """``tau[n%][k]`` with ``partition`` 1-based."""
        return float(self.elapsed[partition - 1, kernel])

    def iso_latency(self, partition: int) -> float:
        """``T[n%]`` — isolated latency at a partition size."""
        return float(self.elapsed[partition - 1, -1])

    def stack_duration(self, partition: int, start: int, end: int) -> float:
        """Critical-path time of kernels ``[start, end)`` in one queue
        (Eq. 1 term): durations plus the dispatch gaps between them."""
        if start >= end:
            return 0.0
        return float(
            self.durations[partition - 1, start:end].sum()
            + self.gaps[start:end].sum()
        )

    def duration_at_fraction(self, fraction: float, kernel: int) -> float:
        """Duration at an arbitrary SM fraction, interpolated over the
        profiled partition grid (§4.4.2: 'the duration of a kernel using
        the desired number of SM is interpolated')."""
        grid = np.arange(1, self.num_partitions + 1) / self.num_partitions
        fraction = min(1.0, max(grid[0], fraction))
        return float(np.interp(fraction, grid, self.durations[:, kernel]))

    def durations_at_fractions(
        self, fractions: np.ndarray, kernels: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`duration_at_fraction`.

        ``fractions[i]`` is the SM fraction for kernel ``kernels[i]``;
        returns the interpolated durations as one array.  The profiled
        grid is uniform (``p / N``), so the piecewise-linear lookup is a
        direct index-and-lerp into the duration matrix.
        """
        n = self.num_partitions
        frac = np.clip(np.asarray(fractions, dtype=float), 1.0 / n, 1.0)
        position = frac * n - 1.0  # float row index into durations
        low = np.floor(position).astype(int)
        high = np.minimum(low + 1, n - 1)
        weight = position - low
        cols = np.asarray(kernels, dtype=int)
        base = self.durations[low, cols]
        return base + weight * (self.durations[high, cols] - base)

    def stack_costs(self, kernels: Sequence[int]) -> np.ndarray:
        """Per-partition critical-path cost of a kernel-index stack.

        Returns an ``(N,)`` array whose ``p-1``-th element is the Eq. 1
        stack term ``sum_i t[p][k_i] + gap[k_i]`` — every partition size
        at once, which is what the vectorized configuration search
        consumes as one row of its ``(K, N)`` cost matrix.
        """
        cols = np.asarray(list(kernels), dtype=int)
        if cols.size == 0:
            return np.zeros(self.num_partitions, dtype=float)
        return self.durations[:, cols].sum(axis=1) + float(self.gaps[cols].sum())

    def mean_kernel_duration(self) -> float:
        return float(self.durations[-1].mean())


class OfflineProfiler:
    """Profiles applications at deployment time (§4.2.1)."""

    def __init__(
        self,
        config: BlessConfig = DEFAULT_CONFIG,
        gpu_spec: Optional[GPUSpec] = None,
    ):
        self.config = config
        self.gpu_spec = gpu_spec or GPUSpec()
        self._cache: Dict[str, AppProfile] = {}
        # Bumped on recalibration; stamped into every profile produced
        # afterwards so downstream memoization keys change with it.
        self.version = 0

    def recalibrate(self, app_name: Optional[str] = None) -> int:
        """Drop measured profiles and advance the calibration token.

        ``app_name`` limits the re-measurement to one application;
        either way the token advances, so every squad-signature built
        from profiles produced after this call differs from the ones
        built before.  Callers holding an execution-config cache should
        also call its ``invalidate()`` hook to free stale entries
        eagerly (``BlessRuntime.recalibrate_profiles`` does both).
        """
        if app_name is None:
            self._cache.clear()
        else:
            self._cache.pop(app_name, None)
        self.version += 1
        return self.version

    def profile(self, app: Application) -> AppProfile:
        """Profile ``app`` at every partition size (cached per app name)."""
        cached = self._cache.get(app.name)
        if cached is not None:
            return cached

        n = self.config.num_partitions
        kernels = app.kernels
        durations = np.empty((n, len(kernels)), dtype=float)
        for p in range(1, n + 1):
            fraction = p / n
            durations[p - 1] = [k.duration_at(fraction) for k in kernels]
        gaps = np.array([k.dispatch_gap_us for k in kernels], dtype=float)
        elapsed = (durations + gaps[None, :]).cumsum(axis=1)
        demand = np.array([k.sm_demand for k in kernels], dtype=float)
        intensity = np.array([k.mem_intensity for k in kernels], dtype=float)

        # One full run to get overall performance + N partitioned runs
        # (the paper's O(MN) profiling procedure).
        cost = float(elapsed[-1, -1]) + float(elapsed[:, -1].sum())
        profile = AppProfile(
            app_name=app.name,
            num_partitions=n,
            durations=durations,
            elapsed=elapsed,
            sm_demand=demand,
            gaps=gaps,
            mem_intensity=intensity,
            memory_mb=app.memory_mb,
            profiling_cost_us=cost,
            version=self.version,
        )
        self._cache[app.name] = profile
        return profile


def profile_via_simulation(
    app: Application,
    partition: int,
    config: BlessConfig = DEFAULT_CONFIG,
    gpu_spec: Optional[GPUSpec] = None,
) -> List[float]:
    """Measure kernel durations of a solo run on the simulator.

    Cross-validation helper: launches the app alone on an MPS partition
    and returns the per-kernel measured durations, which must agree with
    the analytic profile (the simulator uses the same scaling law).
    """
    from ..gpusim.context import ContextRegistry
    from ..gpusim.device import GPUDevice
    from ..gpusim.engine import SimEngine
    from ..gpusim.kernel import KernelInstance

    spec = gpu_spec or GPUSpec()
    engine = SimEngine(device=GPUDevice(spec))
    registry = ContextRegistry(engine.device)
    fraction = config.partition_fraction(partition)
    context = registry.create(app.app_id, fraction, charge_memory=False)
    queue = engine.create_queue(context)
    measured: List[float] = []

    def record(kernel: KernelInstance) -> None:
        measured.append(kernel.finish_time - kernel.start_time)

    for index in range(len(app.kernels)):
        instance = KernelInstance(spec=app.kernels[index], app_id=app.app_id, seq=index)
        engine.launch(instance, queue, on_finish=record)
    engine.run()
    return measured
