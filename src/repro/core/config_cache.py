"""Squad-signature memoization for the execution configuration search.

The determiner (§4.4) re-runs the full ``C(N-1, K-1)`` composition
search for every squad, yet consecutive squads generated from the same
request mix are near-identical: the same applications contribute the
same kernel-index windows wave after wave.  This module caches the
chosen :class:`~repro.core.configurator.ExecutionConfig` in an LRU
keyed by the squad's *signature* (:meth:`repro.core.squad.KernelSquad.
signature`) so a repeat squad costs one dict lookup instead of a full
search — the decision-latency budget of §6.9.

Cached decisions are stored **positionally** (partition counts and rear
counts as tuples aligned with the signature's canonical app order), so
two squads that differ only in client identity — two clients of the
same model with equal quotas and the same kernel window — share one
entry; the caller rebuilds the per-``app_id`` maps for its own squad.

Invalidation: the signature embeds each profile's ``version`` token,
so recalibrating a profile (``OfflineProfiler.recalibrate``) makes all
stale keys unreachable.  :meth:`ExecutionConfigCache.invalidate` is the
explicit hook that also frees the memory eagerly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Sequence, Tuple

from ..metrics.stats import CacheStats


@dataclass(frozen=True)
class CachedDecision:
    """An :class:`ExecutionConfig` in app-order-independent form.

    ``split`` / ``rear_counts`` hold per-app values in the signature's
    canonical app order; ``None`` split means the unrestricted (NSP)
    configuration was chosen.
    """

    split: Optional[Tuple[int, ...]]
    predicted_duration_us: float
    rear_counts: Optional[Tuple[int, ...]] = None

    def rebuild(self, app_ids: Sequence[str]):
        """Materialize an ``ExecutionConfig`` for a concrete squad.

        ``app_ids`` must be the canonical ordering returned by the same
        ``KernelSquad.signature`` call that produced the cache key.
        """
        from .configurator import ExecutionConfig

        partitions = None
        if self.split is not None:
            partitions = dict(zip(app_ids, self.split))
        rears = None
        if self.rear_counts is not None:
            rears = dict(zip(app_ids, self.rear_counts))
        return ExecutionConfig(
            partitions=partitions,
            predicted_duration_us=self.predicted_duration_us,
            rear_counts=rears,
        )

    @classmethod
    def from_config(cls, config, app_ids: Sequence[str]) -> "CachedDecision":
        """Strip a concrete ``ExecutionConfig`` down to positional form."""
        split = None
        if config.partitions is not None:
            split = tuple(config.partitions[a] for a in app_ids)
        rears = None
        if config.rear_counts is not None:
            rears = tuple(config.rear_counts[a] for a in app_ids)
        return cls(
            split=split,
            predicted_duration_us=config.predicted_duration_us,
            rear_counts=rears,
        )


class ExecutionConfigCache:
    """Bounded LRU of squad signature -> :class:`CachedDecision`."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, CachedDecision]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[CachedDecision]:
        """Look up a decision, refreshing its LRU position on a hit."""
        decision = self._entries.get(key)
        if decision is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return decision

    def put(self, key: Hashable, decision: CachedDecision) -> None:
        """Insert (or refresh) a decision, evicting the LRU tail."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = decision
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self) -> None:
        """Drop every entry — the hook for profile recalibration."""
        self._entries.clear()
        self.stats.invalidations += 1
