"""Concurrent kernel manager (§4.5).

The manager owns every client's GPU contexts and realises a squad's
execution configuration:

* **NSP** — all squad kernels go to each client's default unrestricted
  context;
* **SP / Semi-SP** — the first ``c%`` of each client's squad kernels is
  launched into a pre-established MPS context restricted to the chosen
  partition; once they complete, the manager switches to the client's
  default context (charging the ~50 µs context-switch vacuum, which
  stalls only that client's queue) and launches the remaining kernels
  unrestricted so they can soak up whatever the co-runners left idle.

Restricted contexts are created lazily per (client, partition) and
cached; each creation charges the ~230 MB MPS context memory (§6.9).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..gpusim.context import ContextRegistry, GPUContext
from ..gpusim.device import OutOfMemoryError
from ..gpusim.engine import SimEngine
from ..gpusim.kernel import KernelInstance
from ..gpusim.stream import DeviceQueue
from .config import BlessConfig
from .configurator import ExecutionConfig
from .squad import KernelSquad, SquadEntry

KernelCallback = Callable[[KernelInstance], None]


@dataclass
class SquadExecution:
    """Bookkeeping for one in-flight squad."""

    squad: KernelSquad
    config: ExecutionConfig
    started_at: float
    remaining: int
    on_done: Callable[["SquadExecution"], None]
    finished_at: Optional[float] = None

    @property
    def duration_us(self) -> float:
        if self.finished_at is None:
            raise RuntimeError("squad still executing")
        return self.finished_at - self.started_at


class ConcurrentKernelManager:
    """Launches squads into per-client GPU contexts."""

    def __init__(
        self,
        engine: SimEngine,
        registry: ContextRegistry,
        config: BlessConfig,
    ):
        self.engine = engine
        self.registry = registry
        self.config = config
        self._default_queue: Dict[str, DeviceQueue] = {}
        # Ordered oldest-used-first so context eviction is LRU.
        self._restricted_queue: "OrderedDict[Tuple[str, int], DeviceQueue]" = (
            OrderedDict()
        )
        self.context_switches = 0
        self.context_evictions = 0
        self.context_crashes = 0
        self.oom_fallbacks = 0
        self.peak_context_memory_mb = 0
        # Optional DecisionTracer (obs/), wired by the runtime's setup.
        self.trace = None

    # ------------------------------------------------------------------
    # Context/queue management
    # ------------------------------------------------------------------
    def register_client(self, app_id: str) -> DeviceQueue:
        """Create the client's default (unrestricted) context and queue.

        Idempotent: re-registering an already-known client (e.g. while
        recovering from a context crash) returns the existing default
        queue instead of raising, so recovery paths can call it without
        tracking registration state.
        """
        queue = self._default_queue.get(app_id)
        if queue is not None and not queue.dead:
            return queue
        context = self.registry.create(
            owner=app_id, sm_limit=1.0, label="default", charge_memory=False
        )
        queue = self.engine.create_queue(context, label=f"{app_id}/default")
        self._default_queue[app_id] = queue
        return queue

    def default_queue(self, app_id: str) -> DeviceQueue:
        return self._default_queue[app_id]

    @property
    def context_memory_mb(self) -> int:
        """Device memory currently held by cached restricted contexts."""
        return len(self._restricted_queue) * self.engine.device.spec.mps_context_mb

    def _ensure_context_memory(self) -> None:
        """Make room for one more restricted (MPS) context.

        Each restricted context pins ~``mps_context_mb`` of device
        memory (§6.9), so an unbounded (client, partition) cache can
        exhaust the GPU.  When the pool cannot fit another context,
        idle cached contexts are evicted least-recently-used first; if
        none is idle the caller gets a clear ``OutOfMemoryError``
        instead of the raw allocator message.
        """
        spec = self.engine.device.spec
        memory = self.engine.device.memory
        if memory.free_mb >= spec.mps_context_mb:
            return
        for key, queue in list(self._restricted_queue.items()):
            if not queue.empty:
                continue  # kernels in flight — not evictable
            del self._restricted_queue[key]
            self.engine.remove_queue(queue)
            self.registry.destroy(queue.context)
            self.context_evictions += 1
            if self.trace is not None:
                self.trace.emit(
                    "context.evicted",
                    key[0],
                    partition=key[1],
                    context_id=queue.context.context_id,
                )
            if memory.free_mb >= spec.mps_context_mb:
                return
        raise OutOfMemoryError(
            f"cannot create another MPS context ({spec.mps_context_mb}MB): "
            f"{memory.free_mb}MB free and all "
            f"{len(self._restricted_queue)} cached contexts are busy"
        )

    def restricted_queue(self, app_id: str, partition: int) -> DeviceQueue:
        """The client's device queue for an ``n/N``-restricted context."""
        key = (app_id, partition)
        queue = self._restricted_queue.get(key)
        if queue is None:
            self._ensure_context_memory()
            fraction = self.config.partition_fraction(partition)
            context = self.registry.create(
                owner=app_id, sm_limit=fraction, label=f"mps-{partition}"
            )
            queue = self.engine.create_queue(
                context, label=f"{app_id}/mps-{partition}"
            )
            self._restricted_queue[key] = queue
            self.peak_context_memory_mb = max(
                self.peak_context_memory_mb, self.context_memory_mb
            )
        else:
            self._restricted_queue.move_to_end(key)
        return queue

    def handle_context_crash(self, context: GPUContext) -> None:
        """Forget cached queues bonded to a crashed (torn-down) context.

        The engine has already killed the queues; this drops them from
        the cache so the next squad lazily re-creates fresh contexts,
        and re-registers the owner if its default context died too.
        """
        self.context_crashes += 1
        for key in [
            k for k, q in self._restricted_queue.items() if q.context is context
        ]:
            del self._restricted_queue[key]
        owner = context.owner
        default = self._default_queue.get(owner)
        if default is not None and default.dead:
            del self._default_queue[owner]
            self.register_client(owner)

    # ------------------------------------------------------------------
    # Squad execution
    # ------------------------------------------------------------------
    def execute_squad(
        self,
        squad: KernelSquad,
        exec_config: ExecutionConfig,
        on_kernel_finish: KernelCallback,
        on_done: Callable[[SquadExecution], None],
    ) -> SquadExecution:
        """Launch every kernel of ``squad`` per ``exec_config``.

        ``on_kernel_finish`` fires for each completed kernel (the
        runtime uses it to detect request completions); ``on_done``
        fires once when the whole squad has drained.
        """
        execution = SquadExecution(
            squad=squad,
            config=exec_config,
            started_at=self.engine.now,
            remaining=squad.total_kernels,
            on_done=on_done,
        )

        def kernel_done(kernel: KernelInstance) -> None:
            on_kernel_finish(kernel)
            execution.remaining -= 1
            if execution.remaining == 0:
                execution.finished_at = self.engine.now
                execution.on_done(execution)

        for app_id, entry in squad.entries.items():
            self._launch_entry(app_id, entry, exec_config, kernel_done)
        return execution

    def _launch_entry(
        self,
        app_id: str,
        entry: SquadEntry,
        exec_config: ExecutionConfig,
        kernel_done: KernelCallback,
    ) -> None:
        indices = entry.kernel_indices
        if exec_config.partitions is None:
            self._launch_slice(entry, indices, self._default_queue[app_id], kernel_done)
            return

        partition = exec_config.partitions[app_id]
        if exec_config.rear_counts is not None:
            rear_count = min(exec_config.rear_counts.get(app_id, 0), len(indices))
            front_count = len(indices) - rear_count
        else:
            front_count = int(math.floor(self.config.split_ratio * len(indices) + 0.5))
            front_count = min(front_count, len(indices))
        front, rear = indices[:front_count], indices[front_count:]

        if not front:
            self._launch_slice(entry, rear, self._default_queue[app_id], kernel_done)
            return

        try:
            restricted = self.restricted_queue(app_id, partition)
        except OutOfMemoryError:
            # Degrade rather than die: with no memory for another MPS
            # context, run the whole entry unrestricted (NSP for this
            # client only) and let a later squad retry spatial sharing.
            self.oom_fallbacks += 1
            if self.trace is not None:
                self.trace.emit(
                    "oom.fallback",
                    app_id,
                    partition=partition,
                    kernels=len(indices),
                )
            self._launch_slice(entry, indices, self._default_queue[app_id], kernel_done)
            return
        if not rear:
            self._launch_slice(entry, front, restricted, kernel_done)
            return

        # Semi-SP: rear kernels launch only after the restricted part
        # completes, through the default context after a context switch.
        def front_done(kernel: KernelInstance) -> None:
            kernel_done(kernel)
            self.context_switches += 1
            if self.trace is not None:
                self.trace.emit(
                    "semisp.switch",
                    app_id,
                    partition=partition,
                    front_kernels=len(front),
                    rear_kernels=len(rear),
                )
            self.engine.schedule(
                self.engine.device.spec.context_switch_us,
                lambda: self._launch_slice(
                    entry, rear, self._default_queue[app_id], kernel_done
                ),
            )

        self._launch_slice(
            entry, front, restricted, kernel_done, last_callback=front_done
        )

    def _launch_slice(
        self,
        entry: SquadEntry,
        indices: List[int],
        queue: DeviceQueue,
        kernel_done: KernelCallback,
        last_callback: Optional[KernelCallback] = None,
    ) -> None:
        if not indices:
            return
        kernels = [entry.request.make_kernel(index) for index in indices]
        callbacks: List[Optional[KernelCallback]] = [kernel_done] * len(indices)
        if last_callback is not None:
            callbacks[-1] = last_callback
        self.engine.launch_batch(kernels, queue, callbacks=callbacks)
