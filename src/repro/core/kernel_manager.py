"""Concurrent kernel manager (§4.5).

The manager owns every client's GPU contexts and realises a squad's
execution configuration:

* **NSP** — all squad kernels go to each client's default unrestricted
  context;
* **SP / Semi-SP** — the first ``c%`` of each client's squad kernels is
  launched into a pre-established MPS context restricted to the chosen
  partition; once they complete, the manager switches to the client's
  default context (charging the ~50 µs context-switch vacuum, which
  stalls only that client's queue) and launches the remaining kernels
  unrestricted so they can soak up whatever the co-runners left idle.

Restricted contexts are created lazily per (client, partition) and
cached; each creation charges the ~230 MB MPS context memory (§6.9).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..gpusim.context import ContextRegistry, GPUContext
from ..gpusim.device import OutOfMemoryError
from ..gpusim.engine import SimEngine
from ..gpusim.kernel import KernelInstance
from ..gpusim.stream import DeviceQueue
from .config import BlessConfig
from .configurator import ExecutionConfig
from .squad import KernelSquad, SquadEntry

KernelCallback = Callable[[KernelInstance], None]


@dataclass
class SquadExecution:
    """Bookkeeping for one in-flight squad."""

    squad: KernelSquad
    config: ExecutionConfig
    started_at: float
    remaining: int
    on_done: Callable[["SquadExecution"], None]
    finished_at: Optional[float] = None
    # Squad-boundary preemption bookkeeping (gateway runs only; all
    # three stay empty/zero on the default path).  ``rear_waiting``
    # holds each Semi-SP entry's rear kernel indices until they are
    # actually launched — whoever pops the entry first (the deferred
    # rear launch or a preemptor) owns those kernels.  ``preempted``
    # lists app_ids already withdrawn from this squad.  ``unconfirmed``
    # counts launch bursts still inside their launch-overhead window
    # (issued, not yet visible in a device queue) — a preemptor must
    # wait them out, since pending-queue withdrawal cannot see them.
    rear_waiting: Dict[str, List[int]] = field(default_factory=dict)
    preempted: Set[str] = field(default_factory=set)
    unconfirmed: int = 0

    @property
    def duration_us(self) -> float:
        if self.finished_at is None:
            raise RuntimeError("squad still executing")
        return self.finished_at - self.started_at


class ConcurrentKernelManager:
    """Launches squads into per-client GPU contexts."""

    def __init__(
        self,
        engine: SimEngine,
        registry: ContextRegistry,
        config: BlessConfig,
    ):
        self.engine = engine
        self.registry = registry
        self.config = config
        self._default_queue: Dict[str, DeviceQueue] = {}
        # Ordered oldest-used-first so context eviction is LRU.
        self._restricted_queue: "OrderedDict[Tuple[str, int], DeviceQueue]" = (
            OrderedDict()
        )
        self.context_switches = 0
        self.context_evictions = 0
        self.context_crashes = 0
        self.oom_fallbacks = 0
        self.peak_context_memory_mb = 0
        # Optional DecisionTracer (obs/), wired by the runtime's setup.
        self.trace = None

    # ------------------------------------------------------------------
    # Context/queue management
    # ------------------------------------------------------------------
    def register_client(self, app_id: str) -> DeviceQueue:
        """Create the client's default (unrestricted) context and queue.

        Idempotent: re-registering an already-known client (e.g. while
        recovering from a context crash) returns the existing default
        queue instead of raising, so recovery paths can call it without
        tracking registration state.
        """
        queue = self._default_queue.get(app_id)
        if queue is not None and not queue.dead:
            return queue
        context = self.registry.create(
            owner=app_id, sm_limit=1.0, label="default", charge_memory=False
        )
        queue = self.engine.create_queue(context, label=f"{app_id}/default")
        self._default_queue[app_id] = queue
        return queue

    def default_queue(self, app_id: str) -> DeviceQueue:
        return self._default_queue[app_id]

    @property
    def context_memory_mb(self) -> int:
        """Device memory currently held by cached restricted contexts."""
        return len(self._restricted_queue) * self.engine.device.spec.mps_context_mb

    def _ensure_context_memory(self) -> None:
        """Make room for one more restricted (MPS) context.

        Each restricted context pins ~``mps_context_mb`` of device
        memory (§6.9), so an unbounded (client, partition) cache can
        exhaust the GPU.  When the pool cannot fit another context,
        idle cached contexts are evicted least-recently-used first; if
        none is idle the caller gets a clear ``OutOfMemoryError``
        instead of the raw allocator message.
        """
        spec = self.engine.device.spec
        memory = self.engine.device.memory
        if memory.free_mb >= spec.mps_context_mb:
            return
        for key, queue in list(self._restricted_queue.items()):
            if not queue.empty:
                continue  # kernels in flight — not evictable
            del self._restricted_queue[key]
            self.engine.remove_queue(queue)
            self.registry.destroy(queue.context)
            self.context_evictions += 1
            if self.trace is not None:
                self.trace.emit(
                    "context.evicted",
                    key[0],
                    partition=key[1],
                    context_id=queue.context.context_id,
                )
            if memory.free_mb >= spec.mps_context_mb:
                return
        raise OutOfMemoryError(
            f"cannot create another MPS context ({spec.mps_context_mb}MB): "
            f"{memory.free_mb}MB free and all "
            f"{len(self._restricted_queue)} cached contexts are busy"
        )

    def restricted_queue(self, app_id: str, partition: int) -> DeviceQueue:
        """The client's device queue for an ``n/N``-restricted context."""
        key = (app_id, partition)
        queue = self._restricted_queue.get(key)
        if queue is None:
            self._ensure_context_memory()
            fraction = self.config.partition_fraction(partition)
            context = self.registry.create(
                owner=app_id, sm_limit=fraction, label=f"mps-{partition}"
            )
            queue = self.engine.create_queue(
                context, label=f"{app_id}/mps-{partition}"
            )
            self._restricted_queue[key] = queue
            self.peak_context_memory_mb = max(
                self.peak_context_memory_mb, self.context_memory_mb
            )
        else:
            self._restricted_queue.move_to_end(key)
        return queue

    def handle_context_crash(self, context: GPUContext) -> None:
        """Forget cached queues bonded to a crashed (torn-down) context.

        The engine has already killed the queues; this drops them from
        the cache so the next squad lazily re-creates fresh contexts,
        and re-registers the owner if its default context died too.
        """
        self.context_crashes += 1
        for key in [
            k for k, q in self._restricted_queue.items() if q.context is context
        ]:
            del self._restricted_queue[key]
        owner = context.owner
        default = self._default_queue.get(owner)
        if default is not None and default.dead:
            del self._default_queue[owner]
            self.register_client(owner)

    # ------------------------------------------------------------------
    # Squad execution
    # ------------------------------------------------------------------
    def execute_squad(
        self,
        squad: KernelSquad,
        exec_config: ExecutionConfig,
        on_kernel_finish: KernelCallback,
        on_done: Callable[[SquadExecution], None],
        preemptible: bool = False,
    ) -> SquadExecution:
        """Launch every kernel of ``squad`` per ``exec_config``.

        ``on_kernel_finish`` fires for each completed kernel (the
        runtime uses it to detect request completions); ``on_done``
        fires once when the whole squad has drained.  ``preemptible``
        turns on the gateway's squad-boundary preemption bookkeeping
        (launch confirmations, rear-slice ownership) — off by default,
        where the launch sequence is byte-identical to the historical
        path.
        """
        execution = SquadExecution(
            squad=squad,
            config=exec_config,
            started_at=self.engine.now,
            remaining=squad.total_kernels,
            on_done=on_done,
        )

        def kernel_done(kernel: KernelInstance) -> None:
            on_kernel_finish(kernel)
            execution.remaining -= 1
            if execution.remaining == 0:
                execution.finished_at = self.engine.now
                execution.on_done(execution)

        tracked = execution if preemptible else None
        for app_id, entry in squad.entries.items():
            self._launch_entry(app_id, entry, exec_config, kernel_done, tracked)
        return execution

    def preempt_squad(
        self, execution: SquadExecution, app_ids: List[str]
    ) -> Dict[str, List[int]]:
        """Withdraw the named apps' unstarted kernels from a live squad.

        Squad-boundary preemption, cooperative half: running kernels
        finish naturally; pending kernels are pulled back from the
        device queues (:meth:`SimEngine.preempt_pending`) and any
        Semi-SP rear slice still parked on the execution is claimed.
        Each withdrawn request is rewound (``next_kernel`` back to its
        first withdrawn index) so the next squad re-schedules the same
        kernels, and the squad's ``remaining`` count is settled so
        ``on_done`` still fires exactly once.  The caller must invoke
        ``execution.on_done`` itself if ``remaining`` hits zero here
        (no completion is coming to do it).

        Only valid for executions launched with ``preemptible=True``
        (otherwise in-flight launch bursts are untracked).  Returns the
        withdrawn kernel indices per app.
        """
        withdrawn: Dict[str, List[int]] = {}
        for app_id in app_ids:
            entry = execution.squad.entries.get(app_id)
            if entry is None or app_id in execution.preempted:
                continue
            removed = self.engine.preempt_pending(
                app_id, entry.request.request_id
            )
            indices = [kernel.seq for kernel, _callback in removed]
            rear = execution.rear_waiting.pop(app_id, None)
            if rear:
                indices.extend(rear)
            if not indices:
                continue
            execution.preempted.add(app_id)
            # Queue order is FIFO and squads assign contiguous index
            # windows, so the withdrawn set is exactly the entry's tail.
            entry.request.next_kernel = min(indices)
            execution.remaining -= len(indices)
            withdrawn[app_id] = sorted(indices)
        return withdrawn

    def _launch_entry(
        self,
        app_id: str,
        entry: SquadEntry,
        exec_config: ExecutionConfig,
        kernel_done: KernelCallback,
        execution: Optional[SquadExecution] = None,
    ) -> None:
        indices = entry.kernel_indices
        if exec_config.partitions is None:
            self._launch_slice(
                entry, indices, self._default_queue[app_id], kernel_done, execution
            )
            return

        partition = exec_config.partitions[app_id]
        if exec_config.rear_counts is not None:
            rear_count = min(exec_config.rear_counts.get(app_id, 0), len(indices))
            front_count = len(indices) - rear_count
        else:
            front_count = int(math.floor(self.config.split_ratio * len(indices) + 0.5))
            front_count = min(front_count, len(indices))
        front, rear = indices[:front_count], indices[front_count:]

        if not front:
            self._launch_slice(
                entry, rear, self._default_queue[app_id], kernel_done, execution
            )
            return

        try:
            restricted = self.restricted_queue(app_id, partition)
        except OutOfMemoryError:
            # Degrade rather than die: with no memory for another MPS
            # context, run the whole entry unrestricted (NSP for this
            # client only) and let a later squad retry spatial sharing.
            self.oom_fallbacks += 1
            if self.trace is not None:
                self.trace.emit(
                    "oom.fallback",
                    app_id,
                    partition=partition,
                    kernels=len(indices),
                )
            self._launch_slice(
                entry, indices, self._default_queue[app_id], kernel_done, execution
            )
            return
        if not rear:
            self._launch_slice(entry, front, restricted, kernel_done, execution)
            return

        # Semi-SP: rear kernels launch only after the restricted part
        # completes, through the default context after a context switch.
        # In preemptible mode the rear indices are parked on the
        # execution until launched, so a preemptor arriving during the
        # front slice (or the context-switch vacuum) can claim them.
        if execution is not None:
            execution.rear_waiting[app_id] = list(rear)

        def launch_rear() -> None:
            if execution is not None:
                if execution.rear_waiting.pop(app_id, None) is None:
                    return  # claimed by a preemptor meanwhile
            self._launch_slice(
                entry, rear, self._default_queue[app_id], kernel_done, execution
            )

        def front_done(kernel: KernelInstance) -> None:
            kernel_done(kernel)
            if execution is not None and app_id not in execution.rear_waiting:
                # Rear already withdrawn: no switch, no rear launch.
                return
            self.context_switches += 1
            if self.trace is not None:
                self.trace.emit(
                    "semisp.switch",
                    app_id,
                    partition=partition,
                    front_kernels=len(front),
                    rear_kernels=len(rear),
                )
            self.engine.schedule(
                self.engine.device.spec.context_switch_us, launch_rear
            )

        self._launch_slice(
            entry, front, restricted, kernel_done, execution, last_callback=front_done
        )

    def _launch_slice(
        self,
        entry: SquadEntry,
        indices: List[int],
        queue: DeviceQueue,
        kernel_done: KernelCallback,
        execution: Optional[SquadExecution] = None,
        last_callback: Optional[KernelCallback] = None,
    ) -> None:
        if not indices:
            return
        kernels = [entry.request.make_kernel(index) for index in indices]
        callbacks: List[Optional[KernelCallback]] = [kernel_done] * len(indices)
        if last_callback is not None:
            callbacks[-1] = last_callback
        overhead = self.engine.device.spec.kernel_launch_us
        if execution is not None and overhead > 0:
            # Mark the burst in flight until its visibility event runs.
            # The confirmation is scheduled *after* launch_batch, so its
            # event seq is larger and it fires after the kernels land in
            # the queue at the same timestamp — a preemptor observing
            # unconfirmed == 0 can trust the pending queues.
            execution.unconfirmed += 1

            def confirm() -> None:
                execution.unconfirmed -= 1

            self.engine.launch_batch(kernels, queue, callbacks=callbacks)
            self.engine.schedule(overhead, confirm)
            return
        self.engine.launch_batch(kernels, queue, callbacks=callbacks)
