"""Kernel squads and their generation (§4.3.2).

A kernel squad is a group of kernels drawn from the currently active
requests.  In each generation step the scheduler picks the next kernel
of the *laggiest* request — the paper orders requests by relative
progress ``P̃ = P_r / P_e`` (smallest first); this reproduction uses
the equivalent deadline-risk urgency of ``repro.core.progress``, which
also admits SLO targets (§6.5).  Generation stops when (1) the squad
reaches the configured maximum kernel count, or (2) the selected
kernel is the last kernel of a request — so request completions always
coincide with squad boundaries.

With tracing on, each generated squad is recorded as a
``squad.composed`` event whose ``progress`` arg carries every active
request's ``P̃`` at composition time (``docs/observability.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Hashable, List, Mapping, Sequence, Tuple

from ..apps.application import Request
from .config import BlessConfig
from .progress import RequestProgress

if TYPE_CHECKING:
    from .profiler import AppProfile


@dataclass
class SquadEntry:
    """The kernels one request contributes to a squad."""

    request: Request
    kernel_indices: List[int] = field(default_factory=list)

    @property
    def app_id(self) -> str:
        return self.request.app.app_id

    @property
    def count(self) -> int:
        return len(self.kernel_indices)


@dataclass
class KernelSquad:
    """A generated squad: per-request kernel slices, in selection order."""

    entries: Dict[str, SquadEntry] = field(default_factory=dict)

    @property
    def total_kernels(self) -> int:
        return sum(e.count for e in self.entries.values())

    @property
    def num_requests(self) -> int:
        return len(self.entries)

    @property
    def app_ids(self) -> List[str]:
        return list(self.entries)

    def entry(self, app_id: str) -> SquadEntry:
        return self.entries[app_id]

    def signature(
        self, profiles: Mapping[str, "AppProfile"], config: BlessConfig
    ) -> Tuple[Hashable, List[str]]:
        """Memoization key for the execution-configuration search.

        Returns ``(key, app_ids)`` where ``key`` hashes everything the
        determiner's decision depends on — per app: the profiled model,
        its calibration ``version``, its provisioned quota, and its
        kernel-index window (which, given the profile, fixes the
        per-kernel duration vector exactly — a collision-free refinement
        of duration bucketing); globally: ``K``, ``N`` and the search
        knobs.  ``app_ids`` is the canonical (sorted-term) app order the
        positional cached decision is aligned with.

        The per-app terms are sorted, so the key is independent of both
        squad insertion order and client identity: two clients serving
        the same model at the same quota over the same kernel window
        produce the same key and share one cached decision.
        """
        terms = []
        for app_id, entry in self.entries.items():
            profile = profiles[app_id]
            terms.append(
                (
                    (
                        profile.app_name,
                        profile.version,
                        entry.request.app.quota,
                        tuple(entry.kernel_indices),
                    ),
                    app_id,
                )
            )
        terms.sort(key=lambda t: t[0])
        key: Hashable = (
            tuple(t[0] for t in terms),
            len(terms),
            config.num_partitions,
            config.nsp_predictor,
            config.semi_sp_mode,
            config.max_enumerated_configs,
        )
        return key, [t[1] for t in terms]

    def add(self, request: Request, kernel_index: int) -> None:
        app_id = request.app.app_id
        entry = self.entries.get(app_id)
        if entry is None:
            entry = SquadEntry(request=request)
            self.entries[app_id] = entry
        entry.kernel_indices.append(kernel_index)


def generate_squad(
    progresses: Sequence[RequestProgress],
    now: float,
    config: BlessConfig,
) -> KernelSquad:
    """Build the next kernel squad from the active requests.

    Implements the paper's generation loop (Fig. 6): repeatedly select a
    kernel from the laggiest request until the squad is full or a
    request's final kernel is selected.  With the multi-task scheduler
    ablated (Fig. 20), requests are drained round-robin instead of by
    progress.
    """
    squad = KernelSquad()
    candidates = [p for p in progresses if not p.exhausted]
    if not candidates:
        return squad

    limit = config.max_kernels_per_squad
    solo = len(candidates) == 1
    if solo:
        # Solo streaming: keep squads short so a newly arriving request
        # gets resources at the next (near) boundary (§3.3).  Both a
        # kernel-count cap and a time budget apply — counts alone do
        # not bound the reconfiguration latency when kernels are large.
        limit = max(1, round(limit * config.solo_squad_fraction))

    accumulated_us = 0.0
    rr_index = 0
    while squad.total_kernels < limit:
        available = [p for p in candidates if not p.exhausted]
        if not available:
            break
        if config.use_multitask_scheduler:
            # Final tie-break: quota-weighted interleaving — the request
            # with the smallest (kernels already in this squad / quota)
            # goes next.  Exactly-tied requests (two identical apps
            # arriving at the same instant) interleave instead of one
            # filling the squad, and a 8/9-quota app correctly receives
            # ~8x the kernels of a 1/9-quota co-runner at equal lag.
            # ``slo_aware`` swaps in the deadline-pressure ordering for
            # gateway-annotated requests; the default flag preserves the
            # legacy arithmetic byte-for-byte.
            if config.slo_aware:
                def key(p: RequestProgress):
                    entry = squad.entries.get(p.request.app.app_id)
                    in_squad = entry.count if entry is not None else 0
                    return (p.slo_urgency(now), -in_squad / p.request.app.quota)
            else:
                def key(p: RequestProgress):
                    entry = squad.entries.get(p.request.app.app_id)
                    in_squad = entry.count if entry is not None else 0
                    return (p.urgency(now), -in_squad / p.request.app.quota)

            chosen = max(available, key=key)
        else:
            chosen = available[rr_index % len(available)]
            rr_index += 1
        index = chosen.request.next_kernel
        end = index + 1
        boundaries = chosen.request.app.graph_boundaries
        if boundaries is not None:
            # CUDA-graph granularity (§6.10): graphs are indivisible —
            # take every kernel to the end of the current graph.
            from .graphs import graph_end

            end = graph_end(boundaries, index, chosen.request.total_kernels)
        for kernel_index in range(index, end):
            squad.add(chosen.request, kernel_index)
            if solo:
                accumulated_us += chosen.profile.step_cost(
                    chosen.profile.num_partitions, kernel_index
                )
        chosen.request.next_kernel = end
        if chosen.request.all_scheduled:
            break
        if solo and accumulated_us >= config.solo_squad_budget_us:
            break
    return squad
