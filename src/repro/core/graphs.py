"""CUDA-graph scheduling granularity (§6.10).

The paper: "techniques such as CUDA graphs allow for launching a
sequence of kernels to the GPU with a single API call.  To support
applications implemented with these techniques, BLESS can be adapted by
switching the scheduling granularity from kernels to graphs."

:func:`with_cuda_graphs` rewrites an application as a sequence of
graphs: inside a graph the host dispatch gaps disappear (that is the
point of CUDA graphs — no per-kernel launch round trips), and the
scheduler treats each graph as indivisible, selecting whole graphs into
squads.  The trade-off is exactly the paper's: fewer host stalls per
request, but coarser scheduling (a squad can overshoot its kernel cap
by up to one graph, and resources re-configure only at graph
boundaries).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence

from ..apps.application import Application
from ..gpusim.kernel import KernelSpec


def graph_boundaries_for(app: Application, graph_size: int) -> List[int]:
    """Kernel indices at which each graph starts (uniform chunking).

    Memcpy kernels break graphs (CUDA graphs capture compute streams;
    transfers typically sit outside the captured section).
    """
    if graph_size < 1:
        raise ValueError("graph_size must be at least 1")
    boundaries = []
    run = 0
    for index, kernel in enumerate(app.kernels):
        if not kernel.is_compute:
            boundaries.append(index)      # a transfer is its own unit
            run = 0
            continue
        if run == 0:
            boundaries.append(index)
        run += 1
        if run >= graph_size:
            run = 0
    return boundaries


def with_cuda_graphs(app: Application, graph_size: int = 10) -> Application:
    """An equivalent application scheduled at graph granularity.

    Kernels keep their compute characteristics; dispatch gaps inside a
    graph are folded away (single launch per graph), with each graph's
    first kernel keeping a small capture-replay launch stall.
    """
    boundaries = set(graph_boundaries_for(app, graph_size))
    kernels: List[KernelSpec] = []
    for index, kernel in enumerate(app.kernels):
        if index in boundaries or not kernel.is_compute:
            kernels.append(kernel)
        else:
            # Inside a graph: the host is not involved between kernels.
            kernels.append(replace(kernel, dispatch_gap_us=0.0))
    graphed = Application(
        name=app.name,
        kind=app.kind,
        kernels=kernels,
        memory_mb=app.memory_mb,
        quota=app.quota,
        app_id=app.app_id,
        graph_boundaries=sorted(boundaries),
    )
    return graphed


def graph_end(boundaries: Sequence[int], index: int, total: int) -> int:
    """Exclusive end of the graph containing kernel ``index``."""
    for boundary in boundaries:
        if boundary > index:
            return boundary
    return total
