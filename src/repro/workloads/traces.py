"""Synthetic real-world trace generators (workload D).

The paper replays two production traces:

* the **Twitter 2018 streaming trace** [5] — dense, diurnally-modulated
  request stream, widely used in multi-user inference systems;
* the **Microsoft Azure serverless function trace** [74] — sparse,
  bursty, heavy-tailed inter-arrival gaps (most functions are invoked
  rarely), which is where BLESS's bubble squeezing pays off most
  ("the reduction mainly comes from the abundant bubbles originating
  from the low load feature of this trace", §6.3).

We have neither archive offline, so we generate seeded synthetic traces
with the same first-order shape: Twitter = non-homogeneous Poisson with
a diurnal rate curve and occasional bursts at moderate-to-dense load;
Azure = on/off process with Pareto-distributed off periods and short
active bursts at low average load.
"""

from __future__ import annotations

from typing import List

import numpy as np


def _thinned_poisson(
    rng: np.random.Generator,
    duration_us: float,
    rate_fn,
    max_rate: float,
) -> List[float]:
    """Non-homogeneous Poisson arrivals by thinning."""
    arrivals: List[float] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / max_rate)
        if t >= duration_us:
            break
        if rng.uniform() <= rate_fn(t) / max_rate:
            arrivals.append(t)
    return arrivals


def twitter_trace(
    duration_us: float,
    mean_interval_us: float,
    seed: int = 0,
    diurnal_periods: float = 2.0,
    burstiness: float = 0.35,
) -> List[float]:
    """A dense diurnal trace in the style of the Twitter 2018 stream.

    ``mean_interval_us`` sets the average inter-arrival gap; the rate is
    modulated sinusoidally (``diurnal_periods`` full cycles across the
    window) with multiplicative burst noise.
    """
    if mean_interval_us <= 0:
        raise ValueError("mean_interval_us must be positive")
    rng = np.random.default_rng(seed)
    base_rate = 1.0 / mean_interval_us
    omega = 2.0 * np.pi * diurnal_periods / duration_us

    # Burst windows: short intervals where the rate doubles.
    n_bursts = max(1, int(duration_us / (mean_interval_us * 50)))
    burst_starts = rng.uniform(0, duration_us, size=n_bursts)
    burst_len = mean_interval_us * 10

    def rate(t: float) -> float:
        diurnal = 1.0 + burstiness * np.sin(omega * t)
        burst = 1.0
        for start in burst_starts:
            if start <= t < start + burst_len:
                burst = 2.0
                break
        return base_rate * diurnal * burst

    max_rate = base_rate * (1.0 + burstiness) * 2.0
    return _thinned_poisson(rng, duration_us, rate, max_rate)


def azure_trace(
    duration_us: float,
    mean_interval_us: float,
    seed: int = 0,
    pareto_shape: float = 1.6,
    burst_size_mean: float = 3.0,
) -> List[float]:
    """A sparse heavy-tailed trace in the style of Azure Functions.

    Arrivals come in short bursts separated by Pareto-distributed idle
    gaps, yielding low average load with occasional activity — abundant
    GPU bubbles between invocations.
    """
    if mean_interval_us <= 0:
        raise ValueError("mean_interval_us must be positive")
    rng = np.random.default_rng(seed)
    arrivals: List[float] = []
    # Calibrate the Pareto scale so the long-run mean interval matches.
    burst_mean = max(1.0, burst_size_mean)
    gap_mean = mean_interval_us * burst_mean
    pareto_scale = gap_mean * (pareto_shape - 1.0) / pareto_shape
    t = 0.0
    while t < duration_us:
        gap = pareto_scale * (1.0 + rng.pareto(pareto_shape))
        t += gap
        if t >= duration_us:
            break
        burst = 1 + rng.poisson(burst_mean - 1.0)
        intra = mean_interval_us * 0.1
        for i in range(burst):
            at = t + i * intra
            if at < duration_us:
                arrivals.append(at)
    return arrivals


def flash_crowd_trace(
    duration_us: float,
    mean_interval_us: float,
    seed: int = 0,
    spike_start_frac: float = 0.4,
    spike_duration_frac: float = 0.15,
    spike_magnitude: float = 8.0,
) -> List[float]:
    """A steady stream with one flash-crowd window (scenario zoo).

    Baseline Poisson arrivals at ``1 / mean_interval_us``; inside the
    window ``[spike_start_frac, spike_start_frac + spike_duration_frac]``
    (fractions of ``duration_us``) the rate jumps by
    ``spike_magnitude``x — the breaking-news / product-launch shape that
    stresses admission control far harder than a diurnal curve.  The
    quoted mean interval is the *off-spike* baseline, so raising the
    magnitude raises the offered load.
    """
    if mean_interval_us <= 0:
        raise ValueError("mean_interval_us must be positive")
    if spike_magnitude < 1.0:
        raise ValueError("spike_magnitude must be >= 1")
    if not 0.0 <= spike_start_frac < 1.0:
        raise ValueError("spike_start_frac must be in [0, 1)")
    if spike_duration_frac <= 0.0:
        raise ValueError("spike_duration_frac must be positive")
    rng = np.random.default_rng(seed)
    base_rate = 1.0 / mean_interval_us
    spike_start = spike_start_frac * duration_us
    spike_end = spike_start + spike_duration_frac * duration_us

    def rate(t: float) -> float:
        if spike_start <= t < spike_end:
            return base_rate * spike_magnitude
        return base_rate

    return _thinned_poisson(rng, duration_us, rate, base_rate * spike_magnitude)


def mean_interarrival(trace: List[float]) -> float:
    """Average gap between consecutive arrivals (testing helper)."""
    if len(trace) < 2:
        return float("inf")
    return float(np.diff(np.asarray(trace)).mean())
