"""The paper's workload suite (Table 2) as reusable factories.

Table 2 defines five workloads over the Table-1 applications:

=========  =====================================================
A          high load — closed-loop, interval = 1/3 solo latency
B          medium load — interval = 2/3 solo latency
C          low load — interval = 1x solo latency (matches REEF's low)
D          real-world traces (Twitter 2018, Azure Functions)
E          biased — R50 at 8/9 quota + low load, co-runner at 1/9
           quota + dense load
=========  =====================================================

plus the quota menus: seven 2-model splits, one 4-model set
(10/20/30/40%), one 8-model set (5/5/10/10/15/15/20/20%).

A workload here is a list of :class:`WorkloadBinding`s — an application
(with quota set) plus a zero-argument factory producing a *fresh*
arrival process, because arrival processes are stateful.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import partial
from typing import Callable, List, Sequence, Tuple

from ..apps.application import Application
from ..apps.models import MODEL_NAMES, inference_app, training_app
from .arrivals import ArrivalProcess, ClosedLoop, Continuous, TraceReplay
from .traces import azure_trace, twitter_trace

# Interval factors for the closed-loop loads (fraction of solo latency).
LOAD_FACTORS = {"A": 1.0 / 3.0, "B": 2.0 / 3.0, "C": 1.0}

# Quota menus straight from Table 2.
QUOTAS_2MODEL: Tuple[Tuple[float, float], ...] = (
    (1 / 3, 2 / 3),
    (7 / 18, 11 / 18),
    (4 / 9, 5 / 9),
    (1 / 2, 1 / 2),
    (5 / 9, 4 / 9),
    (11 / 18, 7 / 18),
    (2 / 3, 1 / 3),
)
QUOTAS_4MODEL: Tuple[float, ...] = (0.10, 0.20, 0.30, 0.40)
QUOTAS_8MODEL: Tuple[float, ...] = (0.05, 0.05, 0.10, 0.10, 0.15, 0.15, 0.20, 0.20)


@dataclass(frozen=True)
class WorkloadBinding:
    """One deployed application plus its arrival-process factory."""

    app: Application
    process_factory: Callable[[], ArrivalProcess]

    def fresh_process(self) -> ArrivalProcess:
        return self.process_factory()


def estimated_solo_us(app: Application) -> float:
    """Estimated solo-run latency used to set closed-loop intervals.

    The paper measures each model's solo latency once and derives the
    request interval from it; we use the analytic solo latency (kernel
    durations plus dispatch gaps plus one launch) for the same purpose.
    """
    return app.solo_span_us + 3.0


def bind_closed_loop(
    apps: Sequence[Application],
    factor: float,
    requests: int = 20,
    jitter: float = 0.25,
    seed: int = 0,
) -> List[WorkloadBinding]:
    """Closed-loop bindings with think time = ``factor`` x solo latency.

    Clients start staggered across one interval and carry a small
    seeded think-time jitter — real clients are not phase-locked, and a
    deterministic simulator would otherwise keep identical co-located
    apps permanently synchronised (always co-active, never leaving the
    bubbles the load levels are designed to produce).

    Process factories are ``functools.partial`` objects (not lambdas)
    so the bindings themselves pickle — the cluster controller ships
    already-built bindings to pool workers when fanning GPUs out.
    """
    bindings = []
    for index, app in enumerate(apps):
        interval = factor * estimated_solo_us(app)
        start = interval * index / max(1, len(apps))
        bindings.append(
            WorkloadBinding(
                app=app,
                process_factory=partial(
                    ClosedLoop,
                    interval_us=interval,
                    max_requests=requests,
                    start_us=start,
                    jitter=jitter,
                    seed=seed + index,
                ),
            )
        )
    return bindings


def bind_load(apps: Sequence[Application], load: str, requests: int = 20) -> List[WorkloadBinding]:
    """Bind workload A, B, or C by name."""
    if load not in LOAD_FACTORS:
        raise KeyError(f"load must be one of {sorted(LOAD_FACTORS)}, got {load!r}")
    return bind_closed_loop(apps, LOAD_FACTORS[load], requests)


def bind_continuous(apps: Sequence[Application], requests: int = 20) -> List[WorkloadBinding]:
    """Fully-saturated back-to-back arrivals (§6.3 saturation check)."""
    return [
        WorkloadBinding(
            app=app,
            process_factory=partial(Continuous, max_requests=requests),
        )
        for app in apps
    ]


def bind_trace(
    apps: Sequence[Application],
    trace: str = "twitter",
    mean_interval_factor: float = 1.5,
    duration_intervals: float = 30.0,
    seed: int = 0,
) -> List[WorkloadBinding]:
    """Workload D: replay a synthetic Twitter or Azure trace per app."""
    bindings = []
    for index, app in enumerate(apps):
        mean_interval = mean_interval_factor * estimated_solo_us(app)
        duration = duration_intervals * mean_interval
        if trace == "twitter":
            times = twitter_trace(duration, mean_interval, seed=seed + index)
        elif trace == "azure":
            times = azure_trace(duration, mean_interval, seed=seed + index)
        else:
            raise KeyError(f"trace must be 'twitter' or 'azure', got {trace!r}")
        bindings.append(
            WorkloadBinding(
                app=app,
                process_factory=partial(TraceReplay, times_us=tuple(times)),
            )
        )
    return bindings


def bind_biased(
    heavy_quota_app: Application,
    dense_app: Application,
    requests: int = 20,
) -> List[WorkloadBinding]:
    """Workload E: 8/9-quota low-load app + 1/9-quota dense app."""
    app1 = heavy_quota_app.with_quota(8 / 9, app_id=heavy_quota_app.name + "#1")
    app2 = dense_app.with_quota(1 / 9, app_id=dense_app.name + "#2")
    low_interval = 2.0 * estimated_solo_us(app1)
    return [
        WorkloadBinding(
            app=app1,
            process_factory=partial(
                ClosedLoop, interval_us=low_interval, max_requests=requests
            ),
        ),
        WorkloadBinding(
            app=app2,
            process_factory=partial(Continuous, max_requests=requests * 3),
        ),
    ]


# ----------------------------------------------------------------------
# Application mixes used across the evaluation
# ----------------------------------------------------------------------
def symmetric_pair(model: str, quota_a: float = 0.5, quota_b: float = 0.5) -> List[Application]:
    """Two instances of the same model (the 'symmetric' deployments)."""
    base = inference_app(model)
    return [
        base.with_quota(quota_a, app_id=f"{base.name}#1"),
        base.with_quota(quota_b, app_id=f"{base.name}#2"),
    ]


def asymmetric_pair(model: str, quota_a: float = 0.5, quota_b: float = 0.5) -> List[Application]:
    """R50 paired with ``model`` (the 'R50 + 4 others' deployments)."""
    first = inference_app("R50")
    second = inference_app(model)
    return [
        first.with_quota(quota_a, app_id=f"{first.name}#1"),
        second.with_quota(quota_b, app_id=f"{second.name}#2"),
    ]


def mutual_pairs() -> List[Tuple[str, str]]:
    """All 10 unordered pairs of distinct Table-1 models (load D)."""
    return list(itertools.combinations(MODEL_NAMES, 2))


def training_pair(model_a: str, model_b: str) -> List[Application]:
    """Two training apps sharing the GPU evenly (§6.3 training)."""
    first, second = training_app(model_a), training_app(model_b)
    return [
        first.with_quota(0.5, app_id=f"{first.name}#1"),
        second.with_quota(0.5, app_id=f"{second.name}#2"),
    ]


def multi_app_mix(count: int) -> List[Application]:
    """The 4- or 8-application mixes of Fig. 15 with Table-2 quotas."""
    if count == 4:
        quotas = QUOTAS_4MODEL
        models = ["VGG", "R50", "R101", "BERT"]
    elif count == 8:
        quotas = QUOTAS_8MODEL
        models = ["VGG", "R50", "R101", "BERT"] * 2
    else:
        raise ValueError(f"multi-app mix supports 4 or 8 apps, got {count}")
    apps = []
    for index, (model, quota) in enumerate(zip(models, quotas)):
        base = inference_app(model)
        apps.append(base.with_quota(quota, app_id=f"{base.name}#{index}"))
    return apps
