"""Request arrival processes for client applications.

The paper's workloads (Table 2) use two arrival styles:

* **closed-loop** (loads A/B/C/E): each application issues its next
  request a fixed interval after the previous one, but never while the
  previous request is still in flight;
* **trace replay** (load D): arrival timestamps come from a recorded
  trace and do not depend on completions (open loop).

Both are expressed through one small interface so the serving loops in
``repro.core.runtime`` and ``repro.baselines`` are arrival-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence


class ArrivalProcess(Protocol):
    """Produces successive request arrival times for one application.

    ``first_arrival`` is a *restart*: calling it again rewinds the
    process (including any internal RNG) to its initial state, so the
    same object yields the same sequence whether it is drained up front
    (:func:`drain_process`) or pulled one arrival at a time by the
    serving gateway.  Incremental consumers rely on this byte-identity.
    """

    def first_arrival(self) -> Optional[float]:
        """Arrival time of the first request, or None for no requests."""
        ...

    def next_arrival(
        self, prev_arrival: float, prev_completion: float
    ) -> Optional[float]:
        """Arrival time of the next request, or None when exhausted."""
        ...


@dataclass
class ClosedLoop:
    """Closed-loop arrivals with a fixed think time.

    Request *i+1* arrives at ``completion_i + interval`` — the paper's
    "interval between requests is set to 1/3, 2/3, 1 of each model's
    solo-run latency" (closed loop, so a client never has two requests
    in flight, and a lower interval means a denser load).  The idle gap
    between a completion and the next arrival is exactly the GPU bubble
    BLESS exists to squeeze.
    """

    interval_us: float
    max_requests: int
    start_us: float = 0.0
    # Relative think-time jitter: each gap is interval * U(1-j, 1+j).
    # A little jitter mirrors real client timing noise and prevents the
    # artificial phase-locking a deterministic simulator would produce
    # for identical co-located apps (permanently-synchronised requests
    # would never leave a bubble at any load level).
    jitter: float = 0.0
    seed: int = 0
    _issued: int = field(default=0, init=False)
    _rng: object = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.interval_us < 0:
            raise ValueError("interval must be non-negative")
        if self.max_requests < 0:
            raise ValueError("max_requests must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.jitter > 0.0:
            import numpy as np

            self._rng = np.random.default_rng(self.seed)

    def _next_interval(self) -> float:
        if self._rng is None:
            return self.interval_us
        return self.interval_us * (1.0 + self.jitter * (2.0 * self._rng.random() - 1.0))

    def first_arrival(self) -> Optional[float]:
        if self.max_requests == 0:
            return None
        # Full restart: rewind the jitter RNG along with the issue
        # counter, otherwise a process drained once (e.g. for offered-
        # request estimation) replays a *different* jitter sequence the
        # second time — drain-vs-incremental identity would break.
        self._issued = 1
        if self.jitter > 0.0:
            import numpy as np

            self._rng = np.random.default_rng(self.seed)
        return self.start_us

    def next_arrival(
        self, prev_arrival: float, prev_completion: float
    ) -> Optional[float]:
        if self._issued >= self.max_requests:
            return None
        self._issued += 1
        return prev_completion + self._next_interval()


@dataclass
class Continuous:
    """Back-to-back arrivals: the next request arrives at completion.

    Models the fully-saturated case of §6.3 ("all inference requests
    arrive continuously ... no bubbles that can be utilized").
    """

    max_requests: int
    start_us: float = 0.0
    _issued: int = field(default=0, init=False)

    def first_arrival(self) -> Optional[float]:
        if self.max_requests == 0:
            return None
        self._issued = 1
        return self.start_us

    def next_arrival(
        self, prev_arrival: float, prev_completion: float
    ) -> Optional[float]:
        if self._issued >= self.max_requests:
            return None
        self._issued += 1
        return prev_completion


@dataclass
class AutoregressiveLoop:
    """LLM-style closed loop with a heavy-tailed autoregressive gap.

    Interactive LLM serving is closed-loop — the client reads the
    previous response before issuing the next prompt — but the gap is
    dominated by the *decode length* of that response, and output token
    counts are famously heavy-tailed (most responses are short, a few
    run for thousands of tokens).  Each think gap here is
    ``interval_us`` scaled by a seeded Pareto multiplier:

    ``gap = interval_us * min(tail_cap, 1 + X)``, with ``X`` Lomax
    (``numpy`` Pareto) of shape ``tail_shape`` scaled so the multiplier
    has mean ``tail_mean``.  Shape <= 1 would have an infinite mean, so
    ``tail_shape`` must exceed 1; smaller shapes mean heavier tails.
    The resulting stream alternates quick conversational bursts with
    long silent stretches — exactly the bubble structure spatial-
    temporal sharing exists to harvest.

    Like every arrival process, :meth:`first_arrival` is a full
    restart: the RNG rewinds with the issue counter, so draining and
    incremental replay are byte-identical.
    """

    interval_us: float
    max_requests: int
    start_us: float = 0.0
    tail_shape: float = 1.8
    tail_mean: float = 3.0
    tail_cap: float = 50.0
    seed: int = 0
    _issued: int = field(default=0, init=False)
    _rng: object = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.interval_us < 0:
            raise ValueError("interval must be non-negative")
        if self.max_requests < 0:
            raise ValueError("max_requests must be non-negative")
        if self.tail_shape <= 1.0:
            raise ValueError("tail_shape must be > 1 (finite-mean tail)")
        if self.tail_mean < 1.0:
            raise ValueError("tail_mean must be >= 1")
        if self.tail_cap < self.tail_mean:
            raise ValueError("tail_cap must be >= tail_mean")
        self._reset_rng()

    def _reset_rng(self) -> None:
        import numpy as np

        self._rng = np.random.default_rng(self.seed)

    def _multiplier(self) -> float:
        # E[Lomax(shape)] = 1 / (shape - 1); scale it so the full
        # multiplier 1 + scale * X has mean tail_mean.
        scale = (self.tail_mean - 1.0) * (self.tail_shape - 1.0)
        draw = 1.0 + scale * float(self._rng.pareto(self.tail_shape))
        return min(self.tail_cap, draw)

    def first_arrival(self) -> Optional[float]:
        if self.max_requests == 0:
            return None
        self._issued = 1
        self._reset_rng()
        return self.start_us

    def next_arrival(
        self, prev_arrival: float, prev_completion: float
    ) -> Optional[float]:
        if self._issued >= self.max_requests:
            return None
        self._issued += 1
        return prev_completion + self.interval_us * self._multiplier()


@dataclass
class TraceReplay:
    """Open-loop replay of recorded arrival timestamps."""

    times_us: Sequence[float]
    _cursor: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        times = list(self.times_us)
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("trace timestamps must be non-decreasing")
        self.times_us = times

    def first_arrival(self) -> Optional[float]:
        if not self.times_us:
            return None
        self._cursor = 1
        return float(self.times_us[0])

    def next_arrival(
        self, prev_arrival: float, prev_completion: float
    ) -> Optional[float]:
        if self._cursor >= len(self.times_us):
            return None
        time = float(self.times_us[self._cursor])
        self._cursor += 1
        return time


@dataclass
class OneShot:
    """Exactly one request at a fixed time (used by squad-level tests)."""

    at_us: float = 0.0
    _fired: bool = field(default=False, init=False)

    def first_arrival(self) -> Optional[float]:
        # Restartable like every other process: first_arrival rewinds.
        self._fired = True
        return self.at_us

    def next_arrival(
        self, prev_arrival: float, prev_completion: float
    ) -> Optional[float]:
        return None


def drain_process(process: ArrivalProcess, service_us: float) -> List[float]:
    """Materialise a process assuming each request takes ``service_us``.

    Testing helper: runs the closed-loop gating logic against a constant
    service time and returns the arrival times it would produce.
    """
    arrivals: List[float] = []
    time = process.first_arrival()
    while time is not None:
        arrivals.append(time)
        time = process.next_arrival(time, time + service_us)
    return arrivals
