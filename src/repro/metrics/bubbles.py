"""GPU bubble accounting (§1, §3.2).

A *bubble* is GPU capacity left idle while at least one request is in
flight — exactly the waste BLESS squeezes.  Given an engine timeline we
integrate ``(1 - busy_fraction)`` over intervals where work was pending,
and report both absolute bubble time (SM-fraction x µs) and the bubble
ratio relative to the in-flight window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..gpusim.engine import TimelineSegment


@dataclass(frozen=True)
class BubbleReport:
    """Bubble accounting over a serving run."""

    inflight_us: float          # total time with >= 1 request in flight
    busy_integral: float        # SM-fraction x us actually used
    bubble_integral: float      # SM-fraction x us wasted while in flight

    @property
    def bubble_ratio(self) -> float:
        if self.inflight_us <= 0:
            return 0.0
        return self.bubble_integral / self.inflight_us

    @property
    def mean_utilization(self) -> float:
        if self.inflight_us <= 0:
            return 0.0
        return self.busy_integral / self.inflight_us


def bubbles_from_timeline(
    timeline: Sequence[TimelineSegment],
    inflight_windows: Sequence[Tuple[float, float]],
) -> BubbleReport:
    """Integrate bubbles over the parts of ``timeline`` inside windows.

    ``inflight_windows`` are (start, end) intervals during which at
    least one request was outstanding; idle GPU outside them is not a
    bubble (nothing to run).
    """
    windows = _merge_windows(inflight_windows)
    busy = 0.0
    inflight = sum(end - start for start, end in windows)
    for segment in timeline:
        for w_start, w_end in windows:
            lo = max(segment.start, w_start)
            hi = min(segment.end, w_end)
            if hi > lo:
                busy += segment.busy_fraction * (hi - lo)
    bubble = max(0.0, inflight - busy)
    return BubbleReport(
        inflight_us=inflight, busy_integral=busy, bubble_integral=bubble
    )


def _merge_windows(
    windows: Sequence[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Merge overlapping (start, end) intervals."""
    cleaned = sorted((s, e) for s, e in windows if e > s)
    merged: List[Tuple[float, float]] = []
    for start, end in cleaned:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged
