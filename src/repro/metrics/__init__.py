"""Metrics: latency stats, ISO deviation, bubble accounting."""

from .bubbles import BubbleReport, bubbles_from_timeline
from .deviation import average_deviation_us, latency_deviation_us, speedup_vs_iso
from .io import (
    compare_results,
    load_result,
    load_results,
    save_result,
    save_results,
)
from .stats import (
    FaultStats,
    RequestRecord,
    ServingResult,
    qos_violation_rate,
    summarize,
)

__all__ = [
    "average_deviation_us",
    "BubbleReport",
    "bubbles_from_timeline",
    "compare_results",
    "FaultStats",
    "latency_deviation_us",
    "load_result",
    "load_results",
    "qos_violation_rate",
    "RequestRecord",
    "save_result",
    "save_results",
    "ServingResult",
    "speedup_vs_iso",
    "summarize",
]
