"""Latency deviation vs the quota-isolated (ISO) baseline (§6.2).

For a quota assignment giving application *j* the share ``n_j``, the ISO
target is ``T_j[n_j]`` — the latency the app achieves alone on an MPS
partition of that size.  A sharing system's deviation under that
assignment is::

    deviation = sum_j max(T_sys_j - T_j[n_j], 0)

i.e. only *worse-than-promised* latency counts; beating the promise is
free.  The *average* latency deviation over many quota assignments
measures a system's flexibility (Fig. 14).
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence

import numpy as np

from .stats import ServingResult


def latency_deviation_us(
    result: ServingResult, iso_targets_us: Mapping[str, float]
) -> float:
    """Deviation of one run against per-app ISO latency targets."""
    total = 0.0
    for app_id, mean in result.per_app_mean_latency().items():
        target = iso_targets_us.get(app_id)
        if target is None:
            raise KeyError(f"no ISO target for app {app_id!r}")
        if math.isnan(mean):
            # An app with zero completed requests (all shed/faulted)
            # contributes no deviation rather than poisoning the sum.
            continue
        total += max(mean - target, 0.0)
    return total


def average_deviation_us(
    results: Sequence[ServingResult],
    iso_targets: Sequence[Mapping[str, float]],
) -> float:
    """Mean deviation over several (run, target-set) pairs (Fig. 14)."""
    if len(results) != len(iso_targets):
        raise ValueError("results and iso_targets must align")
    if not results:
        return 0.0
    values = [
        latency_deviation_us(result, targets)
        for result, targets in zip(results, iso_targets)
    ]
    return float(np.mean(values))


def speedup_vs_iso(
    result: ServingResult, iso_targets_us: Mapping[str, float]
) -> Dict[str, float]:
    """Per-app ``iso_latency / achieved_latency`` (>1 means faster)."""
    speedups = {}
    for app_id, mean in result.per_app_mean_latency().items():
        target = iso_targets_us[app_id]
        speedups[app_id] = target / mean if mean > 0 else float("inf")
    return speedups
