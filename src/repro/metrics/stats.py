"""Latency statistics for serving runs.

The paper's two headline metrics (§6.2):

* **average latency** of requests from different applications under a
  given quota assignment;
* **average latency deviation** across quota assignments, where the
  deviation of one assignment is ``sum_j max(T_sys_j - T_iso_j, 0)``.

This module provides the per-run record keeping; deviation lives in
:mod:`repro.metrics.deviation`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np


@dataclass
class CacheStats:
    """Hit/miss accounting for a memoization cache.

    Used by the execution-configuration cache (``repro.core.config_cache``)
    and surfaced in ``ServingResult.extras`` so serving runs report how
    much of the §4.4 search the squad-signature cache absorbed.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        lookups = self.lookups
        if lookups == 0:
            return 0.0
        return self.hits / lookups

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Combine counters from another cache (e.g. across GPUs)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            invalidations=self.invalidations + other.invalidations,
        )

    def as_dict(self, prefix: str = "") -> Dict[str, float]:
        """Flatten to float-valued counters for ``ServingResult.extras``."""
        return {
            f"{prefix}hits": float(self.hits),
            f"{prefix}misses": float(self.misses),
            f"{prefix}evictions": float(self.evictions),
            f"{prefix}invalidations": float(self.invalidations),
            f"{prefix}hit_rate": self.hit_rate,
        }

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.invalidations = 0


@dataclass
class FaultStats:
    """Fault-injection and graceful-degradation accounting.

    Populated by the serving harness when a :class:`~repro.gpusim.faults.
    FaultPlan` is active and surfaced in ``ServingResult.extras`` under
    the ``fault_`` prefix (see docs/robustness.md for the degradation
    ladder each counter belongs to).
    """

    # Injected events.
    slowdown_spikes: int = 0
    transient_retries: int = 0
    permanent_failures: int = 0
    context_crashes: int = 0
    context_crashes_skipped: int = 0
    kernels_killed: int = 0
    # Degradation responses.
    degraded_relaunches: int = 0
    shed_failed: int = 0
    shed_timeout: int = 0
    stale_completions: int = 0
    profile_stale_events: int = 0

    @property
    def shed_requests(self) -> int:
        return self.shed_failed + self.shed_timeout

    @property
    def degradation_events(self) -> int:
        """Total graceful-degradation actions the run had to take."""
        return (
            self.transient_retries
            + self.permanent_failures
            + self.context_crashes
            + self.kernels_killed
            + self.degraded_relaunches
            + self.shed_failed
            + self.shed_timeout
            + self.stale_completions
            + self.profile_stale_events
        )

    def merge(self, other: "FaultStats") -> "FaultStats":
        """Combine counters from another run (e.g. across sub-GPUs)."""
        return FaultStats(
            slowdown_spikes=self.slowdown_spikes + other.slowdown_spikes,
            transient_retries=self.transient_retries + other.transient_retries,
            permanent_failures=self.permanent_failures + other.permanent_failures,
            context_crashes=self.context_crashes + other.context_crashes,
            context_crashes_skipped=(
                self.context_crashes_skipped + other.context_crashes_skipped
            ),
            kernels_killed=self.kernels_killed + other.kernels_killed,
            degraded_relaunches=self.degraded_relaunches + other.degraded_relaunches,
            shed_failed=self.shed_failed + other.shed_failed,
            shed_timeout=self.shed_timeout + other.shed_timeout,
            stale_completions=self.stale_completions + other.stale_completions,
            profile_stale_events=(
                self.profile_stale_events + other.profile_stale_events
            ),
        )

    def as_dict(self, prefix: str = "") -> Dict[str, float]:
        """Flatten to float-valued counters for ``ServingResult.extras``."""
        return {
            f"{prefix}slowdown_spikes": float(self.slowdown_spikes),
            f"{prefix}transient_retries": float(self.transient_retries),
            f"{prefix}permanent_failures": float(self.permanent_failures),
            f"{prefix}context_crashes": float(self.context_crashes),
            f"{prefix}context_crashes_skipped": float(self.context_crashes_skipped),
            f"{prefix}kernels_killed": float(self.kernels_killed),
            f"{prefix}degraded_relaunches": float(self.degraded_relaunches),
            f"{prefix}shed_failed": float(self.shed_failed),
            f"{prefix}shed_timeout": float(self.shed_timeout),
            f"{prefix}shed_requests": float(self.shed_requests),
            f"{prefix}stale_completions": float(self.stale_completions),
            f"{prefix}profile_stale_events": float(self.profile_stale_events),
            f"{prefix}degradation_events": float(self.degradation_events),
        }


@dataclass
class RequestRecord:
    """Outcome of one served request."""

    app_id: str
    request_id: int
    arrival: float
    finish: float

    @property
    def latency(self) -> float:
        return self.finish - self.arrival


@dataclass
class ServingResult:
    """Everything measured while a sharing system served a workload."""

    system: str
    records: List[RequestRecord] = field(default_factory=list)
    makespan_us: float = 0.0
    utilization: float = 0.0
    # Extra system-specific measurements (e.g. squad stats for BLESS).
    extras: Dict[str, float] = field(default_factory=dict)

    def add(self, record: RequestRecord) -> None:
        self.records.append(record)

    @property
    def app_ids(self) -> List[str]:
        seen: Dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.app_id, None)
        return list(seen)

    def latencies(self, app_id: Optional[str] = None) -> List[float]:
        return [
            r.latency
            for r in self.records
            if app_id is None or r.app_id == app_id
        ]

    def mean_latency(self, app_id: Optional[str] = None) -> float:
        values = self.latencies(app_id)
        if not values:
            return math.nan
        return float(np.mean(values))

    def per_app_mean_latency(self) -> Dict[str, float]:
        return {app_id: self.mean_latency(app_id) for app_id in self.app_ids}

    def mean_of_app_means(self) -> float:
        """The paper's 'average latency': mean over apps of per-app means."""
        per_app = self.per_app_mean_latency()
        if not per_app:
            return math.nan
        return float(np.mean(list(per_app.values())))

    def percentile_latency(self, q: float, app_id: Optional[str] = None) -> float:
        values = self.latencies(app_id)
        if not values:
            return math.nan
        return float(np.percentile(values, q))

    def throughput_qps(self, app_id: Optional[str] = None) -> float:
        """Completed requests per second of simulated time."""
        count = len(self.latencies(app_id))
        if self.makespan_us <= 0:
            return 0.0
        return count / (self.makespan_us / 1e6)

    def count(self, app_id: Optional[str] = None) -> int:
        return len(self.latencies(app_id))

    @classmethod
    def merge(
        cls,
        results: Sequence["ServingResult"],
        system: Optional[str] = None,
        *,
        num_slots: Optional[int] = None,
        weights: Optional[Sequence[float]] = None,
        offsets: Optional[Sequence[float]] = None,
    ) -> "ServingResult":
        """Combine independent sub-results into one cluster-level result.

        Used wherever one logical serving run is realised on several
        private engines: the §4.2.2 cluster controller (one engine per
        GPU), the composite baselines (ISO/MIG serve each tenant on its
        own partition-sized engine), and the online orchestrator's
        epoch chain.

        * ``records`` are concatenated in the given order (callers pass
          results in a deterministic order — GPU index, epoch index —
          so merged output is reproducible byte for byte);
        * ``extras`` counters are **summed** — this is what keeps the
          ``completed + shed == arrived`` fault-accounting invariant
          true at cluster level (`FaultStats`/`CacheStats` counters are
          all additive); derived ``*hit_rate`` keys are recomputed from
          their merged ``hits``/``misses`` siblings;
        * ``utilization`` is busy-time over capacity: each sub-result
          contributes ``utilization * makespan_us * weight`` busy
          GPU-microseconds (``weight`` = how many GPUs it represents,
          default 1), and capacity is ``merged makespan × num_slots``.
          ``num_slots`` **must count idle GPUs too** — a pool of three
          GPUs serving one app is one-third as utilised as a busy
          single GPU, not equally utilised (the historical
          ``len(per_gpu)`` denominator bug);
        * ``offsets`` (cluster-clock start of each sub-result, for
          sequential epochs) shift record timestamps and extend the
          merged makespan to ``max(offset + makespan)``.  When offsets
          are in play the sub-results run on the **same** slots one
          after another, so the default slot count is ``max(weights)``
          — not ``sum(weights)``, which would count each epoch's GPUs
          as distinct hardware and dilute utilization by the number of
          epochs (the epoch-chaining denominator bug).
        """
        results = list(results)
        if not results:
            raise ValueError("cannot merge zero results")
        if weights is None:
            weights = [1.0] * len(results)
        if offsets is None:
            offsets = [0.0] * len(results)
        if len(weights) != len(results) or len(offsets) != len(results):
            raise ValueError("weights/offsets must match results in length")
        if num_slots is None:
            if any(offset != 0.0 for offset in offsets):
                # Sequential epoch chain: the same slots are reused, so
                # capacity is the widest epoch, not the epoch total.
                num_slots = int(max(weights)) or len(results)
            else:
                num_slots = int(sum(weights)) or len(results)
        if num_slots < 1:
            raise ValueError("num_slots must be >= 1")

        merged = cls(system=system or results[0].system)
        busy = 0.0
        makespan = 0.0
        for result, weight, offset in zip(results, weights, offsets):
            if offset == 0.0:
                merged.records.extend(result.records)
            else:
                merged.records.extend(
                    RequestRecord(
                        app_id=r.app_id,
                        request_id=r.request_id,
                        arrival=r.arrival + offset,
                        finish=r.finish + offset,
                    )
                    for r in result.records
                )
            makespan = max(makespan, offset + result.makespan_us)
            busy += result.utilization * result.makespan_us * weight
            for key, value in result.extras.items():
                merged.extras[key] = merged.extras.get(key, 0.0) + value
        for key in merged.extras:
            if key.endswith("hit_rate"):
                prefix = key[: -len("hit_rate")]
                lookups = merged.extras.get(prefix + "hits", 0.0) + merged.extras.get(
                    prefix + "misses", 0.0
                )
                merged.extras[key] = (
                    merged.extras.get(prefix + "hits", 0.0) / lookups
                    if lookups > 0
                    else 0.0
                )
        merged.makespan_us = makespan
        merged.utilization = (
            min(1.0, busy / (makespan * num_slots)) if makespan > 0 else 0.0
        )
        return merged


def qos_violation_rate(
    result: ServingResult, targets_us: Mapping[str, float]
) -> float:
    """Fraction of requests whose latency exceeds the app's QoS target."""
    total = 0
    violated = 0
    for record in result.records:
        target = targets_us.get(record.app_id)
        if target is None:
            continue
        total += 1
        if record.latency > target:
            violated += 1
    if total == 0:
        return 0.0
    return violated / total


def summarize(results: Sequence[ServingResult]) -> str:
    """A compact table of per-system average latencies (for harness output)."""
    lines = []
    for result in results:
        per_app = result.per_app_mean_latency()
        apps = ", ".join(f"{a}={v / 1000:.2f}ms" for a, v in per_app.items())
        lines.append(
            f"{result.system:<10} avg={result.mean_of_app_means() / 1000:7.2f}ms "
            f"util={result.utilization:5.1%}  [{apps}]"
        )
    return "\n".join(lines)
