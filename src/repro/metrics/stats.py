"""Latency statistics for serving runs.

The paper's two headline metrics (§6.2):

* **average latency** of requests from different applications under a
  given quota assignment;
* **average latency deviation** across quota assignments, where the
  deviation of one assignment is ``sum_j max(T_sys_j - T_iso_j, 0)``.

This module provides the per-run record keeping; deviation lives in
:mod:`repro.metrics.deviation`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np


@dataclass
class CacheStats:
    """Hit/miss accounting for a memoization cache.

    Used by the execution-configuration cache (``repro.core.config_cache``)
    and surfaced in ``ServingResult.extras`` so serving runs report how
    much of the §4.4 search the squad-signature cache absorbed.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        lookups = self.lookups
        if lookups == 0:
            return 0.0
        return self.hits / lookups

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Combine counters from another cache (e.g. across GPUs)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            invalidations=self.invalidations + other.invalidations,
        )

    def as_dict(self, prefix: str = "") -> Dict[str, float]:
        """Flatten to float-valued counters for ``ServingResult.extras``."""
        return {
            f"{prefix}hits": float(self.hits),
            f"{prefix}misses": float(self.misses),
            f"{prefix}evictions": float(self.evictions),
            f"{prefix}invalidations": float(self.invalidations),
            f"{prefix}hit_rate": self.hit_rate,
        }

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.invalidations = 0


@dataclass
class RequestRecord:
    """Outcome of one served request."""

    app_id: str
    request_id: int
    arrival: float
    finish: float

    @property
    def latency(self) -> float:
        return self.finish - self.arrival


@dataclass
class ServingResult:
    """Everything measured while a sharing system served a workload."""

    system: str
    records: List[RequestRecord] = field(default_factory=list)
    makespan_us: float = 0.0
    utilization: float = 0.0
    # Extra system-specific measurements (e.g. squad stats for BLESS).
    extras: Dict[str, float] = field(default_factory=dict)

    def add(self, record: RequestRecord) -> None:
        self.records.append(record)

    @property
    def app_ids(self) -> List[str]:
        seen: Dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.app_id, None)
        return list(seen)

    def latencies(self, app_id: Optional[str] = None) -> List[float]:
        return [
            r.latency
            for r in self.records
            if app_id is None or r.app_id == app_id
        ]

    def mean_latency(self, app_id: Optional[str] = None) -> float:
        values = self.latencies(app_id)
        if not values:
            return math.nan
        return float(np.mean(values))

    def per_app_mean_latency(self) -> Dict[str, float]:
        return {app_id: self.mean_latency(app_id) for app_id in self.app_ids}

    def mean_of_app_means(self) -> float:
        """The paper's 'average latency': mean over apps of per-app means."""
        per_app = self.per_app_mean_latency()
        if not per_app:
            return math.nan
        return float(np.mean(list(per_app.values())))

    def percentile_latency(self, q: float, app_id: Optional[str] = None) -> float:
        values = self.latencies(app_id)
        if not values:
            return math.nan
        return float(np.percentile(values, q))

    def throughput_qps(self, app_id: Optional[str] = None) -> float:
        """Completed requests per second of simulated time."""
        count = len(self.latencies(app_id))
        if self.makespan_us <= 0:
            return 0.0
        return count / (self.makespan_us / 1e6)

    def count(self, app_id: Optional[str] = None) -> int:
        return len(self.latencies(app_id))


def qos_violation_rate(
    result: ServingResult, targets_us: Mapping[str, float]
) -> float:
    """Fraction of requests whose latency exceeds the app's QoS target."""
    total = 0
    violated = 0
    for record in result.records:
        target = targets_us.get(record.app_id)
        if target is None:
            continue
        total += 1
        if record.latency > target:
            violated += 1
    if total == 0:
        return 0.0
    return violated / total


def summarize(results: Sequence[ServingResult]) -> str:
    """A compact table of per-system average latencies (for harness output)."""
    lines = []
    for result in results:
        per_app = result.per_app_mean_latency()
        apps = ", ".join(f"{a}={v / 1000:.2f}ms" for a, v in per_app.items())
        lines.append(
            f"{result.system:<10} avg={result.mean_of_app_means() / 1000:7.2f}ms "
            f"util={result.utilization:5.1%}  [{apps}]"
        )
    return "\n".join(lines)
