"""Serialising serving results to/from JSON.

Lets long sweeps be captured once and re-analysed (or diffed against a
previous run) without re-simulating.  The format is stable and
human-readable: one JSON object per :class:`ServingResult`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from .stats import RequestRecord, ServingResult

FORMAT_VERSION = 1


def result_to_dict(result: ServingResult) -> Dict:
    """A JSON-safe representation of a serving result."""
    return {
        "format_version": FORMAT_VERSION,
        "system": result.system,
        "makespan_us": result.makespan_us,
        "utilization": result.utilization,
        "extras": dict(result.extras),
        "records": [
            {
                "app_id": r.app_id,
                "request_id": r.request_id,
                "arrival": r.arrival,
                "finish": r.finish,
            }
            for r in result.records
        ],
    }


def result_from_dict(payload: Dict) -> ServingResult:
    """Inverse of :func:`result_to_dict` (validates the format)."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported result format version: {version!r}")
    result = ServingResult(
        system=payload["system"],
        makespan_us=float(payload["makespan_us"]),
        utilization=float(payload["utilization"]),
        extras={k: float(v) for k, v in payload.get("extras", {}).items()},
    )
    for record in payload["records"]:
        result.add(
            RequestRecord(
                app_id=record["app_id"],
                request_id=int(record["request_id"]),
                arrival=float(record["arrival"]),
                finish=float(record["finish"]),
            )
        )
    return result


def save_result(result: ServingResult, path: Union[str, Path]) -> None:
    """Write one result as JSON."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2))


def load_result(path: Union[str, Path]) -> ServingResult:
    """Read one result from JSON."""
    return result_from_dict(json.loads(Path(path).read_text()))


def save_results(results: List[ServingResult], path: Union[str, Path]) -> None:
    """Write several results (e.g. one per system) as a JSON list."""
    Path(path).write_text(
        json.dumps([result_to_dict(r) for r in results], indent=2)
    )


def load_results(path: Union[str, Path]) -> List[ServingResult]:
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise ValueError("expected a JSON list of results")
    return [result_from_dict(item) for item in payload]


def compare_results(
    before: ServingResult, after: ServingResult
) -> Dict[str, float]:
    """Per-app mean-latency ratios (after / before) plus the overall."""
    comparison: Dict[str, float] = {}
    before_means = before.per_app_mean_latency()
    after_means = after.per_app_mean_latency()
    for app_id, value in after_means.items():
        reference = before_means.get(app_id)
        if reference:
            comparison[app_id] = value / reference
    overall_before = before.mean_of_app_means()
    if overall_before:
        comparison["__overall__"] = after.mean_of_app_means() / overall_before
    return comparison
