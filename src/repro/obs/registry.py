"""A namespaced metrics registry for serving runs.

One :class:`MetricsRegistry` lives for one ``serve()`` and replaces the
historical scatter of ad-hoc ``engine_*`` / ``config_cache_*`` /
``fault_*`` entries in ``ServingResult.extras``: every layer registers
its counters, gauges, and histograms under a slash-namespaced metric
name (``engine/events_processed``, ``bless/squads``,
``latency/request_us``), and the harness snapshots the registry once at
the end of the run.

Two snapshot views exist:

* :meth:`MetricsRegistry.snapshot` — the full namespaced view,
  histograms expanded into ``<name>/le_<bound>`` cumulative buckets
  plus ``<name>/count`` and ``<name>/sum`` (Prometheus-style);
* :meth:`MetricsRegistry.legacy_extras` — the **compatibility shim**:
  scalar metrics only, renamed to the historical ``extras`` keys
  (``engine/x`` → ``engine_x``, ``fault/x`` → ``fault_x``,
  ``bless/x`` → ``x``), in registration order.  Golden result files
  predate the registry, so this view is byte-identical to what the
  pre-registry harness wrote.

Metric mutation is deterministic (no wall clock, no sampling), so two
same-seed runs produce identical snapshots.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Default histogram boundaries for latency-like quantities in
#: microseconds: 1 ms … 10 s in a 1-2.5-5 ladder.  Fixed boundaries
#: keep bucket counts comparable across runs and systems.
LATENCY_BUCKETS_US: Tuple[float, ...] = (
    1e3, 2.5e3, 5e3,
    1e4, 2.5e4, 5e4,
    1e5, 2.5e5, 5e5,
    1e6, 2.5e6, 5e6,
    1e7,
)

#: Default boundaries for kernel-scale durations/waits (µs).
KERNEL_BUCKETS_US: Tuple[float, ...] = (
    1.0, 2.5, 5.0,
    10.0, 25.0, 50.0,
    100.0, 250.0, 500.0,
    1e3, 2.5e3, 5e3,
)

#: Namespaces whose metrics the compatibility shim exports under the
#: historical ``extras`` key scheme; ``bless`` drops its prefix (the
#: runtime's squad/context counters were historically unprefixed).
_LEGACY_BARE_NAMESPACE = "bless"


class Counter:
    """A monotonically increasing scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: Number = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """A scalar that can move in either direction."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: Number) -> None:
        self.value = float(value)


class Histogram:
    """A fixed-boundary histogram with cumulative-bucket snapshots.

    ``boundaries`` are the inclusive upper bounds of the finite
    buckets; observations above the last boundary land in the implicit
    ``+inf`` bucket.  Boundaries are fixed at creation so bucket counts
    are comparable across runs, systems, and exports.
    """

    __slots__ = ("name", "boundaries", "counts", "sum", "count")

    def __init__(self, name: str, boundaries: Sequence[float]):
        if not boundaries:
            raise ValueError(f"histogram {name} needs at least one boundary")
        ordered = tuple(float(b) for b in boundaries)
        if any(b >= c for b, c in zip(ordered, ordered[1:])):
            raise ValueError(f"histogram {name} boundaries must strictly increase")
        self.name = name
        self.boundaries = ordered
        self.counts = [0] * (len(ordered) + 1)  # last = +inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: Number) -> None:
        self.counts[bisect_right(self.boundaries, value)] += 1
        self.sum += value
        self.count += 1

    def snapshot_items(self) -> List[Tuple[str, float]]:
        """Cumulative ``le`` buckets plus count/sum, Prometheus-style."""
        items: List[Tuple[str, float]] = []
        cumulative = 0
        for bound, bucket in zip(self.boundaries, self.counts):
            cumulative += bucket
            items.append((f"{self.name}/le_{bound:g}", float(cumulative)))
        items.append((f"{self.name}/le_inf", float(self.count)))
        items.append((f"{self.name}/count", float(self.count)))
        items.append((f"{self.name}/sum", self.sum))
        return items


Metric = Union[Counter, Gauge, Histogram]


def _check_name(name: str) -> None:
    if not name or name.startswith("/") or name.endswith("/"):
        raise ValueError(f"bad metric name {name!r}")
    for ch in name:
        if not (ch.isascii() and (ch.isalnum() or ch in "_/")):
            raise ValueError(f"bad metric name {name!r} (character {ch!r})")


class MetricsRegistry:
    """Get-or-create registry of namespaced metrics.

    Registration order is preserved, which is what makes
    :meth:`legacy_extras` reproduce the historical ``extras`` key order
    byte for byte.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # -- construction --------------------------------------------------
    def _get_or_create(self, name: str, kind: type, *args) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            _check_name(name)
            metric = kind(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, boundaries: Sequence[float] = LATENCY_BUCKETS_US
    ) -> Histogram:
        metric = self._metrics.get(name)
        if isinstance(metric, Histogram):
            return metric
        return self._get_or_create(name, Histogram, boundaries)

    def import_mapping(self, namespace: str, values: Mapping[str, Number]) -> None:
        """Bulk-register ``namespace/key`` gauges from a plain mapping.

        Used by the harness to pull end-of-run tallies (engine counters,
        fault stats, cache stats) into the registry in their historical
        order.
        """
        for key, value in values.items():
            self.gauge(f"{namespace}/{key}").set(float(value))

    # -- introspection -------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return list(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    # -- snapshots -----------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """The full namespaced view (histograms expanded into buckets)."""
        out: Dict[str, float] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                out.update(metric.snapshot_items())
            else:
                out[name] = float(metric.value)
        return out

    def legacy_extras(self) -> Dict[str, float]:
        """The compatibility shim: scalars under the historical keys.

        ``engine/x`` → ``engine_x``, ``fault/x`` → ``fault_x``,
        ``config_cache/x`` → ``config_cache_x``, and the runtime's own
        ``bless/x`` metrics drop their prefix (→ ``x``), exactly as the
        pre-registry harness wrote them.  Histograms are registry-only:
        they did not exist before the registry, so adding them to
        ``extras`` would churn the golden schemas.
        """
        out: Dict[str, float] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                continue
            namespace, _, rest = name.partition("/")
            if namespace == _LEGACY_BARE_NAMESPACE and rest:
                key = rest.replace("/", "_")
            else:
                key = name.replace("/", "_")
            out[key] = float(metric.value)
        return out
