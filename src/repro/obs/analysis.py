"""Post-hoc trace analysis: critical paths and predictor error.

Works on the unified :class:`~repro.obs.events.TraceEvent` stream (from
a live :class:`~repro.obs.tracer.DecisionTracer` or re-loaded with
:func:`~repro.obs.tracer.load_records_jsonl`):

* :func:`request_critical_paths` reconstructs, per request, how its
  end-to-end span splits into kernel **execution** vs **queue wait**
  vs unaccounted **scheduling gap** — the bubbles BLESS exists to
  squeeze;
* :func:`predictor_report` pairs each squad's Eq. 1 / Eq. 2 predicted
  duration (``squad.done`` carries both the prediction the determiner
  committed to and the simulated outcome) and reports the error
  distribution the paper validates in Fig. 10;
* :func:`decision_summary` tallies the decision stream (squads,
  cache hit rate, Semi-SP switches, faults).

Every function is NaN-safe on empty traces: aggregate means come back
as ``math.nan`` (mirroring ``metrics/stats.py`` percentiles), counts as
zero, and list outputs empty — never an exception.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from . import events as ev
from .events import TraceEvent


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else math.nan


@dataclass(frozen=True)
class RequestPath:
    """The critical-path decomposition of one request.

    ``span_us`` is first-enqueue → last-finish.  ``exec_us`` sums
    kernel execution (sequential within a request, so it tiles the
    span), and ``gap_us`` is the rest of the span — the scheduling
    bubbles BLESS squeezes: squad boundaries, context switches, retry
    backoff, and time spent behind co-runners.  ``queue_wait_us`` is
    the *sum* of per-kernel enqueue→start waits; a whole squad slice
    enqueues at once, so these waits overlap and the sum can exceed
    the span — compare requests with it, don't tile the span with it.
    """

    app_id: str
    request_id: int
    kernels: int
    span_us: float
    exec_us: float
    queue_wait_us: float
    gap_us: float
    retries: int
    failed_kernels: int

    @property
    def exec_fraction(self) -> float:
        return self.exec_us / self.span_us if self.span_us > 0 else math.nan


def request_critical_paths(records: Sequence[TraceEvent]) -> List[RequestPath]:
    """Per-request span/exec/wait/gap decomposition from kernel records.

    Requests are keyed ``(app_id, request_id)`` and returned in first
    appearance order.  Fault events attribute retries and permanent
    kernel failures to their request where the trace carries enough
    identity (``request_id`` in the event args).
    """
    kernels: Dict[Tuple[str, int], List[TraceEvent]] = {}
    retries: Dict[Tuple[str, int], int] = {}
    failures: Dict[Tuple[str, int], int] = {}
    for record in records:
        if record.etype == ev.KERNEL:
            key = (record.app_id, int(record.args.get("request_id", -1)))
            kernels.setdefault(key, []).append(record)
        elif record.etype == ev.FAULT_RETRY:
            request_id = record.args.get("request_id")
            if request_id is not None:
                key = (record.app_id, int(request_id))
                retries[key] = retries.get(key, 0) + 1
        elif record.etype == ev.FAULT_KERNEL_FAILED:
            request_id = record.args.get("request_id")
            if request_id is not None:
                key = (record.app_id, int(request_id))
                failures[key] = failures.get(key, 0) + 1

    paths: List[RequestPath] = []
    for key, recs in kernels.items():
        enqueues = [float(r.args["enqueue_us"]) for r in recs]
        starts = [float(r.args["start_us"]) for r in recs]
        finishes = [float(r.args["finish_us"]) for r in recs]
        span = max(finishes) - min(enqueues)
        exec_us = sum(f - s for s, f in zip(starts, finishes))
        wait_us = sum(s - e for e, s in zip(enqueues, starts))
        paths.append(
            RequestPath(
                app_id=key[0],
                request_id=key[1],
                kernels=len(recs),
                span_us=span,
                exec_us=exec_us,
                queue_wait_us=wait_us,
                gap_us=max(0.0, span - exec_us),
                retries=retries.get(key, 0),
                failed_kernels=failures.get(key, 0),
            )
        )
    return paths


def critical_path_summary(records: Sequence[TraceEvent]) -> Dict[str, float]:
    """Aggregate view of :func:`request_critical_paths` (NaN-safe)."""
    paths = request_critical_paths(records)
    return {
        "requests": float(len(paths)),
        "mean_span_us": _mean([p.span_us for p in paths]),
        "mean_exec_us": _mean([p.exec_us for p in paths]),
        "mean_queue_wait_us": _mean([p.queue_wait_us for p in paths]),
        "mean_gap_us": _mean([p.gap_us for p in paths]),
        "mean_exec_fraction": _mean(
            [p.exec_fraction for p in paths if not math.isnan(p.exec_fraction)]
        ),
    }


def predictor_report(records: Sequence[TraceEvent]) -> Dict[str, float]:
    """Predicted-vs-simulated squad duration error (Fig. 10's metric).

    Uses ``squad.done`` events, which carry the duration the execution
    configuration determiner committed to (``predicted_us``) and the
    simulated outcome (``duration_us``).  Squads without a prediction
    (quota-proportional fallback, solo squads served by profile lookup)
    are skipped.  NaN-safe on empty traces.
    """
    errors: List[float] = []
    abs_rel: List[float] = []
    for record in records:
        if record.etype != ev.SQUAD_DONE:
            continue
        predicted = record.args.get("predicted_us")
        actual = record.args.get("duration_us")
        if predicted is None or actual is None or actual <= 0:
            continue
        errors.append(float(predicted) - float(actual))
        abs_rel.append(abs(float(predicted) - float(actual)) / float(actual))
    return {
        "squads_scored": float(len(errors)),
        "mean_error_us": _mean(errors),
        "mean_abs_rel_error": _mean(abs_rel),
        "max_abs_rel_error": max(abs_rel) if abs_rel else math.nan,
    }


def decision_summary(records: Sequence[TraceEvent]) -> Dict[str, float]:
    """Tallies of the decision stream (NaN-safe on empty traces)."""
    counts: Dict[str, int] = {}
    cache_hits = 0
    config_events = 0
    for record in records:
        counts[record.etype] = counts.get(record.etype, 0) + 1
        if record.etype == ev.CONFIG_CHOSEN:
            config_events += 1
            if record.args.get("cache_hit"):
                cache_hits += 1
    return {
        "kernels": float(counts.get(ev.KERNEL, 0)),
        "squads_composed": float(counts.get(ev.SQUAD_COMPOSED, 0)),
        "configs_chosen": float(config_events),
        "config_cache_hit_rate": (
            cache_hits / config_events if config_events else math.nan
        ),
        "semisp_switches": float(counts.get(ev.SEMISP_SWITCH, 0)),
        "context_evictions": float(counts.get(ev.CONTEXT_EVICTED, 0)),
        "oom_fallbacks": float(counts.get(ev.OOM_FALLBACK, 0)),
        "faults": float(
            sum(n for etype, n in counts.items() if etype.startswith("fault."))
        ),
    }


def analyze(records: Sequence[TraceEvent]) -> Dict[str, Dict[str, float]]:
    """One-call bundle of every report (used by ``repro trace``)."""
    return {
        "critical_path": critical_path_summary(records),
        "predictor": predictor_report(records),
        "decisions": decision_summary(records),
    }
