"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON and JSON lines.

The Perfetto export lays a run out on three process tracks:

* **pid 1 — scheduler**: squad slices (``squad.done`` spans), decision
  instants (``squad.composed`` / ``config.chosen`` / ``config.fallback``
  / ``semisp.switch`` / ``context.evicted`` / ``oom.fallback`` /
  request lifecycle), and a dedicated fault thread;
* **pid 2 — GPU contexts**: one thread per MPS context, carrying the
  kernel slices that executed on it;
* **pid 3 — apps**: one thread per application, carrying the same
  kernel slices grouped by tenant (so per-app gaps/bubbles are visible
  at a glance).

Cluster traces (the §4.2.2 orchestrator) add, lazily, so single-GPU
exports are unchanged:

* **pid 4 — cluster**: the controller's ``cluster.place`` /
  ``cluster.shed`` / ``cluster.migrate`` / ``cluster.depart`` instants
  plus per-GPU utilization counter tracks from ``cluster.epoch``;
* **pid 10+i — GPU i**: one process per GPU with one thread per MPS
  context, carrying the kernel slices that GPU executed (absorbed
  per-GPU streams tag records with ``args["gpu"]``, which routes them
  here instead of the flat contexts track — context ids are only
  unique within a GPU).

Everything shares the simulated-microsecond clock, which is natively
what ``trace_event`` ``ts``/``dur`` expect — load the file at
https://ui.perfetto.dev or ``chrome://tracing`` unchanged.

All ordering is deterministic (events sorted by timestamp then type,
thread ids assigned in first-appearance order), so same-seed runs
export byte-identical files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from . import events as ev
from .events import TraceEvent

# Process ids of the fixed tracks.
PID_SCHEDULER = 1
PID_CONTEXTS = 2
PID_APPS = 3
# The §4.2.2 cluster controller's own decisions (place/shed/migrate).
PID_CLUSTER = 4
# Per-GPU processes of a cluster trace start here: GPU *i* exports as
# pid ``PID_GPU_BASE + i`` with one thread per MPS context, giving each
# GPU its own track group in the Perfetto UI.
PID_GPU_BASE = 10

# Fixed scheduler-process threads.
TID_DECISIONS = 1
TID_SQUADS = 2
TID_FAULTS = 3

# Fixed cluster-process threads (per-GPU placement threads follow).
TID_CONTROLLER = 1

#: Decision types drawn as instants on the scheduler/decisions thread.
_DECISION_INSTANTS = (
    ev.REQUEST_ARRIVED,
    ev.REQUEST_DONE,
    ev.SQUAD_COMPOSED,
    ev.CONFIG_CHOSEN,
    ev.CONFIG_FALLBACK,
    ev.SEMISP_SWITCH,
    ev.CONTEXT_EVICTED,
    ev.OOM_FALLBACK,
)


def normalize_request_ids(records: Sequence[TraceEvent]) -> List[TraceEvent]:
    """Remap raw request ids to dense per-trace ordinals.

    ``Request`` ids come from a process-global counter, so two
    same-seed runs in one process produce different raw ids even though
    the traces are otherwise identical.  Exports remap ids to 0, 1, ...
    in order of first appearance on the time-sorted stream, making
    same-seed trace files byte-identical regardless of what ran before
    them in the process.
    """
    ordered = sorted(records, key=lambda r: (r.ts_us, r.etype, r.app_id))
    mapping: Dict[Any, int] = {}
    out: List[TraceEvent] = []
    for record in ordered:
        raw = record.args.get("request_id")
        if raw is None:
            out.append(record)
            continue
        dense = mapping.get(raw)
        if dense is None:
            dense = len(mapping)
            mapping[raw] = dense
        out.append(
            TraceEvent(
                ts_us=record.ts_us,
                etype=record.etype,
                app_id=record.app_id,
                args={**record.args, "request_id": dense},
            )
        )
    return out


def _meta(pid: int, tid: int, key: str, name: str) -> Dict[str, Any]:
    return {
        "name": key,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def to_perfetto(records: Sequence[TraceEvent]) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` document from a unified stream."""
    ordered = normalize_request_ids(records)

    out: List[Dict[str, Any]] = []
    out.append(_meta(PID_SCHEDULER, 0, "process_name", "scheduler"))
    out.append(_meta(PID_SCHEDULER, TID_DECISIONS, "thread_name", "decisions"))
    out.append(_meta(PID_SCHEDULER, TID_SQUADS, "thread_name", "squads"))
    out.append(_meta(PID_SCHEDULER, TID_FAULTS, "thread_name", "faults"))
    out.append(_meta(PID_CONTEXTS, 0, "process_name", "GPU contexts"))
    out.append(_meta(PID_APPS, 0, "process_name", "apps"))

    context_tids: Dict[int, int] = {}
    app_tids: Dict[str, int] = {}
    # Cluster tracks are created lazily so single-GPU exports stay
    # byte-identical to what they were before the cluster layer existed.
    cluster_meta_done = False
    gpu_context_tids: Dict[tuple, int] = {}
    gpu_pids: Dict[int, int] = {}

    def context_tid(context_id: int) -> int:
        tid = context_tids.get(context_id)
        if tid is None:
            tid = len(context_tids) + 1
            context_tids[context_id] = tid
            label = f"context {context_id}" if context_id >= 0 else "context ?"
            out.append(_meta(PID_CONTEXTS, tid, "thread_name", label))
        return tid

    def app_tid(app_id: str) -> int:
        tid = app_tids.get(app_id)
        if tid is None:
            tid = len(app_tids) + 1
            app_tids[app_id] = tid
            out.append(_meta(PID_APPS, tid, "thread_name", app_id or "?"))
        return tid

    def cluster_meta() -> None:
        nonlocal cluster_meta_done
        if not cluster_meta_done:
            cluster_meta_done = True
            out.append(_meta(PID_CLUSTER, 0, "process_name", "cluster"))
            out.append(_meta(PID_CLUSTER, TID_CONTROLLER, "thread_name", "controller"))

    def gpu_pid(gpu: int) -> int:
        pid = gpu_pids.get(gpu)
        if pid is None:
            pid = PID_GPU_BASE + gpu
            gpu_pids[gpu] = pid
            out.append(_meta(pid, 0, "process_name", f"GPU {gpu}"))
        return pid

    def gpu_context_tid(gpu: int, context_id: int) -> int:
        tid = gpu_context_tids.get((gpu, context_id))
        if tid is None:
            tid = sum(1 for key in gpu_context_tids if key[0] == gpu) + 1
            gpu_context_tids[(gpu, context_id)] = tid
            label = f"context {context_id}" if context_id >= 0 else "context ?"
            out.append(_meta(gpu_pid(gpu), tid, "thread_name", label))
        return tid

    for record in ordered:
        if record.etype == ev.KERNEL:
            args = record.args
            start = float(args.get("start_us", record.ts_us))
            dur = max(0.0, float(args.get("finish_us", record.ts_us)) - start)
            slice_args = {
                "seq": args.get("seq"),
                "request_id": args.get("request_id"),
                "sm_fraction": args.get("sm_fraction"),
                "context_limit": args.get("context_limit"),
            }
            name = str(args.get("name", "kernel"))
            gpu = args.get("gpu")
            if gpu is not None:
                # Cluster trace: the GPU's own track replaces the flat
                # contexts track (contexts ids are only unique per GPU).
                out.append(
                    {
                        "name": name,
                        "cat": str(args.get("kind", "kernel")),
                        "ph": "X",
                        "ts": start,
                        "dur": dur,
                        "pid": gpu_pid(int(gpu)),
                        "tid": gpu_context_tid(int(gpu), int(args.get("context_id", -1))),
                        "args": slice_args,
                    }
                )
            else:
                out.append(
                    {
                        "name": name,
                        "cat": str(args.get("kind", "kernel")),
                        "ph": "X",
                        "ts": start,
                        "dur": dur,
                        "pid": PID_CONTEXTS,
                        "tid": context_tid(int(args.get("context_id", -1))),
                        "args": slice_args,
                    }
                )
            out.append(
                {
                    "name": name,
                    "cat": str(args.get("kind", "kernel")),
                    "ph": "X",
                    "ts": start,
                    "dur": dur,
                    "pid": PID_APPS,
                    "tid": app_tid(record.app_id),
                    "args": slice_args,
                }
            )
        elif record.etype == ev.SQUAD_DONE:
            start = float(record.args.get("start_us", record.ts_us))
            dur = max(0.0, record.ts_us - start)
            out.append(
                {
                    "name": f"squad {record.args.get('squad_id', '?')}",
                    "cat": "squad",
                    "ph": "X",
                    "ts": start,
                    "dur": dur,
                    "pid": PID_SCHEDULER,
                    "tid": TID_SQUADS,
                    "args": dict(record.args),
                }
            )
        elif record.is_fault:
            out.append(
                {
                    "name": record.etype,
                    "cat": "fault",
                    "ph": "i",
                    "s": "g",
                    "ts": record.ts_us,
                    "pid": PID_SCHEDULER,
                    "tid": TID_FAULTS,
                    "args": _instant_args(record),
                }
            )
        elif record.is_cluster:
            cluster_meta()
            out.append(
                {
                    "name": record.etype,
                    "cat": "cluster",
                    "ph": "i",
                    "s": "g",
                    "ts": record.ts_us,
                    "pid": PID_CLUSTER,
                    "tid": TID_CONTROLLER,
                    "args": _instant_args(record),
                }
            )
            if record.etype == ev.CLUSTER_EPOCH:
                # Per-GPU utilization rides as Perfetto counter tracks.
                for key, value in sorted(record.args.items()):
                    if not str(key).startswith("util_gpu"):
                        continue
                    out.append(
                        {
                            "name": f"{key} (%)",
                            "ph": "C",
                            "ts": record.ts_us,
                            "pid": PID_CLUSTER,
                            "args": {"utilization": round(100.0 * value, 3)},
                        }
                    )
        elif record.etype in _DECISION_INSTANTS:
            out.append(
                {
                    "name": record.etype,
                    "cat": "decision",
                    "ph": "i",
                    "s": "g",
                    "ts": record.ts_us,
                    "pid": PID_SCHEDULER,
                    "tid": TID_DECISIONS,
                    "args": _instant_args(record),
                }
            )
        # Unknown event types are skipped, keeping the exporter forward
        # compatible with taxonomy growth.

    return {"traceEvents": out, "displayTimeUnit": "ms"}


def _instant_args(record: TraceEvent) -> Dict[str, Any]:
    args = dict(record.args)
    if record.app_id:
        args["app_id"] = record.app_id
    return args


def save_perfetto(
    records: Sequence[TraceEvent], path: Union[str, Path]
) -> int:
    """Write the Perfetto JSON; returns the number of trace events."""
    document = to_perfetto(records)
    Path(path).write_text(json.dumps(document, indent=1) + "\n")
    return len(document["traceEvents"])


def save_jsonl(records: Sequence[TraceEvent], path: Union[str, Path]) -> int:
    """The unified stream as JSON lines (time-sorted, ids normalized)."""
    ordered = normalize_request_ids(records)
    with Path(path).open("w") as handle:
        for record in ordered:
            handle.write(json.dumps(record.to_json_dict()) + "\n")
    return len(ordered)
