"""Unified observability: decision tracing, metrics, exporters, analysis.

One :class:`Observability` instance rides along with each serving
harness.  It owns the run's :class:`MetricsRegistry` always, and — when
tracing is enabled — attaches a :class:`DecisionTracer` to the engine
so kernel completions and scheduler decisions land on one simulated
clock stream.  Tracing is opt-in (``trace=True`` on a system, ``--trace``
on the CLI, or the ``REPRO_TRACE`` environment variable) and costs
nothing when off: emission sites are ``if trace is not None`` guards
off the hot path.

See ``docs/observability.md`` for the event taxonomy, the metrics
namespace table, and the Perfetto workflow.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from .analysis import (
    RequestPath,
    analyze,
    critical_path_summary,
    decision_summary,
    predictor_report,
    request_critical_paths,
)
from .events import DECISION_TYPES, TraceEvent
from .exporters import save_jsonl, save_perfetto, to_perfetto
from .registry import (
    KERNEL_BUCKETS_US,
    LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracer import ClusterTracer, DecisionTracer, load_records_jsonl

#: Environment variable that turns tracing on for any ``serve()``.
#: Falsy values ("", "0", "false", "off", "no") leave tracing off; any
#: other value enables it, and if the value looks like a path the CLI
#: uses it as the default output file.
TRACE_ENV = "REPRO_TRACE"

_FALSY = ("", "0", "false", "off", "no")


def resolve_tracing(explicit: Optional[bool] = None) -> bool:
    """Decide whether tracing is on: explicit flag beats ``REPRO_TRACE``."""
    if explicit is not None:
        return explicit
    return os.environ.get(TRACE_ENV, "").strip().lower() not in _FALSY


def resolve_trace_target(explicit: Optional[str] = None) -> Optional[str]:
    """The trace output path, if one was requested.

    ``explicit`` (e.g. the CLI's ``--trace PATH``) wins; otherwise a
    path-looking ``REPRO_TRACE`` value ("1"/"true" just enable tracing
    without naming a file) is used.
    """
    if explicit:
        return explicit
    value = os.environ.get(TRACE_ENV, "").strip()
    if value.lower() in _FALSY or value.lower() in ("1", "true", "on", "yes"):
        return None
    return value


class Observability:
    """Per-run bundle: metrics registry + (optional) decision tracer."""

    def __init__(self, tracing: Optional[bool] = None):
        self.tracing = resolve_tracing(tracing)
        self.registry = MetricsRegistry()
        self.tracer: Optional[DecisionTracer] = None

    def begin_serve(self, engine) -> Optional[DecisionTracer]:
        """Attach a fresh tracer to this run's engine (if tracing is on).

        Called by the harness once per ``serve()`` after the engine is
        built; repeated serves on one system each get their own tracer.
        """
        if self.tracing:
            self.tracer = DecisionTracer(engine)
        return self.tracer

    def emit(self, etype: str, app_id: str = "", **args: Any) -> None:
        """Forward a decision event to the tracer (no-op when off)."""
        if self.tracer is not None:
            self.tracer.emit(etype, app_id, **args)

    def legacy_extras(self):
        """The registry snapshot under the historical ``extras`` keys."""
        return self.registry.legacy_extras()


__all__ = [
    "Observability",
    "ClusterTracer",
    "DecisionTracer",
    "TraceEvent",
    "DECISION_TYPES",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_US",
    "KERNEL_BUCKETS_US",
    "TRACE_ENV",
    "resolve_tracing",
    "resolve_trace_target",
    "to_perfetto",
    "save_perfetto",
    "save_jsonl",
    "load_records_jsonl",
    "analyze",
    "request_critical_paths",
    "critical_path_summary",
    "predictor_report",
    "decision_summary",
    "RequestPath",
]
