"""The trace-event taxonomy of the observability layer.

Every observable moment of a serving run — kernel completions, the
scheduler's squad/configuration decisions, Semi-SP phase transitions,
and the fault/degradation machinery — is recorded as one
:class:`TraceEvent` stamped with the **simulated** clock (microseconds,
the same clock every kernel executes on).  A trace is therefore a
single totally-ordered stream that can answer "what did the scheduler
believe, and what actually happened, at time t?".

Event types (see docs/observability.md for the full taxonomy table):

========================  ====================================================
type                      emitted when
========================  ====================================================
``kernel``                a kernel completes (the CUPTI-style activity record)
``request.arrived``       a request enters the serving harness
``request.done``          a request's final kernel completes
``squad.composed``        the multi-task scheduler forms a squad (§4.3):
                          members, per-app kernel counts, relative progress P̃
``config.chosen``         the determiner picks an execution configuration
                          (§4.4): Eq. 1 / Eq. 2 estimates, candidate count,
                          decision-cache hit/miss
``config.fallback``       the quota-proportional plan replaced the determiner
                          (ablation or profile-drift bench, Fig. 20)
``squad.done``            a squad drains: predicted vs simulated duration
``semisp.switch``         a client's Semi-SP front→rear context switch (§4.5)
``context.evicted``       an idle cached MPS context was evicted (memory)
``oom.fallback``          no memory for an MPS context: entry ran NSP instead
``fault.retry``           a transient kernel failure entered retry backoff
``fault.kernel_failed``   a kernel failed permanently (retries exhausted)
``fault.kernel_killed``   a kernel was killed (request shed / context crash)
``fault.launch_failed``   a launch landed on a dead (crashed-context) queue
``fault.context_crash``   an injected MPS-context crash fired
``fault.request_shed``    the harness shed a request (failure or timeout)
``cluster.place``         the §4.2.2 controller placed an app on a GPU
``cluster.shed``          cluster admission control rejected an app (the
                          load-shedding ladder ran dry)
``cluster.migrate``       the online orchestrator moved an app between GPUs
``cluster.depart``        an application left the cluster (online mode)
``cluster.epoch``         an online serving epoch finished (per-GPU
                          utilization snapshot rides in ``args``)
``cluster.interference``  the contention-aware policy placed an app: the
                          chosen GPU, the Eq. 2 predicted slowdown next
                          to its co-residents, and the marginal cost
``cluster.cost``          a contention-aware placement round settled:
                          total assignment interference cost (and the
                          estimator's memoization hit/miss counters)
``slo.admit``             the serving gateway ruled on an arriving
                          request: admitted/degraded (deadline stamped)
                          or shed at the gate
``slo.preempt``           a best-effort squad entry was withdrawn at a
                          squad boundary for a latency-critical arrival
``slo.deadline_miss``     a latency-critical request finished past its
                          gateway deadline
========================  ====================================================

Cluster events are stamped on the **cluster clock**: epoch ``e`` starts
at the cumulative makespan of epochs ``0..e-1``, and every per-GPU
simulated timestamp inside epoch ``e`` maps to ``offset_e + ts`` (GPUs
run concurrently in cluster time, so their epoch-local clocks align).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

# Kernel activity (the KernelTracer record, unified onto the stream).
KERNEL = "kernel"

# Request lifecycle.
REQUEST_ARRIVED = "request.arrived"
REQUEST_DONE = "request.done"

# Scheduler decisions.
SQUAD_COMPOSED = "squad.composed"
CONFIG_CHOSEN = "config.chosen"
CONFIG_FALLBACK = "config.fallback"
SQUAD_DONE = "squad.done"
SEMISP_SWITCH = "semisp.switch"
CONTEXT_EVICTED = "context.evicted"
OOM_FALLBACK = "oom.fallback"

# Fault / degradation machinery.
FAULT_RETRY = "fault.retry"
FAULT_KERNEL_FAILED = "fault.kernel_failed"
FAULT_KERNEL_KILLED = "fault.kernel_killed"
FAULT_LAUNCH_FAILED = "fault.launch_failed"
FAULT_CONTEXT_CRASH = "fault.context_crash"
FAULT_REQUEST_SHED = "fault.request_shed"

# Multi-GPU orchestration (§4.2.2 central controller).
CLUSTER_PLACE = "cluster.place"
CLUSTER_SHED = "cluster.shed"
CLUSTER_MIGRATE = "cluster.migrate"
CLUSTER_DEPART = "cluster.depart"
CLUSTER_EPOCH = "cluster.epoch"
CLUSTER_INTERFERENCE = "cluster.interference"
CLUSTER_COST = "cluster.cost"

# SLO serving gateway (admission, preemption, deadlines).
SLO_ADMIT = "slo.admit"
SLO_PREEMPT = "slo.preempt"
SLO_DEADLINE_MISS = "slo.deadline_miss"

#: Every decision/fault event type (``kernel`` records live alongside).
DECISION_TYPES = (
    REQUEST_ARRIVED,
    REQUEST_DONE,
    SQUAD_COMPOSED,
    CONFIG_CHOSEN,
    CONFIG_FALLBACK,
    SQUAD_DONE,
    SEMISP_SWITCH,
    CONTEXT_EVICTED,
    OOM_FALLBACK,
    FAULT_RETRY,
    FAULT_KERNEL_FAILED,
    FAULT_KERNEL_KILLED,
    FAULT_LAUNCH_FAILED,
    FAULT_CONTEXT_CRASH,
    FAULT_REQUEST_SHED,
    CLUSTER_PLACE,
    CLUSTER_SHED,
    CLUSTER_MIGRATE,
    CLUSTER_DEPART,
    CLUSTER_EPOCH,
    CLUSTER_INTERFERENCE,
    CLUSTER_COST,
    SLO_ADMIT,
    SLO_PREEMPT,
    SLO_DEADLINE_MISS,
)


@dataclass(frozen=True)
class TraceEvent:
    """One event on the unified observability stream.

    ``ts_us`` is the simulated clock at emission — for ``kernel``
    records it is the completion time (the record's ``args`` carry the
    enqueue/start/finish triple).  ``app_id`` is empty for global
    events (context crashes, squad boundaries).  ``args`` is a flat,
    JSON-serialisable mapping of event-specific detail.
    """

    ts_us: float
    etype: str
    app_id: str = ""
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_kernel(self) -> bool:
        return self.etype == KERNEL

    @property
    def is_fault(self) -> bool:
        return self.etype.startswith("fault.")

    @property
    def is_cluster(self) -> bool:
        return self.etype.startswith("cluster.")

    def to_json_dict(self) -> Dict[str, Any]:
        """Flat dict for JSON-lines export (stable key order)."""
        out: Dict[str, Any] = {"ts_us": self.ts_us, "type": self.etype}
        if self.app_id:
            out["app_id"] = self.app_id
        if self.args:
            out["args"] = self.args
        return out
